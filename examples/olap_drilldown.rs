//! An OLAP drill-down query over the Figure 4 "Item" table, demonstrating
//! what vertical decomposition + byte encodings buy (§3.1, \[BRK98\]):
//!
//! ```sql
//! SELECT shipmode, SUM(price), COUNT(*) FROM Item
//! WHERE 0.05 <= discnt AND discnt <= 0.10
//! GROUP BY shipmode
//! ```
//!
//! The query is written against the composable plan API — `Query::scan(..)
//! .filter(..).group_by(..).agg(..)` — and the *executor* makes every
//! physical decision from the paper's cost model; the per-operator
//! `ExecReport` shows rows in/out and, on the simulated Origin2000, where
//! the misses went. The whole pipeline touches a stride-8 `F64` column, a
//! stride-1 encoded column, and a stride-8 value column — never the
//! 52+-byte record an NSM system would drag through the cache.
//!
//! ```text
//! cargo run --release --example olap_drilldown
//! ```

use monet_mem::engine::exec::{execute, AggValue, ExecOptions, QueryOutput};
use monet_mem::engine::plan::{Agg, Pred, Query};
use monet_mem::memsim::{profiles, NullTracker, SimTracker};
use monet_mem::workload::{item_rows, item_table};

fn main() {
    let n = 500_000;
    let table = item_table(n, 7);
    println!("Item table: {n} rows, decomposed into {} BATs", table.columns().len());
    println!(
        "bytes per logical tuple in BAT storage: {} (NSM record: {})\n",
        table.bytes_per_tuple(),
        table.to_nsm().record_width().max(80)
    );

    // The logical plan: what to compute, nothing about how.
    let plan = Query::scan(&table)
        .filter(Pred::range_f64("discnt", 0.05, 0.10))
        .group_by("shipmode")
        .agg(Agg::sum("price"))
        .agg(Agg::count())
        .build()
        .expect("plan validates");
    println!("logical plan:\n{}", plan.explain());

    // Run natively; the executor picks the physical strategy.
    let executed = execute(&mut NullTracker, &plan, &ExecOptions::default()).expect("query runs");
    let QueryOutput::Groups(mut rows) = executed.output else {
        unreachable!("grouped plan yields groups")
    };
    rows.sort_by(|a, b| a.key.cmp(&b.key));

    // Independently compute the answer from the raw rows.
    let mut expect: std::collections::BTreeMap<String, (f64, usize)> = Default::default();
    for r in item_rows(n, 7) {
        if (0.05..=0.10).contains(&r.discnt) {
            let e = expect.entry(r.shipmode).or_default();
            e.0 += r.price;
            e.1 += 1;
        }
    }
    println!("{:<10} {:>16} {:>10} {:>16}", "shipmode", "SUM(price)", "COUNT", "naive check");
    for row in &rows {
        let (sum, cnt) = match (&row.values[0], &row.values[1]) {
            (AggValue::F64(s), AggValue::Count(c)) => (*s, *c),
            other => unreachable!("sum+count columns, got {other:?}"),
        };
        let (ref_sum, ref_cnt) = expect.get(&row.key).copied().unwrap_or((0.0, 0));
        assert!((sum - ref_sum).abs() < 1e-6 * ref_sum.abs().max(1.0));
        assert_eq!(cnt, ref_cnt);
        println!("{:<10} {:>16.2} {:>10} {:>16.2}", row.key, sum, cnt, ref_sum);
    }

    // Now the same plan on the simulated Origin2000: the report attributes
    // the simulated misses to each operator.
    let mut trk = SimTracker::for_machine(profiles::origin2000());
    let executed = execute(&mut trk, &plan, &ExecOptions::default()).unwrap();
    println!("\n{}", executed.report);
    let c = trk.counters();
    println!(
        "simulated origin2k: {:.1} ms total, {:.0}% stalled on memory \
         ({} L1 / {} L2 / {} TLB misses)",
        c.elapsed_ms(),
        c.stall_fraction() * 100.0,
        c.l1_misses,
        c.l2_misses,
        c.tlb_misses
    );
    println!(
        "the selection scans 8 B/tuple and the group-by touches 1 B/tuple — \
         that locality is the entire point of DSM storage."
    );
}
