//! An OLAP drill-down query over the Figure 4 "Item" table, demonstrating
//! what vertical decomposition + byte encodings buy (§3.1, \[BRK98\]):
//!
//! ```sql
//! SELECT shipmode, SUM(price) FROM Item
//! WHERE 0.05 <= discnt AND discnt <= 0.10
//! GROUP BY shipmode
//! ```
//!
//! The whole pipeline touches a stride-8 `F64` column, a stride-1 encoded
//! column, and a stride-8 value column — never the 52+-byte record an NSM
//! system would drag through the cache.
//!
//! ```text
//! cargo run --release --example olap_drilldown
//! ```

use monet_mem::engine::{grouped_sum_where, query::GroupedSum};
use monet_mem::memsim::{profiles, NullTracker, SimTracker};
use monet_mem::workload::{item_rows, item_table};

fn main() {
    let n = 500_000;
    let table = item_table(n, 7);
    println!("Item table: {n} rows, decomposed into {} BATs", table.columns().len());
    println!("bytes per logical tuple in BAT storage: {} (NSM record: {})\n",
        table.bytes_per_tuple(),
        table.to_nsm().record_width().max(80));

    // Run the query on the engine (native).
    let mut rows =
        grouped_sum_where(&mut NullTracker, &table, "shipmode", "price", "discnt", 0.05, 0.10)
            .expect("query runs");
    rows.sort_by(|a, b| a.key.cmp(&b.key));

    // Independently compute the answer from the raw rows.
    let mut expect: std::collections::BTreeMap<String, f64> = Default::default();
    for r in item_rows(n, 7) {
        if (0.05..=0.10).contains(&r.discnt) {
            *expect.entry(r.shipmode).or_default() += r.price;
        }
    }
    println!("{:<10} {:>16} {:>16}", "shipmode", "SUM(price)", "naive check");
    for GroupedSum { key, sum } in &rows {
        let reference = expect.get(key).copied().unwrap_or(0.0);
        assert!((sum - reference).abs() < 1e-6 * reference.abs().max(1.0));
        println!("{key:<10} {sum:>16.2} {reference:>16.2}");
    }

    // Now the same pipeline on the simulated Origin2000, to see where the
    // cycles go.
    let mut trk = SimTracker::for_machine(profiles::origin2000());
    let _ =
        grouped_sum_where(&mut trk, &table, "shipmode", "price", "discnt", 0.05, 0.10).unwrap();
    let c = trk.counters();
    println!(
        "\nsimulated origin2k: {:.1} ms total, {:.0}% stalled on memory \
         ({} L1 / {} L2 / {} TLB misses)",
        c.elapsed_ms(),
        c.stall_fraction() * 100.0,
        c.l1_misses,
        c.l2_misses,
        c.tlb_misses
    );
    println!(
        "the selection scans 8 B/tuple and the group-by touches 1 B/tuple — \
         that locality is the entire point of DSM storage."
    );
}
