//! Quickstart: join two columns the Monet way — the physical plan chosen by
//! the paper's cost model, not by the caller — natively and under the
//! simulated Origin2000; then the same idea one level up, through the
//! composable query API.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::time::Instant;

use monet_mem::core::join::{
    partitioned_hash_join, radix_join, simple_hash_join, sort_merge_join, FibHash,
};
use monet_mem::core::strategy::Algorithm;
use monet_mem::costmodel::plan::plan_join;
use monet_mem::engine::exec::{execute, ExecOptions, QueryOutput};
use monet_mem::engine::plan::{Agg, Pred, Query};
use monet_mem::memsim::{profiles, NullTracker, SimTracker};
use monet_mem::workload::{item_table, join_pair};

fn main() {
    let machine = profiles::origin2000();
    let n = 1_000_000;

    // §3.4.1 workload: two BATs over the same unique random key set.
    let (left, right) = join_pair(n, 42);
    println!("joining two BATs of {n} tuples (8-byte [OID,int] BUNs, hit rate 1)");

    // Ask the cost model — not a hand-tuned constant — for the plan: it
    // searches algorithm x radix bits x pass layout (the Figure 12 "best").
    let (plan, predicted) = plan_join(&machine, n);
    println!(
        "cost-model plan: {:?} on B={} radix bits in {} pass(es) {:?}, predicted {:.1} ms",
        plan.algorithm,
        plan.bits,
        plan.pass_bits.len(),
        plan.pass_bits,
        predicted.total_ms()
    );

    /// Run the chosen kernel under any tracker.
    fn exec_plan<M: monet_mem::memsim::MemTracker>(
        trk: &mut M,
        plan: &monet_mem::core::strategy::JoinPlan,
        l: &[monet_mem::core::join::Bun],
        r: &[monet_mem::core::join::Bun],
    ) -> Vec<monet_mem::core::join::OidPair> {
        match plan.algorithm {
            Algorithm::PartitionedHash => partitioned_hash_join(
                trk,
                FibHash,
                l.to_vec(),
                r.to_vec(),
                plan.bits,
                &plan.pass_bits,
            ),
            Algorithm::Radix => {
                radix_join(trk, FibHash, l.to_vec(), r.to_vec(), plan.bits, &plan.pass_bits)
            }
            Algorithm::SimpleHash => simple_hash_join(trk, FibHash, l, r),
            Algorithm::SortMerge => sort_merge_join(trk, l.to_vec(), r.to_vec()),
        }
    }

    // 1) Native run: the exact same kernel, zero instrumentation overhead.
    let t0 = Instant::now();
    let pairs = exec_plan(&mut NullTracker, &plan, &left, &right);
    let native = t0.elapsed();
    assert_eq!(pairs.len(), n);
    println!(
        "native ({}):       {:>8.1} ms for {} result pairs",
        std::env::consts::ARCH,
        native.as_secs_f64() * 1e3,
        pairs.len()
    );

    // 2) Simulated run: replay on the paper's 250 MHz Origin2000, with the
    //    hardware-counter readings the paper reports.
    let mut trk = SimTracker::for_machine(machine);
    let pairs = exec_plan(&mut trk, &plan, &left, &right);
    assert_eq!(pairs.len(), n);
    let c = trk.counters();
    println!(
        "simulated origin2k: {:>8.1} ms (model predicted {:.1})",
        c.elapsed_ms(),
        predicted.total_ms()
    );
    println!(
        "  events: {} L1 misses, {} L2 misses, {} TLB misses",
        c.l1_misses, c.l2_misses, c.tlb_misses
    );
    println!(
        "  time:   {:.1} ms CPU + {:.1} ms L2 + {:.1} ms memory + {:.1} ms TLB stalls",
        c.cpu_ns / 1e6,
        c.stall_l2_ns / 1e6,
        c.stall_mem_ns / 1e6,
        c.stall_tlb_ns / 1e6
    );
    println!(
        "  {:.0}% of simulated cycles wait on the memory system — the paper's bottleneck.",
        c.stall_fraction() * 100.0
    );

    // 3) The same planning discipline, one level up: a composed query whose
    //    executor consults the cost model for you.
    let table = item_table(100_000, 42);
    let query = Query::scan(&table)
        .filter(Pred::range_i32("qty", 10, 40))
        .group_by("shipmode")
        .agg(Agg::sum("price"))
        .build()
        .expect("plan validates");
    let executed = execute(&mut NullTracker, &query, &ExecOptions::default()).unwrap();
    let groups = match executed.output {
        QueryOutput::Groups(g) => g.len(),
        _ => unreachable!("grouped query"),
    };
    println!(
        "\ncomposable API: SELECT shipmode, SUM(price) WHERE 10<=qty<=40 GROUP BY shipmode \
         -> {groups} groups\n{}",
        executed.report
    );
}
