//! Quickstart: join two columns the Monet way, natively and under the
//! simulated Origin2000.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::time::Instant;

use monet_mem::core::join::{partitioned_hash_join, FibHash};
use monet_mem::core::strategy::heuristic_plan;
use monet_mem::memsim::{profiles, NullTracker, SimTracker};
use monet_mem::workload::join_pair;

fn main() {
    let machine = profiles::origin2000();
    let n = 1_000_000;

    // §3.4.1 workload: two BATs over the same unique random key set.
    let (left, right) = join_pair(n, 42);
    println!("joining two BATs of {n} tuples (8-byte [OID,int] BUNs, hit rate 1)");

    // Let the strategy heuristics pick bits and passes for this machine.
    let plan = heuristic_plan(n, &machine);
    println!(
        "plan: {:?} on B={} radix bits in {} pass(es) {:?}",
        plan.algorithm,
        plan.bits,
        plan.pass_bits.len(),
        plan.pass_bits
    );

    // 1) Native run: the exact same code, zero instrumentation overhead.
    let t0 = Instant::now();
    let pairs = partitioned_hash_join(
        &mut NullTracker,
        FibHash,
        left.clone(),
        right.clone(),
        plan.bits,
        &plan.pass_bits,
    );
    let native = t0.elapsed();
    assert_eq!(pairs.len(), n);
    println!(
        "native ({}):       {:>8.1} ms for {} result pairs",
        std::env::consts::ARCH,
        native.as_secs_f64() * 1e3,
        pairs.len()
    );

    // 2) Simulated run: replay on the paper's 250 MHz Origin2000, with the
    //    hardware-counter readings the paper reports.
    let mut trk = SimTracker::for_machine(machine);
    let pairs = partitioned_hash_join(&mut trk, FibHash, left, right, plan.bits, &plan.pass_bits);
    assert_eq!(pairs.len(), n);
    let c = trk.counters();
    println!("simulated origin2k: {:>8.1} ms", c.elapsed_ms());
    println!(
        "  events: {} L1 misses, {} L2 misses, {} TLB misses",
        c.l1_misses, c.l2_misses, c.tlb_misses
    );
    println!(
        "  time:   {:.1} ms CPU + {:.1} ms L2 + {:.1} ms memory + {:.1} ms TLB stalls",
        c.cpu_ns / 1e6,
        c.stall_l2_ns / 1e6,
        c.stall_mem_ns / 1e6,
        c.stall_tlb_ns / 1e6
    );
    println!(
        "  {:.0}% of simulated cycles wait on the memory system — the paper's bottleneck.",
        c.stall_fraction() * 100.0
    );
}
