//! Model-driven join planning — using the paper's cost model the way a
//! query optimizer would: given cardinalities and the machine, search
//! `(algorithm, B, passes)` for the cheapest total plan and show how the
//! choice shifts with relation size.
//!
//! ```text
//! cargo run --release --example cost_planner
//! ```

use monet_mem::core::strategy::Algorithm;
use monet_mem::costmodel::plan::{best_plan, simple_hash_total, sort_merge_total};
use monet_mem::costmodel::{ModelMachine, ModelParams};
use monet_mem::memsim::profiles;

fn main() {
    let machine = profiles::origin2000();
    let model = ModelMachine::with_params(&machine, ModelParams::implementation_matched());

    println!("model-optimal join plans on the Origin2000 (paper-calibrated costs):\n");
    println!(
        "{:>10} {:>18} {:>4} {:>8} {:>12} {:>14} {:>14}",
        "C", "algorithm", "B", "passes", "best (ms)", "simple (ms)", "sortmerge (ms)"
    );
    for exp in 10..=26 {
        let c = 1usize << exp;
        let (plan, cost) = best_plan(&model, &machine, c);
        let algo = match plan.algorithm {
            Algorithm::PartitionedHash => "partitioned hash",
            Algorithm::Radix => "radix",
            Algorithm::SimpleHash => "simple hash",
            Algorithm::SortMerge => "sort-merge",
        };
        println!(
            "{:>10} {:>18} {:>4} {:>8} {:>12.1} {:>14.1} {:>14.1}",
            c,
            algo,
            plan.bits,
            plan.pass_bits.len(),
            cost.total_ms(),
            simple_hash_total(&model, c as f64).total_ms(),
            sort_merge_total(&model, c as f64).total_ms(),
        );
    }

    println!(
        "\nReading: tiny relations fit the caches, so the unpartitioned hash join wins \
         (clustering would be pure overhead); from ~100k tuples the planner switches to \
         radix-clustered execution, with B growing ~1 bit per doubling — clusters are \
         kept at a fixed byte size, exactly the paper's strategy diagonals. The speedup \
         over the random-access baselines grows with C (Figure 13's message)."
    );
}
