//! The §2 "reality check" as a runnable demo: watch a decade of CPU progress
//! evaporate when the access stride grows — then check your own machine.
//!
//! ```text
//! cargo run --release --example memory_wall
//! ```

use monet_mem::memsim::profiles;
use monet_mem::memsim::stride::{scan_native, scan_sim, PAPER_ITERATIONS};

fn main() {
    let machines = profiles::figure3_machines();
    let strides = [1usize, 8, 32, 128, 256];

    println!("simulated elapsed ms for {PAPER_ITERATIONS} one-byte reads (Figure 3):\n");
    print!("{:>8}", "stride");
    for m in &machines {
        print!("{:>10}", m.name);
    }
    println!("{:>12}", "(host)");
    for &s in &strides {
        print!("{s:>8}");
        for m in &machines {
            print!("{:>10.1}", scan_sim(*m, PAPER_ITERATIONS, s).elapsed_ms);
        }
        println!("{:>12.2}", scan_native(PAPER_ITERATIONS, s).elapsed_ms);
    }

    // The punchline, computed rather than asserted.
    let origin = profiles::origin2000();
    let lx = profiles::sun_lx();
    let speedup_1 = scan_sim(lx, PAPER_ITERATIONS, 1).elapsed_ms
        / scan_sim(origin, PAPER_ITERATIONS, 1).elapsed_ms;
    let speedup_256 = scan_sim(lx, PAPER_ITERATIONS, 256).elapsed_ms
        / scan_sim(origin, PAPER_ITERATIONS, 256).elapsed_ms;
    println!(
        "\n1992 SunLX → 1998 Origin2000 speedup: {speedup_1:.1}x at stride 1, \
         only {speedup_256:.1}x at stride 256."
    );
    let frac = scan_sim(origin, PAPER_ITERATIONS, 256).counters.stall_fraction();
    println!(
        "At full stride the Origin2000 spends {:.0}% of its cycles waiting for memory — \
         \"all advances in CPU power are neutralized due to the memory access bottleneck.\"",
        frac * 100.0
    );

    // And the modern extension profile: the wall has only grown.
    let modern = profiles::modern();
    let m1 = scan_sim(modern, PAPER_ITERATIONS, 1).elapsed_ms;
    let m256 = scan_sim(modern, PAPER_ITERATIONS, 256).elapsed_ms;
    println!(
        "\nextension — a ~4 GHz present-day profile: stride 1 = {m1:.2} ms, \
         stride 256 = {m256:.1} ms ({:.0}x penalty vs the Origin2000's {:.0}x).",
        m256 / m1,
        scan_sim(origin, PAPER_ITERATIONS, 256).elapsed_ms
            / scan_sim(origin, PAPER_ITERATIONS, 1).elapsed_ms
    );
}
