//! Compare every §3.4.4 join strategy on one workload — a miniature
//! Figure 13 you can point at your own cardinality:
//!
//! ```text
//! cargo run --release --example join_strategies -- [cardinality]
//! ```

use std::time::Instant;

use monet_mem::core::join::{
    partitioned_hash_join, radix_join, simple_hash_join, sort_merge_join, FibHash,
};
use monet_mem::core::strategy::{Algorithm, Strategy};
use monet_mem::costmodel::plan::{best_plan, plan_cost};
use monet_mem::costmodel::{ModelMachine, ModelParams};
use monet_mem::memsim::{profiles, NullTracker, SimTracker};
use monet_mem::workload::join_pair;

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(250_000);
    let machine = profiles::origin2000();
    let model = ModelMachine::with_params(&machine, ModelParams::implementation_matched());
    let (l, r) = join_pair(n, 1);

    println!("join of two {n}-tuple BATs, hit rate 1\n");
    println!(
        "{:<12} {:>4} {:>7} {:>12} {:>12} {:>12}",
        "strategy", "B", "passes", "sim ms", "model ms", "native ms"
    );

    /// One strategy, executed under any tracker.
    fn exec<M: monet_mem::memsim::MemTracker>(
        trk: &mut M,
        plan: &monet_mem::core::strategy::JoinPlan,
        l: Vec<monet_mem::core::join::Bun>,
        r: Vec<monet_mem::core::join::Bun>,
    ) -> Vec<monet_mem::core::join::OidPair> {
        match plan.algorithm {
            Algorithm::PartitionedHash => {
                partitioned_hash_join(trk, FibHash, l, r, plan.bits, &plan.pass_bits)
            }
            Algorithm::Radix => radix_join(trk, FibHash, l, r, plan.bits, &plan.pass_bits),
            Algorithm::SimpleHash => simple_hash_join(trk, FibHash, &l, &r),
            Algorithm::SortMerge => sort_merge_join(trk, l, r),
        }
    }

    for s in Strategy::ALL {
        let plan = s.plan(n, &machine);

        let mut sim = SimTracker::for_machine(machine);
        let pairs = exec(&mut sim, &plan, l.clone(), r.clone());
        assert_eq!(pairs.len(), n);

        let t0 = Instant::now();
        let native = exec(&mut NullTracker, &plan, l.clone(), r.clone());
        let native_ms = t0.elapsed().as_secs_f64() * 1e3;
        assert_eq!(native.len(), n);

        let mc = plan_cost(&model, &plan, n as f64);
        println!(
            "{:<12} {:>4} {:>7} {:>12.1} {:>12.1} {:>12.1}",
            s.name(),
            plan.bits,
            plan.pass_bits.len(),
            sim.counters().elapsed_ms(),
            mc.total_ms(),
            native_ms
        );
    }

    let (best, cost) = best_plan(&model, &machine, n);
    println!(
        "\nmodel-optimal plan: {:?} with B={} ({} passes) — predicted {:.1} ms",
        best.algorithm,
        best.bits,
        best.pass_bits.len(),
        cost.total_ms()
    );
}
