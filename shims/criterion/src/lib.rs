#![warn(missing_docs)]

//! # criterion (offline shim)
//!
//! The build environment has no network access, so this workspace vendors a
//! minimal, dependency-free stand-in for the slice of the criterion API the
//! `native` bench uses: benchmark groups, `bench_function` /
//! `bench_with_input`, `Throughput::Elements`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurements are honest but simple: each benchmark runs a short warmup,
//! then `sample_size` timed samples of an adaptively chosen batch, and the
//! median sample is printed. There are no statistics, plots, or baselines —
//! run the real criterion on a networked machine when those matter.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier (`function`, or `function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        Self { id: format!("{function}/{parameter}") }
    }

    /// An id that is just a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Times closures handed to it by a benchmark body.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Run `f` repeatedly and record timing samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup + batch sizing: aim for samples of at least ~2 ms.
        let t0 = Instant::now();
        std::hint::black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let batch = (Duration::from_millis(2).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u32;

        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            self.samples.push(t0.elapsed() / batch);
        }
    }

    fn median(&mut self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.sort_unstable();
        self.samples[self.samples.len() / 2]
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut b);
        self.report(&id, b.median());
        self
    }

    /// Run one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut b, input);
        self.report(&id, b.median());
        self
    }

    /// Finish the group (prints a trailing newline).
    pub fn finish(self) {
        println!();
    }

    fn report(&self, id: &BenchmarkId, median: Duration) {
        let per_iter = median.as_secs_f64();
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if per_iter > 0.0 => {
                format!("  {:>12.0} elem/s", n as f64 / per_iter)
            }
            Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
                format!("  {:>12.0} B/s", n as f64 / per_iter)
            }
            _ => String::new(),
        };
        println!("{}/{:<28} {:>12.3} ms/iter{}", self.name, id.id, per_iter * 1e3, rate);
    }
}

/// The benchmark harness entry object.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { default_sample_size: 10 }
    }
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            throughput: None,
        }
    }
}

/// Shim for `criterion_group!`: defines a function running each benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Shim for `criterion_main!`: defines `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3).throughput(Throughput::Elements(10));
        let mut runs = 0u32;
        g.bench_function("noop", |b| b.iter(|| runs += 1));
        g.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, &x| b.iter(|| x * 2));
        g.finish();
        assert!(runs > 0);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter("p").id, "p");
    }
}
