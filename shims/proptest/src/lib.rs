#![warn(missing_docs)]

//! # proptest (offline shim)
//!
//! The build environment has no network access, so this workspace vendors a
//! minimal stand-in for the slice of the `proptest` API its test suites use:
//! the [`proptest!`] macro, [`Strategy`] with `prop_map`, range and tuple
//! strategies, [`collection::vec`], [`any`], [`ProptestConfig`], and the
//! `prop_assert*` macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking** — a failing case panics with its case number and the
//!   per-test RNG is deterministic (seeded from the test's name), so failures
//!   reproduce exactly but are not minimized.
//! * `prop_assert!` / `prop_assert_eq!` are plain `assert!` / `assert_eq!`
//!   (they abort the test rather than returning a `TestCaseError`).

use std::marker::PhantomData;
use std::ops::Range;

pub mod prelude {
    //! The usual `use proptest::prelude::*;` surface.
    pub use crate as prop;
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// The deterministic per-test generator (SplitMix64, seeded from the test
/// name so every test gets an independent, reproducible stream).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test name (FNV-1a hash).
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of test values (the shim keeps only the generation half of
/// proptest's `Strategy`; there is no shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng), self.2.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng), self.2.generate(rng), self.3.generate(rng))
    }
}

/// Types with a canonical whole-domain strategy (proptest's `Arbitrary`).
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T` (proptest's `any::<T>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.start < self.size.end {
                self.size.generate(rng)
            } else {
                self.size.start
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `Vec` of `element`-generated values with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

/// Shim for proptest's `prop_assert!`: plain `assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Shim for proptest's `prop_assert_eq!`: plain `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Shim for proptest's `prop_assert_ne!`: plain `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

/// The `proptest!` block macro: expands each contained test function into a
/// `#[test]` that runs `config.cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)*
        }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_tests {
    ( ($cfg:expr)
      $(
          $(#[$meta:meta])*
          fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::from_name(stringify!($name));
                for __case in 0..__cfg.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    let __run = || $body;
                    if let Err(e) = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(__run)) {
                        eprintln!(
                            "proptest shim: {} failed at case {}/{} (deterministic; no shrinking)",
                            stringify!($name), __case + 1, __cfg.cases,
                        );
                        ::std::panic::resume_unwind(e);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn pairs(max: usize) -> impl Strategy<Value = Vec<(u64, u64)>> {
        prop::collection::vec((0u64..8, 0u64..4096), 1..max)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u32..17, y in -5i32..5, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_and_map_compose(v in pairs(40), n in 1usize..10) {
            prop_assert!(!v.is_empty() && v.len() < 40);
            prop_assert!(v.iter().all(|&(a, b)| a < 8 && b < 4096));
            let doubled = (0usize..n).generate_check();
            let _ = doubled;
        }

        #[test]
        fn any_generates(x in any::<u32>(), v in prop::collection::vec(any::<u32>(), 0..5)) {
            let _ = x;
            prop_assert!(v.len() < 5);
        }
    }

    trait GenerateCheck {
        fn generate_check(&self) -> usize;
    }

    impl GenerateCheck for std::ops::Range<usize> {
        fn generate_check(&self) -> usize {
            self.end - self.start
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::from_name("t");
        let mut b = crate::TestRng::from_name("t");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn prop_map_applies() {
        let s = (0u32..10).prop_map(|x| x * 2);
        let mut rng = crate::TestRng::from_name("map");
        for _ in 0..100 {
            let v = crate::Strategy::generate(&s, &mut rng);
            assert_eq!(v % 2, 0);
            assert!(v < 20);
        }
    }
}
