#![warn(missing_docs)]

//! # rand (offline shim)
//!
//! The build environment has no network access, so this workspace vendors a
//! minimal, dependency-free stand-in for the tiny slice of the `rand` API the
//! `workload` crate uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! and the [`RngExt`] extension methods `random` / `random_range`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — not the real
//! `StdRng` (ChaCha12), but every consumer in this workspace only requires
//! determinism per seed and decent equidistribution, both of which
//! xoshiro256++ provides. Nothing here is cryptographic.

use std::ops::{Range, RangeInclusive};

pub mod rngs {
    //! Concrete generator types (mirrors `rand::rngs`).
    pub use crate::StdRng;
}

/// Seedable generators (mirrors `rand::SeedableRng`, `seed_from_u64` only).
pub trait SeedableRng: Sized {
    /// Construct deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The workspace's standard generator: xoshiro256++.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // Expand the seed with SplitMix64, as the xoshiro authors recommend.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self { s: [next(), next(), next(), next()] }
    }
}

impl StdRng {
    /// The core 64-bit step (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Types samplable uniformly over their whole domain (mirrors the `Standard`
/// distribution of `rand`). `f64` samples uniformly in `[0, 1)`.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample(rng: &mut StdRng) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample(rng: &mut StdRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i32, i64);

impl Standard for f64 {
    fn sample(rng: &mut StdRng) -> Self {
        // 53 random mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample(rng: &mut StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl<T: Standard, const N: usize> Standard for [T; N] {
    fn sample(rng: &mut StdRng) -> Self {
        std::array::from_fn(|_| T::sample(rng))
    }
}

/// Ranges samplable uniformly (mirrors `rand`'s `SampleRange`).
pub trait SampleRange<T> {
    /// Draw one value from the range. Panics on an empty range.
    fn sample_from(self, rng: &mut StdRng) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i32, i64);

/// Extension methods on generators (mirrors `rand::Rng`, under the name this
/// workspace imports).
pub trait RngExt {
    /// Draw a value uniformly over `T`'s whole domain (`[0, 1)` for `f64`).
    fn random<T: Standard>(&mut self) -> T;

    /// Draw a value uniformly from `range`. Panics on an empty range.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;
}

impl RngExt for StdRng {
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: i32 = rng.random_range(-5..=5);
            assert!((-5..=5).contains(&v));
            let u: usize = rng.random_range(0..7);
            assert!(u < 7);
        }
    }

    #[test]
    fn f64_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut sum = 0.0;
        for _ in 0..100_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / 100_000.0 - 0.5).abs() < 0.01);
    }

    #[test]
    fn int_buckets_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buckets = [0usize; 10];
        for _ in 0..100_000 {
            buckets[rng.random_range(0..10usize)] += 1;
        }
        for &b in &buckets {
            assert!((8_000..=12_000).contains(&b), "bucket {b}");
        }
    }

    #[test]
    fn array_sampling() {
        let mut rng = StdRng::seed_from_u64(4);
        let a: [u32; 4] = rng.random();
        let b: [u32; 4] = rng.random();
        assert_ne!(a, b);
    }
}
