#![warn(missing_docs)]

//! # engine — query operators over BATs (§3.2)
//!
//! The operator repertoire §3.2 analyses, implemented over the vertically
//! decomposed storage of `monet-core`:
//!
//! * [`select`] — scan selections (optimal locality), including the §3.1
//!   byte-encoded fast path where a string predicate is re-mapped once to a
//!   code comparison;
//! * [`access`] — per-predicate access-path selection: the executor weighs
//!   each scan against the table's attached §3.2 indexes (CsBTree, hash,
//!   T-tree) with [`costmodel::access`], pinnable via `MONET_ACCESS`;
//! * [`aggregate`] — `SUM`/`MIN`/`MAX`/`COUNT` scans, with candidate lists;
//! * [`candidates`] — AND/OR/AND-NOT combinators over candidate OID lists;
//! * [`group`] — hash-grouping (the cache-friendly choice when the group
//!   count is small, per §3.2) and sort-grouping (the sort/merge baseline);
//! * [`join`] — dispatch from BATs to the radix join kernels, including the
//!   void-head positional fast path that "effectively eliminat\[es\] all join
//!   cost" for tuple-reconstruction joins;
//! * [`reconstruct`] — positional tuple reconstruction from candidate OIDs;
//! * [`shared`] — the shared-scan seam: plans describe their scan leaves as
//!   [`shared::ScanRequest`]s, and [`exec::execute_with_scans`] consumes
//!   candidate lists a cooperative pass produced elsewhere
//!   ([`shared::ScanTicket`]), bit-identical to solo evaluation;
//! * [`plan`] — the **logical layer**: a fluent [`plan::Query`] builder with
//!   typed predicates/aggregates, validated into a [`plan::LogicalPlan`];
//! * [`exec`] — the **physical layer**: lowers logical plans onto the
//!   kernels, choosing join algorithm, radix bits *and degree of
//!   parallelism* from the paper's cost model
//!   ([`costmodel::plan::best_plan`], [`costmodel::parallel`]) and returning
//!   an [`exec::ExecReport`] with per-operator rows and simulated miss
//!   counts; parallel execution is bit-identical to sequential;
//! * [`dist`] — **sharded execution**: lowers one logical plan onto the hash
//!   shards of a [`monet_core::shard::ShardedTable`] (one stream plan per
//!   shard plus a coordinator merge) with results bit-identical to the
//!   unsharded run at any shard count — including `f64` sum bits;
//! * [`query`] — `grouped_sum_where`, the original composed pipeline, kept
//!   as a thin compatibility wrapper over the builder + executor.
//!
//! Scan-shaped operators are generic over [`memsim::MemTracker`] so the
//! examples can show their stride behaviour on the simulated Origin2000.

pub mod access;
pub mod aggregate;
pub mod candidates;
pub mod dist;
pub mod exec;
pub mod group;
pub mod join;
mod par;
pub mod plan;
pub mod query;
pub mod reconstruct;
pub mod select;
pub mod shared;

pub use access::{AccessDecision, AccessMode, CompressMode, PushdownMode};
pub use dist::{execute_shard, execute_sharded, lower, merge, Lowered, ShardPartial};
pub use exec::{
    execute, execute_with_scans, AccessNote, ExecOptions, ExecReport, Executed, OpReport, Planner,
    QueryOutput, Threads,
};
pub use join::{join_bats, JoinIndex};
pub use plan::{Agg, LogicalPlan, PlanError, Pred, Query};
pub use query::{grouped_sum_where, GroupedSum};
pub use shared::{scan_requests, ScanRequest, ScanTicket, ShareKey};

use monet_core::storage::StorageError;
use std::fmt;

/// Errors from engine operators.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// Underlying storage error.
    Storage(StorageError),
    /// Operator applied to a column type it does not support.
    UnsupportedType {
        /// The operator.
        op: &'static str,
        /// The offending column type.
        ty: monet_core::storage::ValueType,
    },
    /// A selection constant does not occur in the dictionary (the selection
    /// result is provably empty; callers may treat this as non-fatal — the
    /// plan executor ([`exec`]) does, yielding zero rows).
    ConstantNotInDictionary(String),
    /// A plan failed validation in the logical layer.
    Plan(plan::PlanError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Storage(e) => write!(f, "storage error: {e}"),
            EngineError::UnsupportedType { op, ty } => {
                write!(f, "{op} does not support {ty:?} columns")
            }
            EngineError::ConstantNotInDictionary(s) => {
                write!(f, "constant {s:?} not in dictionary")
            }
            EngineError::Plan(e) => write!(f, "invalid plan: {e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<StorageError> for EngineError {
    fn from(e: StorageError) -> Self {
        EngineError::Storage(e)
    }
}

impl From<plan::PlanError> for EngineError {
    fn from(e: plan::PlanError) -> Self {
        EngineError::Plan(e)
    }
}
