//! A composed OLAP-style pipeline over a decomposed table — the kind of
//! drill-down query (\[BRK98\]) that motivated Monet's design, assembled from
//! the §3.2 operators: scan-select → positional reconstruction → hash-group
//! → aggregate.

use memsim::MemTracker;
use monet_core::storage::{Bat, Column, DecomposedTable};

use crate::group::hash_group_sum_f64;
use crate::reconstruct::{fetch_f64, fetch_str};
use crate::select::range_select_f64;
use crate::EngineError;

/// One result row of [`grouped_sum_where`].
#[derive(Debug, Clone, PartialEq)]
pub struct GroupedSum {
    /// Decoded group key.
    pub key: String,
    /// Sum of the aggregated column within the group.
    pub sum: f64,
}

/// `SELECT group_col, SUM(value_col) FROM table WHERE lo ≤ filter_col ≤ hi
/// GROUP BY group_col` — entirely over vertically decomposed storage:
///
/// 1. scan-select on the (stride-8) `F64` filter column → candidate OIDs;
/// 2. positional fetch of the (stride-1) encoded group column and the value
///    column at those OIDs (tuple reconstruction, zero join cost);
/// 3. direct-indexed hash-grouping with running sums (fits L1: ≤ 256
///    groups for a byte-encoded key, per §3.2's argument).
pub fn grouped_sum_where<M: MemTracker>(
    trk: &mut M,
    table: &DecomposedTable,
    group_col: &str,
    value_col: &str,
    filter_col: &str,
    lo: f64,
    hi: f64,
) -> Result<Vec<GroupedSum>, EngineError> {
    let filter = table.bat(filter_col)?;
    let cands = range_select_f64(trk, filter, lo, hi)?;

    let group = table.bat(group_col)?;
    let values = table.bat(value_col)?;
    let gcodes = fetch_str(trk, group, &cands)?;
    let gvals = fetch_f64(trk, values, &cands)?;

    let keys = Bat::with_void_head(0, Column::Str(gcodes));
    let vals = Bat::with_void_head(0, Column::F64(gvals));
    let grouped = hash_group_sum_f64(trk, &keys, &vals)?;

    let dict = &keys.tail().as_str_col().expect("built above").dict;
    Ok(grouped
        .into_iter()
        .map(|(code, sum)| GroupedSum { key: dict.decode(code).to_owned(), sum })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::NullTracker;
    use monet_core::storage::{ColType, TableBuilder, Value};

    fn table() -> DecomposedTable {
        let mut b = TableBuilder::new("t", 0)
            .column("mode", ColType::Str)
            .column("price", ColType::F64)
            .column("discnt", ColType::F64);
        let rows = [
            ("AIR", 10.0, 0.00),
            ("MAIL", 20.0, 0.10),
            ("AIR", 40.0, 0.10),
            ("SHIP", 80.0, 0.00),
            ("MAIL", 160.0, 0.05),
        ];
        for (m, p, d) in rows {
            b.push_row(&[Value::from(m), Value::F64(p), Value::F64(d)]).unwrap();
        }
        b.finish()
    }

    #[test]
    fn pipeline_filters_groups_and_sums() {
        let t = table();
        let mut rows = grouped_sum_where(
            &mut NullTracker,
            &t,
            "mode",
            "price",
            "discnt",
            0.05,
            0.10,
        )
        .unwrap();
        rows.sort_by(|a, b| a.key.cmp(&b.key));
        assert_eq!(
            rows,
            vec![
                GroupedSum { key: "AIR".into(), sum: 40.0 },
                GroupedSum { key: "MAIL".into(), sum: 180.0 },
            ]
        );
    }

    #[test]
    fn unfiltered_covers_all_groups() {
        let t = table();
        let rows = grouped_sum_where(
            &mut NullTracker,
            &t,
            "mode",
            "price",
            "discnt",
            f64::NEG_INFINITY,
            f64::INFINITY,
        )
        .unwrap();
        let total: f64 = rows.iter().map(|r| r.sum).sum();
        assert_eq!(total, 310.0);
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn empty_selection_is_fine() {
        let t = table();
        let rows =
            grouped_sum_where(&mut NullTracker, &t, "mode", "price", "discnt", 0.5, 0.9)
                .unwrap();
        assert!(rows.is_empty());
    }

    #[test]
    fn missing_column_errors() {
        let t = table();
        assert!(grouped_sum_where(&mut NullTracker, &t, "nope", "price", "discnt", 0.0, 1.0)
            .is_err());
    }
}
