//! A composed OLAP-style pipeline over a decomposed table — the kind of
//! drill-down query (\[BRK98\]) that motivated Monet's design.
//!
//! [`grouped_sum_where`] predates the composable plan API and is kept as a
//! compatibility wrapper: it now builds a [`crate::plan::Query`] and runs it
//! through the cost-model-driven executor ([`crate::exec::execute`]), which
//! lowers it onto the same §3.2 operators the hand-written version composed:
//! scan-select → positional reconstruction → direct-indexed hash-group.

use memsim::MemTracker;
use monet_core::storage::DecomposedTable;

use crate::exec::{execute, AggValue, ExecOptions, QueryOutput};
use crate::plan::{Agg, Pred, Query};
use crate::EngineError;

/// One result row of [`grouped_sum_where`].
#[derive(Debug, Clone, PartialEq)]
pub struct GroupedSum {
    /// Decoded group key.
    pub key: String,
    /// Sum of the aggregated column within the group.
    pub sum: f64,
}

/// `SELECT group_col, SUM(value_col) FROM table WHERE lo ≤ filter_col ≤ hi
/// GROUP BY group_col`, as a thin wrapper over the plan builder. Prefer the
/// builder directly for new code — it composes (joins, multiple aggregates,
/// AND/OR predicates) and returns a per-operator [`crate::exec::ExecReport`]:
///
/// ```ignore
/// let plan = Query::scan(&table)
///     .filter(Pred::range_f64(filter_col, lo, hi))
///     .group_by(group_col)
///     .agg(Agg::sum(value_col))
///     .build()?;
/// let executed = execute(trk, &plan, &ExecOptions::default())?;
/// ```
pub fn grouped_sum_where<M: MemTracker>(
    trk: &mut M,
    table: &DecomposedTable,
    group_col: &str,
    value_col: &str,
    filter_col: &str,
    lo: f64,
    hi: f64,
) -> Result<Vec<GroupedSum>, EngineError> {
    let plan = Query::scan(table)
        .filter(Pred::range_f64(filter_col, lo, hi))
        .group_by(group_col)
        .agg(Agg::sum(value_col))
        .build()?;
    let executed = execute(trk, &plan, &ExecOptions::default())?;
    match executed.output {
        QueryOutput::Groups(rows) => Ok(rows
            .into_iter()
            .map(|row| {
                let sum = match row.values.first() {
                    Some(AggValue::F64(v)) => *v,
                    other => unreachable!("grouped sum yields F64, got {other:?}"),
                };
                GroupedSum { key: row.key, sum }
            })
            .collect()),
        other => unreachable!("grouped plan yields groups, got {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::NullTracker;
    use monet_core::storage::{ColType, TableBuilder, Value};

    fn table() -> DecomposedTable {
        let mut b = TableBuilder::new("t", 0)
            .column("mode", ColType::Str)
            .column("price", ColType::F64)
            .column("discnt", ColType::F64);
        let rows = [
            ("AIR", 10.0, 0.00),
            ("MAIL", 20.0, 0.10),
            ("AIR", 40.0, 0.10),
            ("SHIP", 80.0, 0.00),
            ("MAIL", 160.0, 0.05),
        ];
        for (m, p, d) in rows {
            b.push_row(&[Value::from(m), Value::F64(p), Value::F64(d)]).unwrap();
        }
        b.finish()
    }

    #[test]
    fn pipeline_filters_groups_and_sums() {
        let t = table();
        let mut rows =
            grouped_sum_where(&mut NullTracker, &t, "mode", "price", "discnt", 0.05, 0.10).unwrap();
        rows.sort_by(|a, b| a.key.cmp(&b.key));
        assert_eq!(
            rows,
            vec![
                GroupedSum { key: "AIR".into(), sum: 40.0 },
                GroupedSum { key: "MAIL".into(), sum: 180.0 },
            ]
        );
    }

    #[test]
    fn unfiltered_covers_all_groups() {
        let t = table();
        let rows = grouped_sum_where(
            &mut NullTracker,
            &t,
            "mode",
            "price",
            "discnt",
            f64::NEG_INFINITY,
            f64::INFINITY,
        )
        .unwrap();
        let total: f64 = rows.iter().map(|r| r.sum).sum();
        assert_eq!(total, 310.0);
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn empty_selection_is_fine() {
        let t = table();
        let rows =
            grouped_sum_where(&mut NullTracker, &t, "mode", "price", "discnt", 0.5, 0.9).unwrap();
        assert!(rows.is_empty());
    }

    #[test]
    fn missing_column_errors() {
        let t = table();
        assert!(
            grouped_sum_where(&mut NullTracker, &t, "nope", "price", "discnt", 0.0, 1.0).is_err()
        );
    }
}
