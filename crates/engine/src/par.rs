//! Chunked fan-out plumbing for the parallel operator paths.
//!
//! Every parallel operator in this crate follows the same determinism
//! discipline as [`monet_core::join::parallel`]: the input index space is
//! split into at most `threads` contiguous chunks, each worker produces its
//! chunk's result independently, and results are merged **thread-major**
//! (chunk 0's output precedes chunk 1's). Because chunks partition the index
//! space in order, the merged output is bit-identical to what the sequential
//! kernel produces — integer outputs trivially, and per-element outputs
//! (gathers) because every element is computed exactly as the sequential
//! code computes it.
//!
//! Parallel execution is native-only: none of these helpers take a
//! [`memsim::MemTracker`], because simulating one shared memory hierarchy
//! from several threads would serialize on the simulator and model a machine
//! the paper never measured. The executor pins simulated runs to one thread.

/// Run `f(lo, hi)` over at most `threads` contiguous chunks of `0..n` and
/// return the per-chunk results in chunk order. Clamps so every worker gets
/// a non-empty range; `threads <= 1` (or `n <= 1`) runs inline without
/// spawning.
pub(crate) fn fan_out<R, F>(n: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize, usize) -> R + Sync,
{
    let threads = threads.min(n).max(1);
    if threads == 1 {
        return vec![f(0, n)];
    }
    let chunk = n.div_ceil(threads);
    let ranges: Vec<(usize, usize)> = (0..threads)
        .map(|t| (t * chunk, ((t + 1) * chunk).min(n)))
        .filter(|(a, b)| a < b)
        .collect();
    let mut parts = Vec::with_capacity(ranges.len());
    let f = &f;
    std::thread::scope(|s| {
        let handles: Vec<_> = ranges.iter().map(|&(lo, hi)| s.spawn(move || f(lo, hi))).collect();
        for h in handles {
            parts.push(h.join().expect("fan-out worker panicked"));
        }
    });
    parts
}

/// The per-thread chunk sizes [`fan_out`] uses over `0..n` — the sharded
/// row accounting for operators whose parallel work is a uniform partition
/// of the input (gathers, aggregates). Sums to `n` by construction.
pub(crate) fn shard_sizes(n: usize, threads: usize) -> Vec<usize> {
    let threads = threads.min(n).max(1);
    if threads == 1 {
        return vec![n];
    }
    let chunk = n.div_ceil(threads);
    (0..threads)
        .map(|t| (t * chunk, ((t + 1) * chunk).min(n)))
        .filter(|(a, b)| a < b)
        .map(|(a, b)| b - a)
        .collect()
}

/// [`fan_out`] for `Vec`-producing workers, concatenated thread-major.
pub(crate) fn fan_out_concat<R, F>(n: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize, usize) -> Vec<R> + Sync,
{
    let parts = fan_out(n, threads, f);
    let total: usize = parts.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    for p in parts {
        out.extend(p);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_the_range_in_order() {
        for n in [0usize, 1, 2, 7, 100, 101] {
            for threads in [1usize, 2, 3, 7, 64] {
                let got = fan_out_concat(n, threads, |lo, hi| (lo..hi).collect::<Vec<_>>());
                let expect: Vec<usize> = (0..n).collect();
                assert_eq!(got, expect, "n={n} threads={threads}");
            }
        }
    }

    #[test]
    fn shard_sizes_match_fan_out_chunking() {
        for n in [0usize, 1, 7, 100, 101] {
            for threads in [1usize, 2, 3, 7, 64] {
                let sizes = shard_sizes(n, threads);
                let parts = fan_out(n, threads, |lo, hi| hi - lo);
                assert_eq!(sizes, parts, "n={n} threads={threads}");
                assert_eq!(sizes.iter().sum::<usize>(), n);
            }
        }
    }

    #[test]
    fn single_thread_runs_inline() {
        let parts = fan_out(10, 1, |lo, hi| (lo, hi));
        assert_eq!(parts, vec![(0, 10)]);
        let parts = fan_out(0, 8, |lo, hi| (lo, hi));
        assert_eq!(parts, vec![(0, 0)], "empty input must not spawn workers");
    }
}
