//! Access-path selection for predicate evaluation — the executor-facing
//! catalog layer.
//!
//! Scans used to be the only way the executor lowered a [`Pred`]; the §3.2
//! index structures existed but were never *used*. This module closes the
//! loop: for every predicate **leaf** it consults the table's attached
//! indexes ([`monet_core::storage::DecomposedTable::indexes_on`]), prices
//! scan vs. each usable index path with [`costmodel::access`], and evaluates
//! the leaf via the chosen path. Index-path candidate lists are sorted back
//! into OID order, so results are **bit-identical** to the scan path at any
//! thread count — the determinism property the PR-2 suites rely on.
//!
//! Planning runs in two phases so the degree of parallelism can be decided
//! in between: [`plan_pred_with`] resolves one [`AccessDecision`] per leaf
//! (range selectivity estimates are *exact* — two B+-tree descents count
//! the matches), then [`eval_planned`] executes the decisions, fanning
//! scan leaves out over the chosen thread count and running index probes
//! sequentially (a probe is a handful of node touches; forking would cost
//! more than the work).
//!
//! [`AccessMode`] pins the choice for tests and CI: `scan` reproduces the
//! pre-index executor exactly, `index` forces index paths wherever one is
//! usable, `auto` lets the cost model decide. The `MONET_ACCESS`
//! environment variable sets the default mode of every
//! [`crate::exec::ExecOptions`].

use std::fmt;
use std::sync::Arc;

use costmodel::access::{
    cheapest, quotes, restrict_index_cost, restricted_matches, sort_rounds, AccessPath, IndexShape,
    Quote, SelectQuery,
};
use costmodel::machine::ModelCost;
use costmodel::scan::{cand_packed_scan_cost, cand_scan_cost, expected_touched_blocks};
use costmodel::ModelMachine;
use memsim::{MemTracker, Work};
use monet_core::compress::{
    multi_select_compressed, multi_select_compressed_cands, par_multi_select_compressed_counted,
    CompressedColumn,
};
use monet_core::index::{key_range_i32, ColumnIndex, IndexKind};
use monet_core::scan::{multi_select_cands, ScanPred};
use monet_core::storage::DecomposedTable;

use crate::plan::Pred;
use crate::select::{
    par_range_select_f64_counted, par_range_select_i32_counted, par_select_eq_str_counted,
    range_select_f64, range_select_i32, select_eq_str, CandList,
};
use crate::EngineError;

/// How the executor chooses selection access paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessMode {
    /// Never consult indexes — every predicate leaf is a scan-select (the
    /// pre-index executor, and the reference for bit-identity tests).
    Scan,
    /// Use an index wherever a usable one is attached (the cheapest one by
    /// the model when several apply); leaves without a usable index scan.
    Index,
    /// Per-leaf cost-model decision between the scan and every usable
    /// index path (the default).
    Auto,
}

impl AccessMode {
    /// Parse a `MONET_ACCESS`-style value (`scan` | `index` | `auto`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "scan" => Some(AccessMode::Scan),
            "index" => Some(AccessMode::Index),
            "auto" => Some(AccessMode::Auto),
            _ => None,
        }
    }

    /// The mode pinned by the `MONET_ACCESS` environment variable, if set
    /// to a valid value.
    pub fn from_env() -> Option<Self> {
        std::env::var("MONET_ACCESS").ok().and_then(|s| Self::parse(&s))
    }

    /// Display name (`scan` | `index` | `auto`).
    pub fn name(self) -> &'static str {
        match self {
            AccessMode::Scan => "scan",
            AccessMode::Index => "index",
            AccessMode::Auto => "auto",
        }
    }
}

/// Whether the executor may evaluate predicate leaves directly on the
/// compressed column representations [`monet_core::compress`] attaches to
/// decomposed tables. The `MONET_COMPRESS` environment variable sets the
/// default of every [`crate::exec::ExecOptions`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompressMode {
    /// Never touch compressed representations — every scan streams the
    /// uncompressed column (the reference for bit-identity tests).
    Off,
    /// Packed scans compete in the cost model under `auto` access mode;
    /// `scan` access mode stays on the uncompressed path (the default).
    On,
    /// Every leaf with a usable compressed representation takes the packed
    /// scan, overriding both the access mode and the model.
    Force,
}

impl CompressMode {
    /// Parse a `MONET_COMPRESS`-style value (`0`/`off` | `1`/`on` | `force`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "0" | "off" => Some(CompressMode::Off),
            "1" | "on" => Some(CompressMode::On),
            "force" => Some(CompressMode::Force),
            _ => None,
        }
    }

    /// The mode pinned by the `MONET_COMPRESS` environment variable, if set
    /// to a valid value.
    pub fn from_env() -> Option<Self> {
        std::env::var("MONET_COMPRESS").ok().and_then(|s| Self::parse(&s))
    }

    /// Display name (`off` | `on` | `force`).
    pub fn name(self) -> &'static str {
        match self {
            CompressMode::Off => "off",
            CompressMode::On => "on",
            CompressMode::Force => "force",
        }
    }
}

/// Whether the executor threads candidate lists through the remaining
/// leaves of a pure-AND conjunction (the selectivity-ordered pushdown the
/// paper's bandwidth argument calls for: a later leaf only touches the
/// frames/rows earlier leaves left alive). The `MONET_PUSHDOWN` environment
/// variable sets the default of every [`crate::exec::ExecOptions`]. Results
/// are bit-identical either way — intersection is order-independent — only
/// the bytes streamed change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushdownMode {
    /// Every leaf evaluates against the full column (the pre-pushdown
    /// executor, and the reference for bit-identity tests).
    Off,
    /// Multi-leaf AND filters are planned as one conjunction: cheapest
    /// effective leaf first, its survivors threaded into the rest (the
    /// default).
    On,
}

impl PushdownMode {
    /// Parse a `MONET_PUSHDOWN`-style value (`0`/`off` | `1`/`on`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "0" | "off" => Some(PushdownMode::Off),
            "1" | "on" => Some(PushdownMode::On),
            _ => None,
        }
    }

    /// The mode pinned by the `MONET_PUSHDOWN` environment variable, if set
    /// to a valid value.
    pub fn from_env() -> Option<Self> {
        std::env::var("MONET_PUSHDOWN").ok().and_then(|s| Self::parse(&s))
    }

    /// Display name (`off` | `on`).
    pub fn name(self) -> &'static str {
        match self {
            PushdownMode::Off => "off",
            PushdownMode::On => "on",
        }
    }
}

/// One predicate leaf's access-path decision, as emitted into the
/// [`crate::exec::OpReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct AccessDecision {
    /// The filtered column.
    pub column: String,
    /// The chosen path.
    pub path: AccessPath,
    /// Model quote of the chosen path in ms.
    pub predicted_ms: f64,
    /// Model quote of the scan path in ms (what the decision was weighed
    /// against; equals `predicted_ms` when the scan was chosen).
    pub scan_ms: f64,
    /// Estimated qualifying rows (exact when a B+-tree counted the range;
    /// `len / distinct` for hash and T-tree equality estimates; 0 when no
    /// index informed the decision).
    pub matches_est: usize,
    /// True when the leaf's candidate list was *provided* by a shared
    /// (cooperative) scan pass — no evaluation of any kind ran here, and
    /// `matches_est` is the exact provided count.
    pub shared: bool,
    /// Stored bits per value of the compressed stream the leaf scans
    /// (0 unless the path is [`AccessPath::PackedScan`]).
    pub packed_bits: f64,
    /// Byte stride of the uncompressed column (what a plain scan of this
    /// leaf would stream per tuple; 0 for provided leaves).
    pub stride: usize,
    /// Planned candidates threaded into this leaf from earlier conjunction
    /// leaves (`None` = full-column evaluation; the first leaf of an
    /// ordered conjunction is always `None`).
    pub cands_in: Option<usize>,
    /// Model-estimated bytes the candidate restriction avoids streaming
    /// versus full-column evaluation of the same path (0 for unrestricted
    /// leaves and index probes, which stream no column).
    pub bytes_saved: f64,
}

impl fmt::Display for AccessDecision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.shared {
            write!(f, "{}=shared-scan ({} rows provided)", self.column, self.matches_est)?;
        } else if self.path == AccessPath::PackedScan {
            write!(
                f,
                "{}=packed-scan {:.1} bits/val {:.3} ms (scan {:.3} ms)",
                self.column, self.packed_bits, self.predicted_ms, self.scan_ms
            )?;
        } else if self.path.is_index() {
            write!(
                f,
                "{}={} {:.3} ms (scan {:.3} ms, est {} rows)",
                self.column,
                self.path.name(),
                self.predicted_ms,
                self.scan_ms,
                self.matches_est
            )?;
        } else {
            write!(f, "{}=scan", self.column)?;
        }
        if let Some(k) = self.cands_in {
            write!(f, " [pushdown {k} cands, ~{:.0} B saved]", self.bytes_saved)?;
        }
        Ok(())
    }
}

/// How one leaf will be evaluated.
#[derive(Debug, Clone)]
enum LeafAction {
    /// Scan-select kernels (parallelizable).
    Scan,
    /// Provably empty: the equality constant is not in the dictionary.
    Empty,
    /// The candidate list was produced by a cooperative shared-scan pass;
    /// evaluation just consumes it (bit-identical to a solo scan by the
    /// kernel's contract).
    Provided(Arc<CandList>),
    /// Scan-select directly on the column's compressed representation
    /// (parallelizable; constants already translated into value/code space).
    Packed { col: String, pred: ScanPred },
    /// B+-tree range probe (equality uses `lo == hi`).
    BtreeRange { col: String, lo: u32, hi: u32 },
    /// Hash or T-tree point probe.
    IndexEq { col: String, kind: IndexKind, key: u32 },
}

/// One planned leaf: the reportable decision plus the evaluation recipe.
#[derive(Debug, Clone)]
struct LeafPlan {
    decision: AccessDecision,
    action: LeafAction,
    /// The scan quote in ns when the leaf will scan (input to the
    /// thread-count decision); 0 for index leaves.
    scan_work_ns: f64,
    /// The full quote of the chosen path when it is index-backed — what
    /// the conjunction planner reprices via
    /// [`costmodel::access::restrict_index_cost`]; `None` otherwise.
    index_cost: Option<ModelCost>,
}

/// A fully planned predicate: one [`LeafPlan`] per leaf, in evaluation
/// (in-order traversal) order.
#[derive(Debug, Clone)]
pub(crate) struct PredPlan {
    leaves: Vec<LeafPlan>,
    /// Pushdown evaluation order over pure-AND conjunctions: a permutation
    /// of in-order leaf positions (first entry evaluates full, the rest
    /// restricted to the running survivor list). `None` = in-order tree
    /// evaluation with full-column leaves.
    order: Option<Vec<usize>>,
}

impl PredPlan {
    /// Total predicted cost of the chosen paths, in ms.
    pub fn model_ms(&self) -> f64 {
        self.leaves.iter().map(|l| l.decision.predicted_ms).sum()
    }

    /// Sequential model quote of the *scanning* leaves, in ns — the work
    /// the parallel model may fan out (index probes never fork).
    pub fn scan_work_ns(&self) -> f64 {
        self.leaves.iter().map(|l| l.scan_work_ns).sum()
    }

    /// True if any leaf takes an index path.
    pub fn uses_index(&self) -> bool {
        self.leaves.iter().any(|l| l.decision.path.is_index())
    }

    /// Leaves whose candidate lists were provided by a shared scan pass.
    pub fn provided_leaves(&self) -> usize {
        self.leaves.iter().filter(|l| l.decision.shared).count()
    }

    /// The per-leaf decisions, for the report.
    pub fn decisions(&self) -> Vec<AccessDecision> {
        self.leaves.iter().map(|l| l.decision.clone()).collect()
    }

    /// Render the decisions for the report detail line.
    pub fn detail(&self) -> String {
        let parts: Vec<String> = self.leaves.iter().map(|l| l.decision.to_string()).collect();
        parts.join(", ")
    }

    /// The pushdown evaluation order (in-order leaf positions), when the
    /// conjunction planner ordered this predicate.
    pub fn order(&self) -> Option<&[usize]> {
        self.order.as_deref()
    }

    /// Per-leaf planned candidate counts, in in-order leaf position (the
    /// [`AccessDecision::cands_in`] column, for reports).
    pub fn cands_in(&self) -> Vec<Option<usize>> {
        self.leaves.iter().map(|l| l.decision.cands_in).collect()
    }
}

/// Number of leaves of a predicate tree (for cursor-skipping on
/// short-circuited subtrees, and the executor's global leaf numbering).
pub(crate) fn leaf_count(pred: &Pred) -> usize {
    match pred {
        Pred::And(a, b) | Pred::Or(a, b) => leaf_count(a) + leaf_count(b),
        _ => 1,
    }
}

/// The usable index shapes for a leaf: range predicates can only use
/// range-capable indexes; equality predicates use everything.
fn usable_indexes<'t>(
    table: &'t DecomposedTable,
    col: &'t str,
    eq: bool,
) -> Vec<(&'t ColumnIndex, IndexShape)> {
    table
        .indexes_on(col)
        .filter(|i| eq || i.supports_range())
        .map(|i| {
            let shape = match i.kind() {
                IndexKind::CsBTree => {
                    IndexShape::Btree { height: i.btree().map_or(0, |t| t.height()) }
                }
                IndexKind::Hash => IndexShape::Hash,
                IndexKind::TTree => {
                    IndexShape::TTree { node_capacity: i.ttree().map_or(64, |t| t.node_capacity()) }
                }
            };
            (i, shape)
        })
        .collect()
}

/// Pick a quote per the access mode: `Auto` takes the global cheapest,
/// `Index` the cheapest index path (the caller guarantees one exists).
fn pick(mode: AccessMode, all: &[Quote]) -> Quote {
    match mode {
        AccessMode::Auto => cheapest(all),
        AccessMode::Index => {
            let idx: Vec<Quote> = all.iter().copied().filter(|q| q.path.is_index()).collect();
            if idx.is_empty() {
                all[0]
            } else {
                cheapest(&idx)
            }
        }
        AccessMode::Scan => all[0],
    }
}

/// The packed-scan candidate for a leaf: the column's compressed
/// representation, when one exists, the policy allows compression at all,
/// and the representation can evaluate `pred` directly.
fn packed_candidate<'t>(
    table: &'t DecomposedTable,
    col: &str,
    pred: ScanPred,
    compress: CompressMode,
) -> Option<(&'t CompressedColumn, ScanPred)> {
    if compress == CompressMode::Off {
        return None;
    }
    let cc = table.compressed_of(col)?;
    cc.supports(&pred).then_some((cc, pred))
}

/// Map a chosen quote onto the evaluation action for an integer-key leaf.
fn action_for(path: AccessPath, col: &str, klo: u32, khi: u32) -> LeafAction {
    match path {
        AccessPath::Scan => LeafAction::Scan,
        AccessPath::PackedScan => unreachable!("packed actions are built from their candidate"),
        AccessPath::BtreeRange | AccessPath::BtreeEq => {
            LeafAction::BtreeRange { col: col.to_owned(), lo: klo, hi: khi }
        }
        AccessPath::HashEq => {
            LeafAction::IndexEq { col: col.to_owned(), kind: IndexKind::Hash, key: klo }
        }
        AccessPath::TTreeEq => {
            LeafAction::IndexEq { col: col.to_owned(), kind: IndexKind::TTree, key: klo }
        }
    }
}

/// True when the predicate tree is a pure conjunction (only `And` internal
/// nodes) — the shape whose leaves may be freely reordered and candidate-
/// restricted without changing the result set.
pub fn is_pure_and(pred: &Pred) -> bool {
    match pred {
        Pred::And(a, b) => is_pure_and(a) && is_pure_and(b),
        Pred::Or(..) => false,
        _ => true,
    }
}

/// Resolve one [`AccessDecision`] + action per predicate leaf, with
/// externally provided candidate lists: `provided[i]`, when `Some`,
/// short-circuits leaf `i` (in-order position within this predicate) to
/// consume that list — no pricing, no probing, zero cost. Pass `&[]` for
/// plain planning. Selectivity estimates that probe a B+-tree are tracked
/// against `trk` (planning cost is execution cost).
///
/// Under [`PushdownMode::On`], a multi-leaf pure-AND predicate is then
/// planned *as one conjunction*: the leaf order minimizing the modelled
/// total (first leaf full, later leaves restricted to the running survivor
/// list) is searched exhaustively (≤ [`MAX_EXHAUSTIVE_LEAVES`] leaves;
/// rank-greedy beyond), and each restricted leaf's planned candidate count
/// and bytes saved are recorded on its [`AccessDecision`].
#[allow(clippy::too_many_arguments)] // the planner's full policy surface
pub(crate) fn plan_pred_with<M: MemTracker>(
    trk: &mut M,
    table: &DecomposedTable,
    pred: &Pred,
    mode: AccessMode,
    compress: CompressMode,
    pushdown: PushdownMode,
    model: &ModelMachine,
    provided: &[Option<Arc<CandList>>],
) -> Result<PredPlan, EngineError> {
    let mut leaves = Vec::with_capacity(leaf_count(pred));
    plan_rec(trk, table, pred, mode, compress, model, provided, &mut leaves)?;
    // Nothing to push down when every leaf is already settled by a shared
    // pass — the evaluation just intersects the provided lists.
    let unsettled =
        leaves.iter().any(|lp| !matches!(lp.action, LeafAction::Provided(_) | LeafAction::Empty));
    let order =
        (pushdown == PushdownMode::On && leaves.len() > 1 && unsettled && is_pure_and(pred))
            .then(|| plan_conjunction(model, table, &mut leaves));
    Ok(PredPlan { leaves, order })
}

/// Leaf count up to which the conjunction planner searches every
/// permutation; predicates with more leaves fall back to rank-greedy
/// ordering (`cost / (1 − selectivity)`, the classical adjacent-exchange
/// criterion).
const MAX_EXHAUSTIVE_LEAVES: usize = 6;

/// Estimated selectivity of one planned leaf (fraction of rows surviving).
fn leaf_selectivity(lp: &LeafPlan, rows: usize) -> f64 {
    match &lp.action {
        LeafAction::Empty => 0.0,
        LeafAction::Provided(c) => c.len() as f64 / rows.max(1) as f64,
        _ if lp.decision.matches_est > 0 => {
            (lp.decision.matches_est as f64 / rows.max(1) as f64).min(1.0)
        }
        // No index informed this leaf: the conventional half-survive guess.
        _ => 0.5,
    }
}

/// Model quote (ms) of evaluating one planned leaf restricted to `k`
/// candidates, keeping the already-chosen path family.
fn restricted_ms(model: &ModelMachine, lp: &LeafPlan, rows: usize, k: usize) -> f64 {
    match &lp.action {
        LeafAction::Empty | LeafAction::Provided(_) => 0.0,
        LeafAction::Scan => cand_scan_cost(model, rows, lp.decision.stride.max(1), k).total_ms(),
        LeafAction::Packed { .. } => {
            cand_packed_scan_cost(model, rows, lp.decision.packed_bits, k).total_ms()
        }
        LeafAction::BtreeRange { .. } | LeafAction::IndexEq { .. } => {
            let full = lp.index_cost.expect("index leaves carry their full quote");
            let probed = lp.decision.matches_est;
            restrict_index_cost(model, full, probed, restricted_matches(rows, probed, k)).total_ms()
        }
    }
}

/// Model-estimated bytes one restricted leaf avoids streaming versus its
/// full-column evaluation (0 for index probes — they stream no column).
fn bytes_saved_est(lp: &LeafPlan, rows: usize, k: usize) -> f64 {
    let frame_len = costmodel::scan::FRAME_LEN;
    match &lp.action {
        LeafAction::Scan => (rows.saturating_sub(k) as f64) * lp.decision.stride.max(1) as f64,
        LeafAction::Packed { .. } => {
            let blocks = rows.div_ceil(frame_len).max(1);
            let streamed = (expected_touched_blocks(blocks, k) * frame_len as f64).min(rows as f64);
            (rows as f64 - streamed) * lp.decision.packed_bits / 8.0
        }
        _ => 0.0,
    }
}

/// Order the leaves of a pure-AND conjunction for candidate pushdown and
/// annotate each restricted leaf's decision with its planned candidate
/// count and bytes saved. Returns the evaluation order (in-order leaf
/// positions).
fn plan_conjunction(
    model: &ModelMachine,
    table: &DecomposedTable,
    leaves: &mut [LeafPlan],
) -> Vec<usize> {
    let rows = table.len();
    let n = leaves.len();
    // Total modelled cost of one order, plus the candidate count entering
    // each leaf (`None` for the full-evaluated first leaf).
    let cost_of = |order: &[usize]| -> (f64, Vec<Option<usize>>) {
        let mut total = 0.0;
        let mut k: Option<usize> = None;
        let mut cands_in = vec![None; n];
        for &i in order {
            let lp = &leaves[i];
            cands_in[i] = k;
            total += match k {
                None => lp.decision.predicted_ms,
                Some(k) => restricted_ms(model, lp, rows, k),
            };
            // The epsilon keeps an exact product (e.g. rows · len/rows for a
            // provided leaf) from ceiling one past its integer value.
            let survivors =
                (k.unwrap_or(rows) as f64 * leaf_selectivity(lp, rows) - 1e-6).ceil().max(0.0);
            k = Some((survivors as usize).min(rows));
        }
        (total, cands_in)
    };
    let mut best: Vec<usize> = (0..n).collect();
    let mut best_ms = cost_of(&best).0;
    if n <= MAX_EXHAUSTIVE_LEAVES {
        let mut perm: Vec<usize> = (0..n).collect();
        permute(&mut perm, 0, &mut |order| {
            let ms = cost_of(order).0;
            if ms < best_ms {
                best_ms = ms;
                best.copy_from_slice(order);
            }
        });
    } else {
        // Rank-greedy: order by cost per unit of disqualification.
        let mut ranked: Vec<usize> = (0..n).collect();
        ranked.sort_by(|&a, &b| {
            let rank = |i: usize| {
                let lp = &leaves[i];
                lp.decision.predicted_ms / (1.0 - leaf_selectivity(lp, rows) + 1e-9)
            };
            rank(a).total_cmp(&rank(b))
        });
        if cost_of(&ranked).0 < best_ms {
            best = ranked;
        }
    }
    let best_cands = cost_of(&best).1;
    for (lp, k) in leaves.iter_mut().zip(&best_cands) {
        lp.decision.cands_in = *k;
        if let Some(k) = *k {
            let ms = restricted_ms(model, lp, rows, k);
            lp.decision.bytes_saved = bytes_saved_est(lp, rows, k);
            // The leaf now runs restricted: report (and price) that work,
            // not the full-column quote it will no longer do. Restricted
            // leaves run sequentially — their quote is not fan-out work.
            lp.decision.predicted_ms = ms;
            lp.scan_work_ns = 0.0;
        }
    }
    best
}

/// Visit every permutation of `items[at..]` (Heap-style recursive swap).
fn permute(items: &mut Vec<usize>, at: usize, visit: &mut impl FnMut(&[usize])) {
    if at == items.len() {
        visit(items);
        return;
    }
    for i in at..items.len() {
        items.swap(at, i);
        permute(items, at + 1, visit);
        items.swap(at, i);
    }
}

/// The [`LeafPlan`] of a leaf whose candidates a shared pass already
/// produced: everything about it is settled, nothing will be priced or
/// executed.
fn provided_leaf(col: &str, cands: Arc<CandList>) -> LeafPlan {
    LeafPlan {
        decision: AccessDecision {
            column: col.to_owned(),
            path: AccessPath::Scan,
            predicted_ms: 0.0,
            scan_ms: 0.0,
            matches_est: cands.len(),
            shared: true,
            packed_bits: 0.0,
            stride: 0,
            cands_in: None,
            bytes_saved: 0.0,
        },
        action: LeafAction::Provided(cands),
        scan_work_ns: 0.0,
        index_cost: None,
    }
}

#[allow(clippy::too_many_arguments)] // one call site; mirrors plan_pred_with
fn plan_rec<M: MemTracker>(
    trk: &mut M,
    table: &DecomposedTable,
    pred: &Pred,
    mode: AccessMode,
    compress: CompressMode,
    model: &ModelMachine,
    provided: &[Option<Arc<CandList>>],
    out: &mut Vec<LeafPlan>,
) -> Result<(), EngineError> {
    // Leaf positions are in-order: the next leaf's index is out.len().
    if !matches!(pred, Pred::And(..) | Pred::Or(..)) {
        if let Some(Some(cands)) = provided.get(out.len()) {
            let col = match pred {
                Pred::RangeI32 { col, .. }
                | Pred::RangeF64 { col, .. }
                | Pred::EqStr { col, .. } => col,
                _ => unreachable!("leaf match"),
            };
            table.bat(col)?;
            out.push(provided_leaf(col, cands.clone()));
            return Ok(());
        }
    }
    match pred {
        Pred::And(a, b) | Pred::Or(a, b) => {
            plan_rec(trk, table, a, mode, compress, model, provided, out)?;
            plan_rec(trk, table, b, mode, compress, model, provided, out)
        }
        Pred::RangeF64 { col, .. } => {
            // F64 columns carry no indexes (no u32 key mapping) and no
            // compressed representation: always a plain scan.
            table.bat(col)?;
            out.push(scan_leaf(model, table, col, 8, None, compress, mode, 0));
            Ok(())
        }
        Pred::RangeI32 { col, lo, hi } => {
            table.bat(col)?;
            let eq = lo == hi;
            let kernel_pred = ScanPred::RangeI32 { lo: *lo, hi: *hi };
            let packed = packed_candidate(table, col, kernel_pred, compress);
            let usable = usable_indexes(table, col, eq);
            if mode == AccessMode::Scan || usable.is_empty() {
                // No index to count with: sniff the compressed metadata
                // (frame min/max, runs) for a selectivity estimate. This
                // reads headers only, so it's free even when the compress
                // policy keeps the evaluation on the uncompressed path.
                let est = table
                    .compressed_of(col)
                    .and_then(|cc| cc.estimate_matches(&kernel_pred))
                    .unwrap_or(0);
                out.push(scan_leaf(model, table, col, 4, packed, compress, mode, est));
                return Ok(());
            }
            let (klo, khi) = key_range_i32(*lo, *hi);
            let matches = estimate_matches(trk, table, col, &usable, klo, khi);
            out.push(priced_leaf(
                model, table, col, 4, matches, eq, mode, &usable, klo, khi, packed, compress,
            ));
            Ok(())
        }
        Pred::EqStr { col, value } => {
            let bat = table.bat(col)?;
            let sc = bat.tail().as_str_col().ok_or(EngineError::UnsupportedType {
                op: "access plan",
                ty: bat.tail().value_type(),
            })?;
            let stride = bat.tail().tail_width();
            let packed = sc
                .dict
                .code_of(value)
                .and_then(|code| packed_candidate(table, col, ScanPred::EqCode { code }, compress));
            let usable = usable_indexes(table, col, true);
            if mode == AccessMode::Scan || usable.is_empty() {
                let est = sc
                    .dict
                    .code_of(value)
                    .and_then(|code| {
                        table
                            .compressed_of(col)
                            .and_then(|cc| cc.estimate_matches(&ScanPred::EqCode { code }))
                    })
                    .unwrap_or(0);
                out.push(scan_leaf(model, table, col, stride, packed, compress, mode, est));
                return Ok(());
            }
            let Some(code) = sc.dict.code_of(value) else {
                // Provably empty — the dictionary already answered the
                // query, so nothing executes and nothing may be quoted:
                // keep the path the planner would have taken (provenance)
                // but zero its cost so `model_ms` only prices work done.
                let mut leaf = priced_leaf(
                    model, table, col, stride, 0, true, mode, &usable, 0, 0, None, compress,
                );
                leaf.action = LeafAction::Empty;
                leaf.scan_work_ns = 0.0;
                leaf.decision.predicted_ms = 0.0;
                out.push(leaf);
                return Ok(());
            };
            let matches = estimate_matches(trk, table, col, &usable, code, code);
            out.push(priced_leaf(
                model, table, col, stride, matches, true, mode, &usable, code, code, packed,
                compress,
            ));
            Ok(())
        }
    }
}

/// A leaf that never probes an index (no usable one, or `Scan` mode): a
/// plain scan — or the packed scan over the compressed representation when
/// the policy allows it and the model (or `force`) prefers it.
/// `matches_est` is a metadata-sniffed selectivity estimate (compressed
/// frame/run headers); 0 when no estimator applies.
#[allow(clippy::too_many_arguments)] // mirrors plan_rec's policy surface
fn scan_leaf(
    model: &ModelMachine,
    table: &DecomposedTable,
    col: &str,
    stride: usize,
    packed: Option<(&CompressedColumn, ScanPred)>,
    compress: CompressMode,
    mode: AccessMode,
    matches_est: usize,
) -> LeafPlan {
    let rows = table.len();
    let scan_ms = costmodel::access::scan_select_cost(model, rows, stride).total_ms();
    if let Some((cc, pred)) = packed {
        let bits = cc.bits_per_value();
        let packed_ms = costmodel::scan::packed_scan_cost(model, rows, bits).total_ms();
        let take = match compress {
            CompressMode::Force => true,
            // `scan` access mode stays the uncompressed reference path.
            CompressMode::On => mode != AccessMode::Scan && packed_ms < scan_ms,
            CompressMode::Off => false,
        };
        if take {
            return LeafPlan {
                decision: AccessDecision {
                    column: col.to_owned(),
                    path: AccessPath::PackedScan,
                    predicted_ms: packed_ms,
                    scan_ms,
                    matches_est,
                    shared: false,
                    packed_bits: bits,
                    stride,
                    cands_in: None,
                    bytes_saved: 0.0,
                },
                action: LeafAction::Packed { col: col.to_owned(), pred },
                scan_work_ns: packed_ms * 1e6,
                index_cost: None,
            };
        }
    }
    LeafPlan {
        decision: AccessDecision {
            column: col.to_owned(),
            path: AccessPath::Scan,
            predicted_ms: scan_ms,
            scan_ms,
            matches_est,
            shared: false,
            packed_bits: 0.0,
            stride,
            cands_in: None,
            bytes_saved: 0.0,
        },
        action: LeafAction::Scan,
        scan_work_ns: scan_ms * 1e6,
        index_cost: None,
    }
}

/// Estimate the qualifying rows of a key range: exact via a B+-tree count
/// when one is attached (two descents, tracked), `len / distinct` for
/// equality otherwise.
fn estimate_matches<M: MemTracker>(
    trk: &mut M,
    table: &DecomposedTable,
    col: &str,
    usable: &[(&ColumnIndex, IndexShape)],
    klo: u32,
    khi: u32,
) -> usize {
    if let Some(idx) = table.index_of(col, IndexKind::CsBTree) {
        if let Some(n) = idx.count_range(trk, klo, khi) {
            return n;
        }
    }
    let idx = usable[0].0;
    idx.len() / idx.distinct().max(1)
}

#[allow(clippy::too_many_arguments)] // two call sites; splitting obscures the pricing inputs
fn priced_leaf(
    model: &ModelMachine,
    table: &DecomposedTable,
    col: &str,
    stride: usize,
    matches: usize,
    eq: bool,
    mode: AccessMode,
    usable: &[(&ColumnIndex, IndexShape)],
    klo: u32,
    khi: u32,
    packed: Option<(&CompressedColumn, ScanPred)>,
    compress: CompressMode,
) -> LeafPlan {
    // `on` lets the packed quote compete only where the model decides
    // (auto); `force` admits it everywhere and then overrides the pick.
    let packed = packed.filter(|_| match compress {
        CompressMode::Off => false,
        CompressMode::On => mode == AccessMode::Auto,
        CompressMode::Force => true,
    });
    let q = SelectQuery {
        rows: table.len(),
        stride,
        matches,
        eq,
        packed_bits: packed.map(|(cc, _)| cc.bits_per_value()),
        cands: None,
    };
    let shapes: Vec<IndexShape> = usable.iter().map(|(_, s)| *s).collect();
    let all = quotes(model, &q, &shapes);
    let chosen = if compress == CompressMode::Force && packed.is_some() {
        *all.iter()
            .find(|quote| quote.path == AccessPath::PackedScan)
            .expect("a packed candidate always yields a packed quote")
    } else {
        pick(mode, &all)
    };
    let scan_ms = all[0].cost.total_ms();
    let action = if chosen.path == AccessPath::PackedScan {
        let (_, pred) = packed.expect("packed quote implies a packed candidate");
        LeafAction::Packed { col: col.to_owned(), pred }
    } else {
        action_for(chosen.path, col, klo, khi)
    };
    LeafPlan {
        decision: AccessDecision {
            column: col.to_owned(),
            path: chosen.path,
            predicted_ms: chosen.cost.total_ms(),
            scan_ms,
            matches_est: matches,
            shared: false,
            packed_bits: if chosen.path == AccessPath::PackedScan {
                q.packed_bits.unwrap_or(0.0)
            } else {
                0.0
            },
            stride,
            cands_in: None,
            bytes_saved: 0.0,
        },
        action,
        scan_work_ns: if chosen.path.is_index() { 0.0 } else { chosen.cost.total_ms() * 1e6 },
        index_cost: chosen.path.is_index().then_some(chosen.cost),
    }
}

/// Per-thread row accumulator for the sharded select counters.
struct ShardAcc {
    counts: Vec<usize>,
}

impl ShardAcc {
    fn add(&mut self, leaf_counts: &[usize]) {
        if self.counts.len() < leaf_counts.len() {
            self.counts.resize(leaf_counts.len(), 0);
        }
        for (acc, c) in self.counts.iter_mut().zip(leaf_counts) {
            *acc += c;
        }
    }
}

/// Evaluate a planned predicate. Scan leaves fan out over `threads`
/// (bit-identical chunked kernels); index leaves probe sequentially and
/// sort their candidates back into OID order. Returns the candidate list
/// plus, under parallel runs, the per-thread rows produced by the scanning
/// leaves (summed across leaves — the sharded `ExecReport` counters).
pub(crate) fn eval_planned<M: MemTracker>(
    trk: &mut M,
    table: &DecomposedTable,
    pred: &Pred,
    plan: &PredPlan,
    threads: usize,
) -> Result<(CandList, Option<Vec<usize>>), EngineError> {
    let mut shards = ShardAcc { counts: Vec::new() };
    let cands = if let Some(order) = plan.order() {
        eval_ordered(trk, table, pred, plan, order, threads, &mut shards)?
    } else {
        let mut cursor = 0usize;
        let out = eval_rec(trk, table, pred, plan, &mut cursor, threads, &mut shards)?;
        debug_assert_eq!(cursor, plan.leaves.len(), "every leaf consumed");
        out
    };
    // No shard vector sequentially, nor when no scanning leaf ran (a pure
    // index-path select does no per-thread work to account).
    Ok((cands, (threads > 1 && !shards.counts.is_empty()).then_some(shards.counts)))
}

/// In-order leaf predicates of a tree (the positions `PredPlan.leaves`
/// indexes by).
fn collect_leaves<'p>(pred: &'p Pred, out: &mut Vec<&'p Pred>) {
    match pred {
        Pred::And(a, b) | Pred::Or(a, b) => {
            collect_leaves(a, out);
            collect_leaves(b, out);
        }
        leaf => out.push(leaf),
    }
}

/// Pushdown evaluation of a pure-AND conjunction: the first leaf in `order`
/// evaluates full (parallelizable), every later leaf evaluates restricted
/// to the running survivor list via the candidate kernels. Each restricted
/// kernel returns exactly (full result ∩ candidates), so the running list
/// *is* the conjunction so far — bit-identical to intersecting full-leaf
/// results in any order. An empty running list short-circuits the rest.
fn eval_ordered<M: MemTracker>(
    trk: &mut M,
    table: &DecomposedTable,
    pred: &Pred,
    plan: &PredPlan,
    order: &[usize],
    threads: usize,
    shards: &mut ShardAcc,
) -> Result<CandList, EngineError> {
    let mut leaf_preds = Vec::with_capacity(plan.leaves.len());
    collect_leaves(pred, &mut leaf_preds);
    debug_assert_eq!(leaf_preds.len(), plan.leaves.len(), "order over all leaves");
    let mut running: Option<CandList> = None;
    for &i in order {
        let lp = &plan.leaves[i];
        running = Some(match running {
            None => eval_leaf(trk, table, leaf_preds[i], lp, threads, shards)?,
            Some(cur) => {
                if cur.is_empty() {
                    return Ok(cur);
                }
                eval_leaf_cands(trk, table, leaf_preds[i], lp, &cur)?
            }
        });
    }
    Ok(running.unwrap_or_default())
}

/// Evaluate one leaf restricted to an ascending candidate list, returning
/// exactly (full leaf result ∩ `cands`) in OID order.
fn eval_leaf_cands<M: MemTracker>(
    trk: &mut M,
    table: &DecomposedTable,
    leaf: &Pred,
    lp: &LeafPlan,
    cands: &CandList,
) -> Result<CandList, EngineError> {
    match &lp.action {
        LeafAction::Empty => Ok(CandList::new()),
        LeafAction::Provided(p) => Ok(crate::candidates::intersect(p, cands)),
        LeafAction::Scan => {
            let (col, spred) = match leaf {
                Pred::RangeI32 { col, lo, hi } => (col, ScanPred::RangeI32 { lo: *lo, hi: *hi }),
                Pred::RangeF64 { col, lo, hi } => (col, ScanPred::RangeF64 { lo: *lo, hi: *hi }),
                Pred::EqStr { col, value } => {
                    let bat = table.bat(col)?;
                    let sc = bat.tail().as_str_col().ok_or(EngineError::UnsupportedType {
                        op: "pushdown eval",
                        ty: bat.tail().value_type(),
                    })?;
                    match sc.dict.code_of(value) {
                        Some(code) => (col, ScanPred::EqCode { code }),
                        None => return Ok(CandList::new()),
                    }
                }
                Pred::And(..) | Pred::Or(..) => unreachable!("leaf evaluation"),
            };
            let mut lists = multi_select_cands(trk, table.bat(col)?, &[spred], cands)?;
            Ok(lists.remove(0))
        }
        LeafAction::Packed { col, pred } => {
            let cc = table.compressed_of(col).expect("planned packed leaf has a compressed column");
            let mut lists = multi_select_compressed_cands(
                trk,
                cc,
                table.seqbase(),
                std::slice::from_ref(pred),
                cands,
            )?;
            Ok(lists.remove(0))
        }
        LeafAction::BtreeRange { col, lo, hi } => {
            let idx = table
                .index_of(col, IndexKind::CsBTree)
                .expect("planned btree leaf has a btree index");
            let mut out = CandList::new();
            idx.lookup_range_cands(trk, *lo, *hi, cands, |o| out.push(o));
            finish_index_leaf(trk, out)
        }
        LeafAction::IndexEq { col, kind, key } => {
            let idx = table.index_of(col, *kind).expect("planned index leaf has its index");
            let mut out = CandList::new();
            idx.lookup_eq_cands(trk, *key, cands, |o| out.push(o));
            finish_index_leaf(trk, out)
        }
    }
}

fn eval_rec<M: MemTracker>(
    trk: &mut M,
    table: &DecomposedTable,
    pred: &Pred,
    plan: &PredPlan,
    cursor: &mut usize,
    threads: usize,
    shards: &mut ShardAcc,
) -> Result<CandList, EngineError> {
    match pred {
        Pred::And(a, b) => {
            let ca = eval_rec(trk, table, a, plan, cursor, threads, shards)?;
            if ca.is_empty() {
                *cursor += leaf_count(b); // short-circuit: AND with empty
                return Ok(ca);
            }
            let cb = eval_rec(trk, table, b, plan, cursor, threads, shards)?;
            Ok(crate::candidates::intersect(&ca, &cb))
        }
        Pred::Or(a, b) => {
            let ca = eval_rec(trk, table, a, plan, cursor, threads, shards)?;
            let cb = eval_rec(trk, table, b, plan, cursor, threads, shards)?;
            Ok(crate::candidates::union(&ca, &cb))
        }
        leaf => {
            let lp = &plan.leaves[*cursor];
            *cursor += 1;
            eval_leaf(trk, table, leaf, lp, threads, shards)
        }
    }
}

fn eval_leaf<M: MemTracker>(
    trk: &mut M,
    table: &DecomposedTable,
    leaf: &Pred,
    lp: &LeafPlan,
    threads: usize,
    shards: &mut ShardAcc,
) -> Result<CandList, EngineError> {
    match &lp.action {
        LeafAction::Empty => Ok(CandList::new()),
        // A shared pass already streamed the column; consuming the list is
        // free of scan work (and contributes no shard counts).
        LeafAction::Provided(cands) => Ok((**cands).clone()),
        LeafAction::Scan => scan_eval(trk, table, leaf, threads, shards),
        LeafAction::Packed { col, pred } => {
            let cc = table.compressed_of(col).expect("planned packed leaf has a compressed column");
            if threads <= 1 {
                let mut lists =
                    multi_select_compressed(trk, cc, table.seqbase(), std::slice::from_ref(pred))?;
                Ok(lists.remove(0))
            } else {
                let (mut lists, counts) = par_multi_select_compressed_counted(
                    cc,
                    table.seqbase(),
                    std::slice::from_ref(pred),
                    threads,
                )?;
                shards.add(&counts);
                Ok(lists.remove(0))
            }
        }
        LeafAction::BtreeRange { col, lo, hi } => {
            let idx = table
                .index_of(col, IndexKind::CsBTree)
                .expect("planned btree leaf has a btree index");
            let mut out = CandList::new();
            idx.lookup_range(trk, *lo, *hi, |o| out.push(o));
            finish_index_leaf(trk, out)
        }
        LeafAction::IndexEq { col, kind, key } => {
            let idx = table.index_of(col, *kind).expect("planned index leaf has its index");
            let mut out = CandList::new();
            idx.lookup_eq(trk, *key, |o| out.push(o));
            finish_index_leaf(trk, out)
        }
    }
}

/// Restore scan (ascending-OID) order over an index probe's matches —
/// charging the same emit + sort work the cost model prices — so index
/// paths stay bit-identical to scan paths.
fn finish_index_leaf<M: MemTracker>(
    trk: &mut M,
    mut out: CandList,
) -> Result<CandList, EngineError> {
    if M::ENABLED {
        trk.work(Work::ScanIter, out.len() as u64);
        trk.work(Work::SortTuple, (out.len() * sort_rounds(out.len())) as u64);
    }
    out.sort_unstable();
    Ok(out)
}

/// Evaluate a scan leaf: the sequential tracked kernels at `threads == 1`,
/// the chunked parallel kernels (with per-thread counts) above.
fn scan_eval<M: MemTracker>(
    trk: &mut M,
    table: &DecomposedTable,
    leaf: &Pred,
    threads: usize,
    shards: &mut ShardAcc,
) -> Result<CandList, EngineError> {
    if threads <= 1 {
        return match leaf {
            Pred::RangeI32 { col, lo, hi } => range_select_i32(trk, table.bat(col)?, *lo, *hi),
            Pred::RangeF64 { col, lo, hi } => range_select_f64(trk, table.bat(col)?, *lo, *hi),
            Pred::EqStr { col, value } => match select_eq_str(trk, table.bat(col)?, value) {
                Err(EngineError::ConstantNotInDictionary(_)) => Ok(CandList::new()),
                other => other,
            },
            Pred::And(..) | Pred::Or(..) => unreachable!("leaf evaluation"),
        };
    }
    let (cands, counts) = match leaf {
        Pred::RangeI32 { col, lo, hi } => {
            par_range_select_i32_counted(table.bat(col)?, *lo, *hi, threads)?
        }
        Pred::RangeF64 { col, lo, hi } => {
            par_range_select_f64_counted(table.bat(col)?, *lo, *hi, threads)?
        }
        Pred::EqStr { col, value } => {
            match par_select_eq_str_counted(table.bat(col)?, value, threads) {
                // The kernel bails before scanning, so no chunk ever ran:
                // contribute no shard counts (a `vec![0; threads]` here
                // could misalign with clamped chunk counts of other leaves).
                Err(EngineError::ConstantNotInDictionary(_)) => (CandList::new(), Vec::new()),
                other => other?,
            }
        }
        Pred::And(..) | Pred::Or(..) => unreachable!("leaf evaluation"),
    };
    shards.add(&counts);
    Ok(cands)
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::{profiles, NullTracker};
    use monet_core::storage::{ColType, TableBuilder, Value};

    fn table(indexed: bool) -> DecomposedTable {
        let mut b = TableBuilder::new("t", 100)
            .column("k", ColType::I32)
            .column("x", ColType::F64)
            .column("s", ColType::Str);
        for i in 0..500i32 {
            b.push_row(&[
                Value::I32(i % 50 - 25),
                Value::F64(i as f64 / 10.0),
                Value::from(["AIR", "MAIL", "SHIP"][i as usize % 3]),
            ])
            .unwrap();
        }
        let mut t = b.finish();
        if indexed {
            t.create_index("k", IndexKind::CsBTree).unwrap();
            t.create_index("k", IndexKind::Hash).unwrap();
            t.create_index("k", IndexKind::TTree).unwrap();
            t.create_index("s", IndexKind::Hash).unwrap();
        }
        t
    }

    fn model() -> ModelMachine {
        ModelMachine::new(&profiles::origin2000())
    }

    const PD_OFF: PushdownMode = PushdownMode::Off;

    fn run(
        t: &DecomposedTable,
        pred: &Pred,
        mode: AccessMode,
        compress: CompressMode,
        pushdown: PushdownMode,
        threads: usize,
    ) -> CandList {
        let m = model();
        let plan =
            plan_pred_with(&mut NullTracker, t, pred, mode, compress, pushdown, &m, &[]).unwrap();
        eval_planned(&mut NullTracker, t, pred, &plan, threads).unwrap().0
    }

    #[test]
    fn every_mode_and_thread_count_is_bit_identical() {
        let t = table(true);
        let preds = [
            Pred::range_i32("k", -5, 5),
            Pred::range_i32("k", 7, 7),
            Pred::range_i32("k", 10, -10),
            Pred::eq_str("s", "MAIL"),
            Pred::eq_str("s", "WALRUS"),
            Pred::range_i32("k", -5, 5).and(Pred::eq_str("s", "AIR")),
            Pred::eq_str("s", "WALRUS").or(Pred::range_i32("k", 20, 24)),
            Pred::range_f64("x", 1.0, 2.0).and(Pred::range_i32("k", 0, 0)),
        ];
        for pred in &preds {
            let reference = run(&t, pred, AccessMode::Scan, CompressMode::Off, PD_OFF, 1);
            for mode in [AccessMode::Scan, AccessMode::Index, AccessMode::Auto] {
                for compress in [CompressMode::Off, CompressMode::On, CompressMode::Force] {
                    for pushdown in [PushdownMode::Off, PushdownMode::On] {
                        for threads in [1usize, 4] {
                            assert_eq!(
                                run(&t, pred, mode, compress, pushdown, threads),
                                reference,
                                "pred={pred} mode={} compress={} pushdown={} threads={threads}",
                                mode.name(),
                                compress.name(),
                                pushdown.name()
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn point_predicates_choose_an_index_under_auto() {
        let t = table(true);
        let m = model();
        let pred = Pred::range_i32("k", 7, 7);
        let plan = plan_pred_with(
            &mut NullTracker,
            &t,
            &pred,
            AccessMode::Auto,
            CompressMode::On,
            PD_OFF,
            &m,
            &[],
        )
        .unwrap();
        let d = &plan.decisions()[0];
        assert!(d.path.is_index(), "{d:?}");
        assert_eq!(d.matches_est, 10, "exact count: 500 rows / 50 keys");
        assert!(d.predicted_ms < d.scan_ms, "{d:?}");
        assert!(plan.uses_index());
        assert_eq!(plan.scan_work_ns(), 0.0, "index leaves contribute no fan-out work");
    }

    #[test]
    fn unindexed_tables_and_scan_mode_never_probe() {
        let bare = table(false);
        let m = model();
        for (t, mode) in [(&bare, AccessMode::Auto), (&table(true), AccessMode::Scan)] {
            let pred = Pred::range_i32("k", 7, 7).and(Pred::eq_str("s", "AIR"));
            // Compression on: still no index probes (packed scans are scans).
            let plan =
                plan_pred_with(&mut NullTracker, t, &pred, mode, CompressMode::On, PD_OFF, &m, &[])
                    .unwrap();
            assert!(!plan.uses_index());
            assert!(plan.decisions().iter().all(|d| !d.path.is_index()));
            assert!(plan.scan_work_ns() > 0.0);
            // Compression off: the exact pre-compression plan shape.
            let plan = plan_pred_with(
                &mut NullTracker,
                t,
                &pred,
                mode,
                CompressMode::Off,
                PD_OFF,
                &m,
                &[],
            )
            .unwrap();
            assert!(plan.decisions().iter().all(|d| d.path == AccessPath::Scan));
        }
    }

    #[test]
    fn forced_index_mode_falls_back_to_scan_only_without_a_usable_index() {
        let t = table(true);
        let m = model();
        // Range over k: only the btree is range-capable; forced index uses it.
        let plan = plan_pred_with(
            &mut NullTracker,
            &t,
            &Pred::range_i32("k", -20, 20),
            AccessMode::Index,
            CompressMode::On,
            PD_OFF,
            &m,
            &[],
        )
        .unwrap();
        assert_eq!(plan.decisions()[0].path, AccessPath::BtreeRange);
        // F64 leaf: no index can exist; index mode scans it.
        let plan = plan_pred_with(
            &mut NullTracker,
            &t,
            &Pred::range_f64("x", 0.0, 1.0),
            AccessMode::Index,
            CompressMode::On,
            PD_OFF,
            &m,
            &[],
        )
        .unwrap();
        assert_eq!(plan.decisions()[0].path, AccessPath::Scan);
    }

    #[test]
    fn parallel_scan_leaves_report_per_thread_shards() {
        let t = table(true);
        let m = model();
        let pred = Pred::range_f64("x", 0.0, 20.0).and(Pred::range_i32("k", 0, 0));
        let plan = plan_pred_with(
            &mut NullTracker,
            &t,
            &pred,
            AccessMode::Auto,
            CompressMode::On,
            PD_OFF,
            &m,
            &[],
        )
        .unwrap();
        let (cands, shards) = eval_planned(&mut NullTracker, &t, &pred, &plan, 4).unwrap();
        let shards = shards.expect("parallel run shards");
        assert_eq!(shards.len(), 4);
        // The f64 leaf scanned 201 matching rows across the threads; the
        // index leaf contributed none.
        assert_eq!(shards.iter().sum::<usize>(), 201);
        assert!(!cands.is_empty());
        // Sequential runs carry no shard vector.
        let (_, none) = eval_planned(&mut NullTracker, &t, &pred, &plan, 1).unwrap();
        assert!(none.is_none());
    }

    #[test]
    fn forced_compression_takes_the_packed_scan_everywhere_it_can() {
        let t = table(true);
        let m = model();
        let pred = Pred::range_i32("k", -5, 5).and(Pred::eq_str("s", "AIR"));
        for mode in [AccessMode::Scan, AccessMode::Index, AccessMode::Auto] {
            let plan = plan_pred_with(
                &mut NullTracker,
                &t,
                &pred,
                mode,
                CompressMode::Force,
                PD_OFF,
                &m,
                &[],
            )
            .unwrap();
            for d in plan.decisions() {
                assert_eq!(d.path, AccessPath::PackedScan, "mode={} {d:?}", mode.name());
                assert!(d.packed_bits > 0.0 && d.packed_bits < 8.0 * d.stride as f64, "{d:?}");
            }
            assert!(!plan.uses_index());
            assert!(plan.scan_work_ns() > 0.0, "packed scans still fan out");
        }
        // The packed detail line names the encoding family and the bit rate.
        let plan = plan_pred_with(
            &mut NullTracker,
            &t,
            &Pred::range_i32("k", -5, 5),
            AccessMode::Auto,
            CompressMode::Force,
            PD_OFF,
            &m,
            &[],
        )
        .unwrap();
        assert!(plan.detail().contains("packed-scan"), "{}", plan.detail());
    }

    #[test]
    fn auto_mode_prefers_the_packed_scan_on_big_unindexed_columns() {
        // An unindexed FOR-friendly column large enough that bytes dominate:
        // under `on` the model must route the leaf to the packed scan.
        let mut b = TableBuilder::new("big", 0).column("v", ColType::I32);
        for i in 0..200_000i32 {
            b.push_row(&[Value::I32(i % 1000)]).unwrap();
        }
        let t = b.finish();
        let m = model();
        let pred = Pred::range_i32("v", 100, 300);
        let plan = plan_pred_with(
            &mut NullTracker,
            &t,
            &pred,
            AccessMode::Auto,
            CompressMode::On,
            PD_OFF,
            &m,
            &[],
        )
        .unwrap();
        let d = &plan.decisions()[0];
        assert_eq!(d.path, AccessPath::PackedScan, "{d:?}");
        assert!(d.predicted_ms < d.scan_ms, "{d:?}");
        // Same plan under `off`: the plain scan.
        let plan = plan_pred_with(
            &mut NullTracker,
            &t,
            &pred,
            AccessMode::Auto,
            CompressMode::Off,
            PD_OFF,
            &m,
            &[],
        )
        .unwrap();
        assert_eq!(plan.decisions()[0].path, AccessPath::Scan);
        // Scan mode under `on` also stays on the uncompressed reference.
        let plan = plan_pred_with(
            &mut NullTracker,
            &t,
            &pred,
            AccessMode::Scan,
            CompressMode::On,
            PD_OFF,
            &m,
            &[],
        )
        .unwrap();
        assert_eq!(plan.decisions()[0].path, AccessPath::Scan);
    }

    #[test]
    fn mode_parsing() {
        assert_eq!(AccessMode::parse("scan"), Some(AccessMode::Scan));
        assert_eq!(AccessMode::parse("index"), Some(AccessMode::Index));
        assert_eq!(AccessMode::parse("auto"), Some(AccessMode::Auto));
        assert_eq!(AccessMode::parse("AUTO"), None);
        assert_eq!(AccessMode::parse(""), None);
        assert_eq!(CompressMode::parse("0"), Some(CompressMode::Off));
        assert_eq!(CompressMode::parse("off"), Some(CompressMode::Off));
        assert_eq!(CompressMode::parse("1"), Some(CompressMode::On));
        assert_eq!(CompressMode::parse("on"), Some(CompressMode::On));
        assert_eq!(CompressMode::parse("force"), Some(CompressMode::Force));
        assert_eq!(CompressMode::parse("ON"), None);
        assert_eq!(CompressMode::parse(""), None);
        assert_eq!(PushdownMode::parse("0"), Some(PushdownMode::Off));
        assert_eq!(PushdownMode::parse("off"), Some(PushdownMode::Off));
        assert_eq!(PushdownMode::parse("1"), Some(PushdownMode::On));
        assert_eq!(PushdownMode::parse("on"), Some(PushdownMode::On));
        assert_eq!(PushdownMode::parse("ON"), None);
        assert_eq!(PushdownMode::parse(""), None);
    }

    #[test]
    fn costmodel_frame_len_mirrors_the_kernel() {
        // `costmodel` has no dependency on `monet-core`, so the frame length
        // its restricted-packed pricing assumes is duplicated there. Keep
        // the two in lock step.
        assert_eq!(costmodel::scan::FRAME_LEN, monet_core::compress::FRAME_LEN);
    }

    #[test]
    fn conjunction_planner_orders_the_selective_leaf_first() {
        // One needle leaf (point range, ~10 of 500 rows) conjoined with two
        // wide leaves. Under pushdown the planner must run the needle first
        // and restrict both wide leaves to its survivors.
        let t = table(false);
        let m = model();
        let pred = Pred::range_f64("x", 0.0, 40.0)
            .and(Pred::eq_str("s", "AIR"))
            .and(Pred::range_i32("k", 7, 7));
        let plan = plan_pred_with(
            &mut NullTracker,
            &t,
            &pred,
            AccessMode::Scan,
            CompressMode::Off,
            PushdownMode::On,
            &m,
            &[],
        )
        .unwrap();
        let order = plan.order().expect("pure-AND multi-leaf filters get an order");
        assert_eq!(order[0], 2, "needle leaf (k = 7) evaluated first: {order:?}");
        let cands = plan.cands_in();
        assert_eq!(cands[2], None, "first-in-order leaf runs its full pass");
        for i in [0usize, 1] {
            let k = cands[i].expect("later leaves are restricted");
            assert!(k < t.len(), "restricted to fewer than all rows");
            let d = &plan.decisions()[i];
            assert_eq!(d.cands_in, Some(k));
            assert!(d.bytes_saved > 0.0, "{d:?}");
        }
        assert_eq!(plan.decisions()[2].cands_in, None);
        assert_eq!(plan.decisions()[2].bytes_saved, 0.0);
        // Restricted leaves run sequentially: only the first leaf fans out.
        assert!(plan.scan_work_ns() > 0.0);
        // Off: no order, no restriction annotations.
        let off = plan_pred_with(
            &mut NullTracker,
            &t,
            &pred,
            AccessMode::Scan,
            CompressMode::Off,
            PD_OFF,
            &m,
            &[],
        )
        .unwrap();
        assert!(off.order().is_none());
        assert!(off.decisions().iter().all(|d| d.cands_in.is_none()));
        // OR trees are never reordered even under On.
        let disj = Pred::range_i32("k", 7, 7).or(Pred::eq_str("s", "AIR"));
        let plan = plan_pred_with(
            &mut NullTracker,
            &t,
            &disj,
            AccessMode::Scan,
            CompressMode::Off,
            PushdownMode::On,
            &m,
            &[],
        )
        .unwrap();
        assert!(plan.order().is_none());
    }
}
