//! Scan selections.
//!
//! §3.2: "If the selectivity is low, most data needs to be visited and this
//! is best done with a scan-select (it has optimal data locality)." All
//! selections here are scans over a single BAT tail — stride 1/4/8 bytes
//! thanks to vertical decomposition — returning candidate OID lists.

use memsim::{track_read, MemTracker, Work};
use monet_core::storage::{Bat, Codes, Column, Oid};

use crate::EngineError;

/// Candidates: OIDs of qualifying tuples, ascending (scan order over a void
/// head).
pub type CandList = Vec<Oid>;

/// Range selection `lo ≤ x ≤ hi` over an `I32` tail.
pub fn range_select_i32<M: MemTracker>(
    trk: &mut M,
    bat: &Bat,
    lo: i32,
    hi: i32,
) -> Result<CandList, EngineError> {
    let data = bat.tail().as_i32().ok_or(EngineError::UnsupportedType {
        op: "range_select_i32",
        ty: bat.tail().value_type(),
    })?;
    let mut out = CandList::new();
    for (i, v) in data.iter().enumerate() {
        if M::ENABLED {
            track_read(trk, v);
            trk.work(Work::ScanIter, 1);
        }
        if (lo..=hi).contains(v) {
            out.push(bat.head_oid(i));
        }
    }
    Ok(out)
}

/// Range selection over an `F64` tail.
pub fn range_select_f64<M: MemTracker>(
    trk: &mut M,
    bat: &Bat,
    lo: f64,
    hi: f64,
) -> Result<CandList, EngineError> {
    let data = bat.tail().as_f64().ok_or(EngineError::UnsupportedType {
        op: "range_select_f64",
        ty: bat.tail().value_type(),
    })?;
    let mut out = CandList::new();
    for (i, v) in data.iter().enumerate() {
        if M::ENABLED {
            track_read(trk, v);
            trk.work(Work::ScanIter, 1);
        }
        if *v >= lo && *v <= hi {
            out.push(bat.head_oid(i));
        }
    }
    Ok(out)
}

/// Equality selection on a dictionary-encoded string column — the §3.1 fast
/// path: the constant is re-mapped to its code **once**, then the scan
/// compares 1- or 2-byte integers with no per-tuple decoding.
pub fn select_eq_str<M: MemTracker>(
    trk: &mut M,
    bat: &Bat,
    needle: &str,
) -> Result<CandList, EngineError> {
    let sc = bat
        .tail()
        .as_str_col()
        .ok_or(EngineError::UnsupportedType { op: "select_eq_str", ty: bat.tail().value_type() })?;
    let Some(code) = sc.dict.code_of(needle) else {
        return Err(EngineError::ConstantNotInDictionary(needle.to_owned()));
    };
    let mut out = CandList::new();
    match &sc.codes {
        Codes::U8(v) => {
            let code = code as u8;
            for (i, c) in v.iter().enumerate() {
                if M::ENABLED {
                    track_read(trk, c);
                    trk.work(Work::ScanIter, 1);
                }
                if *c == code {
                    out.push(bat.head_oid(i));
                }
            }
        }
        Codes::U16(v) => {
            let code = code as u16;
            for (i, c) in v.iter().enumerate() {
                if M::ENABLED {
                    track_read(trk, c);
                    trk.work(Work::ScanIter, 1);
                }
                if *c == code {
                    out.push(bat.head_oid(i));
                }
            }
        }
    }
    Ok(out)
}

/// Concatenate per-chunk candidate lists thread-major, also returning the
/// per-chunk (per-thread) match counts — the sharded `ExecReport` counters.
fn concat_counted(parts: Vec<CandList>) -> (CandList, Vec<usize>) {
    let counts: Vec<usize> = parts.iter().map(Vec::len).collect();
    let mut out = CandList::with_capacity(counts.iter().sum());
    for p in parts {
        out.extend(p);
    }
    (out, counts)
}

/// Parallel range selection over an `I32` tail: chunked fan-out with a
/// thread-major merge, so the candidate list is bit-identical to
/// [`range_select_i32`] (native-only; see [`crate::par`]). Also returns the
/// per-thread match counts for the sharded report.
pub fn par_range_select_i32_counted(
    bat: &Bat,
    lo: i32,
    hi: i32,
    threads: usize,
) -> Result<(CandList, Vec<usize>), EngineError> {
    let data = bat.tail().as_i32().ok_or(EngineError::UnsupportedType {
        op: "par_range_select_i32",
        ty: bat.tail().value_type(),
    })?;
    Ok(concat_counted(crate::par::fan_out(data.len(), threads, |clo, chi| {
        let mut out = CandList::new();
        for (i, v) in data.iter().enumerate().take(chi).skip(clo) {
            if (lo..=hi).contains(v) {
                out.push(bat.head_oid(i));
            }
        }
        out
    })))
}

/// [`par_range_select_i32_counted`] without the per-thread counts.
pub fn par_range_select_i32(
    bat: &Bat,
    lo: i32,
    hi: i32,
    threads: usize,
) -> Result<CandList, EngineError> {
    Ok(par_range_select_i32_counted(bat, lo, hi, threads)?.0)
}

/// Parallel range selection over an `F64` tail (bit-identical to
/// [`range_select_f64`]), with per-thread match counts.
pub fn par_range_select_f64_counted(
    bat: &Bat,
    lo: f64,
    hi: f64,
    threads: usize,
) -> Result<(CandList, Vec<usize>), EngineError> {
    let data = bat.tail().as_f64().ok_or(EngineError::UnsupportedType {
        op: "par_range_select_f64",
        ty: bat.tail().value_type(),
    })?;
    Ok(concat_counted(crate::par::fan_out(data.len(), threads, |clo, chi| {
        let mut out = CandList::new();
        for (i, v) in data.iter().enumerate().take(chi).skip(clo) {
            if *v >= lo && *v <= hi {
                out.push(bat.head_oid(i));
            }
        }
        out
    })))
}

/// [`par_range_select_f64_counted`] without the per-thread counts.
pub fn par_range_select_f64(
    bat: &Bat,
    lo: f64,
    hi: f64,
    threads: usize,
) -> Result<CandList, EngineError> {
    Ok(par_range_select_f64_counted(bat, lo, hi, threads)?.0)
}

/// Parallel dictionary-equality selection (bit-identical to
/// [`select_eq_str`], including the [`EngineError::ConstantNotInDictionary`]
/// contract — the constant is re-mapped to its code once, before fan-out),
/// with per-thread match counts.
pub fn par_select_eq_str_counted(
    bat: &Bat,
    needle: &str,
    threads: usize,
) -> Result<(CandList, Vec<usize>), EngineError> {
    let sc = bat.tail().as_str_col().ok_or(EngineError::UnsupportedType {
        op: "par_select_eq_str",
        ty: bat.tail().value_type(),
    })?;
    let Some(code) = sc.dict.code_of(needle) else {
        return Err(EngineError::ConstantNotInDictionary(needle.to_owned()));
    };
    let scan = |n: usize, eq: &(dyn Fn(usize) -> bool + Sync)| {
        concat_counted(crate::par::fan_out(n, threads, |clo, chi| {
            let mut out = CandList::new();
            for i in clo..chi {
                if eq(i) {
                    out.push(bat.head_oid(i));
                }
            }
            out
        }))
    };
    Ok(match &sc.codes {
        Codes::U8(v) => {
            let code = code as u8;
            scan(v.len(), &|i| v[i] == code)
        }
        Codes::U16(v) => {
            let code = code as u16;
            scan(v.len(), &|i| v[i] == code)
        }
    })
}

/// [`par_select_eq_str_counted`] without the per-thread counts.
pub fn par_select_eq_str(bat: &Bat, needle: &str, threads: usize) -> Result<CandList, EngineError> {
    Ok(par_select_eq_str_counted(bat, needle, threads)?.0)
}

/// Equality selection on a `U8` column (already-encoded data).
pub fn select_eq_u8<M: MemTracker>(
    trk: &mut M,
    bat: &Bat,
    needle: u8,
) -> Result<CandList, EngineError> {
    match bat.tail() {
        Column::U8(v) => {
            let mut out = CandList::new();
            for (i, c) in v.iter().enumerate() {
                if M::ENABLED {
                    track_read(trk, c);
                    trk.work(Work::ScanIter, 1);
                }
                if *c == needle {
                    out.push(bat.head_oid(i));
                }
            }
            Ok(out)
        }
        other => Err(EngineError::UnsupportedType { op: "select_eq_u8", ty: other.value_type() }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::NullTracker;
    use monet_core::storage::StrColumn;

    fn qty_bat() -> Bat {
        Bat::with_void_head(100, Column::I32(vec![5, 17, 3, 25, 17, 8]))
    }

    #[test]
    fn i32_range_select_returns_matching_oids() {
        let cands = range_select_i32(&mut NullTracker, &qty_bat(), 5, 17).unwrap();
        assert_eq!(cands, vec![100, 101, 104, 105]);
    }

    #[test]
    fn empty_and_full_ranges() {
        let b = qty_bat();
        assert!(range_select_i32(&mut NullTracker, &b, 100, 200).unwrap().is_empty());
        assert_eq!(range_select_i32(&mut NullTracker, &b, i32::MIN, i32::MAX).unwrap().len(), 6);
    }

    #[test]
    fn f64_range_select() {
        let b = Bat::with_void_head(0, Column::F64(vec![0.0, 0.1, 0.05, 0.2]));
        let cands = range_select_f64(&mut NullTracker, &b, 0.05, 0.1).unwrap();
        assert_eq!(cands, vec![1, 2]);
    }

    #[test]
    fn str_eq_select_remaps_once() {
        let b = Bat::with_void_head(
            1000,
            Column::Str(StrColumn::from_strs(["AIR", "MAIL", "AIR", "SHIP", "MAIL"])),
        );
        let cands = select_eq_str(&mut NullTracker, &b, "MAIL").unwrap();
        assert_eq!(cands, vec![1001, 1004]);
        let err = select_eq_str(&mut NullTracker, &b, "WALRUS").unwrap_err();
        assert!(matches!(err, EngineError::ConstantNotInDictionary(_)));
    }

    #[test]
    fn type_mismatch_is_an_error() {
        let b = qty_bat();
        assert!(matches!(
            select_eq_str(&mut NullTracker, &b, "x"),
            Err(EngineError::UnsupportedType { .. })
        ));
        assert!(matches!(
            range_select_f64(&mut NullTracker, &b, 0.0, 1.0),
            Err(EngineError::UnsupportedType { .. })
        ));
    }

    #[test]
    fn u8_select() {
        let b = Bat::with_void_head(0, Column::U8(vec![1, 3, 1, 2]));
        assert_eq!(select_eq_u8(&mut NullTracker, &b, 1).unwrap(), vec![0, 2]);
    }

    #[test]
    fn parallel_selects_are_bit_identical_to_sequential() {
        let i32s: Vec<i32> = (0..10_000).map(|i| (i * 37) % 1000).collect();
        let f64s: Vec<f64> = (0..10_000).map(|i| ((i * 13) % 777) as f64 / 10.0).collect();
        let strs: Vec<&str> = (0..10_000).map(|i| ["AIR", "MAIL", "SHIP"][i % 3]).collect();
        let bi = Bat::with_void_head(50, Column::I32(i32s));
        let bf = Bat::with_void_head(0, Column::F64(f64s));
        let bs = Bat::with_void_head(7, Column::Str(StrColumn::from_strs(strs)));
        for threads in [1usize, 2, 4, 7, 64] {
            assert_eq!(
                par_range_select_i32(&bi, 100, 500, threads).unwrap(),
                range_select_i32(&mut NullTracker, &bi, 100, 500).unwrap(),
                "threads={threads}"
            );
            assert_eq!(
                par_range_select_f64(&bf, 3.0, 40.0, threads).unwrap(),
                range_select_f64(&mut NullTracker, &bf, 3.0, 40.0).unwrap(),
                "threads={threads}"
            );
            assert_eq!(
                par_select_eq_str(&bs, "MAIL", threads).unwrap(),
                select_eq_str(&mut NullTracker, &bs, "MAIL").unwrap(),
                "threads={threads}"
            );
        }
        // The dictionary-miss contract is preserved.
        assert!(matches!(
            par_select_eq_str(&bs, "WALRUS", 4),
            Err(EngineError::ConstantNotInDictionary(_))
        ));
    }

    #[test]
    fn counted_selects_shard_the_match_counts_per_thread() {
        let i32s: Vec<i32> = (0..1_000).map(|i| i % 100).collect();
        let b = Bat::with_void_head(0, Column::I32(i32s));
        for threads in [1usize, 3, 4, 7] {
            let (cands, counts) = par_range_select_i32_counted(&b, 10, 39, threads).unwrap();
            assert_eq!(counts.len(), threads.min(1_000));
            assert_eq!(counts.iter().sum::<usize>(), cands.len(), "threads={threads}");
            assert_eq!(cands, range_select_i32(&mut NullTracker, &b, 10, 39).unwrap());
        }
    }
}
