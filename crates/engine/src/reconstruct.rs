//! Tuple reconstruction — the positional joins of §3.1.
//!
//! "The projection phase in query processing typically leads in Monet to
//! additional tuple-reconstruction joins on OID columns … When one of the
//! join columns is VOID, Monet uses positional lookup instead of e.g.
//! hash-lookup; effectively eliminating all join cost." Given a candidate
//! OID list and a void-headed column BAT, fetching is a gather at
//! `oid - seqbase`.

use memsim::{track_read, MemTracker, Work};
use monet_core::storage::{Bat, Codes, Column, Head, Oid, StorageError, StrColumn};

use crate::EngineError;

fn void_base(bat: &Bat) -> Result<Oid, EngineError> {
    match bat.head() {
        Head::Void { seqbase } => Ok(*seqbase),
        Head::Oids(_) => Err(EngineError::Storage(StorageError::NonVoidHead)),
    }
}

/// Gather `I32` values at the candidate OIDs (positional, zero join cost).
pub fn fetch_i32<M: MemTracker>(
    trk: &mut M,
    bat: &Bat,
    cands: &[Oid],
) -> Result<Vec<i32>, EngineError> {
    let base = void_base(bat)?;
    let data = bat
        .tail()
        .as_i32()
        .ok_or(EngineError::UnsupportedType { op: "fetch_i32", ty: bat.tail().value_type() })?;
    Ok(cands
        .iter()
        .map(|&oid| {
            let v = &data[(oid - base) as usize];
            if M::ENABLED {
                track_read(trk, v);
                trk.work(Work::ScanIter, 1);
            }
            *v
        })
        .collect())
}

/// Gather `F64` values at the candidate OIDs.
pub fn fetch_f64<M: MemTracker>(
    trk: &mut M,
    bat: &Bat,
    cands: &[Oid],
) -> Result<Vec<f64>, EngineError> {
    let base = void_base(bat)?;
    let data = bat
        .tail()
        .as_f64()
        .ok_or(EngineError::UnsupportedType { op: "fetch_f64", ty: bat.tail().value_type() })?;
    Ok(cands
        .iter()
        .map(|&oid| {
            let v = &data[(oid - base) as usize];
            if M::ENABLED {
                track_read(trk, v);
                trk.work(Work::ScanIter, 1);
            }
            *v
        })
        .collect())
}

/// Gather `Oid` values (join indices, selection vectors) at the candidate
/// OIDs.
pub fn fetch_oid<M: MemTracker>(
    trk: &mut M,
    bat: &Bat,
    cands: &[Oid],
) -> Result<Vec<Oid>, EngineError> {
    let base = void_base(bat)?;
    let data = bat
        .tail()
        .as_oid()
        .ok_or(EngineError::UnsupportedType { op: "fetch_oid", ty: bat.tail().value_type() })?;
    Ok(cands
        .iter()
        .map(|&oid| {
            let v = &data[(oid - base) as usize];
            if M::ENABLED {
                track_read(trk, v);
                trk.work(Work::ScanIter, 1);
            }
            *v
        })
        .collect())
}

/// Gather `U8` values (already-encoded codes) at the candidate OIDs.
pub fn fetch_u8<M: MemTracker>(
    trk: &mut M,
    bat: &Bat,
    cands: &[Oid],
) -> Result<Vec<u8>, EngineError> {
    let base = void_base(bat)?;
    let data = match bat.tail() {
        Column::U8(v) => v,
        other => {
            return Err(EngineError::UnsupportedType { op: "fetch_u8", ty: other.value_type() })
        }
    };
    Ok(cands
        .iter()
        .map(|&oid| {
            let v = &data[(oid - base) as usize];
            if M::ENABLED {
                track_read(trk, v);
                trk.work(Work::ScanIter, 1);
            }
            *v
        })
        .collect())
}

/// Gather an encoded string column at the candidate OIDs, preserving the
/// encoding (codes are copied, the dictionary is shared/cloned) — no
/// per-tuple decode, per §3.1.
pub fn fetch_str<M: MemTracker>(
    trk: &mut M,
    bat: &Bat,
    cands: &[Oid],
) -> Result<StrColumn, EngineError> {
    let base = void_base(bat)?;
    let sc = bat
        .tail()
        .as_str_col()
        .ok_or(EngineError::UnsupportedType { op: "fetch_str", ty: bat.tail().value_type() })?;
    let codes = match &sc.codes {
        Codes::U8(v) => Codes::U8(
            cands
                .iter()
                .map(|&oid| {
                    let c = &v[(oid - base) as usize];
                    if M::ENABLED {
                        track_read(trk, c);
                        trk.work(Work::ScanIter, 1);
                    }
                    *c
                })
                .collect(),
        ),
        Codes::U16(v) => Codes::U16(
            cands
                .iter()
                .map(|&oid| {
                    let c = &v[(oid - base) as usize];
                    if M::ENABLED {
                        track_read(trk, c);
                        trk.work(Work::ScanIter, 1);
                    }
                    *c
                })
                .collect(),
        ),
    };
    Ok(StrColumn { codes, dict: sc.dict.clone() })
}

/// Parallel gather of `I32` values: the candidate list fans out in
/// contiguous chunks, each gathered by the sequential kernel, merged
/// thread-major — bit-identical to [`fetch_i32`] (native-only).
pub fn par_fetch_i32(bat: &Bat, cands: &[Oid], threads: usize) -> Result<Vec<i32>, EngineError> {
    collect_chunks(cands, threads, |chunk| fetch_i32(&mut memsim::NullTracker, bat, chunk))
}

/// Parallel gather of `F64` values (bit-identical to [`fetch_f64`]).
pub fn par_fetch_f64(bat: &Bat, cands: &[Oid], threads: usize) -> Result<Vec<f64>, EngineError> {
    collect_chunks(cands, threads, |chunk| fetch_f64(&mut memsim::NullTracker, bat, chunk))
}

/// Parallel gather of `U8` codes (bit-identical to [`fetch_u8`]).
pub fn par_fetch_u8(bat: &Bat, cands: &[Oid], threads: usize) -> Result<Vec<u8>, EngineError> {
    collect_chunks(cands, threads, |chunk| fetch_u8(&mut memsim::NullTracker, bat, chunk))
}

/// Parallel gather of an encoded string column, preserving the encoding
/// (bit-identical to [`fetch_str`]).
pub fn par_fetch_str(bat: &Bat, cands: &[Oid], threads: usize) -> Result<StrColumn, EngineError> {
    let sc = bat
        .tail()
        .as_str_col()
        .ok_or(EngineError::UnsupportedType { op: "par_fetch_str", ty: bat.tail().value_type() })?;
    let codes = match &sc.codes {
        Codes::U8(_) => Codes::U8(collect_chunks(cands, threads, |chunk| {
            fetch_str(&mut memsim::NullTracker, bat, chunk).map(|s| match s.codes {
                Codes::U8(v) => v,
                Codes::U16(_) => unreachable!("gather preserves the code width"),
            })
        })?),
        Codes::U16(_) => Codes::U16(collect_chunks(cands, threads, |chunk| {
            fetch_str(&mut memsim::NullTracker, bat, chunk).map(|s| match s.codes {
                Codes::U16(v) => v,
                Codes::U8(_) => unreachable!("gather preserves the code width"),
            })
        })?),
    };
    Ok(StrColumn { codes, dict: sc.dict.clone() })
}

/// Fan a candidate list out over contiguous chunks, run the (fallible)
/// sequential gather per chunk, and concatenate thread-major.
fn collect_chunks<T: Send>(
    cands: &[Oid],
    threads: usize,
    f: impl Fn(&[Oid]) -> Result<Vec<T>, EngineError> + Sync,
) -> Result<Vec<T>, EngineError> {
    let parts = crate::par::fan_out(cands.len(), threads, |lo, hi| f(&cands[lo..hi]));
    let mut out = Vec::with_capacity(cands.len());
    for p in parts {
        out.extend(p?);
    }
    Ok(out)
}

/// Reconstruct a sub-BAT: candidates become the (materialized) head, the
/// gathered values the tail.
pub fn reconstruct<M: MemTracker>(
    trk: &mut M,
    bat: &Bat,
    cands: &[Oid],
) -> Result<Bat, EngineError> {
    let tail = match bat.tail() {
        Column::I32(_) => Column::I32(fetch_i32(trk, bat, cands)?),
        Column::F64(_) => Column::F64(fetch_f64(trk, bat, cands)?),
        Column::Str(_) => Column::Str(fetch_str(trk, bat, cands)?),
        Column::U8(_) => Column::U8(fetch_u8(trk, bat, cands)?),
        Column::Oid(_) => Column::Oid(fetch_oid(trk, bat, cands)?),
        other => {
            return Err(EngineError::UnsupportedType { op: "reconstruct", ty: other.value_type() })
        }
    };
    Ok(Bat::new(Head::Oids(cands.to_vec()), tail)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::NullTracker;
    use monet_core::storage::Value;

    fn bat() -> Bat {
        Bat::with_void_head(1000, Column::I32(vec![10, 20, 30, 40]))
    }

    #[test]
    fn positional_fetch() {
        let vals = fetch_i32(&mut NullTracker, &bat(), &[1001, 1003]).unwrap();
        assert_eq!(vals, vec![20, 40]);
    }

    #[test]
    fn reconstruct_carries_oids() {
        let sub = reconstruct(&mut NullTracker, &bat(), &[1002, 1000]).unwrap();
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.bun(0), (1002, Value::I32(30)));
        assert_eq!(sub.bun(1), (1000, Value::I32(10)));
        assert!(!sub.head_is_void());
    }

    #[test]
    fn str_fetch_keeps_encoding() {
        let b = Bat::with_void_head(0, Column::Str(StrColumn::from_strs(["AIR", "MAIL", "SHIP"])));
        let sc = fetch_str(&mut NullTracker, &b, &[2, 0]).unwrap();
        assert_eq!(sc.get(0), "SHIP");
        assert_eq!(sc.get(1), "AIR");
        assert_eq!(sc.codes.width(), 1);
    }

    #[test]
    fn non_void_head_rejected() {
        let b = Bat::new(Head::Oids(vec![5, 6]), Column::I32(vec![1, 2])).unwrap();
        assert!(matches!(
            fetch_i32(&mut NullTracker, &b, &[5]),
            Err(EngineError::Storage(StorageError::NonVoidHead))
        ));
    }

    #[test]
    fn empty_candidates_yield_empty() {
        assert!(fetch_i32(&mut NullTracker, &bat(), &[]).unwrap().is_empty());
        assert_eq!(reconstruct(&mut NullTracker, &bat(), &[]).unwrap().len(), 0);
    }

    #[test]
    fn parallel_fetches_are_bit_identical_to_sequential() {
        let n = 5000usize;
        let bi = Bat::with_void_head(100, Column::I32((0..n as i32).map(|i| i * 3).collect()));
        let bf = Bat::with_void_head(100, Column::F64((0..n).map(|i| i as f64 / 7.0).collect()));
        let bs = Bat::with_void_head(
            100,
            Column::Str(StrColumn::from_strs(
                (0..n).map(|i| ["AIR", "MAIL", "SHIP", "RAIL"][i % 4]),
            )),
        );
        let cands: Vec<Oid> = (0..n as Oid).filter(|o| o % 3 != 1).map(|o| o + 100).collect();
        for threads in [1usize, 2, 5, 8, 64] {
            assert_eq!(
                par_fetch_i32(&bi, &cands, threads).unwrap(),
                fetch_i32(&mut NullTracker, &bi, &cands).unwrap()
            );
            assert_eq!(
                par_fetch_f64(&bf, &cands, threads).unwrap(),
                fetch_f64(&mut NullTracker, &bf, &cands).unwrap()
            );
            let par = par_fetch_str(&bs, &cands, threads).unwrap();
            let seq = fetch_str(&mut NullTracker, &bs, &cands).unwrap();
            assert_eq!(par.codes, seq.codes, "threads={threads}");
        }
        // Type errors surface the same way.
        assert!(matches!(par_fetch_i32(&bf, &cands, 4), Err(EngineError::UnsupportedType { .. })));
        assert!(par_fetch_f64(&bf, &[], 4).unwrap().is_empty());
    }
}
