//! Candidate-list combinators: conjunctive and disjunctive selections.
//!
//! Monet evaluates multi-predicate selections as a sequence of single-column
//! scans whose candidate OID lists are then intersected/united — each scan
//! keeps its optimal stride-locality (§3.1), and the combinators run over
//! small sorted OID lists. Candidate lists produced by the scan selects are
//! ascending by construction, which these combinators require and preserve.

use monet_core::storage::Oid;

/// Intersect two ascending candidate lists (`AND` of predicates).
pub fn intersect(a: &[Oid], b: &[Oid]) -> Vec<Oid> {
    debug_assert!(a.windows(2).all(|w| w[0] < w[1]), "a must be strictly ascending");
    debug_assert!(b.windows(2).all(|w| w[0] < w[1]), "b must be strictly ascending");
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Unite two ascending candidate lists (`OR` of predicates).
pub fn union(a: &[Oid], b: &[Oid]) -> Vec<Oid> {
    debug_assert!(a.windows(2).all(|w| w[0] < w[1]), "a must be strictly ascending");
    debug_assert!(b.windows(2).all(|w| w[0] < w[1]), "b must be strictly ascending");
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        let take_a = j >= b.len() || (i < a.len() && a[i] <= b[j]);
        if take_a {
            if i < a.len() {
                if j < b.len() && a[i] == b[j] {
                    j += 1;
                }
                out.push(a[i]);
                i += 1;
            }
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out
}

/// Subtract: candidates in `a` but not in `b` (`AND NOT`).
pub fn difference(a: &[Oid], b: &[Oid]) -> Vec<Oid> {
    debug_assert!(a.windows(2).all(|w| w[0] < w[1]), "a must be strictly ascending");
    debug_assert!(b.windows(2).all(|w| w[0] < w[1]), "b must be strictly ascending");
    let mut out = Vec::with_capacity(a.len());
    let mut j = 0;
    for &x in a {
        while j < b.len() && b[j] < x {
            j += 1;
        }
        if j >= b.len() || b[j] != x {
            out.push(x);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intersect_union_difference_basics() {
        let a = vec![1, 3, 5, 7, 9];
        let b = vec![3, 4, 5, 10];
        assert_eq!(intersect(&a, &b), vec![3, 5]);
        assert_eq!(union(&a, &b), vec![1, 3, 4, 5, 7, 9, 10]);
        assert_eq!(difference(&a, &b), vec![1, 7, 9]);
    }

    #[test]
    fn empty_operands() {
        let a = vec![1, 2, 3];
        assert!(intersect(&a, &[]).is_empty());
        assert!(intersect(&[], &a).is_empty());
        assert_eq!(union(&a, &[]), a);
        assert_eq!(union(&[], &a), a);
        assert_eq!(difference(&a, &[]), a);
        assert!(difference(&[], &a).is_empty());
    }

    #[test]
    fn disjoint_and_identical() {
        let a = vec![1, 2];
        let b = vec![3, 4];
        assert!(intersect(&a, &b).is_empty());
        assert_eq!(union(&a, &b), vec![1, 2, 3, 4]);
        assert_eq!(intersect(&a, &a), a);
        assert_eq!(union(&a, &a), a);
        assert!(difference(&a, &a).is_empty());
    }

    #[test]
    fn composed_conjunction_matches_direct_filter() {
        use crate::select::{range_select_f64, range_select_i32};
        use memsim::NullTracker;
        use monet_core::storage::{Bat, Column};

        let n = 10_000;
        let qty = Bat::with_void_head(0, Column::I32((0..n).map(|i| i % 50).collect()));
        let price = Bat::with_void_head(0, Column::F64((0..n).map(|i| (i % 97) as f64).collect()));

        let c1 = range_select_i32(&mut NullTracker, &qty, 10, 20).unwrap();
        let c2 = range_select_f64(&mut NullTracker, &price, 30.0, 60.0).unwrap();
        let both = intersect(&c1, &c2);

        let expect: Vec<u32> = (0..n)
            .filter(|&i| (10..=20).contains(&(i % 50)) && (30..=60).contains(&(i % 97)))
            .map(|i| i as u32)
            .collect();
        assert_eq!(both, expect);
        assert!(!both.is_empty());
    }
}
