//! Grouping and grouped aggregation — §3.2.
//!
//! "Hash-grouping scans the relation once, keeping a temporary hash-table
//! where the GROUP-BY values are a key that give access to the aggregate
//! totals. This number of groups is often limited, such that this hash-table
//! fits the L2 cache, and probably also the L1 cache. This makes
//! hash-grouping superior to sort/merge concerning main-memory access."
//!
//! Both variants are provided; for byte-encoded group keys the hash table
//! degenerates into a direct-indexed array of ≤ 65536 slots — the best case
//! the paper describes.

use memsim::{track_read, MemTracker, Work};
use monet_core::storage::{Bat, Codes, Column};

use crate::EngineError;

/// A `(group key code, aggregate)` result row, ordered by code.
pub type GroupSums = Vec<(u32, f64)>;

fn codes_of<'a>(bat: &'a Bat, op: &'static str) -> Result<CodesView<'a>, EngineError> {
    match bat.tail() {
        Column::U8(v) => Ok(CodesView::U8(v)),
        Column::Str(sc) => match &sc.codes {
            Codes::U8(v) => Ok(CodesView::U8(v)),
            Codes::U16(v) => Ok(CodesView::U16(v)),
        },
        other => Err(EngineError::UnsupportedType { op, ty: other.value_type() }),
    }
}

enum CodesView<'a> {
    U8(&'a [u8]),
    U16(&'a [u16]),
}

impl CodesView<'_> {
    fn len(&self) -> usize {
        match self {
            CodesView::U8(v) => v.len(),
            CodesView::U16(v) => v.len(),
        }
    }

    fn domain(&self) -> usize {
        match self {
            CodesView::U8(_) => 256,
            CodesView::U16(_) => 65536,
        }
    }

    #[inline]
    fn get(&self, i: usize) -> u32 {
        match self {
            CodesView::U8(v) => v[i] as u32,
            CodesView::U16(v) => v[i] as u32,
        }
    }

    fn track<M: MemTracker>(&self, trk: &mut M, i: usize) {
        match self {
            CodesView::U8(v) => track_read(trk, &v[i]),
            CodesView::U16(v) => track_read(trk, &v[i]),
        }
    }
}

/// The result of one multi-aggregate grouping pass: for every occurring
/// group (ascending by key code) its code, its row count, the sum of each
/// `SUM` column, and the extremum of each `MIN`/`MAX` column.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupedSums {
    /// Occurring key codes, ascending.
    pub codes: Vec<u32>,
    /// Rows per group, aligned with `codes`.
    pub counts: Vec<u64>,
    /// One sum column per `SUM` input column: `sums[col][group]`.
    pub sums: Vec<Vec<f64>>,
    /// One minimum column per `MIN` input column: `mins[col][group]`.
    /// Every occurring group has at least one row, so the extremum exists.
    pub mins: Vec<Vec<i32>>,
    /// One maximum column per `MAX` input column: `maxs[col][group]`.
    pub maxs: Vec<Vec<i32>>,
}

fn f64_cols<'a>(
    keys: &Bat,
    values: &[&'a Bat],
    op: &'static str,
) -> Result<Vec<&'a [f64]>, EngineError> {
    let mut cols = Vec::with_capacity(values.len());
    for v in values {
        assert_eq!(keys.len(), v.len(), "group keys and values must align");
        cols.push(
            v.tail()
                .as_f64()
                .ok_or(EngineError::UnsupportedType { op, ty: v.tail().value_type() })?,
        );
    }
    Ok(cols)
}

fn i32_cols<'a>(
    keys: &Bat,
    values: &[&'a Bat],
    op: &'static str,
) -> Result<Vec<&'a [i32]>, EngineError> {
    let mut cols = Vec::with_capacity(values.len());
    for v in values {
        assert_eq!(keys.len(), v.len(), "group keys and values must align");
        cols.push(
            v.tail()
                .as_i32()
                .ok_or(EngineError::UnsupportedType { op, ty: v.tail().value_type() })?,
        );
    }
    Ok(cols)
}

/// Hash-group (direct-indexed for encoded keys) with `COUNT`, any number of
/// `SUM(F64)` columns, and any number of `MIN(I32)`/`MAX(I32)` columns, all
/// accumulated in a **single pass** over the keys — the multi-aggregate
/// core behind [`hash_group_multi_sum_f64`] and the executor's grouped
/// aggregation.
pub fn hash_group_multi_agg<M: MemTracker>(
    trk: &mut M,
    keys: &Bat,
    sum_cols: &[&Bat],
    min_cols: &[&Bat],
    max_cols: &[&Bat],
) -> Result<GroupedSums, EngineError> {
    let codes = codes_of(keys, "hash_group_multi_agg")?;
    let scols = f64_cols(keys, sum_cols, "hash_group_multi_agg")?;
    let mincols = i32_cols(keys, min_cols, "hash_group_multi_agg")?;
    let maxcols = i32_cols(keys, max_cols, "hash_group_multi_agg")?;
    let domain = codes.domain();
    let mut counts = vec![0u64; domain];
    let mut sums = vec![vec![0f64; domain]; scols.len()];
    let mut mins = vec![vec![i32::MAX; domain]; mincols.len()];
    let mut maxs = vec![vec![i32::MIN; domain]; maxcols.len()];
    for i in 0..codes.len() {
        if M::ENABLED {
            codes.track(trk, i);
            trk.work(Work::HashTuple, 1);
        }
        let c = codes.get(i) as usize;
        counts[c] += 1;
        for (col, sum) in scols.iter().zip(&mut sums) {
            if M::ENABLED {
                track_read(trk, &col[i]);
            }
            sum[c] += col[i];
        }
        for (col, min) in mincols.iter().zip(&mut mins) {
            if M::ENABLED {
                track_read(trk, &col[i]);
            }
            min[c] = min[c].min(col[i]);
        }
        for (col, max) in maxcols.iter().zip(&mut maxs) {
            if M::ENABLED {
                track_read(trk, &col[i]);
            }
            max[c] = max[c].max(col[i]);
        }
    }
    Ok(project_occurring(domain, counts, sums, mins, maxs))
}

/// Keep only the occurring groups (counts > 0), ascending by code — shared
/// by the sequential and parallel kernels so both project identically.
fn project_occurring(
    domain: usize,
    counts: Vec<u64>,
    sums: Vec<Vec<f64>>,
    mins: Vec<Vec<i32>>,
    maxs: Vec<Vec<i32>>,
) -> GroupedSums {
    let occurring: Vec<u32> = (0..domain as u32).filter(|&c| counts[c as usize] > 0).collect();
    let take_f64 =
        |col: &Vec<f64>| -> Vec<f64> { occurring.iter().map(|&c| col[c as usize]).collect() };
    let take_i32 =
        |col: &Vec<i32>| -> Vec<i32> { occurring.iter().map(|&c| col[c as usize]).collect() };
    GroupedSums {
        counts: occurring.iter().map(|&c| counts[c as usize]).collect(),
        sums: sums.iter().map(take_f64).collect(),
        mins: mins.iter().map(take_i32).collect(),
        maxs: maxs.iter().map(take_i32).collect(),
        codes: occurring,
    }
}

/// Hash-group with `COUNT` and `SUM(F64)` columns only — a thin wrapper
/// over [`hash_group_multi_agg`].
pub fn hash_group_multi_sum_f64<M: MemTracker>(
    trk: &mut M,
    keys: &Bat,
    values: &[&Bat],
) -> Result<GroupedSums, EngineError> {
    hash_group_multi_agg(trk, keys, values, &[], &[])
}

/// Parallel multi-aggregate grouping, **bit-identical** to
/// [`hash_group_multi_sum_f64`] at every thread count.
///
/// Row-chunked fan-out with per-thread partial sums would merge each group's
/// `f64` sum in a different association order than the sequential kernel —
/// not bit-identical. Instead the fan-out is over the *group domain*: each
/// worker owns a contiguous range of key codes, scans the whole input, and
/// accumulates only its own groups. Per group, additions happen in row order
/// — exactly the sequential order — so sums (and counts) match bit for bit,
/// and the domain slices concatenate thread-major into the final arrays.
/// Workers re-read the (sequential-bandwidth-friendly) key and value arrays,
/// trading redundant streaming reads for cache-resident accumulators and a
/// determinism guarantee; `COUNT` alone would not need this, but `SUM(F64)`
/// does.
pub fn par_hash_group_multi_sum_f64(
    keys: &Bat,
    values: &[&Bat],
    threads: usize,
) -> Result<GroupedSums, EngineError> {
    par_hash_group_multi_agg(keys, values, &[], &[], threads).map(|(g, _)| g)
}

/// Parallel multi-aggregate grouping (sums, mins, maxs), **bit-identical**
/// to [`hash_group_multi_agg`] at every thread count, via the same
/// group-domain-sliced fan-out as [`par_hash_group_multi_sum_f64`].
///
/// Also returns the per-worker *row accounting*: how many input rows each
/// worker's domain slice accumulated. The slices partition the key domain,
/// so the shards sum to the input row count — the grouped-aggregate
/// counterpart of the select kernels' matches-per-chunk counters.
pub fn par_hash_group_multi_agg(
    keys: &Bat,
    sum_cols: &[&Bat],
    min_cols: &[&Bat],
    max_cols: &[&Bat],
    threads: usize,
) -> Result<(GroupedSums, Vec<usize>), EngineError> {
    let codes = codes_of(keys, "par_hash_group_multi_agg")?;
    if threads <= 1 || codes.len() < 2 {
        let g = hash_group_multi_agg(&mut memsim::NullTracker, keys, sum_cols, min_cols, max_cols)?;
        let n = codes.len();
        return Ok((g, vec![n]));
    }
    let scols = f64_cols(keys, sum_cols, "par_hash_group_multi_agg")?;
    let mincols = i32_cols(keys, min_cols, "par_hash_group_multi_agg")?;
    let maxcols = i32_cols(keys, max_cols, "par_hash_group_multi_agg")?;
    let domain = codes.domain();
    let n = codes.len();

    // Each part: (code range start, counts over the range, sums / mins /
    // maxs per column over the range).
    type Part = (usize, Vec<u64>, Vec<Vec<f64>>, Vec<Vec<i32>>, Vec<Vec<i32>>);
    let parts: Vec<Part> = crate::par::fan_out(domain, threads, |glo, ghi| {
        let mut counts = vec![0u64; ghi - glo];
        let mut sums = vec![vec![0f64; ghi - glo]; scols.len()];
        let mut mins = vec![vec![i32::MAX; ghi - glo]; mincols.len()];
        let mut maxs = vec![vec![i32::MIN; ghi - glo]; maxcols.len()];
        for i in 0..n {
            let c = codes.get(i) as usize;
            if c < glo || c >= ghi {
                continue;
            }
            counts[c - glo] += 1;
            for (col, sum) in scols.iter().zip(&mut sums) {
                sum[c - glo] += col[i];
            }
            for (col, min) in mincols.iter().zip(&mut mins) {
                min[c - glo] = min[c - glo].min(col[i]);
            }
            for (col, max) in maxcols.iter().zip(&mut maxs) {
                max[c - glo] = max[c - glo].max(col[i]);
            }
        }
        (glo, counts, sums, mins, maxs)
    });

    // Stitch the domain slices back together (they partition 0..domain in
    // order) and project the occurring groups exactly as the sequential
    // kernel does.
    let shards: Vec<usize> =
        parts.iter().map(|(_, pc, ..)| pc.iter().map(|&c| c as usize).sum()).collect();
    let mut counts = vec![0u64; domain];
    let mut sums = vec![vec![0f64; domain]; scols.len()];
    let mut mins = vec![vec![i32::MAX; domain]; mincols.len()];
    let mut maxs = vec![vec![i32::MIN; domain]; maxcols.len()];
    for (glo, pc, ps, pmin, pmax) in parts {
        counts[glo..glo + pc.len()].copy_from_slice(&pc);
        for (full, part) in sums.iter_mut().zip(ps) {
            full[glo..glo + part.len()].copy_from_slice(&part);
        }
        for (full, part) in mins.iter_mut().zip(pmin) {
            full[glo..glo + part.len()].copy_from_slice(&part);
        }
        for (full, part) in maxs.iter_mut().zip(pmax) {
            full[glo..glo + part.len()].copy_from_slice(&part);
        }
    }
    Ok((project_occurring(domain, counts, sums, mins, maxs), shards))
}

/// Hash-group (direct-indexed for encoded keys) + `SUM` of an `F64` column.
///
/// Returns `(code, sum)` for every occurring group, ascending by code.
pub fn hash_group_sum_f64<M: MemTracker>(
    trk: &mut M,
    keys: &Bat,
    values: &Bat,
) -> Result<GroupSums, EngineError> {
    let grouped = hash_group_multi_sum_f64(trk, keys, &[values])?;
    Ok(grouped
        .codes
        .into_iter()
        .zip(grouped.sums.into_iter().next().expect("one column"))
        .collect())
}

/// Sort-group + `SUM`: sorts `(code, value)` pairs then merges runs — the
/// sort/merge grouping baseline of §3.2. Same output as
/// [`hash_group_sum_f64`].
pub fn sort_group_sum_f64<M: MemTracker>(
    trk: &mut M,
    keys: &Bat,
    values: &Bat,
) -> Result<GroupSums, EngineError> {
    assert_eq!(keys.len(), values.len(), "group keys and values must align");
    let codes = codes_of(keys, "sort_group_sum_f64")?;
    let vals = values.tail().as_f64().ok_or(EngineError::UnsupportedType {
        op: "sort_group_sum_f64",
        ty: values.tail().value_type(),
    })?;
    let mut pairs: Vec<(u32, f64)> = (0..codes.len())
        .map(|i| {
            if M::ENABLED {
                codes.track(trk, i);
                track_read(trk, &vals[i]);
                trk.work(Work::SortTuple, 1);
            }
            (codes.get(i), vals[i])
        })
        .collect();
    pairs.sort_by_key(|&(c, _)| c);
    if M::ENABLED {
        // The sort's random access over the whole pair array: charge one
        // extra logical pass per log2(n) levels (coarse, deliberately — the
        // paper's point is only that this is worse than hash grouping).
        let levels = (pairs.len().max(2) as f64).log2().ceil() as u64;
        trk.work(Work::SortTuple, pairs.len() as u64 * levels);
    }
    let mut out = GroupSums::new();
    for (c, v) in pairs {
        match out.last_mut() {
            Some((lc, sum)) if *lc == c => *sum += v,
            _ => out.push((c, v)),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::NullTracker;
    use monet_core::storage::StrColumn;

    fn keys() -> Bat {
        Bat::with_void_head(
            0,
            Column::Str(StrColumn::from_strs(["AIR", "MAIL", "AIR", "SHIP", "MAIL", "AIR"])),
        )
    }

    fn values() -> Bat {
        Bat::with_void_head(0, Column::F64(vec![1.0, 2.0, 4.0, 8.0, 16.0, 32.0]))
    }

    #[test]
    fn hash_group_sums_per_code() {
        let g = hash_group_sum_f64(&mut NullTracker, &keys(), &values()).unwrap();
        // AIR=0, MAIL=1, SHIP=2 by insertion order.
        assert_eq!(g, vec![(0, 37.0), (1, 18.0), (2, 8.0)]);
    }

    #[test]
    fn sort_group_agrees_with_hash_group() {
        let a = hash_group_sum_f64(&mut NullTracker, &keys(), &values()).unwrap();
        let b = sort_group_sum_f64(&mut NullTracker, &keys(), &values()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn multi_sum_is_one_pass_over_any_number_of_columns() {
        let k = keys();
        let v1 = values();
        let v2 = Bat::with_void_head(0, Column::F64(vec![1.0; 6]));
        let g = hash_group_multi_sum_f64(&mut NullTracker, &k, &[&v1, &v2]).unwrap();
        assert_eq!(g.codes, vec![0, 1, 2]);
        assert_eq!(g.counts, vec![3, 2, 1]);
        assert_eq!(g.sums[0], vec![37.0, 18.0, 8.0]);
        assert_eq!(g.sums[1], vec![3.0, 2.0, 1.0]);
        // Zero value columns: still groups and counts.
        let g = hash_group_multi_sum_f64(&mut NullTracker, &k, &[]).unwrap();
        assert_eq!(g.counts, vec![3, 2, 1]);
        assert!(g.sums.is_empty());
    }

    #[test]
    fn u8_keys_supported_directly() {
        let k = Bat::with_void_head(0, Column::U8(vec![3, 3, 1]));
        let v = Bat::with_void_head(0, Column::F64(vec![1.0, 2.0, 4.0]));
        let g = hash_group_sum_f64(&mut NullTracker, &k, &v).unwrap();
        assert_eq!(g, vec![(1, 4.0), (3, 3.0)]);
    }

    #[test]
    fn empty_input() {
        let k = Bat::with_void_head(0, Column::U8(vec![]));
        let v = Bat::with_void_head(0, Column::F64(vec![]));
        assert!(hash_group_sum_f64(&mut NullTracker, &k, &v).unwrap().is_empty());
        assert!(sort_group_sum_f64(&mut NullTracker, &k, &v).unwrap().is_empty());
        assert!(par_hash_group_multi_sum_f64(&k, &[&v], 8).unwrap().codes.is_empty());
    }

    #[test]
    fn parallel_grouping_is_bit_identical_to_sequential() {
        // Values deliberately not exactly representable: bit-identity must
        // come from preserving the per-group fp addition order, not luck.
        let n = 7001usize;
        let k = Bat::with_void_head(0, Column::U8((0..n).map(|i| (i % 23) as u8).collect()));
        let v1 = Bat::with_void_head(0, Column::F64((0..n).map(|i| i as f64 / 7.0).collect()));
        let v2 = Bat::with_void_head(
            0,
            Column::F64((0..n).map(|i| (i * i % 97) as f64 * 0.1).collect()),
        );
        let seq = hash_group_multi_sum_f64(&mut NullTracker, &k, &[&v1, &v2]).unwrap();
        for threads in [1usize, 2, 4, 7, 64, 1000] {
            let par = par_hash_group_multi_sum_f64(&k, &[&v1, &v2], threads).unwrap();
            assert_eq!(par.codes, seq.codes, "threads={threads}");
            assert_eq!(par.counts, seq.counts, "threads={threads}");
            for (pc, sc) in par.sums.iter().zip(&seq.sums) {
                for (p, s) in pc.iter().zip(sc) {
                    assert_eq!(p.to_bits(), s.to_bits(), "threads={threads}: fp order differs");
                }
            }
        }
    }

    #[test]
    fn grouped_min_max_in_one_pass() {
        let k = keys();
        let v = Bat::with_void_head(0, Column::I32(vec![5, -2, 9, 7, 4, 1]));
        let g = hash_group_multi_agg(&mut NullTracker, &k, &[], &[&v], &[&v]).unwrap();
        // AIR rows: 5, 9, 1; MAIL rows: -2, 4; SHIP rows: 7.
        assert_eq!(g.codes, vec![0, 1, 2]);
        assert_eq!(g.mins, vec![vec![1, -2, 7]]);
        assert_eq!(g.maxs, vec![vec![9, 4, 7]]);
        assert_eq!(g.counts, vec![3, 2, 1]);
        assert!(g.sums.is_empty());
    }

    #[test]
    fn parallel_multi_agg_matches_sequential_and_shards_sum_to_rows() {
        let n = 5003usize;
        let k = Bat::with_void_head(0, Column::U8((0..n).map(|i| (i % 17) as u8).collect()));
        let s = Bat::with_void_head(0, Column::F64((0..n).map(|i| i as f64 / 3.0).collect()));
        let v = Bat::with_void_head(
            0,
            Column::I32((0..n).map(|i| ((i * 31) % 1000) as i32 - 500).collect()),
        );
        let seq = hash_group_multi_agg(&mut NullTracker, &k, &[&s], &[&v], &[&v]).unwrap();
        for threads in [1usize, 2, 4, 7, 64] {
            let (par, shards) = par_hash_group_multi_agg(&k, &[&s], &[&v], &[&v], threads).unwrap();
            assert_eq!(par.codes, seq.codes, "threads={threads}");
            assert_eq!(par.mins, seq.mins, "threads={threads}");
            assert_eq!(par.maxs, seq.maxs, "threads={threads}");
            for (pc, sc) in par.sums.iter().zip(&seq.sums) {
                for (p, q) in pc.iter().zip(sc) {
                    assert_eq!(p.to_bits(), q.to_bits(), "threads={threads}: fp order differs");
                }
            }
            assert_eq!(shards.iter().sum::<usize>(), n, "threads={threads}: shards cover rows");
        }
    }

    #[test]
    fn unsupported_key_type_errors() {
        let k = Bat::with_void_head(0, Column::I32(vec![1]));
        let v = Bat::with_void_head(0, Column::F64(vec![1.0]));
        assert!(matches!(
            hash_group_sum_f64(&mut NullTracker, &k, &v),
            Err(EngineError::UnsupportedType { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn misaligned_inputs_panic() {
        let k = Bat::with_void_head(0, Column::U8(vec![1]));
        let v = Bat::with_void_head(0, Column::F64(vec![]));
        let _ = hash_group_sum_f64(&mut NullTracker, &k, &v);
    }
}
