//! Scan aggregates — the "simple aggregation (e.g. Max or Sum)" of §2,
//! whose memory behaviour is entirely determined by the scanned column's
//! stride (Figure 3).

use memsim::{track_read, MemTracker, Work};
use monet_core::storage::{Bat, Oid};

use crate::EngineError;

fn positions<'a>(bat: &Bat, cands: Option<&'a [Oid]>) -> Result<Positions<'a>, EngineError> {
    match cands {
        None => Ok(Positions::All(bat.len())),
        Some(c) => {
            if !bat.head_is_void() {
                return Err(EngineError::Storage(monet_core::storage::StorageError::NonVoidHead));
            }
            Ok(Positions::Cands(c, seqbase(bat)))
        }
    }
}

fn seqbase(bat: &Bat) -> Oid {
    match bat.head() {
        monet_core::storage::Head::Void { seqbase } => *seqbase,
        monet_core::storage::Head::Oids(_) => unreachable!("checked by positions()"),
    }
}

enum Positions<'a> {
    All(usize),
    Cands(&'a [Oid], Oid),
}

impl Positions<'_> {
    fn for_each(self, mut f: impl FnMut(usize)) {
        match self {
            Positions::All(n) => (0..n).for_each(f),
            Positions::Cands(c, base) => c.iter().for_each(|&oid| f((oid - base) as usize)),
        }
    }
}

/// `SUM` over an `I32` tail, optionally restricted to candidate OIDs
/// (which requires a void head for positional access).
pub fn sum_i32<M: MemTracker>(
    trk: &mut M,
    bat: &Bat,
    cands: Option<&[Oid]>,
) -> Result<i64, EngineError> {
    let data = bat
        .tail()
        .as_i32()
        .ok_or(EngineError::UnsupportedType { op: "sum_i32", ty: bat.tail().value_type() })?;
    let mut sum = 0i64;
    positions(bat, cands)?.for_each(|i| {
        if M::ENABLED {
            track_read(trk, &data[i]);
            trk.work(Work::ScanIter, 1);
        }
        sum += data[i] as i64;
    });
    Ok(sum)
}

/// `SUM` over an `F64` tail.
pub fn sum_f64<M: MemTracker>(
    trk: &mut M,
    bat: &Bat,
    cands: Option<&[Oid]>,
) -> Result<f64, EngineError> {
    let data = bat
        .tail()
        .as_f64()
        .ok_or(EngineError::UnsupportedType { op: "sum_f64", ty: bat.tail().value_type() })?;
    let mut sum = 0f64;
    positions(bat, cands)?.for_each(|i| {
        if M::ENABLED {
            track_read(trk, &data[i]);
            trk.work(Work::ScanIter, 1);
        }
        sum += data[i];
    });
    Ok(sum)
}

/// `MAX` over an `I32` tail (`None` when no qualifying tuples).
pub fn max_i32<M: MemTracker>(
    trk: &mut M,
    bat: &Bat,
    cands: Option<&[Oid]>,
) -> Result<Option<i32>, EngineError> {
    let data = bat
        .tail()
        .as_i32()
        .ok_or(EngineError::UnsupportedType { op: "max_i32", ty: bat.tail().value_type() })?;
    let mut max: Option<i32> = None;
    positions(bat, cands)?.for_each(|i| {
        if M::ENABLED {
            track_read(trk, &data[i]);
            trk.work(Work::ScanIter, 1);
        }
        max = Some(max.map_or(data[i], |m| m.max(data[i])));
    });
    Ok(max)
}

/// `MIN` over an `I32` tail.
pub fn min_i32<M: MemTracker>(
    trk: &mut M,
    bat: &Bat,
    cands: Option<&[Oid]>,
) -> Result<Option<i32>, EngineError> {
    let data = bat
        .tail()
        .as_i32()
        .ok_or(EngineError::UnsupportedType { op: "min_i32", ty: bat.tail().value_type() })?;
    let mut min: Option<i32> = None;
    positions(bat, cands)?.for_each(|i| {
        if M::ENABLED {
            track_read(trk, &data[i]);
            trk.work(Work::ScanIter, 1);
        }
        min = Some(min.map_or(data[i], |m| m.min(data[i])));
    });
    Ok(min)
}

/// `COUNT` (trivially the candidate count or the BAT length; provided for
/// pipeline completeness).
pub fn count(bat: &Bat, cands: Option<&[Oid]>) -> usize {
    cands.map_or(bat.len(), |c| c.len())
}

/// Parallel `SUM(I32)`: chunked fan-out with an exact `i64` partial-sum
/// merge. Integer addition is associative, so the result is bit-identical to
/// [`sum_i32`] at any thread count (unlike `F64` sums, which the executor
/// therefore keeps sequential).
pub fn par_sum_i32(bat: &Bat, cands: Option<&[Oid]>, threads: usize) -> Result<i64, EngineError> {
    let parts =
        par_chunks(bat, cands, threads, |chunk| sum_i32(&mut memsim::NullTracker, bat, chunk))?;
    Ok(parts.into_iter().sum())
}

/// Parallel `MAX(I32)` (exact merge; bit-identical to [`max_i32`]).
pub fn par_max_i32(
    bat: &Bat,
    cands: Option<&[Oid]>,
    threads: usize,
) -> Result<Option<i32>, EngineError> {
    let parts =
        par_chunks(bat, cands, threads, |chunk| max_i32(&mut memsim::NullTracker, bat, chunk))?;
    Ok(parts.into_iter().flatten().max())
}

/// Parallel `MIN(I32)` (exact merge; bit-identical to [`min_i32`]).
pub fn par_min_i32(
    bat: &Bat,
    cands: Option<&[Oid]>,
    threads: usize,
) -> Result<Option<i32>, EngineError> {
    let parts =
        par_chunks(bat, cands, threads, |chunk| min_i32(&mut memsim::NullTracker, bat, chunk))?;
    Ok(parts.into_iter().flatten().min())
}

/// Run a sequential aggregate kernel over contiguous chunks of the scanned
/// positions (candidate sublists, or synthesized void-OID ranges for a full
/// scan), returning per-chunk results thread-major.
fn par_chunks<T: Send>(
    bat: &Bat,
    cands: Option<&[Oid]>,
    threads: usize,
    f: impl Fn(Option<&[Oid]>) -> Result<T, EngineError> + Sync,
) -> Result<Vec<T>, EngineError> {
    // Restricting a kernel to a chunk requires positional access, i.e. the
    // same void head the candidate path needs; fall back to one sequential
    // call otherwise.
    let parts = match cands {
        Some(c) => crate::par::fan_out(c.len(), threads, |lo, hi| f(Some(&c[lo..hi]))),
        None if bat.head_is_void() && threads > 1 => {
            let base = match bat.head() {
                monet_core::storage::Head::Void { seqbase } => *seqbase,
                monet_core::storage::Head::Oids(_) => unreachable!("checked head_is_void"),
            };
            crate::par::fan_out(bat.len(), threads, |lo, hi| {
                let chunk: Vec<Oid> = (lo..hi).map(|i| base + i as Oid).collect();
                f(Some(&chunk))
            })
        }
        None => vec![f(None)],
    };
    parts.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::NullTracker;
    use monet_core::storage::Column;

    fn bat() -> Bat {
        Bat::with_void_head(10, Column::I32(vec![4, -2, 9, 9, 1]))
    }

    #[test]
    fn full_aggregates() {
        let b = bat();
        assert_eq!(sum_i32(&mut NullTracker, &b, None).unwrap(), 21);
        assert_eq!(max_i32(&mut NullTracker, &b, None).unwrap(), Some(9));
        assert_eq!(min_i32(&mut NullTracker, &b, None).unwrap(), Some(-2));
        assert_eq!(count(&b, None), 5);
    }

    #[test]
    fn candidate_restricted_aggregates() {
        let b = bat();
        let cands = vec![10, 12, 14]; // values 4, 9, 1
        assert_eq!(sum_i32(&mut NullTracker, &b, Some(&cands)).unwrap(), 14);
        assert_eq!(max_i32(&mut NullTracker, &b, Some(&cands)).unwrap(), Some(9));
        assert_eq!(count(&b, Some(&cands)), 3);
    }

    #[test]
    fn empty_candidates() {
        let b = bat();
        assert_eq!(sum_i32(&mut NullTracker, &b, Some(&[])).unwrap(), 0);
        assert_eq!(max_i32(&mut NullTracker, &b, Some(&[])).unwrap(), None);
    }

    #[test]
    fn f64_sum() {
        let b = Bat::with_void_head(0, Column::F64(vec![1.5, 2.5]));
        assert!((sum_f64(&mut NullTracker, &b, None).unwrap() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn wrong_type_errors() {
        let b = Bat::with_void_head(0, Column::F64(vec![1.0]));
        assert!(matches!(
            sum_i32(&mut NullTracker, &b, None),
            Err(EngineError::UnsupportedType { .. })
        ));
    }

    #[test]
    fn candidates_on_materialized_head_rejected() {
        let b = Bat::new(monet_core::storage::Head::Oids(vec![3, 1]), Column::I32(vec![10, 20]))
            .unwrap();
        assert!(sum_i32(&mut NullTracker, &b, Some(&[1])).is_err());
        // But full scans are fine.
        assert_eq!(sum_i32(&mut NullTracker, &b, None).unwrap(), 30);
    }

    #[test]
    fn parallel_i32_aggregates_are_bit_identical_to_sequential() {
        let vals: Vec<i32> =
            (0..9999i64).map(|i| ((i * 2654435761) % 5000) as i32 - 2500).collect();
        let b = Bat::with_void_head(1000, Column::I32(vals));
        let cands: Vec<Oid> = (1000..10_999).filter(|o| o % 7 != 0).collect();
        for threads in [1usize, 2, 4, 7, 64] {
            for c in [None, Some(cands.as_slice())] {
                assert_eq!(
                    par_sum_i32(&b, c, threads).unwrap(),
                    sum_i32(&mut NullTracker, &b, c).unwrap(),
                    "threads={threads}"
                );
                assert_eq!(
                    par_max_i32(&b, c, threads).unwrap(),
                    max_i32(&mut NullTracker, &b, c).unwrap()
                );
                assert_eq!(
                    par_min_i32(&b, c, threads).unwrap(),
                    min_i32(&mut NullTracker, &b, c).unwrap()
                );
            }
        }
        // Empty candidate lists and materialized heads fall back cleanly.
        assert_eq!(par_sum_i32(&b, Some(&[]), 4).unwrap(), 0);
        assert_eq!(par_min_i32(&b, Some(&[]), 4).unwrap(), None);
        let m = Bat::new(monet_core::storage::Head::Oids(vec![3, 1]), Column::I32(vec![10, 20]))
            .unwrap();
        assert_eq!(par_sum_i32(&m, None, 8).unwrap(), 30);
    }
}
