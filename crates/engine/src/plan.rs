//! The logical query layer: a composable plan builder over decomposed
//! tables.
//!
//! [`Query`] is the fluent entry point —
//!
//! ```
//! use engine::plan::{Agg, Pred, Query};
//! use monet_core::storage::{ColType, TableBuilder, Value};
//!
//! let mut b = TableBuilder::new("item", 0)
//!     .column("shipmode", ColType::Str)
//!     .column("price", ColType::F64);
//! b.push_row(&[Value::from("AIR"), Value::F64(10.0)]).unwrap();
//! let item = b.finish();
//!
//! let plan = Query::scan(&item)
//!     .filter(Pred::range_f64("price", 5.0, 50.0))
//!     .group_by("shipmode")
//!     .agg(Agg::sum("price"))
//!     .build()
//!     .unwrap();
//! println!("{}", plan.explain());
//! ```
//!
//! — producing a validated [`LogicalPlan`] tree. The builder checks column
//! existence and types once, at [`Query::build`]; the physical layer
//! ([`crate::exec`]) then lowers the tree onto the operator kernels and asks
//! the paper's cost model which join algorithm and radix-bit budget to use.
//! Call sites never hard-wire a physical strategy.

use std::fmt;

use monet_core::storage::{DecomposedTable, ValueType};

/// A typed selection predicate over one table's columns.
///
/// Leaves map 1:1 onto the scan-select kernels of [`crate::select`];
/// [`Pred::And`]/[`Pred::Or`] compose candidate OID lists with the
/// combinators of [`crate::candidates`], exactly as Monet evaluates
/// multi-predicate selections (each scan keeps its optimal stride locality).
#[derive(Debug, Clone, PartialEq)]
pub enum Pred {
    /// `lo <= col <= hi` over an `I32` column.
    RangeI32 {
        /// Column name.
        col: String,
        /// Inclusive lower bound.
        lo: i32,
        /// Inclusive upper bound.
        hi: i32,
    },
    /// `lo <= col <= hi` over an `F64` column.
    RangeF64 {
        /// Column name.
        col: String,
        /// Inclusive lower bound.
        lo: f64,
        /// Inclusive upper bound.
        hi: f64,
    },
    /// `col = value` over a dictionary-encoded string column (the §3.1 fast
    /// path: the constant re-maps to a code once, the scan compares bytes).
    EqStr {
        /// Column name.
        col: String,
        /// String constant.
        value: String,
    },
    /// Both sub-predicates hold (candidate-list intersection).
    And(Box<Pred>, Box<Pred>),
    /// Either sub-predicate holds (candidate-list union).
    Or(Box<Pred>, Box<Pred>),
}

impl Pred {
    /// `lo <= col <= hi` over an `I32` column.
    pub fn range_i32(col: &str, lo: i32, hi: i32) -> Self {
        Pred::RangeI32 { col: col.to_owned(), lo, hi }
    }

    /// `lo <= col <= hi` over an `F64` column.
    pub fn range_f64(col: &str, lo: f64, hi: f64) -> Self {
        Pred::RangeF64 { col: col.to_owned(), lo, hi }
    }

    /// `col = value` over an encoded string column.
    pub fn eq_str(col: &str, value: &str) -> Self {
        Pred::EqStr { col: col.to_owned(), value: value.to_owned() }
    }

    /// Conjunction.
    pub fn and(self, other: Pred) -> Self {
        Pred::And(Box::new(self), Box::new(other))
    }

    /// Disjunction.
    pub fn or(self, other: Pred) -> Self {
        Pred::Or(Box::new(self), Box::new(other))
    }

    fn validate(&self, table: &DecomposedTable) -> Result<(), PlanError> {
        match self {
            Pred::RangeI32 { col, .. } => expect_type(table, col, &[ValueType::I32], "I32"),
            Pred::RangeF64 { col, .. } => expect_type(table, col, &[ValueType::F64], "F64"),
            Pred::EqStr { col, .. } => expect_type(table, col, &[ValueType::Str], "Str"),
            Pred::And(a, b) | Pred::Or(a, b) => {
                a.validate(table)?;
                b.validate(table)
            }
        }
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pred::RangeI32 { col, lo, hi } => write!(f, "{lo} <= {col} <= {hi}"),
            Pred::RangeF64 { col, lo, hi } => write!(f, "{lo} <= {col} <= {hi}"),
            Pred::EqStr { col, value } => write!(f, "{col} = {value:?}"),
            Pred::And(a, b) => write!(f, "({a}) AND ({b})"),
            Pred::Or(a, b) => write!(f, "({a}) OR ({b})"),
        }
    }
}

/// An aggregate function over one column (or over rows, for `Count`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Agg {
    /// `SUM(col)` — `F64` or `I32` column (integers sum in `i64` when
    /// ungrouped and in `f64` when grouped).
    Sum(String),
    /// `MIN(col)` — `I32` column.
    Min(String),
    /// `MAX(col)` — `I32` column.
    Max(String),
    /// `COUNT(*)`.
    Count,
}

impl Agg {
    /// `SUM(col)`.
    pub fn sum(col: &str) -> Self {
        Agg::Sum(col.to_owned())
    }

    /// `MIN(col)`.
    pub fn min(col: &str) -> Self {
        Agg::Min(col.to_owned())
    }

    /// `MAX(col)`.
    pub fn max(col: &str) -> Self {
        Agg::Max(col.to_owned())
    }

    /// `COUNT(*)`.
    pub fn count() -> Self {
        Agg::Count
    }

    /// The column this aggregate reads, if any.
    pub fn column(&self) -> Option<&str> {
        match self {
            Agg::Sum(c) | Agg::Min(c) | Agg::Max(c) => Some(c),
            Agg::Count => None,
        }
    }
}

impl fmt::Display for Agg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Agg::Sum(c) => write!(f, "sum({c})"),
            Agg::Min(c) => write!(f, "min({c})"),
            Agg::Max(c) => write!(f, "max({c})"),
            Agg::Count => write!(f, "count(*)"),
        }
    }
}

/// Errors detected while validating a [`Query`] into a [`LogicalPlan`].
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// A referenced column exists in none of the plan's tables.
    UnknownColumn {
        /// The missing column.
        column: String,
        /// Names of the tables that were searched.
        searched: Vec<String>,
    },
    /// A column exists but has the wrong type for its use.
    ColumnType {
        /// The offending column.
        column: String,
        /// What the operation needs.
        expected: &'static str,
        /// What the column actually stores.
        got: ValueType,
    },
    /// A referenced column exists on both sides of a join.
    AmbiguousColumn {
        /// The ambiguous column.
        column: String,
    },
    /// A plan shape the executor does not support.
    Unsupported(&'static str),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::UnknownColumn { column, searched } => {
                write!(f, "unknown column {column:?} (searched {})", searched.join(", "))
            }
            PlanError::ColumnType { column, expected, got } => {
                write!(f, "column {column:?}: expected {expected}, found {got:?}")
            }
            PlanError::AmbiguousColumn { column } => {
                write!(f, "column {column:?} is ambiguous: it exists in both joined tables")
            }
            PlanError::Unsupported(what) => write!(f, "unsupported plan: {what}"),
        }
    }
}

impl std::error::Error for PlanError {}

fn col_type(table: &DecomposedTable, col: &str) -> Option<ValueType> {
    table.bat(col).ok().map(|b| b.tail().value_type())
}

fn expect_type(
    table: &DecomposedTable,
    col: &str,
    allowed: &[ValueType],
    expected: &'static str,
) -> Result<(), PlanError> {
    match col_type(table, col) {
        None => Err(PlanError::UnknownColumn {
            column: col.to_owned(),
            searched: vec![table.name().to_owned()],
        }),
        Some(t) if allowed.contains(&t) => Ok(()),
        Some(t) => Err(PlanError::ColumnType { column: col.to_owned(), expected, got: t }),
    }
}

/// One node of a validated [`LogicalPlan`] tree.
#[derive(Debug, Clone)]
pub enum PlanNode<'a> {
    /// Produce every row of a base table.
    Scan {
        /// The table.
        table: &'a DecomposedTable,
    },
    /// Keep rows satisfying `pred`.
    Filter {
        /// Upstream node.
        input: Box<PlanNode<'a>>,
        /// The predicate.
        pred: Pred,
    },
    /// Equi-join `input` rows with `right` rows on `left_col = right_col`.
    /// The physical algorithm and radix-bit budget are *not* part of the
    /// logical plan — the executor picks them from the cost model.
    Join {
        /// Left (outer) input.
        input: Box<PlanNode<'a>>,
        /// Right (inner) input.
        right: Box<PlanNode<'a>>,
        /// Join column on the left side.
        left_col: String,
        /// Join column on the right side.
        right_col: String,
    },
    /// Aggregate, optionally grouped by an encoded key column.
    GroupAgg {
        /// Upstream node.
        input: Box<PlanNode<'a>>,
        /// Group key column (`None` for whole-input aggregates).
        key: Option<String>,
        /// Aggregates to compute.
        aggs: Vec<Agg>,
    },
}

impl PlanNode<'_> {
    fn explain_into(&self, depth: usize, out: &mut String) {
        let indent = "  ".repeat(depth);
        match self {
            PlanNode::Scan { table } => {
                out.push_str(&format!(
                    "{indent}Scan {} ({} rows x {} BATs)\n",
                    table.name(),
                    table.len(),
                    table.columns().len()
                ));
            }
            PlanNode::Filter { input, pred } => {
                out.push_str(&format!("{indent}Filter [{pred}]\n"));
                input.explain_into(depth + 1, out);
            }
            PlanNode::Join { input, right, left_col, right_col } => {
                out.push_str(&format!(
                    "{indent}Join [{left_col} = {right_col}] (physical plan: chosen by executor)\n"
                ));
                input.explain_into(depth + 1, out);
                right.explain_into(depth + 1, out);
            }
            PlanNode::GroupAgg { input, key, aggs } => {
                let aggs: Vec<String> = aggs.iter().map(|a| a.to_string()).collect();
                match key {
                    Some(k) => {
                        out.push_str(&format!("{indent}GroupAgg key={k} [{}]\n", aggs.join(", ")))
                    }
                    None => out.push_str(&format!("{indent}Agg [{}]\n", aggs.join(", "))),
                }
                input.explain_into(depth + 1, out);
            }
        }
    }
}

/// A validated logical plan, ready for [`crate::exec::execute`].
#[derive(Debug, Clone)]
pub struct LogicalPlan<'a> {
    /// Root of the operator tree.
    pub root: PlanNode<'a>,
}

impl LogicalPlan<'_> {
    /// Human-readable plan tree (an `EXPLAIN`).
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.root.explain_into(0, &mut out);
        out
    }
}

/// Fluent builder for [`LogicalPlan`]s. See the [module docs](self) for an
/// example.
#[derive(Debug, Clone)]
pub struct Query<'a> {
    table: &'a DecomposedTable,
    filter: Option<Pred>,
    join: Option<JoinSpec<'a>>,
    extra_joins: usize,
    group: Option<String>,
    aggs: Vec<Agg>,
}

#[derive(Debug, Clone)]
struct JoinSpec<'a> {
    table: &'a DecomposedTable,
    left_col: String,
    right_col: String,
    right_filter: Option<Pred>,
}

impl<'a> Query<'a> {
    /// Start a query scanning `table`.
    pub fn scan(table: &'a DecomposedTable) -> Self {
        Self { table, filter: None, join: None, extra_joins: 0, group: None, aggs: Vec::new() }
    }

    /// Add a predicate. Repeated calls conjoin (`AND`). Before a
    /// [`join`](Self::join) the predicate applies to the scanned table; after
    /// it, to the joined table.
    pub fn filter(mut self, pred: Pred) -> Self {
        let slot = match &mut self.join {
            Some(j) => &mut j.right_filter,
            None => &mut self.filter,
        };
        *slot = Some(match slot.take() {
            Some(existing) => existing.and(pred),
            None => pred,
        });
        self
    }

    /// Equi-join with `other` on `on.0 = on.1` (left column, right column).
    /// The executor — not the caller — picks the join algorithm and radix
    /// bits from the cost model.
    pub fn join(mut self, other: &'a DecomposedTable, on: (&str, &str)) -> Self {
        if self.join.is_some() {
            // Only one join per plan is executable today; remember the
            // violation and reject it in build() rather than silently
            // dropping the earlier join spec.
            self.extra_joins += 1;
        }
        self.join = Some(JoinSpec {
            table: other,
            left_col: on.0.to_owned(),
            right_col: on.1.to_owned(),
            right_filter: None,
        });
        self
    }

    /// Group by an encoded key column.
    pub fn group_by(mut self, col: &str) -> Self {
        self.group = Some(col.to_owned());
        self
    }

    /// Add an aggregate to compute.
    pub fn agg(mut self, agg: Agg) -> Self {
        self.aggs.push(agg);
        self
    }

    /// Validate and produce the [`LogicalPlan`] tree.
    pub fn build(self) -> Result<LogicalPlan<'a>, PlanError> {
        // Validate everything first: filters against the table they scan,
        // join keys for joinability, outputs against the joined schema.
        if self.extra_joins > 0 {
            return Err(PlanError::Unsupported("multiple joins in one plan"));
        }
        if let Some(pred) = &self.filter {
            pred.validate(self.table)?;
        }
        if let Some(join) = &self.join {
            expect_type(
                self.table,
                &join.left_col,
                &[ValueType::I32, ValueType::Oid],
                "a joinable I32/Oid key",
            )?;
            expect_type(
                join.table,
                &join.right_col,
                &[ValueType::I32, ValueType::Oid],
                "a joinable I32/Oid key",
            )?;
            if let Some(pred) = &join.right_filter {
                pred.validate(join.table)?;
            }
        }
        self.validate_outputs(self.join.as_ref().map(|j| j.table))?;

        // Then assemble the tree.
        let Query { table, filter, join, group, aggs, .. } = self;
        let mut node = PlanNode::Scan { table };
        if let Some(pred) = filter {
            node = PlanNode::Filter { input: Box::new(node), pred };
        }
        if let Some(join) = join {
            let mut right: PlanNode<'a> = PlanNode::Scan { table: join.table };
            if let Some(pred) = join.right_filter {
                right = PlanNode::Filter { input: Box::new(right), pred };
            }
            node = PlanNode::Join {
                input: Box::new(node),
                right: Box::new(right),
                left_col: join.left_col,
                right_col: join.right_col,
            };
        }
        if group.is_some() || !aggs.is_empty() {
            node = PlanNode::GroupAgg { input: Box::new(node), key: group, aggs };
        }
        Ok(LogicalPlan { root: node })
    }

    /// Validate group key and aggregate columns against the output schema
    /// (base table, plus the right table after a join).
    fn validate_outputs(&self, right: Option<&DecomposedTable>) -> Result<(), PlanError> {
        let resolve = |col: &str| -> Result<ValueType, PlanError> {
            let in_left = col_type(self.table, col);
            let in_right = right.and_then(|r| col_type(r, col));
            match (in_left, in_right) {
                // The executor resolves left-first, so a name on both sides
                // would silently read the left column — reject it instead.
                (Some(_), Some(_)) => Err(PlanError::AmbiguousColumn { column: col.to_owned() }),
                (Some(t), None) | (None, Some(t)) => Ok(t),
                (None, None) => {
                    let mut searched = vec![self.table.name().to_owned()];
                    if let Some(r) = right {
                        searched.push(r.name().to_owned());
                    }
                    Err(PlanError::UnknownColumn { column: col.to_owned(), searched })
                }
            }
        };

        if let Some(key) = &self.group {
            if self.aggs.is_empty() {
                return Err(PlanError::Unsupported("group_by requires at least one aggregate"));
            }
            match resolve(key)? {
                ValueType::Str | ValueType::U8 => {}
                got => {
                    return Err(PlanError::ColumnType {
                        column: key.clone(),
                        expected: "an encoded group key (Str or U8)",
                        got,
                    })
                }
            }
        }

        for agg in &self.aggs {
            match agg {
                Agg::Sum(col) => match resolve(col)? {
                    ValueType::F64 | ValueType::I32 => {}
                    got => {
                        return Err(PlanError::ColumnType {
                            column: col.clone(),
                            expected: "a summable column (F64 or I32)",
                            got,
                        })
                    }
                },
                Agg::Min(col) | Agg::Max(col) => match resolve(col)? {
                    ValueType::I32 => {}
                    got => {
                        return Err(PlanError::ColumnType {
                            column: col.clone(),
                            expected: "I32",
                            got,
                        })
                    }
                },
                Agg::Count => {}
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monet_core::storage::{ColType, TableBuilder, Value};

    fn item() -> DecomposedTable {
        let mut b = TableBuilder::new("item", 0)
            .column("qty", ColType::I32)
            .column("price", ColType::F64)
            .column("shipmode", ColType::Str);
        for (q, p, s) in [(1, 10.0, "AIR"), (2, 20.0, "MAIL"), (3, 30.0, "AIR")] {
            b.push_row(&[Value::I32(q), Value::F64(p), Value::from(s)]).unwrap();
        }
        b.finish()
    }

    fn modes() -> DecomposedTable {
        let mut b =
            TableBuilder::new("modes", 0).column("id", ColType::I32).column("fee", ColType::F64);
        for (i, f) in [(1, 0.5), (2, 0.7)] {
            b.push_row(&[Value::I32(i), Value::F64(f)]).unwrap();
        }
        b.finish()
    }

    #[test]
    fn builds_canonical_pipeline() {
        let t = item();
        let plan = Query::scan(&t)
            .filter(Pred::range_f64("price", 5.0, 25.0))
            .group_by("shipmode")
            .agg(Agg::sum("price"))
            .build()
            .unwrap();
        let explain = plan.explain();
        assert!(explain.contains("GroupAgg key=shipmode [sum(price)]"), "{explain}");
        assert!(explain.contains("Filter [5 <= price <= 25]"), "{explain}");
        assert!(explain.contains("Scan item (3 rows"), "{explain}");
    }

    #[test]
    fn unknown_columns_are_rejected() {
        let t = item();
        let err = Query::scan(&t).filter(Pred::range_f64("nope", 0.0, 1.0)).build().unwrap_err();
        assert!(matches!(err, PlanError::UnknownColumn { ref column, .. } if column == "nope"));

        let err = Query::scan(&t).group_by("ghost").agg(Agg::count()).build().unwrap_err();
        assert!(matches!(err, PlanError::UnknownColumn { ref column, .. } if column == "ghost"));
    }

    #[test]
    fn type_mismatches_are_rejected() {
        let t = item();
        // F64 range over an I32 column.
        let err = Query::scan(&t).filter(Pred::range_f64("qty", 0.0, 1.0)).build().unwrap_err();
        assert!(matches!(
            err,
            PlanError::ColumnType { ref column, got: ValueType::I32, .. } if column == "qty"
        ));
        // Grouping by a float column.
        let err = Query::scan(&t).group_by("price").agg(Agg::count()).build().unwrap_err();
        assert!(matches!(err, PlanError::ColumnType { got: ValueType::F64, .. }));
        // Summing a string column.
        let err = Query::scan(&t).agg(Agg::sum("shipmode")).build().unwrap_err();
        assert!(matches!(err, PlanError::ColumnType { got: ValueType::Str, .. }));
        // Joining on a float column.
        let m = modes();
        let err = Query::scan(&t).join(&m, ("price", "id")).build().unwrap_err();
        assert!(matches!(err, PlanError::ColumnType { got: ValueType::F64, .. }));
    }

    #[test]
    fn join_resolves_columns_from_both_sides() {
        let t = item();
        let m = modes();
        let plan = Query::scan(&t)
            .join(&m, ("qty", "id"))
            .group_by("shipmode")
            .agg(Agg::sum("fee"))
            .build()
            .unwrap();
        assert!(plan.explain().contains("Join [qty = id]"));

        let err =
            Query::scan(&t).join(&m, ("qty", "id")).agg(Agg::sum("absent")).build().unwrap_err();
        match err {
            PlanError::UnknownColumn { searched, .. } => {
                assert_eq!(searched, vec!["item".to_owned(), "modes".to_owned()]);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn filter_after_join_applies_to_right_table() {
        let t = item();
        let m = modes();
        let plan = Query::scan(&t)
            .filter(Pred::range_i32("qty", 1, 2))
            .join(&m, ("qty", "id"))
            .filter(Pred::range_f64("fee", 0.0, 0.6))
            .agg(Agg::count())
            .build()
            .unwrap();
        let explain = plan.explain();
        assert!(explain.contains("Filter [0 <= fee <= 0.6]"), "{explain}");
        // Right-side filter referencing a left-only column fails validation.
        let err = Query::scan(&t)
            .join(&m, ("qty", "id"))
            .filter(Pred::range_f64("price", 0.0, 1.0))
            .build()
            .unwrap_err();
        assert!(matches!(err, PlanError::UnknownColumn { .. }));
    }

    #[test]
    fn ambiguous_output_columns_are_rejected() {
        // Self-join: every column exists on both sides.
        let t = item();
        let err = Query::scan(&t)
            .join(&t, ("qty", "qty"))
            .group_by("shipmode")
            .agg(Agg::sum("price"))
            .build()
            .unwrap_err();
        assert!(
            matches!(err, PlanError::AmbiguousColumn { ref column } if column == "shipmode"),
            "{err:?}"
        );
        // Unambiguous columns across distinct tables still resolve.
        let m = modes();
        assert!(Query::scan(&t)
            .join(&m, ("qty", "id"))
            .group_by("shipmode")
            .agg(Agg::sum("fee"))
            .build()
            .is_ok());
    }

    #[test]
    fn second_join_is_rejected_not_silently_dropped() {
        let t = item();
        let m = modes();
        let err = Query::scan(&t)
            .join(&m, ("qty", "id"))
            .filter(Pred::range_f64("fee", 0.0, 1.0))
            .join(&m, ("qty", "id"))
            .build()
            .unwrap_err();
        assert_eq!(err, PlanError::Unsupported("multiple joins in one plan"));
    }

    #[test]
    fn grouped_min_max_validate_and_empty_group_rejected() {
        let t = item();
        // Grouped min/max over I32 columns are part of the plan shapes now.
        assert!(Query::scan(&t)
            .group_by("shipmode")
            .agg(Agg::min("qty"))
            .agg(Agg::max("qty"))
            .build()
            .is_ok());
        // But only over I32 columns.
        let err = Query::scan(&t).group_by("shipmode").agg(Agg::min("price")).build().unwrap_err();
        assert!(matches!(err, PlanError::ColumnType { got: ValueType::F64, .. }));
        let err = Query::scan(&t).group_by("shipmode").build().unwrap_err();
        assert!(matches!(err, PlanError::Unsupported(_)));
    }

    #[test]
    fn predicates_compose_and_display() {
        let p = Pred::range_i32("qty", 1, 2)
            .and(Pred::eq_str("shipmode", "AIR").or(Pred::eq_str("shipmode", "MAIL")));
        let s = p.to_string();
        assert!(s.contains("AND"), "{s}");
        assert!(s.contains("OR"), "{s}");
        let t = item();
        assert!(p.validate(&t).is_ok());
    }
}
