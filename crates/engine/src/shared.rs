//! The shared-scan seam: describing a plan's scan leaves as data
//! ([`ScanRequest`]) and feeding externally produced candidate lists back
//! into execution ([`ScanTicket`]).
//!
//! A multi-query scheduler sees every admitted plan before it runs, which
//! makes same-column scan-selects *batchable*: one cooperative pass
//! ([`monet_core::scan::multi_select`]) can evaluate every waiting
//! predicate leaf while streaming the column once. This module is the
//! engine half of that contract:
//!
//! * [`scan_requests`] walks a validated [`LogicalPlan`] in **execution
//!   order** and emits one [`ScanRequest`] per shareable predicate leaf —
//!   the column's buffer identity ([`ColumnId`]), the leaf constant
//!   lowered to kernel form ([`SharedPred`], string equality already
//!   re-mapped to its dictionary code), and the leaf's global index within
//!   the plan.
//! * [`ScanTicket`] carries candidate lists produced elsewhere, keyed by
//!   that same global leaf index;
//!   [`crate::exec::execute_with_scans`] consumes them in place of
//!   evaluating the leaf, and is **bit-identical** to solo evaluation
//!   because the cooperative kernel visits tuples in the same scan order a
//!   solo scan-select does.
//!
//! Leaf indices count *every* predicate leaf of the plan (in-order within
//! each filter, filters in execution order), whether or not it is
//! shareable, so producers and the executor can never drift: both sides
//! derive the numbering from the same traversal.

use std::collections::HashMap;
use std::sync::Arc;

use monet_core::compress::CompressedColumn;
use monet_core::scan::ScanPred;
use monet_core::storage::{Bat, Codes, Column, DecomposedTable, Oid};

use crate::access::{is_pure_and, leaf_count, PushdownMode};
use crate::plan::{LogicalPlan, PlanNode, Pred};
use crate::select::CandList;

/// Identity of a column's scanned buffer: address, length and byte width
/// of the underlying data. Tables are immutable, so two equal identities
/// always see the same bytes — the property that lets one query's pass
/// answer another query's predicate. (The identity is only meaningful
/// while the tables it came from are alive; a scheduler holds it no longer
/// than the queries borrowing those tables.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ColumnId {
    addr: usize,
    len: usize,
    width: usize,
}

/// The buffer identity of a BAT's tail (dictionary-encoded columns are
/// identified by their code buffer — the bytes a scan streams).
pub fn column_id(bat: &Bat) -> ColumnId {
    let (addr, len, width) = match bat.tail() {
        Column::U8(v) => (v.as_ptr() as usize, v.len(), 1),
        Column::U16(v) => (v.as_ptr() as usize, v.len(), 2),
        Column::I32(v) => (v.as_ptr() as usize, v.len(), 4),
        Column::I64(v) => (v.as_ptr() as usize, v.len(), 8),
        Column::F64(v) => (v.as_ptr() as usize, v.len(), 8),
        Column::Oid(v) => {
            (v.as_ptr() as usize, v.len(), std::mem::size_of::<monet_core::storage::Oid>())
        }
        Column::Str(sc) => match &sc.codes {
            Codes::U8(v) => (v.as_ptr() as usize, v.len(), 1),
            Codes::U16(v) => (v.as_ptr() as usize, v.len(), 2),
        },
    };
    ColumnId { addr, len, width }
}

/// A predicate leaf's constant in canonical, hashable form (`f64` bounds
/// by bit pattern; string equality as its dictionary code).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SharedPred {
    /// `lo <= x <= hi` over an `I32` column.
    RangeI32 {
        /// Inclusive lower bound.
        lo: i32,
        /// Inclusive upper bound.
        hi: i32,
    },
    /// `lo <= x <= hi` over an `F64` column, bounds as bit patterns.
    RangeF64 {
        /// `lo.to_bits()`.
        lo_bits: u64,
        /// `hi.to_bits()`.
        hi_bits: u64,
    },
    /// Dictionary-code equality over an encoded string column.
    EqCode {
        /// The constant's dictionary code.
        code: u32,
    },
}

impl SharedPred {
    /// Lower to the cooperative kernel's predicate form.
    pub fn kernel_pred(self) -> ScanPred {
        match self {
            SharedPred::RangeI32 { lo, hi } => ScanPred::RangeI32 { lo, hi },
            SharedPred::RangeF64 { lo_bits, hi_bits } => {
                ScanPred::RangeF64 { lo: f64::from_bits(lo_bits), hi: f64::from_bits(hi_bits) }
            }
            SharedPred::EqCode { code } => ScanPred::EqCode { code },
        }
    }
}

/// What makes two scan leaves mergeable: same column bytes, same predicate
/// constant. (Same key ⇒ identical candidate list.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShareKey {
    /// The scanned buffer.
    pub col: ColumnId,
    /// The predicate constant.
    pub pred: SharedPred,
}

/// One shareable predicate leaf of a plan: everything a cooperative pass
/// needs to evaluate it, plus the leaf's global index for delivery.
#[derive(Debug, Clone, Copy)]
pub struct ScanRequest<'p> {
    /// Global leaf index within the plan (the [`ScanTicket`] key).
    pub leaf: usize,
    /// The column to stream — the *requesting* plan's own reference.
    pub bat: &'p Bat,
    /// The base table's name (reporting only).
    pub table: &'p str,
    /// The filtered column's name (reporting only).
    pub column: &'p str,
    /// Buffer identity (the merge key, with `pred`).
    pub col: ColumnId,
    /// The predicate constant in canonical form.
    pub pred: SharedPred,
    /// Tuples a pass over this column streams.
    pub rows: usize,
    /// Bytes per tuple in the scanned buffer.
    pub stride: usize,
    /// The column's compressed representation, when one exists and can
    /// evaluate this predicate directly — a cooperative pass may stream it
    /// instead of the uncompressed buffer (results are bit-identical).
    pub compressed: Option<&'p CompressedColumn>,
    /// First OID of the base table (the compressed kernels emit
    /// `seqbase + row`).
    pub seqbase: Oid,
    /// True when the column carries at least one index. An uncontended
    /// indexed leaf should stay with the executor's access planner (which
    /// may answer it without streaming at all) instead of being folded
    /// into an elevator pass.
    pub indexed: bool,
    /// True when this leaf is a non-first in-order leaf of a multi-leaf
    /// pure-AND filter and candidate pushdown is on (`MONET_PUSHDOWN`,
    /// default on): the executor's conjunction planner will evaluate it
    /// restricted to an earlier leaf's survivors, so a cooperative pass
    /// that streamed the full column for it would do work the solo plan
    /// avoids. Schedulers should leave restricted leaves off the board.
    pub restricted: bool,
}

impl ScanRequest<'_> {
    /// The merge key of this leaf.
    pub fn key(&self) -> ShareKey {
        ShareKey { col: self.col, pred: self.pred }
    }
}

/// The base table a filter's predicates read, when the subtree bottoms out
/// in a scan (builder-produced plans always do).
fn base_table<'p>(node: &'p PlanNode<'_>) -> Option<&'p DecomposedTable> {
    match node {
        PlanNode::Scan { table } => Some(table),
        PlanNode::Filter { input, .. } => base_table(input),
        _ => None,
    }
}

/// Emit one [`ScanRequest`] per shareable leaf of `plan`, numbering leaves
/// exactly as [`crate::exec::execute_with_scans`] does. Non-shareable
/// leaves (no base table, unscannable column type, or a dictionary-miss
/// equality — provably empty, nothing to stream) consume an index but emit
/// no request.
pub fn scan_requests<'p>(plan: &'p LogicalPlan<'_>) -> Vec<ScanRequest<'p>> {
    let mut out = Vec::new();
    let mut leaf = 0usize;
    walk(&plan.root, &mut leaf, &mut out);
    out
}

fn walk<'p>(node: &'p PlanNode<'_>, leaf: &mut usize, out: &mut Vec<ScanRequest<'p>>) {
    match node {
        PlanNode::Scan { .. } => {}
        PlanNode::Filter { input, pred } => {
            walk(input, leaf, out);
            let table = base_table(input);
            // Leaves the conjunction planner will candidate-restrict: every
            // leaf but the first of a multi-leaf pure-AND filter. The first
            // in-order leaf stays shareable — when an elevator pass provides
            // it, the planner orders it first (it costs nothing) and pushes
            // its survivors through the rest.
            let mark = PushdownMode::from_env().unwrap_or(PushdownMode::On) == PushdownMode::On
                && is_pure_and(pred)
                && leaf_count(pred) > 1;
            let first = *leaf;
            leaves_in_order(pred, &mut |p| {
                let idx = *leaf;
                *leaf += 1;
                if let Some(t) = table {
                    if let Some(mut req) = lower_leaf(t, p, idx) {
                        req.restricted = mark && idx > first;
                        out.push(req);
                    }
                }
            });
        }
        PlanNode::Join { input, right, .. } => {
            walk(input, leaf, out);
            walk(right, leaf, out);
        }
        PlanNode::GroupAgg { input, .. } => walk(input, leaf, out),
    }
}

/// In-order traversal over a predicate's leaves — the same order
/// [`crate::access`] plans and evaluates them in.
fn leaves_in_order<'p>(pred: &'p Pred, f: &mut impl FnMut(&'p Pred)) {
    match pred {
        Pred::And(a, b) | Pred::Or(a, b) => {
            leaves_in_order(a, f);
            leaves_in_order(b, f);
        }
        leaf => f(leaf),
    }
}

/// Lower one leaf against its base table, if it is shareable.
fn lower_leaf<'p>(
    table: &'p DecomposedTable,
    leaf: &'p Pred,
    idx: usize,
) -> Option<ScanRequest<'p>> {
    let (col, pred) = match leaf {
        Pred::RangeI32 { col, lo, hi } => (col, SharedPred::RangeI32 { lo: *lo, hi: *hi }),
        Pred::RangeF64 { col, lo, hi } => {
            (col, SharedPred::RangeF64 { lo_bits: lo.to_bits(), hi_bits: hi.to_bits() })
        }
        Pred::EqStr { col, value } => {
            let bat = table.bat(col).ok()?;
            let sc = bat.tail().as_str_col()?;
            // A dictionary miss is provably empty: nothing to stream, the
            // executor yields zero rows for free.
            let code = sc.dict.code_of(value)?;
            (col, SharedPred::EqCode { code })
        }
        Pred::And(..) | Pred::Or(..) => unreachable!("leaves_in_order yields leaves"),
    };
    let bat = table.bat(col).ok()?;
    // The predicate type was validated against the column at plan build;
    // the kernel re-checks anyway.
    let compressed = table.compressed_of(col).filter(|cc| cc.supports(&pred.kernel_pred()));
    Some(ScanRequest {
        leaf: idx,
        bat,
        table: table.name(),
        column: col,
        col: column_id(bat),
        pred,
        rows: bat.len(),
        stride: bat.tail().tail_width(),
        compressed,
        seqbase: table.seqbase(),
        indexed: table.indexes_on(col).next().is_some(),
        restricted: false,
    })
}

/// Candidate lists produced outside the executor (by a cooperative pass),
/// keyed by global leaf index. [`crate::exec::execute_with_scans`] consumes
/// each entry in place of evaluating that leaf.
#[derive(Debug, Clone, Default)]
pub struct ScanTicket {
    leaves: HashMap<usize, Arc<CandList>>,
}

impl ScanTicket {
    /// An empty ticket (plain execution).
    pub fn new() -> Self {
        Self::default()
    }

    /// Provide leaf `leaf`'s candidate list. The list must be exactly what
    /// solo evaluation of that leaf produces (ascending OIDs in scan
    /// order) — the cooperative kernel guarantees this.
    pub fn provide(&mut self, leaf: usize, cands: Arc<CandList>) {
        self.leaves.insert(leaf, cands);
    }

    /// The provided list for a leaf, if any.
    pub fn get(&self, leaf: usize) -> Option<&Arc<CandList>> {
        self.leaves.get(&leaf)
    }

    /// Number of provided leaves.
    pub fn len(&self) -> usize {
        self.leaves.len()
    }

    /// True when no leaf is provided.
    pub fn is_empty(&self) -> bool {
        self.leaves.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{Agg, Query};
    use monet_core::storage::{ColType, TableBuilder, Value};

    fn table(name: &str) -> monet_core::storage::DecomposedTable {
        let mut b = TableBuilder::new(name, 0)
            .column("qty", ColType::I32)
            .column("price", ColType::F64)
            .column("mode", ColType::Str);
        for i in 0..100i32 {
            b.push_row(&[
                Value::I32(i % 10),
                Value::F64(i as f64),
                Value::from(["AIR", "MAIL"][i as usize % 2]),
            ])
            .unwrap();
        }
        b.finish()
    }

    #[test]
    fn leaves_are_numbered_in_execution_order_across_filters_and_joins() {
        let t = table("fact");
        let mut b = TableBuilder::new("dim", 0).column("id", ColType::I32);
        for i in 0..10i32 {
            b.push_row(&[Value::I32(i)]).unwrap();
        }
        let dim = b.finish();
        let plan = Query::scan(&t)
            .filter(Pred::range_i32("qty", 1, 5).and(Pred::eq_str("mode", "AIR")))
            .join(&dim, ("qty", "id"))
            .agg(Agg::count())
            .build()
            .unwrap();
        let reqs = scan_requests(&plan);
        assert_eq!(reqs.len(), 2);
        assert_eq!(reqs[0].leaf, 0);
        assert_eq!(reqs[0].column, "qty");
        assert!(matches!(reqs[0].pred, SharedPred::RangeI32 { lo: 1, hi: 5 }));
        assert_eq!(reqs[1].leaf, 1);
        assert_eq!(reqs[1].column, "mode");
        assert!(matches!(reqs[1].pred, SharedPred::EqCode { .. }));
        assert_ne!(reqs[0].key(), reqs[1].key());
        assert_eq!(reqs[0].rows, 100);
        assert_eq!(reqs[0].stride, 4);
        assert_eq!(reqs[1].stride, 1, "2-value dictionary encodes in one byte");
        // qty spans 0..10 in one frame: a FOR representation rides along.
        let cc = reqs[0].compressed.expect("small-range i32 column compresses");
        assert!(cc.bits_per_value() < 32.0);
        assert_eq!(reqs[0].seqbase, 0);
        // The f64-free request set still lowers the dict column: packed codes.
        assert!(reqs[1].compressed.is_some(), "2-entry dictionary packs to 1 bit");
        assert!(!reqs[0].indexed, "no index on qty yet");
    }

    #[test]
    fn indexed_columns_are_flagged() {
        let mut t = table("fact");
        t.create_index("qty", monet_core::IndexKind::CsBTree).unwrap();
        let plan = Query::scan(&t)
            .filter(Pred::range_i32("qty", 1, 5).and(Pred::eq_str("mode", "AIR")))
            .build()
            .unwrap();
        let reqs = scan_requests(&plan);
        assert!(reqs[0].indexed, "qty carries a btree");
        assert!(!reqs[1].indexed, "mode does not");
    }

    #[test]
    fn same_column_same_constant_share_a_key_across_plans() {
        let t = table("fact");
        let p1 = Query::scan(&t).filter(Pred::range_i32("qty", 2, 4)).build().unwrap();
        let p2 = Query::scan(&t)
            .filter(Pred::range_i32("qty", 2, 4))
            .group_by("mode")
            .agg(Agg::sum("price"))
            .build()
            .unwrap();
        let (r1, r2) = (scan_requests(&p1), scan_requests(&p2));
        assert_eq!(r1[0].key(), r2[0].key(), "identical predicates on one table merge");
        // A different table with identical data does NOT merge: distinct
        // buffers, distinct identities.
        let t2 = table("fact");
        let p3 = Query::scan(&t2).filter(Pred::range_i32("qty", 2, 4)).build().unwrap();
        assert_ne!(r1[0].key(), scan_requests(&p3)[0].key());
    }

    #[test]
    fn later_and_leaves_are_marked_restricted() {
        let t = table("fact");
        let plan = Query::scan(&t)
            .filter(Pred::range_i32("qty", 1, 5).and(Pred::eq_str("mode", "AIR")))
            .build()
            .unwrap();
        let reqs = scan_requests(&plan);
        // The mark follows the session policy, so this test stays green on
        // the MONET_PUSHDOWN=0 CI legs too.
        let on = PushdownMode::from_env().unwrap_or(PushdownMode::On) == PushdownMode::On;
        assert!(!reqs[0].restricted, "first in-order leaf stays shareable");
        assert_eq!(reqs[1].restricted, on, "the pushdown planner will restrict this leaf");
        // OR trees are never reordered: every leaf runs its full pass.
        let plan = Query::scan(&t)
            .filter(Pred::range_i32("qty", 1, 5).or(Pred::eq_str("mode", "AIR")))
            .build()
            .unwrap();
        assert!(scan_requests(&plan).iter().all(|r| !r.restricted));
        // Single-leaf filters have nothing to push into.
        let plan = Query::scan(&t).filter(Pred::range_i32("qty", 1, 5)).build().unwrap();
        assert!(!scan_requests(&plan)[0].restricted);
    }

    #[test]
    fn dictionary_misses_consume_an_index_but_emit_no_request() {
        let t = table("fact");
        let plan = Query::scan(&t)
            .filter(Pred::eq_str("mode", "WALRUS").or(Pred::range_i32("qty", 0, 3)))
            .build()
            .unwrap();
        let reqs = scan_requests(&plan);
        assert_eq!(reqs.len(), 1, "the miss leaf is provably empty");
        assert_eq!(reqs[0].leaf, 1, "the surviving leaf keeps its in-order index");
    }
}
