//! Join dispatch from BATs to the radix kernels.
//!
//! Converts BAT operands into the 8-byte [`Bun`] arrays the kernels work on,
//! picks (or accepts) a [`JoinPlan`], and returns the join index. Includes
//! the §3.1 void fast path: joining an OID tail against a void head is pure
//! positional lookup — no clustering, no hashing, no per-tuple search.

use memsim::{track_read, MemTracker, Work};
use monet_core::join::{self as kernels, Bun, FibHash, OidPair};
use monet_core::storage::{Bat, Column, Head};
use monet_core::strategy::{heuristic_plan, Algorithm, JoinPlan};

use crate::EngineError;

/// A join result: the `\[OID, OID\]` join index of \[Val87\].
pub type JoinIndex = Vec<OidPair>;

/// View a BAT as join tuples (`[head OID, u32 key]`).
///
/// Supported tails: `I32` (bit-cast to `u32`; equality is preserved) and
/// `Oid`.
pub fn buns_of(bat: &Bat) -> Result<Vec<Bun>, EngineError> {
    let n = bat.len();
    match bat.tail() {
        Column::I32(v) => Ok((0..n).map(|i| Bun::new(bat.head_oid(i), v[i] as u32)).collect()),
        Column::Oid(v) => Ok((0..n).map(|i| Bun::new(bat.head_oid(i), v[i])).collect()),
        other => Err(EngineError::UnsupportedType { op: "join", ty: other.value_type() }),
    }
}

/// The void positional fast path: `left.tail` holds OIDs into `right`'s
/// void head. Every left tuple joins (at most) positionally — "effectively
/// eliminating all join cost".
pub fn void_positional_join<M: MemTracker>(
    trk: &mut M,
    left: &Bat,
    right: &Bat,
) -> Result<JoinIndex, EngineError> {
    let Head::Void { seqbase } = right.head() else {
        return Err(EngineError::Storage(monet_core::storage::StorageError::NonVoidHead));
    };
    let tails = left.tail().as_oid().ok_or(EngineError::UnsupportedType {
        op: "void_positional_join",
        ty: left.tail().value_type(),
    })?;
    let mut out = JoinIndex::with_capacity(left.len());
    for (i, &oid) in tails.iter().enumerate() {
        if M::ENABLED {
            track_read(trk, &tails[i]);
            trk.work(Work::ScanIter, 1);
        }
        if let Some(pos) = oid.checked_sub(*seqbase) {
            if (pos as usize) < right.len() {
                out.push(OidPair::new(left.head_oid(i), oid));
            }
        }
    }
    Ok(out)
}

/// Execute `left ⋈ right` on tail equality with an explicit plan.
pub fn join_bats_with_plan<M: MemTracker>(
    trk: &mut M,
    left: &Bat,
    right: &Bat,
    plan: &JoinPlan,
) -> Result<JoinIndex, EngineError> {
    // Void fast path first: an OID tail meeting a void head needs no
    // algorithm at all.
    if right.head_is_void() && matches!(left.tail(), Column::Oid(_)) {
        return void_positional_join(trk, left, right);
    }
    let l = buns_of(left)?;
    let r = buns_of(right)?;
    let h = FibHash;
    Ok(match plan.algorithm {
        Algorithm::PartitionedHash => {
            kernels::partitioned_hash_join(trk, h, l, r, plan.bits, &plan.pass_bits)
        }
        Algorithm::Radix => kernels::radix_join(trk, h, l, r, plan.bits, &plan.pass_bits),
        Algorithm::SimpleHash => kernels::simple_hash_join(trk, h, &l, &r),
        Algorithm::SortMerge => kernels::sort_merge_join(trk, l, r),
    })
}

/// Execute `left ⋈ right` with an explicit plan on `threads` threads —
/// bit-identical output to [`join_bats_with_plan`] (native-only; the
/// executor pins simulated runs to one thread).
///
/// The partitioned algorithms lower onto the parallel radix kernels of
/// [`monet_core::join::parallel`]; the unpartitioned baselines (simple hash,
/// sort-merge) and the void positional fast path have no disjoint partitions
/// to fan out over and run sequentially regardless of `threads`.
pub fn par_join_bats_with_plan(
    left: &Bat,
    right: &Bat,
    plan: &JoinPlan,
    threads: usize,
) -> Result<JoinIndex, EngineError> {
    par_join_bats_with_plan_sharded(left, right, plan, threads).map(|(pairs, _)| pairs)
}

/// [`par_join_bats_with_plan`] plus the join phase's per-worker result-pair
/// counts (thread-major; they sum to the join cardinality). `None` when the
/// run had no parallel join phase to account: one thread, the void
/// positional fast path, or an unpartitioned algorithm.
pub fn par_join_bats_with_plan_sharded(
    left: &Bat,
    right: &Bat,
    plan: &JoinPlan,
    threads: usize,
) -> Result<(JoinIndex, Option<Vec<usize>>), EngineError> {
    if threads <= 1 {
        return Ok((join_bats_with_plan(&mut memsim::NullTracker, left, right, plan)?, None));
    }
    if right.head_is_void() && matches!(left.tail(), Column::Oid(_)) {
        return Ok((void_positional_join(&mut memsim::NullTracker, left, right)?, None));
    }
    let l = buns_of(left)?;
    let r = buns_of(right)?;
    let h = FibHash;
    Ok(match plan.algorithm {
        Algorithm::PartitionedHash => {
            let (pairs, shards) = kernels::par_partitioned_hash_join_sharded(
                h,
                l,
                r,
                plan.bits,
                &plan.pass_bits,
                threads,
            );
            (pairs, Some(shards))
        }
        Algorithm::Radix => {
            let (pairs, shards) =
                kernels::par_radix_join_sharded(h, l, r, plan.bits, &plan.pass_bits, threads);
            (pairs, Some(shards))
        }
        Algorithm::SimpleHash => {
            (kernels::simple_hash_join(&mut memsim::NullTracker, h, &l, &r), None)
        }
        Algorithm::SortMerge => (kernels::sort_merge_join(&mut memsim::NullTracker, l, r), None),
    })
}

/// Execute `left ⋈ right`, picking a plan with the cache heuristics of
/// `monet_core::strategy` for the given machine.
pub fn join_bats<M: MemTracker>(
    trk: &mut M,
    left: &Bat,
    right: &Bat,
    machine: &memsim::MachineConfig,
) -> Result<JoinIndex, EngineError> {
    let plan = heuristic_plan(right.len(), machine);
    join_bats_with_plan(trk, left, right, &plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::{profiles, NullTracker};
    use monet_core::join::sort_pairs;

    fn bat_i32(seqbase: u32, vals: Vec<i32>) -> Bat {
        Bat::with_void_head(seqbase, Column::I32(vals))
    }

    #[test]
    fn auto_join_matches_expectation() {
        let l = bat_i32(0, vec![3, 1, 4, 1, 5]);
        let r = bat_i32(100, vec![1, 5, 9]);
        let idx = join_bats(&mut NullTracker, &l, &r, &profiles::origin2000()).unwrap();
        let got = sort_pairs(idx);
        assert_eq!(got, vec![OidPair::new(1, 100), OidPair::new(3, 100), OidPair::new(4, 101)]);
    }

    #[test]
    fn all_plans_agree() {
        let l = bat_i32(0, (0..500).map(|i| i % 60).collect());
        let r = bat_i32(0, (0..200).map(|i| i % 75).collect());
        let mk = |algorithm, bits: u32| JoinPlan {
            algorithm,
            bits,
            pass_bits: if bits == 0 { vec![] } else { vec![bits] },
        };
        let reference = sort_pairs(
            join_bats_with_plan(&mut NullTracker, &l, &r, &mk(Algorithm::SimpleHash, 0)).unwrap(),
        );
        for plan in [
            mk(Algorithm::PartitionedHash, 4),
            mk(Algorithm::Radix, 5),
            mk(Algorithm::SortMerge, 0),
        ] {
            let got = sort_pairs(join_bats_with_plan(&mut NullTracker, &l, &r, &plan).unwrap());
            assert_eq!(got, reference, "{plan:?}");
        }
    }

    #[test]
    fn negative_i32_keys_join_correctly() {
        let l = bat_i32(0, vec![-1, -2, 3]);
        let r = bat_i32(10, vec![-2, 3, -7]);
        let got = sort_pairs(join_bats(&mut NullTracker, &l, &r, &profiles::origin2000()).unwrap());
        assert_eq!(got, vec![OidPair::new(1, 10), OidPair::new(2, 11)]);
    }

    #[test]
    fn void_fast_path_is_positional() {
        // left: join index tail pointing into right's void head.
        let l = Bat::with_void_head(0, Column::Oid(vec![1003, 1001, 2000]));
        let r = bat_i32(1000, vec![10, 20, 30, 40]);
        let got = void_positional_join(&mut NullTracker, &l, &r).unwrap();
        // OID 2000 is out of range: dropped.
        assert_eq!(got, vec![OidPair::new(0, 1003), OidPair::new(1, 1001)]);
        // join_bats dispatches to the same path.
        let auto = join_bats(&mut NullTracker, &l, &r, &profiles::origin2000()).unwrap();
        assert_eq!(auto, got);
    }

    #[test]
    fn parallel_join_dispatch_is_bit_identical_per_algorithm() {
        let l = bat_i32(0, (0..4000).map(|i| i % 600).collect());
        let r = bat_i32(500, (0..3000).map(|i| i % 750).collect());
        let mk = |algorithm, bits: u32| JoinPlan {
            algorithm,
            bits,
            pass_bits: if bits == 0 { vec![] } else { vec![bits] },
        };
        for plan in [
            mk(Algorithm::PartitionedHash, 4),
            mk(Algorithm::Radix, 6),
            mk(Algorithm::SimpleHash, 0),
            mk(Algorithm::SortMerge, 0),
        ] {
            let seq = join_bats_with_plan(&mut NullTracker, &l, &r, &plan).unwrap();
            for threads in [1usize, 2, 4, 7] {
                let par = par_join_bats_with_plan(&l, &r, &plan, threads).unwrap();
                assert_eq!(par, seq, "{plan:?} threads={threads}");
            }
        }
        // The void fast path stays positional under the parallel entry too.
        let lv = Bat::with_void_head(0, Column::Oid(vec![502, 500]));
        let seq = void_positional_join(&mut NullTracker, &lv, &r).unwrap();
        let plan = mk(Algorithm::PartitionedHash, 2);
        assert_eq!(par_join_bats_with_plan(&lv, &r, &plan, 4).unwrap(), seq);
    }

    #[test]
    fn unsupported_tail_type_errors() {
        let l = Bat::with_void_head(0, Column::F64(vec![1.0]));
        let r = bat_i32(0, vec![1]);
        assert!(matches!(
            join_bats(&mut NullTracker, &l, &r, &profiles::origin2000()),
            Err(EngineError::UnsupportedType { .. })
        ));
    }
}
