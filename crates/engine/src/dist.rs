//! Sharded (distributed) execution of logical plans.
//!
//! [`lower`] splits one [`LogicalPlan`] into `S` shard-local *stream* plans
//! over a [`ShardedTable`]'s shards (the root `GroupAgg`, when present, is
//! held back for the coordinator), [`execute_shard`] runs one shard plan
//! through the stock executor and reduces its stream to a [`ShardPartial`],
//! and [`merge`] deterministically combines the partials into exactly the
//! output the unsharded run produces — **bit-identical**, including the
//! floating-point bits of every `f64` sum, at any shard count × thread
//! count.
//!
//! The staging is deliberate: a placement layer (see `service`) can quote
//! each shard plan per replica, lease threads per shard task, and run
//! [`execute_shard`] wherever the cost model routes it; only [`merge`] must
//! see all partials.
//!
//! # Why the merge is exact
//!
//! * **Selections** — shard tables are rebased to seqbase 0 with monotone
//!   local→global OID maps, so per-shard OID lists map back sorted and the
//!   merged union is the unsharded ascending OID list.
//! * **Joins** — the executor emits join indexes in canonical `(left,
//!   right)` order. A join whose sides are co-partitioned on the join keys
//!   puts every matching pair inside one shard (equal keys hash to the same
//!   shard), so the union of per-shard pair sets *is* the global pair set;
//!   re-sorting the mapped pairs reproduces the canonical order.
//! * **Exact aggregates** — `COUNT`, integer `SUM` (i64), `MIN`/`MAX`
//!   combine per group associatively, so shard partials add up exactly.
//! * **`f64` sums** — floating-point addition is *not* associative, so
//!   shard partials are never combined. Instead each shard returns its
//!   surviving `(sort key, value)` rows — sort key = global OID for table
//!   streams, packed global `(left, right)` for join streams — and the
//!   coordinator accumulates them in global sort order: exactly the
//!   addition order of the unsharded kernel.
//! * **Dictionaries** — shard string columns share the parent's dictionary
//!   ([`monet_core::shard`]), so group codes are globally consistent and a
//!   merge ascending by code reproduces the unsharded group order.

use costmodel::quote::OpShape;
use memsim::{EventCounters, MemTracker};
use monet_core::join::OidPair;
use monet_core::shard::{ShardedTable, TableShard};
use monet_core::storage::{Column, DecomposedTable, Oid};

use crate::exec::{
    execute, AggValue, ExecOptions, ExecReport, Executed, GroupRow, OpReport, QueryOutput,
};
use crate::plan::{Agg, LogicalPlan, PlanError, PlanNode};
use crate::reconstruct::{fetch_f64, fetch_i32, fetch_str, fetch_u8};
use crate::EngineError;

/// How the coordinator turns shard partials into the final output.
#[derive(Debug, Clone)]
enum MergeShape {
    /// Stream of table rows: k-way merge of ascending global OID lists.
    Oids,
    /// Stream of join pairs: k-way merge in canonical `(left, right)` order.
    Pairs,
    /// Root aggregation, grouped by `key` when present.
    Agg { key: Option<String>, aggs: Vec<Agg> },
}

/// Per-shard table references for OID mapping and partial gathers.
struct ShardCtx<'a> {
    left: &'a TableShard,
    right: Option<&'a TableShard>,
}

/// A plan lowered onto a set of sharded tables: one stream plan per shard
/// plus the merge recipe.
pub struct Lowered<'a> {
    /// The shard-local stream plans, in shard order. Each is an ordinary
    /// [`LogicalPlan`] over that shard's tables — quotable by
    /// `costmodel::quote` and executable by [`execute`] anywhere.
    pub plans: Vec<LogicalPlan<'a>>,
    ctx: Vec<ShardCtx<'a>>,
    merge: MergeShape,
}

impl Lowered<'_> {
    /// Number of shards this plan was lowered onto.
    pub fn shard_count(&self) -> usize {
        self.plans.len()
    }
}

/// The leftmost base table of a stream subtree and, for joins, the right
/// base table.
fn base_tables<'a>(
    node: &PlanNode<'a>,
) -> Result<(&'a DecomposedTable, Option<&'a DecomposedTable>), EngineError> {
    match node {
        PlanNode::Scan { table } => Ok((table, None)),
        PlanNode::Filter { input, .. } => base_tables(input),
        PlanNode::Join { input, right, .. } => {
            let (lt, nested) = base_tables(input)?;
            let (rt, rnested) = base_tables(right)?;
            if nested.is_some() || rnested.is_some() {
                return Err(EngineError::Plan(PlanError::Unsupported("nested joins")));
            }
            Ok((lt, Some(rt)))
        }
        PlanNode::GroupAgg { .. } => {
            Err(EngineError::Plan(PlanError::Unsupported("aggregation below another operator")))
        }
    }
}

/// Rebuild `node` with every base-table reference substituted by the shard
/// table registered under the same name.
fn subst<'a>(node: &PlanNode<'a>, map: &[(&str, &'a DecomposedTable)]) -> PlanNode<'a> {
    match node {
        PlanNode::Scan { table } => {
            let t = map
                .iter()
                .find(|(n, _)| *n == table.name())
                .map(|(_, t)| *t)
                .expect("lower registered every base table");
            PlanNode::Scan { table: t }
        }
        PlanNode::Filter { input, pred } => {
            PlanNode::Filter { input: Box::new(subst(input, map)), pred: pred.clone() }
        }
        PlanNode::Join { input, right, left_col, right_col } => PlanNode::Join {
            input: Box::new(subst(input, map)),
            right: Box::new(subst(right, map)),
            left_col: left_col.clone(),
            right_col: right_col.clone(),
        },
        PlanNode::GroupAgg { .. } => unreachable!("base_tables rejected nested aggregation"),
    }
}

/// Lower `plan` onto `tables` (the sharded versions of the plan's base
/// tables, matched by table name): one stream plan per shard plus the merge
/// recipe.
///
/// Requirements checked here:
/// * every base table of the plan has a sharded counterpart of the same
///   name and row count;
/// * all sharded tables agree on the shard count;
/// * a join's sides are **co-partitioned on the join keys** (left table
///   sharded on `left_col`, right on `right_col`) — the property that makes
///   the per-shard joins' union equal the global join.
pub fn lower<'a>(
    plan: &LogicalPlan<'a>,
    tables: &[&'a ShardedTable],
) -> Result<Lowered<'a>, EngineError> {
    let (stream_root, merge) = match &plan.root {
        PlanNode::GroupAgg { input, key, aggs } => {
            (&**input, MergeShape::Agg { key: key.clone(), aggs: aggs.clone() })
        }
        other @ PlanNode::Join { .. } => (other, MergeShape::Pairs),
        other => (other, MergeShape::Oids),
    };
    let merge = match (merge, stream_root) {
        (MergeShape::Oids, PlanNode::Join { .. }) => MergeShape::Pairs,
        (m, _) => m,
    };

    let (lt, rt) = base_tables(stream_root)?;
    let find = |t: &DecomposedTable| -> Result<&'a ShardedTable, EngineError> {
        let st = tables.iter().find(|s| s.name() == t.name()).copied().ok_or(EngineError::Plan(
            PlanError::Unsupported("no sharded table registered for a plan table"),
        ))?;
        if st.len() != t.len() {
            return Err(EngineError::Plan(PlanError::Unsupported(
                "sharded table does not match the plan table's rows",
            )));
        }
        Ok(st)
    };
    let ls = find(lt)?;
    let rs = rt.map(&find).transpose()?;

    if let Some(rs) = rs {
        if rs.shard_count() != ls.shard_count() {
            return Err(EngineError::Plan(PlanError::Unsupported(
                "joined tables are sharded to different shard counts",
            )));
        }
        if let PlanNode::Join { left_col, right_col, .. } = stream_root {
            if ls.key() != left_col || rs.key() != right_col {
                return Err(EngineError::Plan(PlanError::Unsupported(
                    "join requires shards co-partitioned on the join keys",
                )));
            }
        }
    }

    let s = ls.shard_count();
    let mut plans = Vec::with_capacity(s);
    let mut ctx = Vec::with_capacity(s);
    for i in 0..s {
        let mut map: Vec<(&str, &'a DecomposedTable)> = vec![(ls.name(), &ls.shard(i).table)];
        if let (Some(rt), Some(rs)) = (rt, rs) {
            map.push((rt.name(), &rs.shard(i).table));
        }
        plans.push(LogicalPlan { root: subst(stream_root, &map) });
        ctx.push(ShardCtx { left: ls.shard(i), right: rs.map(|r| r.shard(i)) });
    }
    Ok(Lowered { plans, ctx, merge })
}

/// One scalar aggregate's shard partial.
#[derive(Debug, Clone)]
enum AggPartial {
    /// Row count (exact combine: sum).
    Count(usize),
    /// Integer sum in `i64` (exact combine: sum).
    SumI64(i64),
    /// Minimum (exact combine: min of present values).
    Min(Option<i32>),
    /// Maximum (exact combine: max).
    Max(Option<i32>),
    /// `f64` sum rows: `(global sort key, value)`, ascending by key. Never
    /// combined — the coordinator re-accumulates in global order.
    SumF64(Vec<(u64, f64)>),
}

/// A grouped aggregation's shard partial. Exact aggregates are combined
/// per group code; `f64` sums stay as ordered rows.
#[derive(Debug, Clone)]
struct GroupPartial {
    /// Direct-index domain (256 or 65536), identical across shards because
    /// shard key columns share the parent's code width.
    domain: usize,
    /// Rows per group code.
    counts: Vec<u64>,
    /// Per `Min` aggregate, per code.
    mins: Vec<Vec<Option<i32>>>,
    /// Per `Max` aggregate, per code.
    maxs: Vec<Vec<Option<i32>>>,
    /// Global sort key per surviving row, ascending.
    sortkeys: Vec<u64>,
    /// Group code per surviving row.
    codes: Vec<u32>,
    /// Per `Sum` aggregate: value per surviving row.
    sum_cols: Vec<Vec<f64>>,
}

/// What a shard's stream reduced to, in global OID space.
#[derive(Debug, Clone)]
enum PartialRows {
    Oids(Vec<Oid>),
    Pairs(Vec<OidPair>),
    /// Root aggregation: the stream was consumed into agg partials.
    Scalar(Vec<AggPartial>),
    Grouped(GroupPartial),
}

/// One shard's contribution to a sharded execution.
pub struct ShardPartial {
    rows: PartialRows,
    /// Stream rows this shard's plan produced (pre-aggregation).
    stream_rows: usize,
    /// The shard plan's per-operator execution report.
    pub report: ExecReport,
    /// Simulated counters the partial-building gathers consumed (attributed
    /// to the merge operator in the merged report).
    gather_counters: Option<EventCounters>,
}

/// Pack a global join pair into one ordered sort key.
#[inline]
fn pair_key(l: Oid, r: Oid) -> u64 {
    ((l as u64) << 32) | r as u64
}

fn delta<M: MemTracker>(trk: &M, before: Option<EventCounters>) -> Option<EventCounters> {
    match (trk.counters_snapshot(), before) {
        (Some(after), Some(before)) => Some(after - before),
        _ => None,
    }
}

/// Execute shard `idx` of a lowered plan through the stock executor and
/// reduce its stream to a [`ShardPartial`]. Runs anywhere: the caller
/// chooses tracker, machine, thread cap and placement per shard.
pub fn execute_shard<M: MemTracker>(
    trk: &mut M,
    lowered: &Lowered<'_>,
    idx: usize,
    opts: &ExecOptions,
) -> Result<ShardPartial, EngineError> {
    let run = execute(trk, &lowered.plans[idx], opts)?;
    let ctx = &lowered.ctx[idx];
    let before = trk.counters_snapshot();

    // The stream plan's local output → per-side local OIDs + global sort
    // keys. Shard OID maps are monotone, so local ascending order maps to
    // global ascending order with no re-sort.
    let (left_locals, right_locals, sortkeys): (Vec<Oid>, Option<Vec<Oid>>, Vec<u64>) =
        match &run.output {
            QueryOutput::Oids(locals) => {
                let keys = locals.iter().map(|&l| ctx.left.oids[l as usize] as u64).collect();
                (locals.clone(), None, keys)
            }
            QueryOutput::JoinIndex(pairs) => {
                let right = ctx.right.expect("join stream has a right shard");
                let keys = pairs
                    .iter()
                    .map(|p| pair_key(ctx.left.oids[p.left as usize], right.oids[p.right as usize]))
                    .collect();
                (
                    pairs.iter().map(|p| p.left).collect(),
                    Some(pairs.iter().map(|p| p.right).collect()),
                    keys,
                )
            }
            _ => unreachable!("lowered shard plans are stream-only"),
        };
    let stream_rows = left_locals.len();

    // Resolve a column to its shard table and the local OIDs of its side
    // (left-first, mirroring the executor's resolve_col).
    let side = |col: &str| -> (&DecomposedTable, &[Oid]) {
        match ctx.right {
            Some(right) if ctx.left.table.bat(col).is_err() => {
                (&right.table, right_locals.as_deref().expect("right side implies join stream"))
            }
            _ => (&ctx.left.table, &left_locals),
        }
    };

    let rows = match &lowered.merge {
        MergeShape::Oids => {
            PartialRows::Oids(left_locals.iter().map(|&l| ctx.left.oids[l as usize]).collect())
        }
        MergeShape::Pairs => {
            let right = ctx.right.expect("pair merge implies join stream");
            let rl = right_locals.as_ref().expect("pair merge implies join stream");
            PartialRows::Pairs(
                left_locals
                    .iter()
                    .zip(rl)
                    .map(|(&l, &r)| OidPair {
                        left: ctx.left.oids[l as usize],
                        right: right.oids[r as usize],
                    })
                    .collect(),
            )
        }
        MergeShape::Agg { key: None, aggs } => {
            let mut partials = Vec::with_capacity(aggs.len());
            for agg in aggs {
                let p = match agg {
                    Agg::Count => AggPartial::Count(stream_rows),
                    Agg::Sum(col) => {
                        let (table, locals) = side(col);
                        let bat = table.bat(col)?;
                        match bat.tail() {
                            Column::F64(_) => {
                                let vals = fetch_f64(trk, bat, locals)?;
                                AggPartial::SumF64(sortkeys.iter().copied().zip(vals).collect())
                            }
                            _ => {
                                let vals = fetch_i32(trk, bat, locals)?;
                                AggPartial::SumI64(vals.into_iter().map(i64::from).sum())
                            }
                        }
                    }
                    Agg::Min(col) => {
                        let (table, locals) = side(col);
                        let vals = fetch_i32(trk, table.bat(col)?, locals)?;
                        AggPartial::Min(vals.into_iter().min())
                    }
                    Agg::Max(col) => {
                        let (table, locals) = side(col);
                        let vals = fetch_i32(trk, table.bat(col)?, locals)?;
                        AggPartial::Max(vals.into_iter().max())
                    }
                };
                partials.push(p);
            }
            PartialRows::Scalar(partials)
        }
        MergeShape::Agg { key: Some(key), aggs } => {
            let (key_table, key_locals) = side(key);
            let key_bat = key_table.bat(key)?;
            let (codes, domain): (Vec<u32>, usize) = match key_bat.tail() {
                Column::Str(_) => {
                    let sc = fetch_str(trk, key_bat, key_locals)?;
                    let domain = if sc.codes.width() == 1 { 256 } else { 65536 };
                    ((0..sc.len()).map(|i| sc.codes.get(i)).collect(), domain)
                }
                Column::U8(_) => {
                    (fetch_u8(trk, key_bat, key_locals)?.into_iter().map(u32::from).collect(), 256)
                }
                other => {
                    return Err(EngineError::UnsupportedType {
                        op: "group key",
                        ty: other.value_type(),
                    })
                }
            };
            let mut counts = vec![0u64; domain];
            for &c in &codes {
                counts[c as usize] += 1;
            }
            let mut mins = Vec::new();
            let mut maxs = Vec::new();
            let mut sum_cols = Vec::new();
            for agg in aggs {
                match agg {
                    Agg::Sum(col) => {
                        let (table, locals) = side(col);
                        let bat = table.bat(col)?;
                        let vals: Vec<f64> = match bat.tail() {
                            Column::F64(_) => fetch_f64(trk, bat, locals)?,
                            // i32 → f64 is exact, matching the unsharded
                            // kernel's gather.
                            _ => {
                                fetch_i32(trk, bat, locals)?.into_iter().map(|v| v as f64).collect()
                            }
                        };
                        sum_cols.push(vals);
                    }
                    Agg::Min(col) => {
                        let (table, locals) = side(col);
                        let vals = fetch_i32(trk, table.bat(col)?, locals)?;
                        let mut per_code = vec![None; domain];
                        for (&c, v) in codes.iter().zip(vals) {
                            let slot: &mut Option<i32> = &mut per_code[c as usize];
                            *slot = Some(slot.map_or(v, |m: i32| m.min(v)));
                        }
                        mins.push(per_code);
                    }
                    Agg::Max(col) => {
                        let (table, locals) = side(col);
                        let vals = fetch_i32(trk, table.bat(col)?, locals)?;
                        let mut per_code = vec![None; domain];
                        for (&c, v) in codes.iter().zip(vals) {
                            let slot: &mut Option<i32> = &mut per_code[c as usize];
                            *slot = Some(slot.map_or(v, |m: i32| m.max(v)));
                        }
                        maxs.push(per_code);
                    }
                    Agg::Count => {}
                }
            }
            PartialRows::Grouped(GroupPartial {
                domain,
                counts,
                mins,
                maxs,
                sortkeys: sortkeys.clone(),
                codes,
                sum_cols,
            })
        }
    };

    Ok(ShardPartial { rows, stream_rows, report: run.report, gather_counters: delta(trk, before) })
}

/// Strip shard suffixes (`[h/S]`) out of an operator label so per-shard op
/// names merge under the parent table's name.
fn strip_shard_suffix(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'[' {
            // Swallow "[digits/digits]" only.
            let mut j = i + 1;
            while j < bytes.len() && bytes[j].is_ascii_digit() {
                j += 1;
            }
            if j > i + 1 && j < bytes.len() && bytes[j] == b'/' {
                let mut k = j + 1;
                while k < bytes.len() && bytes[k].is_ascii_digit() {
                    k += 1;
                }
                if k > j + 1 && k < bytes.len() && bytes[k] == b']' {
                    i = k + 1;
                    continue;
                }
            }
        }
        out.push(bytes[i] as char);
        i += 1;
    }
    out
}

/// Merge shard partials into the final result. The merged report carries
/// one operator per shard-plan operator (rows and simulated counters summed
/// across shards, with the per-shard counters preserved in
/// [`OpReport::counters_per_shard`]) plus one coordinator `merge` operator.
pub fn merge(lowered: &Lowered<'_>, partials: Vec<ShardPartial>) -> Result<Executed, EngineError> {
    assert_eq!(partials.len(), lowered.shard_count(), "one partial per shard");
    let n = partials.len();

    let output = match &lowered.merge {
        MergeShape::Oids => {
            let mut all: Vec<Oid> = partials
                .iter()
                .flat_map(|p| match &p.rows {
                    PartialRows::Oids(v) => v.iter().copied(),
                    _ => unreachable!("oid merge over oid partials"),
                })
                .collect();
            // Per-shard lists are ascending and disjoint; one sort is the
            // k-way merge.
            all.sort_unstable();
            QueryOutput::Oids(all)
        }
        MergeShape::Pairs => {
            let mut all: Vec<OidPair> = partials
                .iter()
                .flat_map(|p| match &p.rows {
                    PartialRows::Pairs(v) => v.iter().copied(),
                    _ => unreachable!("pair merge over pair partials"),
                })
                .collect();
            all.sort_unstable_by_key(|p| (p.left, p.right));
            QueryOutput::JoinIndex(all)
        }
        MergeShape::Agg { key: None, aggs } => {
            let mut values = Vec::with_capacity(aggs.len());
            for i in 0..aggs.len() {
                let combined = partials.iter().fold(None::<AggPartial>, |acc, p| {
                    let PartialRows::Scalar(parts) = &p.rows else {
                        unreachable!("scalar merge over scalar partials")
                    };
                    Some(combine_scalar(acc, &parts[i]))
                });
                values.push(finish_scalar(combined.expect("at least one shard")));
            }
            QueryOutput::Aggregates(values)
        }
        MergeShape::Agg { key: Some(key), aggs } => {
            let groups: Vec<&GroupPartial> = partials
                .iter()
                .map(|p| match &p.rows {
                    PartialRows::Grouped(g) => g,
                    _ => unreachable!("grouped merge over grouped partials"),
                })
                .collect();
            let domain = groups.iter().map(|g| g.domain).max().unwrap_or(256);

            // Exact per-group combines.
            let mut counts = vec![0u64; domain];
            for g in &groups {
                for (c, &v) in g.counts.iter().enumerate() {
                    counts[c] += v;
                }
            }
            let n_min = groups[0].mins.len();
            let n_max = groups[0].maxs.len();
            let n_sum = groups[0].sum_cols.len();
            let mut mins = vec![vec![None; domain]; n_min];
            let mut maxs = vec![vec![None; domain]; n_max];
            for g in &groups {
                for (a, col) in g.mins.iter().enumerate() {
                    for (c, v) in col.iter().enumerate() {
                        if let Some(v) = v {
                            let slot = &mut mins[a][c];
                            *slot = Some(slot.map_or(*v, |m: i32| m.min(*v)));
                        }
                    }
                }
                for (a, col) in g.maxs.iter().enumerate() {
                    for (c, v) in col.iter().enumerate() {
                        if let Some(v) = v {
                            let slot = &mut maxs[a][c];
                            *slot = Some(slot.map_or(*v, |m: i32| m.max(*v)));
                        }
                    }
                }
            }

            // f64 sums: accumulate every surviving row in global sort-key
            // order — the unsharded kernel's exact addition order.
            let mut order: Vec<(u64, u32, u32)> = Vec::new();
            for (s, g) in groups.iter().enumerate() {
                order.extend(g.sortkeys.iter().enumerate().map(|(r, &k)| (k, s as u32, r as u32)));
            }
            order.sort_unstable_by_key(|&(k, _, _)| k);
            let mut sums = vec![vec![0.0f64; domain]; n_sum];
            for &(_, s, r) in &order {
                let g = groups[s as usize];
                let code = g.codes[r as usize] as usize;
                for (a, col) in g.sum_cols.iter().enumerate() {
                    sums[a][code] += col[r as usize];
                }
            }

            // Decode via the shared dictionary (shard 0's key column — all
            // shards clone the parent dict).
            let (key_table, _) =
                if lowered.ctx[0].left.table.bat(key).is_ok() || lowered.ctx[0].right.is_none() {
                    (&lowered.ctx[0].left.table, true)
                } else {
                    (&lowered.ctx[0].right.expect("checked").table, false)
                };
            let key_bat = key_table.bat(key)?;
            let decode = |code: u32| -> String {
                match key_bat.tail() {
                    Column::Str(sc) => sc.dict.decode(code).to_owned(),
                    _ => code.to_string(),
                }
            };

            let mut rows = Vec::new();
            for code in 0..domain {
                if counts[code] == 0 {
                    continue;
                }
                let (mut si, mut mi, mut ma) = (0, 0, 0);
                let values = aggs
                    .iter()
                    .map(|agg| match agg {
                        Agg::Sum(_) => {
                            let v = AggValue::F64(sums[si][code]);
                            si += 1;
                            v
                        }
                        Agg::Min(_) => {
                            let v = AggValue::MaybeI32(mins[mi][code]);
                            mi += 1;
                            v
                        }
                        Agg::Max(_) => {
                            let v = AggValue::MaybeI32(maxs[ma][code]);
                            ma += 1;
                            v
                        }
                        Agg::Count => AggValue::Count(counts[code] as usize),
                    })
                    .collect();
                rows.push(GroupRow { key: decode(code as u32), values });
            }
            QueryOutput::Groups(rows)
        }
    };

    // ----- merged report -----
    let mut report = ExecReport { ops: Vec::new(), planner: partials[0].report.planner };
    let op_count = partials[0].report.ops.len();
    debug_assert!(partials.iter().all(|p| p.report.ops.len() == op_count));
    for j in 0..op_count {
        let first = &partials[0].report.ops[j];
        let per_shard: Vec<Option<EventCounters>> =
            partials.iter().map(|p| p.report.ops[j].counters).collect();
        let merged_counters =
            per_shard.iter().try_fold(EventCounters::default(), |acc, c| c.map(|c| acc + c));
        report.ops.push(OpReport {
            op: strip_shard_suffix(&first.op),
            rows_in: partials.iter().map(|p| p.report.ops[j].rows_in).sum(),
            rows_out: partials.iter().map(|p| p.report.ops[j].rows_out).sum(),
            detail: format!("sharded x{n}: {}", strip_shard_suffix(&first.detail)),
            counters: merged_counters,
            access: partials.iter().flat_map(|p| p.report.ops[j].access.clone()).collect(),
            notes: partials.iter().flat_map(|p| p.report.ops[j].notes.clone()).collect(),
            shapes: partials.iter().flat_map(|p| p.report.ops[j].shapes.clone()).collect(),
            rows_per_thread: None,
            counters_per_shard: per_shard.iter().any(Option::is_some).then_some(per_shard),
        });
    }
    let merged_rows: usize = partials.iter().map(|p| p.stream_rows).sum();
    let rows_out = match &output {
        QueryOutput::Groups(g) => g.len(),
        QueryOutput::Aggregates(a) => a.len(),
        QueryOutput::Oids(o) => o.len(),
        QueryOutput::JoinIndex(p) => p.len(),
    };
    let gather_per_shard: Vec<Option<EventCounters>> =
        partials.iter().map(|p| p.gather_counters).collect();
    let gather_total =
        gather_per_shard.iter().try_fold(EventCounters::default(), |acc, c| c.map(|c| acc + c));
    let what = match &lowered.merge {
        MergeShape::Oids => "k-way OID interleave",
        MergeShape::Pairs => "canonical (left, right) pair interleave",
        MergeShape::Agg { key: None, .. } => "exact partial combine + ordered f64 accumulation",
        MergeShape::Agg { key: Some(_), .. } => {
            "per-group exact combine + ordered f64 accumulation"
        }
    };
    report.ops.push(OpReport {
        op: format!("merge[{n} shards]"),
        rows_in: merged_rows,
        rows_out,
        detail: format!("coordinator: {what}"),
        counters: gather_total,
        shapes: vec![OpShape::Merge { rows: merged_rows }],
        counters_per_shard: gather_per_shard
            .iter()
            .any(Option::is_some)
            .then_some(gather_per_shard),
        ..OpReport::default()
    });

    Ok(Executed { output, report })
}

/// Lower, execute every shard sequentially under one tracker, and merge —
/// the single-machine convenience entry point. For placed execution run
/// [`lower`] / [`execute_shard`] / [`merge`] yourself.
pub fn execute_sharded<M: MemTracker>(
    trk: &mut M,
    plan: &LogicalPlan<'_>,
    tables: &[&ShardedTable],
    opts: &ExecOptions,
) -> Result<Executed, EngineError> {
    let lowered = lower(plan, tables)?;
    let partials = (0..lowered.shard_count())
        .map(|i| execute_shard(trk, &lowered, i, opts))
        .collect::<Result<Vec<_>, _>>()?;
    merge(&lowered, partials)
}

fn combine_scalar(acc: Option<AggPartial>, p: &AggPartial) -> AggPartial {
    match acc {
        None => p.clone(),
        Some(acc) => match (acc, p) {
            (AggPartial::Count(a), AggPartial::Count(b)) => AggPartial::Count(a + b),
            (AggPartial::SumI64(a), AggPartial::SumI64(b)) => AggPartial::SumI64(a + b),
            (AggPartial::Min(a), AggPartial::Min(b)) => AggPartial::Min(match (a, *b) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (x, y) => x.or(y),
            }),
            (AggPartial::Max(a), AggPartial::Max(b)) => AggPartial::Max(match (a, *b) {
                (Some(a), Some(b)) => Some(a.max(b)),
                (x, y) => x.or(y),
            }),
            (AggPartial::SumF64(mut a), AggPartial::SumF64(b)) => {
                a.extend(b.iter().copied());
                AggPartial::SumF64(a)
            }
            _ => unreachable!("shards agree on aggregate kinds"),
        },
    }
}

fn finish_scalar(p: AggPartial) -> AggValue {
    match p {
        AggPartial::Count(c) => AggValue::Count(c),
        AggPartial::SumI64(s) => AggValue::I64(s),
        AggPartial::Min(m) => AggValue::MaybeI32(m),
        AggPartial::Max(m) => AggValue::MaybeI32(m),
        AggPartial::SumF64(mut rows) => {
            // Global sort order = the unsharded accumulation order.
            rows.sort_unstable_by_key(|&(k, _)| k);
            let mut sum = 0.0f64;
            for (_, v) in rows {
                sum += v;
            }
            AggValue::F64(sum)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{Pred, Query};
    use memsim::{NullTracker, SimTracker};
    use monet_core::storage::{ColType, TableBuilder, Value};

    fn item(n: usize) -> DecomposedTable {
        let mut b = TableBuilder::new("item", 1000)
            .column("supp", ColType::I32)
            .column("qty", ColType::I32)
            .column("price", ColType::F64)
            .column("shipmode", ColType::Str);
        for i in 0..n {
            b.push_row(&[
                Value::I32((i * 7 % 50) as i32),
                Value::I32((i % 10) as i32),
                Value::F64(i as f64 * 0.37),
                Value::from(["AIR", "SHIP", "MAIL", "RAIL"][i % 4]),
            ])
            .unwrap();
        }
        b.finish()
    }

    fn supplier(n: usize) -> DecomposedTable {
        let mut b = TableBuilder::new("supplier", 0)
            .column("id", ColType::I32)
            .column("rating", ColType::I32);
        for i in 0..n {
            b.push_row(&[Value::I32(i as i32), Value::I32((i * 13 % 97) as i32)]).unwrap();
        }
        b.finish()
    }

    fn assert_sharded_matches(plan: &LogicalPlan<'_>, tables: &[&ShardedTable]) {
        let opts = ExecOptions::default();
        let solo = execute(&mut NullTracker, plan, &opts).unwrap();
        let sharded = execute_sharded(&mut NullTracker, plan, tables, &opts).unwrap();
        assert!(
            solo.output.bitwise_eq(&sharded.output),
            "sharded diverged:\n{:?}\nvs\n{:?}",
            solo.output,
            sharded.output
        );
    }

    #[test]
    fn select_join_and_groups_merge_bit_identically() {
        let item = item(2000);
        let supp = supplier(50);
        for s in [1, 3, 4] {
            let is = ShardedTable::partition(&item, "supp", s).unwrap();
            let ss = ShardedTable::partition(&supp, "id", s).unwrap();
            let tables: Vec<&ShardedTable> = vec![&is, &ss];

            let select = Query::scan(&item).filter(Pred::range_i32("qty", 2, 7)).build().unwrap();
            assert_sharded_matches(&select, &tables);

            let join = Query::scan(&item)
                .filter(Pred::range_i32("qty", 1, 8))
                .join(&supp, ("supp", "id"))
                .build()
                .unwrap();
            assert_sharded_matches(&join, &tables);

            let grouped = Query::scan(&item)
                .filter(Pred::range_i32("qty", 0, 8))
                .group_by("shipmode")
                .agg(Agg::sum("price"))
                .agg(Agg::min("qty"))
                .agg(Agg::max("qty"))
                .agg(Agg::count())
                .build()
                .unwrap();
            assert_sharded_matches(&grouped, &tables);

            let grouped_join = Query::scan(&item)
                .join(&supp, ("supp", "id"))
                .group_by("shipmode")
                .agg(Agg::sum("price"))
                .agg(Agg::sum("rating"))
                .agg(Agg::count())
                .build()
                .unwrap();
            assert_sharded_matches(&grouped_join, &tables);

            let scalar = Query::scan(&item)
                .filter(Pred::eq_str("shipmode", "AIR"))
                .agg(Agg::sum("price"))
                .agg(Agg::sum("qty"))
                .agg(Agg::min("qty"))
                .agg(Agg::count())
                .build()
                .unwrap();
            assert_sharded_matches(&scalar, &tables);
        }
    }

    #[test]
    fn co_partitioning_is_required_for_joins() {
        let item = item(100);
        let supp = supplier(10);
        let is = ShardedTable::partition(&item, "qty", 2).unwrap(); // wrong key
        let ss = ShardedTable::partition(&supp, "id", 2).unwrap();
        let plan = Query::scan(&item).join(&supp, ("supp", "id")).build().unwrap();
        let err = lower(&plan, &[&is, &ss]).err().expect("co-partition check must fail");
        assert!(matches!(err, EngineError::Plan(PlanError::Unsupported(_))), "{err:?}");

        // Mismatched shard counts are rejected too.
        let is = ShardedTable::partition(&item, "supp", 2).unwrap();
        let ss3 = ShardedTable::partition(&supp, "id", 3).unwrap();
        assert!(lower(&plan, &[&is, &ss3]).is_err());
    }

    #[test]
    fn merged_report_sums_per_shard_counters_to_tracker_totals() {
        let item = item(1500);
        let is = ShardedTable::partition(&item, "supp", 4).unwrap();
        let plan = Query::scan(&item)
            .filter(Pred::range_i32("qty", 1, 6))
            .group_by("shipmode")
            .agg(Agg::sum("price"))
            .agg(Agg::count())
            .build()
            .unwrap();
        let mut trk = SimTracker::new(memsim::MemorySystem::new(memsim::profiles::origin2000()));
        let before = trk.counters_snapshot().unwrap();
        let run = execute_sharded(&mut trk, &plan, &[&is], &ExecOptions::default()).unwrap();
        let total = trk.counters_snapshot().unwrap() - before;

        // Every op that consumed simulated events carries per-shard counters
        // that sum to its merged counters, and the op totals sum to the
        // tracker's grand total (ops that did no tracked work — e.g. the
        // scan placeholder — carry none on either level).
        let mut acc = EventCounters::default();
        let mut counted_ops = 0;
        for op in &run.report.ops {
            let Some(merged) = op.counters else {
                assert!(op.counters_per_shard.is_none(), "op {}", op.op);
                continue;
            };
            counted_ops += 1;
            let shards = op.counters_per_shard.as_ref().expect("sharded run");
            let shard_sum =
                shards.iter().fold(EventCounters::default(), |a, c| a + c.expect("simulated"));
            assert_eq!(shard_sum, merged, "op {}", op.op);
            acc += merged;
        }
        assert!(counted_ops >= 2, "select + merge must both carry counters");
        assert_eq!(acc, total, "per-op counters must sum to the tracker total");
    }

    #[test]
    fn shard_suffixes_are_stripped_in_merged_reports() {
        assert_eq!(strip_shard_suffix("scan(item[0/4])"), "scan(item)");
        assert_eq!(strip_shard_suffix("select(item[12/16])"), "select(item)");
        assert_eq!(strip_shard_suffix("join[supp = id]"), "join[supp = id]");
        assert_eq!(strip_shard_suffix("scan(item[x/4])"), "scan(item[x/4])");
    }
}
