//! The physical query layer: a cost-model-driven executor for
//! [`LogicalPlan`]s.
//!
//! [`execute`] lowers each logical node onto the operator kernels of this
//! crate — scan-selects, candidate combinators, positional fetches, the radix
//! join family, hash-grouping — and makes every *physical* decision itself:
//!
//! * **Joins** ask the paper's analytical cost model
//!   ([`costmodel::plan::plan_join`], the exhaustive Figure 12 search over
//!   algorithm × radix bits × pass layout) which kernel to run, or the
//!   cache-size heuristics of [`monet_core::strategy::heuristic_plan`] when
//!   [`Planner::Heuristic`] is selected. Call sites never pick bits.
//! * **Selections** choose an *access path per predicate leaf*: the §2
//!   stride-scan model prices a scan-select against every index attached to
//!   the filtered column ([`costmodel::access`]; CsBTree range/eq, hash
//!   probe, T-tree probe), with B+-tree-backed range selectivity counted
//!   exactly. Index-path candidate lists are sorted back into OID order, so
//!   every access mode is bit-identical. `MONET_ACCESS=scan|index|auto`
//!   (or [`ExecOptions::access`]) pins the policy; tables without indexes
//!   behave exactly as before.
//! * **Grouping** uses the direct-indexed hash kernel (the group domain of an
//!   encoded key is ≤ 65536 codes, so the table fits the cache — the paper's
//!   argument for hash over sort grouping).
//!
//! Every operator records rows-in/rows-out and, when running under a
//! counting [`MemTracker`], the simulated event counters it consumed — the
//! returned [`ExecReport`] prints as a per-operator table.
//!
//! A selection constant missing from a column's dictionary makes that
//! predicate provably empty; the executor treats it as zero rows, not as an
//! error (see [`EngineError::ConstantNotInDictionary`]).
//!
//! # Parallel execution
//!
//! [`ExecOptions::threads`] opens the multi-core axis: with
//! [`Threads::Fixed`]`(n)` every parallel-capable operator fans out over `n`
//! threads, and with [`Threads::Auto`] the degree of parallelism becomes a
//! *physical decision of the cost model*, chosen per operator by
//! [`costmodel::parallel::ParallelModel`] (speedup = work / max per-thread
//! share, against a per-thread fork overhead) — just like the join algorithm
//! and radix bits. Results are **bit-identical** to sequential execution at
//! every thread count: selections and gathers merge chunk results
//! thread-major, the radix join kernels reproduce the sequential scatter and
//! cluster-pair order, and `f64` aggregate accumulation preserves the
//! sequential per-group addition order (see
//! [`crate::group::par_hash_group_multi_sum_f64`]). Simulated runs
//! (`SimTracker`) are pinned to one thread: threading a single shared
//! simulated memory hierarchy would serialize on the simulator and model a
//! machine the paper never measured.

use std::fmt;
use std::sync::Arc;

use costmodel::access::AccessPath;
use costmodel::parallel::{algorithm_parallelizes, ParallelModel};
use costmodel::plan::{best_plan, plan_cost};
use costmodel::quote::OpShape;
use costmodel::scan::scan_cost;
use costmodel::ModelMachine;
use costmodel::ModelParams;
use memsim::{track_read, EventCounters, MachineConfig, MemTracker, Work};
use monet_core::join::OidPair;
use monet_core::storage::{Bat, Column, DecomposedTable, Oid};
use monet_core::strategy::{heuristic_plan, JoinPlan};

use crate::access::{
    eval_planned, leaf_count, plan_pred_with, AccessDecision, AccessMode, CompressMode,
    PushdownMode,
};
use crate::aggregate::{max_i32, min_i32, par_max_i32, par_min_i32, par_sum_i32, sum_f64, sum_i32};
use crate::candidates::intersect;
use crate::group::{hash_group_multi_agg, par_hash_group_multi_agg};
use crate::join::{join_bats_with_plan, par_join_bats_with_plan_sharded};
use crate::plan::{Agg, LogicalPlan, PlanNode};
use crate::reconstruct::{
    fetch_f64, fetch_i32, fetch_str, fetch_u8, par_fetch_f64, par_fetch_i32, par_fetch_str,
    par_fetch_u8, reconstruct,
};
use crate::select::CandList;
use crate::shared::ScanTicket;
use crate::EngineError;

/// How the executor chooses physical join plans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Planner {
    /// Exhaustive search over the paper's analytical cost model
    /// ([`costmodel::plan::best_plan`]) — what a query optimizer would ship.
    CostModel,
    /// The cache-size heuristics of [`monet_core::strategy::heuristic_plan`]
    /// (no model evaluation; cheaper to plan, coarser choices).
    Heuristic,
}

impl Planner {
    fn name(self) -> &'static str {
        match self {
            Planner::CostModel => "cost model",
            Planner::Heuristic => "heuristic",
        }
    }
}

/// How many threads parallel-capable operators may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Threads {
    /// Per-operator thread counts chosen by the parallel cost model
    /// ([`costmodel::parallel`]), capped at the host's available
    /// parallelism. The model never picks a count it prices slower than
    /// sequential.
    Auto,
    /// A fixed thread count for every parallel-capable operator (1 = fully
    /// sequential, the default).
    Fixed(usize),
}

/// Executor configuration: the machine whose memory hierarchy the cost model
/// prices, the planner flavour, the degree of parallelism, and the selection
/// access-path policy.
#[derive(Debug, Clone, Copy)]
pub struct ExecOptions {
    /// Machine the cost model plans for (usually the machine you run on; the
    /// examples use the simulated Origin2000 so model and simulator agree).
    pub machine: MachineConfig,
    /// Physical-plan chooser.
    pub planner: Planner,
    /// Degree of parallelism. Results are bit-identical at every setting;
    /// simulated runs are pinned to one thread regardless (see the
    /// [module docs](self)).
    pub threads: Threads,
    /// Selection access-path policy (scan / index / auto). The constructors
    /// default to [`AccessMode::Auto`] unless the `MONET_ACCESS` environment
    /// variable pins a mode (the tests/CI hook). Results are bit-identical
    /// at every setting.
    pub access: AccessMode,
    /// An externally imposed hard ceiling on per-operator thread counts,
    /// applied on top of [`Threads`] (both `Auto` and `Fixed`). This is the
    /// seam a multi-query scheduler uses to lease a slice of a global
    /// thread budget to one `execute` call: the executor is re-entrant, so
    /// concurrent queries each run under their own cap and the pool is
    /// never oversubscribed. `None` (the default) imposes no ceiling.
    pub thread_cap: Option<usize>,
    /// Compressed-column policy (off / on / force). The constructors
    /// default to [`CompressMode::On`] unless the `MONET_COMPRESS`
    /// environment variable pins a mode. Results are bit-identical at
    /// every setting; only the bytes streamed (and hence the model's path
    /// choices) change.
    pub compress: CompressMode,
    /// Candidate-list pushdown policy for multi-leaf AND filters (off / on).
    /// The constructors default to [`PushdownMode::On`] unless the
    /// `MONET_PUSHDOWN` environment variable pins a mode. Results are
    /// bit-identical at every setting; only the leaf order and the bytes
    /// later leaves stream change.
    pub pushdown: PushdownMode,
}

impl ExecOptions {
    /// Cost-model-driven execution on `machine`.
    pub fn cost_model(machine: MachineConfig) -> Self {
        Self {
            machine,
            planner: Planner::CostModel,
            threads: Threads::Fixed(1),
            access: AccessMode::from_env().unwrap_or(AccessMode::Auto),
            thread_cap: None,
            compress: CompressMode::from_env().unwrap_or(CompressMode::On),
            pushdown: PushdownMode::from_env().unwrap_or(PushdownMode::On),
        }
    }

    /// Heuristic execution on `machine`.
    pub fn heuristic(machine: MachineConfig) -> Self {
        Self { planner: Planner::Heuristic, ..Self::cost_model(machine) }
    }

    /// Set the degree of parallelism.
    pub fn with_threads(mut self, threads: Threads) -> Self {
        self.threads = threads;
        self
    }

    /// Set the selection access-path policy (overriding `MONET_ACCESS`).
    pub fn with_access(mut self, access: AccessMode) -> Self {
        self.access = access;
        self
    }

    /// Set the compressed-column policy (overriding `MONET_COMPRESS`).
    pub fn with_compress(mut self, compress: CompressMode) -> Self {
        self.compress = compress;
        self
    }

    /// Set the candidate-pushdown policy (overriding `MONET_PUSHDOWN`).
    pub fn with_pushdown(mut self, pushdown: PushdownMode) -> Self {
        self.pushdown = pushdown;
        self
    }

    /// Impose a hard per-operator thread ceiling (`cap >= 1`), on top of
    /// whatever [`Threads`] setting is active. Used by the query service to
    /// confine one query to its leased slice of the global thread budget.
    pub fn with_thread_cap(mut self, cap: usize) -> Self {
        self.thread_cap = Some(cap.max(1));
        self
    }
}

impl Default for ExecOptions {
    fn default() -> Self {
        Self::cost_model(memsim::profiles::origin2000())
    }
}

/// Upper bound on what [`Threads::Auto`] will ever spawn, on top of the
/// host's reported available parallelism.
const MAX_AUTO_THREADS: usize = 32;

/// Resolve one operator's thread count (and, under [`Threads::Auto`], the
/// model-predicted speedup): `seq_ns` is the operator's sequential model
/// quote, `items` its uniform work items. Simulated runs pin to one thread.
fn op_threads<M: MemTracker>(
    opts: &ExecOptions,
    seq_ns: f64,
    items: usize,
) -> (usize, Option<f64>) {
    if M::ENABLED {
        return (1, None);
    }
    let ceiling = opts.thread_cap.unwrap_or(usize::MAX).max(1);
    match opts.threads {
        Threads::Fixed(n) => (n.max(1).min(ceiling), None),
        Threads::Auto => {
            let cap = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(MAX_AUTO_THREADS)
                .min(ceiling);
            let plan = ParallelModel::for_machine(&opts.machine, cap).best_threads(seq_ns, items);
            (plan.threads, Some(plan.speedup()))
        }
    }
}

/// Render an operator's parallelism decision for the report detail.
fn threads_detail(threads: usize, speedup: Option<f64>) -> String {
    match (threads, speedup) {
        (1, _) => String::new(),
        (n, Some(s)) => format!("; threads={n} (model {s:.1}x)"),
        (n, None) => format!("; threads={n}"),
    }
}

/// A structured annotation on an operator's execution — facts that used to
/// live only in the free-text `detail` string, now matchable without string
/// parsing. `detail` still renders them for humans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccessNote {
    /// `provided` of the filter's `total` predicate leaves consumed
    /// candidate lists a cooperative shared-scan pass produced, so this
    /// operator skipped that scan work.
    SharedLeaves {
        /// Leaves whose candidates arrived via the scan ticket.
        provided: usize,
        /// Total predicate leaves in the filter.
        total: usize,
    },
    /// The planner ordered this AND filter's leaves for candidate-list
    /// pushdown: each leaf after the first evaluated only the survivors of
    /// the leaves before it.
    Pushdown {
        /// Chosen evaluation order, as indices into the filter's leaves in
        /// predicate order.
        order: Vec<usize>,
        /// Per leaf (predicate order): the candidate-list size it consumed,
        /// `None` for the leaf that ran its full pass.
        cands_in: Vec<Option<usize>>,
    },
}

impl fmt::Display for AccessNote {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessNote::SharedLeaves { provided, total } => {
                write!(f, "{provided}/{total} leaves via shared scan")
            }
            AccessNote::Pushdown { order, cands_in } => {
                let order: Vec<String> = order.iter().map(|i| i.to_string()).collect();
                let restricted = cands_in.iter().filter(|k| k.is_some()).count();
                write!(
                    f,
                    "pushdown order [{}], {restricted}/{} leaves restricted",
                    order.join(","),
                    cands_in.len()
                )
            }
        }
    }
}

/// What one operator did.
#[derive(Debug, Clone, Default)]
pub struct OpReport {
    /// Operator name, e.g. `select(item)` or `join[qty = id]`.
    pub op: String,
    /// Rows entering the operator.
    pub rows_in: usize,
    /// Rows leaving the operator.
    pub rows_out: usize,
    /// The physical decision taken and/or its model-predicted cost.
    pub detail: String,
    /// Simulated memory-system events consumed by this operator, when the
    /// tracker counts ([`None`] under `NullTracker`).
    pub counters: Option<EventCounters>,
    /// Selection operators: the access-path decision per predicate leaf
    /// (scan vs. which index, with both model quotes).
    pub access: Vec<AccessDecision>,
    /// Structured annotations (e.g. shared-scan participation) — the
    /// machine-readable form of facts `detail` renders as text.
    pub notes: Vec<AccessNote>,
    /// The cost-model shapes for the work this operator performed *itself*
    /// (index probes and leaves fed by a shared pass are excluded): what the
    /// model would quote for exactly the kernels that ran. Drift monitors
    /// compare these quotes against observed counters.
    pub shapes: Vec<OpShape>,
    /// Parallel runs: this operator's row counters sharded per thread
    /// (select: matches produced per chunk, summed over scanning leaves;
    /// gather/ungrouped aggregate: input rows per chunk; join: result pairs
    /// produced per cluster-pair worker block; grouped aggregate: input rows
    /// accumulated per group-domain slice). `rows_out` stays the merged
    /// total; sequential runs carry `None`.
    pub rows_per_thread: Option<Vec<usize>>,
    /// Sharded runs (`crate::dist`): this operator's simulated counters per
    /// table shard, in shard order. `counters` stays the merged total (the
    /// per-shard deltas sum to it — shards execute sequentially under one
    /// tracker), so global SimTracker accounting is unchanged; unsharded
    /// runs carry `None`.
    pub counters_per_shard: Option<Vec<Option<EventCounters>>>,
}

/// Per-operator execution trace, returned alongside every query result.
#[derive(Debug, Clone, Default)]
pub struct ExecReport {
    /// Operators in execution order.
    pub ops: Vec<OpReport>,
    /// Planner that made the physical choices.
    pub planner: &'static str,
}

impl ExecReport {
    /// Total simulated milliseconds across operators (0 under `NullTracker`).
    pub fn simulated_ms(&self) -> f64 {
        self.ops.iter().filter_map(|o| o.counters.as_ref()).map(|c| c.elapsed_ms()).sum()
    }
}

impl fmt::Display for ExecReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let simulated = self.ops.iter().any(|o| o.counters.is_some());
        writeln!(f, "physical plan (planner: {}):", self.planner)?;
        write!(f, "{:>2}  {:<24} {:>10} {:>10}", "#", "operator", "rows in", "rows out")?;
        if simulated {
            write!(f, " {:>9} {:>9} {:>9} {:>9}", "sim ms", "L1 miss", "L2 miss", "TLB miss")?;
        }
        writeln!(f, "  decision")?;
        for (i, op) in self.ops.iter().enumerate() {
            write!(f, "{:>2}  {:<24} {:>10} {:>10}", i + 1, op.op, op.rows_in, op.rows_out)?;
            if simulated {
                match &op.counters {
                    Some(c) => write!(
                        f,
                        " {:>9.2} {:>9} {:>9} {:>9}",
                        c.elapsed_ms(),
                        c.l1_misses,
                        c.l2_misses,
                        c.tlb_misses
                    )?,
                    None => write!(f, " {:>9} {:>9} {:>9} {:>9}", "-", "-", "-", "-")?,
                }
            }
            writeln!(f, "  {}", op.detail)?;
        }
        Ok(())
    }
}

/// One computed aggregate value.
#[derive(Debug, Clone, PartialEq)]
pub enum AggValue {
    /// An integer sum.
    I64(i64),
    /// A float sum (grouped sums are always `F64`).
    F64(f64),
    /// A min/max (`None` when no rows qualified).
    MaybeI32(Option<i32>),
    /// A row count.
    Count(usize),
}

impl AggValue {
    /// The value as `f64` (`NaN` for an empty min/max).
    pub fn as_f64(&self) -> f64 {
        match self {
            AggValue::I64(v) => *v as f64,
            AggValue::F64(v) => *v,
            AggValue::MaybeI32(v) => v.map_or(f64::NAN, |x| x as f64),
            AggValue::Count(v) => *v as f64,
        }
    }
}

impl fmt::Display for AggValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AggValue::I64(v) => write!(f, "{v}"),
            AggValue::F64(v) => write!(f, "{v:.2}"),
            AggValue::MaybeI32(Some(v)) => write!(f, "{v}"),
            AggValue::MaybeI32(None) => write!(f, "null"),
            AggValue::Count(v) => write!(f, "{v}"),
        }
    }
}

/// One row of a grouped aggregation: decoded key plus one value per
/// aggregate, in the order they were added to the [`crate::plan::Query`].
#[derive(Debug, Clone, PartialEq)]
pub struct GroupRow {
    /// Decoded group key.
    pub key: String,
    /// Aggregate values.
    pub values: Vec<AggValue>,
}

/// The result rows of an executed plan; the variant follows the plan shape.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryOutput {
    /// `group_by` + aggregates: one row per occurring group, ascending by
    /// key code.
    Groups(Vec<GroupRow>),
    /// Aggregates without grouping: one value per aggregate.
    Aggregates(Vec<AggValue>),
    /// Bare scan/filter: qualifying OIDs, ascending.
    Oids(Vec<Oid>),
    /// Join without aggregation: the `[OID, OID]` join index.
    JoinIndex(Vec<OidPair>),
}

impl QueryOutput {
    /// Representation-level equality: like `==`, but `f64` aggregates must
    /// match *bit for bit* — `==` would conflate `0.0` with `-0.0`, which
    /// is weaker than the executor's determinism contract (parallel and
    /// sequential runs preserve the exact floating-point addition order).
    pub fn bitwise_eq(&self, other: &QueryOutput) -> bool {
        fn agg_eq(a: &AggValue, b: &AggValue) -> bool {
            match (a, b) {
                (AggValue::F64(x), AggValue::F64(y)) => x.to_bits() == y.to_bits(),
                _ => a == b,
            }
        }
        match (self, other) {
            (QueryOutput::Groups(a), QueryOutput::Groups(b)) => {
                a.len() == b.len()
                    && a.iter().zip(b).all(|(ga, gb)| {
                        ga.key == gb.key
                            && ga.values.len() == gb.values.len()
                            && ga.values.iter().zip(&gb.values).all(|(x, y)| agg_eq(x, y))
                    })
            }
            (QueryOutput::Aggregates(a), QueryOutput::Aggregates(b)) => {
                a.len() == b.len() && a.iter().zip(b).all(|(x, y)| agg_eq(x, y))
            }
            (a, b) => a == b,
        }
    }
}

/// A query result: output rows plus the per-operator execution trace.
#[derive(Debug, Clone)]
pub struct Executed {
    /// The result rows.
    pub output: QueryOutput,
    /// What each operator did and what it chose.
    pub report: ExecReport,
}

/// Rows flowing between operators during execution.
enum Stream<'a> {
    /// Rows of one table, optionally restricted to candidate OIDs.
    Table { table: &'a DecomposedTable, cands: Option<Vec<Oid>> },
    /// Aligned row pairs produced by a join.
    Joined { left: &'a DecomposedTable, right: &'a DecomposedTable, pairs: Vec<OidPair> },
}

impl Stream<'_> {
    fn rows(&self) -> usize {
        match self {
            Stream::Table { table, cands } => cands.as_ref().map_or(table.len(), Vec::len),
            Stream::Joined { pairs, .. } => pairs.len(),
        }
    }
}

/// Execute a validated plan, returning results and the per-operator report.
///
/// Generic over [`MemTracker`]: run with `NullTracker` for native speed or a
/// `SimTracker` to attribute simulated miss counts to each operator in the
/// report.
pub fn execute<M: MemTracker>(
    trk: &mut M,
    plan: &LogicalPlan<'_>,
    opts: &ExecOptions,
) -> Result<Executed, EngineError> {
    execute_with_scans(trk, plan, opts, &ScanTicket::new())
}

/// [`execute`] with externally produced candidate lists: any predicate
/// leaf covered by `ticket` (keyed by the global leaf numbering of
/// [`crate::shared::scan_requests`]) consumes the provided list instead of
/// being evaluated — the seam a multi-query scheduler uses to feed one
/// cooperative scan pass into many executions. Results are bit-identical
/// to [`execute`] provided the ticket honours [`ScanTicket::provide`]'s
/// contract (the cooperative kernel does).
pub fn execute_with_scans<M: MemTracker>(
    trk: &mut M,
    plan: &LogicalPlan<'_>,
    opts: &ExecOptions,
    ticket: &ScanTicket,
) -> Result<Executed, EngineError> {
    let mut report = ExecReport { ops: Vec::new(), planner: opts.planner.name() };
    let model = ModelMachine::new(&opts.machine);

    let mut leafs = 0usize;
    let stream = exec_node(trk, &plan.root, opts, &model, &mut report, ticket, &mut leafs)?;
    let output = match stream {
        Output::Stream(Stream::Table { table, cands }) => QueryOutput::Oids(
            cands.unwrap_or_else(|| (0..table.len() as Oid).map(|i| table.seqbase() + i).collect()),
        ),
        Output::Stream(Stream::Joined { pairs, .. }) => QueryOutput::JoinIndex(pairs),
        Output::Final(out) => out,
    };
    Ok(Executed { output, report })
}

/// Either still-flowing rows or the final aggregated output.
enum Output<'a> {
    Stream(Stream<'a>),
    Final(QueryOutput),
}

#[allow(clippy::too_many_arguments)] // internal recursion carrying executor context
fn exec_node<'a, M: MemTracker>(
    trk: &mut M,
    node: &PlanNode<'a>,
    opts: &ExecOptions,
    model: &ModelMachine,
    report: &mut ExecReport,
    ticket: &ScanTicket,
    leafs: &mut usize,
) -> Result<Output<'a>, EngineError> {
    match node {
        PlanNode::Scan { table } => {
            report.ops.push(OpReport {
                op: format!("scan({})", table.name()),
                rows_in: table.len(),
                rows_out: table.len(),
                detail: format!(
                    "virtual: {} void BATs, {} B/tuple; no data touched until a kernel runs",
                    table.columns().len(),
                    table.bytes_per_tuple()
                ),
                ..OpReport::default()
            });
            Ok(Output::Stream(Stream::Table { table, cands: None }))
        }
        PlanNode::Filter { input, pred } => {
            let upstream =
                expect_stream(exec_node(trk, input, opts, model, report, ticket, leafs)?)?;
            let Stream::Table { table, cands } = upstream else {
                return Err(EngineError::Plan(crate::plan::PlanError::Unsupported(
                    "filter over a join result",
                )));
            };
            // This filter's leaves occupy the next `leaf_count` global
            // indices — the numbering `shared::scan_requests` emits.
            let base = *leafs;
            let nleaves = leaf_count(pred);
            *leafs += nleaves;
            let provided: Vec<Option<Arc<CandList>>> =
                (0..nleaves).map(|i| ticket.get(base + i).cloned()).collect();
            let before = trk.counters_snapshot();
            // Phase 1: pick an access path per predicate leaf (scan vs. the
            // table's attached indexes, priced by costmodel::access) —
            // B+-tree-backed selectivity estimates are exact. Leaves whose
            // candidates a shared pass provided are settled already.
            let pplan = plan_pred_with(
                trk,
                table,
                pred,
                opts.access,
                opts.compress,
                opts.pushdown,
                model,
                &provided,
            )?;
            let model_ms = pplan.model_ms();
            // Phase 2: the parallel model only sees the scanning leaves
            // (index probes are a handful of node touches; never forked).
            let (threads, speedup) = op_threads::<M>(opts, pplan.scan_work_ns(), table.len());
            let (selected, shards) = eval_planned(trk, table, pred, &pplan, threads)?;
            let merged = match cands {
                Some(prior) => intersect(&prior, &selected),
                None => selected,
            };
            let mut notes = Vec::new();
            if pplan.provided_leaves() > 0 {
                notes.push(AccessNote::SharedLeaves {
                    provided: pplan.provided_leaves(),
                    total: nleaves,
                });
            }
            if let Some(order) = pplan.order() {
                notes.push(AccessNote::Pushdown {
                    order: order.to_vec(),
                    cands_in: pplan.cands_in(),
                });
            }
            let shared_note: String = notes.iter().map(|n| format!("; {n}")).collect();
            let detail = if pplan.uses_index() || pplan.provided_leaves() > 0 {
                format!(
                    "select [{pred}] via {}; model {model_ms:.2} ms{}{shared_note}",
                    pplan.detail(),
                    threads_detail(threads, speedup)
                )
            } else {
                format!(
                    "scan-select [{pred}]; model {model_ms:.2} ms{}",
                    threads_detail(threads, speedup)
                )
            };
            let access = pplan.decisions();
            // Only the scans this operator ran itself are model-attributable
            // work: index probes touch a handful of nodes and shared leaves
            // were scanned elsewhere, so neither belongs in the drift ledger.
            let shapes = access
                .iter()
                .filter(|d| !d.shared)
                .filter_map(|d| match (d.path, d.cands_in) {
                    (AccessPath::Scan, None) => {
                        Some(OpShape::Select { rows: table.len(), stride: d.stride })
                    }
                    (AccessPath::PackedScan, None) => {
                        Some(OpShape::PackedSelect { rows: table.len(), bits: d.packed_bits })
                    }
                    (AccessPath::Scan, Some(cands)) => {
                        Some(OpShape::CandSelect { rows: table.len(), stride: d.stride, cands })
                    }
                    (AccessPath::PackedScan, Some(cands)) => Some(OpShape::CandPackedSelect {
                        rows: table.len(),
                        bits: d.packed_bits,
                        cands,
                    }),
                    _ => None,
                })
                .collect();
            report.ops.push(OpReport {
                op: format!("select({})", table.name()),
                rows_in: table.len(),
                rows_out: merged.len(),
                detail,
                counters: delta(trk, before),
                access,
                notes,
                shapes,
                rows_per_thread: shards,
                ..OpReport::default()
            });
            Ok(Output::Stream(Stream::Table { table, cands: Some(merged) }))
        }
        PlanNode::Join { input, right, left_col, right_col } => {
            let left_stream =
                expect_stream(exec_node(trk, input, opts, model, report, ticket, leafs)?)?;
            let right_stream =
                expect_stream(exec_node(trk, right, opts, model, report, ticket, leafs)?)?;
            let (Stream::Table { table: lt, cands: lc }, Stream::Table { table: rt, cands: rc }) =
                (left_stream, right_stream)
            else {
                return Err(EngineError::Plan(crate::plan::PlanError::Unsupported("nested joins")));
            };
            let before = trk.counters_snapshot();
            let lbat = key_bat(trk, lt, left_col, &lc)?;
            let rbat = key_bat(trk, rt, right_col, &rc)?;

            // The physical decision: the executor, not the caller, asks the
            // planner which algorithm/bits to use for this inner cardinality
            // — and the parallel model how many threads are worth forking.
            let inner = rbat.as_bat().len();
            let outer = lbat.as_bat().len();
            let (jplan, predicted, seq_ns) = choose_join(opts, outer, inner);
            let (threads, speedup) = if algorithm_parallelizes(jplan.algorithm) {
                op_threads::<M>(opts, seq_ns, outer + inner)
            } else {
                (1, None)
            };
            let (mut pairs, join_shards) = if threads > 1 {
                par_join_bats_with_plan_sharded(lbat.as_bat(), rbat.as_bat(), &jplan, threads)?
            } else {
                (join_bats_with_plan(trk, lbat.as_bat(), rbat.as_bat(), &jplan)?, None)
            };
            // Canonical output order: every join algorithm (and thread
            // count) emits the same pair set, but in its own cluster order.
            // Sorting by (left, right) makes the join index — and every
            // downstream f64 accumulation order — independent of the
            // physical plan, which is what lets co-partitioned shard joins
            // merge bit-identically (see `crate::dist`).
            pairs.sort_unstable_by_key(|p| (p.left, p.right));

            report.ops.push(OpReport {
                op: format!("join[{left_col} = {right_col}]"),
                rows_in: outer + inner,
                rows_out: pairs.len(),
                detail: format!(
                    "{}{}",
                    join_detail(opts.planner, &jplan, predicted),
                    threads_detail(threads, speedup)
                ),
                counters: delta(trk, before),
                shapes: vec![OpShape::Join { outer, inner }],
                rows_per_thread: join_shards,
                ..OpReport::default()
            });
            Ok(Output::Stream(Stream::Joined { left: lt, right: rt, pairs }))
        }
        PlanNode::GroupAgg { input, key, aggs } => {
            let stream = expect_stream(exec_node(trk, input, opts, model, report, ticket, leafs)?)?;
            let rows_in = stream.rows();
            let before = trk.counters_snapshot();
            // Parallel quote: only the *gathers* split work across threads
            // (one 8-byte-stride pass per materialized column plus the
            // keys); the accumulation kernel itself re-reads its input per
            // worker (see `par_hash_group_multi_sum_f64`), so it must not be
            // sold to the model as divisible. An unrestricted scan stream
            // borrows every column — nothing materializes, so Auto keeps it
            // sequential. A deliberate lower bound: gathers access randomly,
            // so this only *under*-forks.
            let materializes = !matches!(&stream, Stream::Table { cands: None, .. });
            let gather_ns = if materializes {
                scan_cost(model, rows_in.max(1), 8).total_ns() * (aggs.len() + 1) as f64
            } else {
                0.0
            };
            let (threads, speedup) = op_threads::<M>(opts, gather_ns, rows_in);
            let (output, op, detail, shards) = match key {
                Some(key) => {
                    let (rows, domain, kernel_shards) =
                        grouped_aggs(trk, &stream, key, aggs, threads)?;
                    let n = rows.len();
                    (
                        QueryOutput::Groups(rows),
                        format!("group({key})"),
                        format!(
                            "hash-group: direct-indexed, {domain}-slot table ({n} occupied) fits cache{}",
                            threads_detail(threads, speedup)
                        ),
                        // Parallel grouping shards rows by group-domain
                        // slice; the kernel reports what each worker
                        // actually accumulated.
                        kernel_shards,
                    )
                }
                None => {
                    let vals = scalar_aggs(trk, &stream, aggs, threads)?;
                    let labels: Vec<String> = aggs.iter().map(|a| a.to_string()).collect();
                    (
                        QueryOutput::Aggregates(vals),
                        "aggregate".to_owned(),
                        format!(
                            "scan aggregate [{}]{}",
                            labels.join(", "),
                            threads_detail(threads, speedup)
                        ),
                        // Gathers and ungrouped aggregates split the input
                        // uniformly; the sharded counter records that
                        // partition.
                        (threads > 1).then(|| crate::par::shard_sizes(rows_in, threads)),
                    )
                }
            };
            let rows_out = match &output {
                QueryOutput::Groups(g) => g.len(),
                _ => 1,
            };
            // Mirror the quote's shape decomposition: one positional gather
            // per materialized column (plus the key) before the
            // accumulation pass; unrestricted scans borrow in place.
            let columns = aggs.iter().filter(|a| a.column().is_some()).count();
            let mut shapes = Vec::new();
            if materializes {
                for _ in 0..columns + usize::from(key.is_some()) {
                    shapes.push(OpShape::Gather { rows: rows_in });
                }
            }
            shapes.push(OpShape::Aggregate { rows: rows_in, columns, grouped: key.is_some() });
            report.ops.push(OpReport {
                op,
                rows_in,
                rows_out,
                detail,
                counters: delta(trk, before),
                shapes,
                rows_per_thread: shards,
                ..OpReport::default()
            });
            Ok(Output::Final(output))
        }
    }
}

fn expect_stream(out: Output<'_>) -> Result<Stream<'_>, EngineError> {
    match out {
        Output::Stream(s) => Ok(s),
        // The builder always places GroupAgg at the root; a hand-built tree
        // can violate that, and gets an error rather than a panic.
        Output::Final(_) => Err(EngineError::Plan(crate::plan::PlanError::Unsupported(
            "aggregation below another operator",
        ))),
    }
}

fn delta<M: MemTracker>(trk: &M, before: Option<EventCounters>) -> Option<EventCounters> {
    match (trk.counters_snapshot(), before) {
        (Some(after), Some(before)) => Some(after - before),
        _ => None,
    }
}

/// Pick the physical join plan. The algorithm and radix bits follow the
/// *inner* relation (cache residency of the build side is what the paper's
/// strategies key on), but the model is symmetric in C, so the predicted
/// cost prices the chosen plan at the larger of the two cardinalities —
/// otherwise an asymmetric join would be quoted at the dimension's size.
/// Returns the plan, the cost quote shown for the cost-model planner, and
/// the model's sequential nanoseconds (always computed — the parallel model
/// prices the *chosen* plan whichever planner chose it).
fn choose_join(opts: &ExecOptions, outer: usize, inner: usize) -> (JoinPlan, Option<f64>, f64) {
    let model = ModelMachine::with_params(&opts.machine, ModelParams::implementation_matched());
    let c = outer.max(inner).max(1) as f64;
    match opts.planner {
        Planner::CostModel => {
            let (plan, _) = best_plan(&model, &opts.machine, inner.max(1));
            let ns = plan_cost(&model, &plan, c).total_ns();
            (plan, Some(ns / 1e6), ns)
        }
        Planner::Heuristic => {
            let plan = heuristic_plan(inner, &opts.machine);
            let ns = plan_cost(&model, &plan, c).total_ns();
            (plan, None, ns)
        }
    }
}

fn join_detail(planner: Planner, plan: &JoinPlan, predicted: Option<f64>) -> String {
    let mut s = format!(
        "{}: {:?} B={} passes={:?}",
        planner.name(),
        plan.algorithm,
        plan.bits,
        plan.pass_bits
    );
    if let Some(ms) = predicted {
        s.push_str(&format!(", predicted {ms:.2} ms"));
    }
    s
}

/// A borrowed or freshly materialized BAT.
enum BatCow<'b> {
    Borrowed(&'b Bat),
    Owned(Bat),
}

impl BatCow<'_> {
    fn as_bat(&self) -> &Bat {
        match self {
            BatCow::Borrowed(b) => b,
            BatCow::Owned(b) => b,
        }
    }
}

/// The join-key column of `table`, restricted to `cands` when present. The
/// restricted BAT keeps the original OIDs as a materialized head, so the
/// join index stays in table-OID space.
fn key_bat<'b, M: MemTracker>(
    trk: &mut M,
    table: &'b DecomposedTable,
    col: &str,
    cands: &Option<Vec<Oid>>,
) -> Result<BatCow<'b>, EngineError> {
    let bat = table.bat(col)?;
    match cands {
        None => Ok(BatCow::Borrowed(bat)),
        // reconstruct keeps the original OIDs as a materialized head, so the
        // join index stays in table-OID space; a non-joinable tail type is
        // caught by the join kernel dispatch (builder-validated plans never
        // reach it).
        Some(cands) => Ok(BatCow::Owned(reconstruct(trk, bat, cands)?)),
    }
}

/// The surviving row OIDs of a stream, projected once per side so the key
/// gather and every aggregate column share them instead of re-materializing
/// the join-pair projection per column.
enum RowOids<'s> {
    /// Single-table stream: the candidate list (or `None` = all rows).
    Table(Option<&'s [Oid]>),
    /// Join stream: per-side OID projections of the pair list.
    Joined { left: Vec<Oid>, right: Vec<Oid> },
}

impl RowOids<'_> {
    /// The OIDs a column owned by the given side should be gathered at.
    fn for_side(&self, is_left: bool) -> Option<&[Oid]> {
        match self {
            RowOids::Table(cands) => *cands,
            RowOids::Joined { left, right } => Some(if is_left { left } else { right }),
        }
    }
}

fn row_oids<'s>(stream: &'s Stream<'_>) -> RowOids<'s> {
    match stream {
        Stream::Table { cands, .. } => RowOids::Table(cands.as_deref()),
        Stream::Joined { pairs, .. } => RowOids::Joined {
            left: pairs.iter().map(|p| p.left).collect(),
            right: pairs.iter().map(|p| p.right).collect(),
        },
    }
}

/// Resolve which table of the stream owns `col`. Validation guaranteed it
/// exists on one side.
fn resolve_col<'a>(stream: &Stream<'a>, col: &str) -> (&'a DecomposedTable, bool) {
    match stream {
        Stream::Table { table, .. } => (table, true),
        Stream::Joined { left, right, .. } => {
            if left.bat(col).is_ok() {
                (left, true)
            } else {
                (right, false)
            }
        }
    }
}

/// Gather a column's values as `f64` at the stream's surviving rows
/// (borrowing the whole column when the stream is an unrestricted scan).
/// `threads > 1` fans the gather out in chunks — `i32 → f64` conversion is
/// exact, so the materialized vector is bit-identical either way.
fn f64_values<'b, M: MemTracker>(
    trk: &mut M,
    bat: &'b Bat,
    oids: Option<&[Oid]>,
    threads: usize,
) -> Result<BatCow<'b>, EngineError> {
    let vals: Vec<f64> = match (oids, bat.tail()) {
        (None, Column::F64(_)) => return Ok(BatCow::Borrowed(bat)),
        (None, Column::I32(v)) if threads > 1 => {
            crate::par::fan_out_concat(v.len(), threads, |lo, hi| {
                v[lo..hi].iter().map(|&x| x as f64).collect()
            })
        }
        (None, Column::I32(v)) => v
            .iter()
            .map(|x| {
                if M::ENABLED {
                    track_read(trk, x);
                    trk.work(Work::ScanIter, 1);
                }
                *x as f64
            })
            .collect(),
        (Some(oids), Column::F64(_)) if threads > 1 => par_fetch_f64(bat, oids, threads)?,
        (Some(oids), Column::F64(_)) => fetch_f64(trk, bat, oids)?,
        (Some(oids), Column::I32(_)) if threads > 1 => {
            par_fetch_i32(bat, oids, threads)?.into_iter().map(|x| x as f64).collect()
        }
        (Some(oids), Column::I32(_)) => {
            fetch_i32(trk, bat, oids)?.into_iter().map(|x| x as f64).collect()
        }
        (_, other) => {
            return Err(EngineError::UnsupportedType {
                op: "aggregate input",
                ty: other.value_type(),
            })
        }
    };
    Ok(BatCow::Owned(Bat::with_void_head(0, Column::F64(vals))))
}

/// Gather a column's `i32` values at the stream's surviving rows
/// (borrowing the whole column when the stream is an unrestricted scan).
fn i32_values<'b, M: MemTracker>(
    trk: &mut M,
    bat: &'b Bat,
    oids: Option<&[Oid]>,
    threads: usize,
) -> Result<BatCow<'b>, EngineError> {
    match (oids, bat.tail()) {
        (None, Column::I32(_)) => Ok(BatCow::Borrowed(bat)),
        (Some(oids), Column::I32(_)) => {
            let vals = if threads > 1 {
                par_fetch_i32(bat, oids, threads)?
            } else {
                fetch_i32(trk, bat, oids)?
            };
            Ok(BatCow::Owned(Bat::with_void_head(0, Column::I32(vals))))
        }
        (_, other) => {
            Err(EngineError::UnsupportedType { op: "min/max input", ty: other.value_type() })
        }
    }
}

/// Which slot of the grouping kernel's output an aggregate reads from.
enum GroupedSlot {
    Sum(usize),
    Min(usize),
    Max(usize),
    Count,
}

/// What [`grouped_aggs`] returns: the result rows (ascending by key code),
/// the direct-index domain used by the kernel, and — for parallel runs —
/// the rows each worker's group-domain slice accumulated.
type GroupedRows = (Vec<GroupRow>, usize, Option<Vec<usize>>);

/// Compute grouped aggregates in a single grouping pass. `threads > 1`
/// (native only) parallelizes the gathers and the group kernel; the output
/// is bit-identical to the sequential pass.
fn grouped_aggs<M: MemTracker>(
    trk: &mut M,
    stream: &Stream<'_>,
    key: &str,
    aggs: &[Agg],
    threads: usize,
) -> Result<GroupedRows, EngineError> {
    let oids = row_oids(stream);
    let (key_table, key_is_left) = resolve_col(stream, key);
    let key_src = key_table.bat(key)?;

    // Materialize the key codes at the surviving rows (borrow when the
    // stream is the whole table).
    let keys: BatCow<'_> = match oids.for_side(key_is_left) {
        None => BatCow::Borrowed(key_src),
        Some(oids) => {
            let tail = match (key_src.tail(), threads > 1) {
                (Column::Str(_), true) => Column::Str(par_fetch_str(key_src, oids, threads)?),
                (Column::Str(_), false) => Column::Str(fetch_str(trk, key_src, oids)?),
                (Column::U8(_), true) => Column::U8(par_fetch_u8(key_src, oids, threads)?),
                (Column::U8(_), false) => Column::U8(fetch_u8(trk, key_src, oids)?),
                (other, _) => {
                    return Err(EngineError::UnsupportedType {
                        op: "group key",
                        ty: other.value_type(),
                    })
                }
            };
            BatCow::Owned(Bat::with_void_head(0, tail))
        }
    };
    let domain = match keys.as_bat().tail() {
        Column::U8(_) => 256,
        Column::Str(sc) => {
            if sc.codes.width() == 1 {
                256
            } else {
                65536
            }
        }
        _ => unreachable!("validated group key type"),
    };

    // Gather every aggregated column once (SUM columns as f64, MIN/MAX
    // columns as i32), then group keys + all columns in a single pass
    // (COUNT falls out of the kernel's per-group counts).
    let mut sum_bats: Vec<BatCow<'_>> = Vec::new();
    let mut min_bats: Vec<BatCow<'_>> = Vec::new();
    let mut max_bats: Vec<BatCow<'_>> = Vec::new();
    let mut slot_of_agg: Vec<GroupedSlot> = Vec::with_capacity(aggs.len());
    for agg in aggs {
        match agg {
            Agg::Sum(col) => {
                let (table, is_left) = resolve_col(stream, col);
                slot_of_agg.push(GroupedSlot::Sum(sum_bats.len()));
                sum_bats.push(f64_values(trk, table.bat(col)?, oids.for_side(is_left), threads)?);
            }
            Agg::Min(col) => {
                let (table, is_left) = resolve_col(stream, col);
                slot_of_agg.push(GroupedSlot::Min(min_bats.len()));
                min_bats.push(i32_values(trk, table.bat(col)?, oids.for_side(is_left), threads)?);
            }
            Agg::Max(col) => {
                let (table, is_left) = resolve_col(stream, col);
                slot_of_agg.push(GroupedSlot::Max(max_bats.len()));
                max_bats.push(i32_values(trk, table.bat(col)?, oids.for_side(is_left), threads)?);
            }
            Agg::Count => slot_of_agg.push(GroupedSlot::Count),
        }
    }
    let sum_refs: Vec<&Bat> = sum_bats.iter().map(BatCow::as_bat).collect();
    let min_refs: Vec<&Bat> = min_bats.iter().map(BatCow::as_bat).collect();
    let max_refs: Vec<&Bat> = max_bats.iter().map(BatCow::as_bat).collect();
    let (grouped, shards) = if threads > 1 {
        let (g, s) =
            par_hash_group_multi_agg(keys.as_bat(), &sum_refs, &min_refs, &max_refs, threads)?;
        (g, Some(s))
    } else {
        (hash_group_multi_agg(trk, keys.as_bat(), &sum_refs, &min_refs, &max_refs)?, None)
    };

    let decode = |code: u32| -> String {
        match keys.as_bat().tail() {
            Column::Str(sc) => sc.dict.decode(code).to_owned(),
            _ => code.to_string(),
        }
    };
    let rows = grouped
        .codes
        .iter()
        .enumerate()
        .map(|(g, &code)| GroupRow {
            key: decode(code),
            values: slot_of_agg
                .iter()
                .map(|slot| match slot {
                    GroupedSlot::Sum(c) => AggValue::F64(grouped.sums[*c][g]),
                    // Every occurring group has >= 1 row, so the extremum
                    // exists.
                    GroupedSlot::Min(c) => AggValue::MaybeI32(Some(grouped.mins[*c][g])),
                    GroupedSlot::Max(c) => AggValue::MaybeI32(Some(grouped.maxs[*c][g])),
                    GroupedSlot::Count => AggValue::Count(grouped.counts[g] as usize),
                })
                .collect(),
        })
        .collect();
    Ok((rows, domain, shards))
}

/// Compute ungrouped aggregates over the stream. `threads > 1` (native
/// only) fans out the gathers and the exact (`i32`) aggregates; `f64` sums
/// always accumulate sequentially to preserve the fp addition order, so the
/// result is bit-identical at every thread count.
fn scalar_aggs<M: MemTracker>(
    trk: &mut M,
    stream: &Stream<'_>,
    aggs: &[Agg],
    threads: usize,
) -> Result<Vec<AggValue>, EngineError> {
    let oids = row_oids(stream);
    let mut out = Vec::with_capacity(aggs.len());
    for agg in aggs {
        let value = match (agg, stream) {
            (Agg::Count, s) => AggValue::Count(s.rows()),
            (agg, Stream::Table { table, cands }) => {
                let col = agg.column().expect("non-count aggs read a column");
                let bat = table.bat(col)?;
                let cands = cands.as_deref();
                match (agg, bat.tail(), threads > 1) {
                    (Agg::Sum(_), Column::F64(_), _) => AggValue::F64(sum_f64(trk, bat, cands)?),
                    (Agg::Sum(_), _, true) => AggValue::I64(par_sum_i32(bat, cands, threads)?),
                    (Agg::Sum(_), _, false) => AggValue::I64(sum_i32(trk, bat, cands)?),
                    (Agg::Min(_), _, true) => AggValue::MaybeI32(par_min_i32(bat, cands, threads)?),
                    (Agg::Min(_), _, false) => AggValue::MaybeI32(min_i32(trk, bat, cands)?),
                    (Agg::Max(_), _, true) => AggValue::MaybeI32(par_max_i32(bat, cands, threads)?),
                    (Agg::Max(_), _, false) => AggValue::MaybeI32(max_i32(trk, bat, cands)?),
                    (Agg::Count, _, _) => unreachable!("handled above"),
                }
            }
            (agg, joined @ Stream::Joined { .. }) => {
                let col = agg.column().expect("non-count aggs read a column");
                let (table, is_left) = resolve_col(joined, col);
                let bat = table.bat(col)?;
                let side = oids.for_side(is_left).expect("joined streams have oids");
                match (agg, bat.tail()) {
                    (Agg::Sum(_), Column::F64(_)) => {
                        let vals = if threads > 1 {
                            par_fetch_f64(bat, side, threads)?
                        } else {
                            fetch_f64(trk, bat, side)?
                        };
                        let b = Bat::with_void_head(0, Column::F64(vals));
                        AggValue::F64(sum_f64(trk, &b, None)?)
                    }
                    (Agg::Sum(_), _) | (Agg::Min(_), _) | (Agg::Max(_), _) => {
                        let vals = if threads > 1 {
                            par_fetch_i32(bat, side, threads)?
                        } else {
                            fetch_i32(trk, bat, side)?
                        };
                        let b = Bat::with_void_head(0, Column::I32(vals));
                        match agg {
                            Agg::Sum(_) if threads > 1 => {
                                AggValue::I64(par_sum_i32(&b, None, threads)?)
                            }
                            Agg::Sum(_) => AggValue::I64(sum_i32(trk, &b, None)?),
                            Agg::Min(_) => AggValue::MaybeI32(min_i32(trk, &b, None)?),
                            Agg::Max(_) => AggValue::MaybeI32(max_i32(trk, &b, None)?),
                            Agg::Count => unreachable!("handled above"),
                        }
                    }
                    (Agg::Count, _) => unreachable!("handled above"),
                }
            }
        };
        out.push(value);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{PlanNode, Pred, Query};
    use memsim::{profiles, NullTracker, SimTracker};
    use monet_core::storage::{ColType, TableBuilder, Value};

    fn item() -> DecomposedTable {
        let mut b = TableBuilder::new("item", 100)
            .column("qty", ColType::I32)
            .column("price", ColType::F64)
            .column("discnt", ColType::F64)
            .column("shipmode", ColType::Str);
        let rows = [
            (1, 10.0, 0.00, "AIR"),
            (2, 20.0, 0.10, "MAIL"),
            (3, 40.0, 0.10, "AIR"),
            (4, 80.0, 0.00, "SHIP"),
            (5, 160.0, 0.05, "MAIL"),
        ];
        for (q, p, d, s) in rows {
            b.push_row(&[Value::I32(q), Value::F64(p), Value::F64(d), Value::from(s)]).unwrap();
        }
        b.finish()
    }

    fn run(q: Query<'_>) -> Executed {
        let plan = q.build().unwrap();
        execute(&mut NullTracker, &plan, &ExecOptions::default()).unwrap()
    }

    #[test]
    fn grouped_sum_pipeline() {
        let t = item();
        let r = run(Query::scan(&t)
            .filter(Pred::range_f64("discnt", 0.05, 0.10))
            .group_by("shipmode")
            .agg(Agg::sum("price"))
            .agg(Agg::count()));
        let QueryOutput::Groups(mut rows) = r.output else { panic!("groups") };
        rows.sort_by(|a, b| a.key.cmp(&b.key));
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].key, "AIR");
        assert_eq!(rows[0].values, vec![AggValue::F64(40.0), AggValue::Count(1)]);
        assert_eq!(rows[1].key, "MAIL");
        assert_eq!(rows[1].values, vec![AggValue::F64(180.0), AggValue::Count(2)]);
        // Report covers scan, select, group.
        assert_eq!(r.report.ops.len(), 3);
        assert_eq!(r.report.ops[1].rows_out, 3);
        assert_eq!(r.report.ops[2].rows_out, 2);
    }

    #[test]
    fn missing_dictionary_constant_is_an_empty_selection() {
        let t = item();
        // "WALRUS" is not in the shipmode dictionary: provably empty, and
        // per the ConstantNotInDictionary doc contract NOT an error.
        let r = run(Query::scan(&t)
            .filter(Pred::eq_str("shipmode", "WALRUS"))
            .group_by("shipmode")
            .agg(Agg::sum("price")));
        assert_eq!(r.output, QueryOutput::Groups(vec![]));

        // Same under OR: the empty leaf contributes nothing.
        let r = run(Query::scan(&t)
            .filter(Pred::eq_str("shipmode", "WALRUS").or(Pred::eq_str("shipmode", "SHIP"))));
        assert_eq!(r.output, QueryOutput::Oids(vec![103]));
    }

    #[test]
    fn bare_select_and_scalar_aggregates() {
        let t = item();
        let r = run(Query::scan(&t).filter(Pred::range_i32("qty", 2, 4)));
        assert_eq!(r.output, QueryOutput::Oids(vec![101, 102, 103]));

        let r = run(Query::scan(&t)
            .filter(Pred::range_i32("qty", 2, 4))
            .agg(Agg::sum("qty"))
            .agg(Agg::sum("price"))
            .agg(Agg::min("qty"))
            .agg(Agg::max("qty"))
            .agg(Agg::count()));
        assert_eq!(
            r.output,
            QueryOutput::Aggregates(vec![
                AggValue::I64(9),
                AggValue::F64(140.0),
                AggValue::MaybeI32(Some(2)),
                AggValue::MaybeI32(Some(4)),
                AggValue::Count(3),
            ])
        );
    }

    #[test]
    fn full_table_scan_without_filter() {
        let t = item();
        let r = run(Query::scan(&t));
        assert_eq!(r.output, QueryOutput::Oids(vec![100, 101, 102, 103, 104]));
        let r = run(Query::scan(&t).group_by("shipmode").agg(Agg::count()));
        let QueryOutput::Groups(rows) = r.output else { panic!("groups") };
        assert_eq!(rows.len(), 3);
        let total: usize = rows
            .iter()
            .map(|r| match r.values[0] {
                AggValue::Count(c) => c,
                _ => 0,
            })
            .sum();
        assert_eq!(total, 5);
    }

    #[test]
    fn join_is_planned_by_the_cost_model() {
        let t = item();
        let mut b =
            TableBuilder::new("qtyinfo", 0).column("q", ColType::I32).column("bonus", ColType::F64);
        for (q, f) in [(2, 1.0), (3, 2.0), (4, 4.0), (9, 8.0)] {
            b.push_row(&[Value::I32(q), Value::F64(f)]).unwrap();
        }
        let info = b.finish();

        let plan = Query::scan(&t)
            .filter(Pred::range_i32("qty", 2, 9))
            .join(&info, ("qty", "q"))
            .agg(Agg::sum("bonus"))
            .agg(Agg::sum("price"))
            .build()
            .unwrap();
        let r = execute(&mut NullTracker, &plan, &ExecOptions::default()).unwrap();
        // qty 2, 3, 4 match; bonus 1+2+4, price 20+40+80.
        assert_eq!(
            r.output,
            QueryOutput::Aggregates(vec![AggValue::F64(7.0), AggValue::F64(140.0)])
        );
        let join_op = r.report.ops.iter().find(|o| o.op.starts_with("join")).unwrap();
        assert!(join_op.detail.starts_with("cost model:"), "{}", join_op.detail);
        assert!(join_op.detail.contains("predicted"), "{}", join_op.detail);
        assert_eq!(join_op.rows_out, 3);

        // The heuristic planner takes the other path and agrees on results.
        let r2 = execute(&mut NullTracker, &plan, &ExecOptions::heuristic(profiles::origin2000()))
            .unwrap();
        assert_eq!(r.output, r2.output);
        let join_op2 = r2.report.ops.iter().find(|o| o.op.starts_with("join")).unwrap();
        assert!(join_op2.detail.starts_with("heuristic:"), "{}", join_op2.detail);
    }

    #[test]
    fn join_index_output_and_grouped_join() {
        let t = item();
        let mut b = TableBuilder::new("dim", 50).column("q", ColType::I32);
        for q in [1, 2, 5] {
            b.push_row(&[Value::I32(q)]).unwrap();
        }
        let dim = b.finish();

        let r = run(Query::scan(&t).join(&dim, ("qty", "q")));
        let QueryOutput::JoinIndex(mut pairs) = r.output else { panic!("join index") };
        pairs.sort_by_key(|p| (p.left, p.right));
        assert_eq!(pairs.len(), 3);
        assert_eq!((pairs[0].left, pairs[0].right), (100, 50));
        assert_eq!((pairs[1].left, pairs[1].right), (101, 51));
        assert_eq!((pairs[2].left, pairs[2].right), (104, 52));

        // Grouping a join result on a left-side key.
        let r = run(Query::scan(&t)
            .join(&dim, ("qty", "q"))
            .group_by("shipmode")
            .agg(Agg::sum("price")));
        let QueryOutput::Groups(mut rows) = r.output else { panic!("groups") };
        rows.sort_by(|a, b| a.key.cmp(&b.key));
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].key, "AIR");
        assert_eq!(rows[0].values, vec![AggValue::F64(10.0)]);
        assert_eq!(rows[1].key, "MAIL");
        assert_eq!(rows[1].values, vec![AggValue::F64(180.0)]);
    }

    #[test]
    fn simulated_execution_attributes_counters_per_op() {
        let t = item();
        let plan = Query::scan(&t)
            .filter(Pred::range_f64("discnt", 0.0, 0.10))
            .group_by("shipmode")
            .agg(Agg::sum("price"))
            .build()
            .unwrap();
        let mut trk = SimTracker::for_machine(profiles::origin2000());
        let r = execute(&mut trk, &plan, &ExecOptions::default()).unwrap();
        let select = &r.report.ops[1];
        assert!(select.counters.is_some());
        assert!(select.counters.as_ref().unwrap().reads > 0);
        assert!(r.report.simulated_ms() > 0.0);
        // The rendered report carries the simulated columns.
        let text = r.report.to_string();
        assert!(text.contains("sim ms"), "{text}");
        assert!(text.contains("scan-select"), "{text}");
    }

    #[test]
    fn hand_built_invalid_tree_errors_instead_of_panicking() {
        // PlanNode fields are public; an aggregate below another operator
        // (impossible via the builder) must surface as an error.
        let t = item();
        let inner = Query::scan(&t).group_by("shipmode").agg(Agg::count()).build().unwrap();
        let bad = LogicalPlan {
            root: PlanNode::Filter {
                input: Box::new(inner.root),
                pred: Pred::range_i32("qty", 0, 1),
            },
        };
        let err = execute(&mut NullTracker, &bad, &ExecOptions::default()).unwrap_err();
        assert!(matches!(err, EngineError::Plan(_)), "{err:?}");
    }

    #[test]
    fn asymmetric_join_is_priced_at_the_larger_cardinality() {
        // 5 fact rows against a 2-row dimension: the *plan* follows the tiny
        // inner side (simple hash), but the quote must not be the 2x2 cost.
        let t = item();
        let mut b = TableBuilder::new("dim", 0).column("q", ColType::I32);
        for q in [1, 2] {
            b.push_row(&[Value::I32(q)]).unwrap();
        }
        let dim = b.finish();
        let plan = Query::scan(&t).join(&dim, ("qty", "q")).build().unwrap();
        let r = execute(&mut NullTracker, &plan, &ExecOptions::default()).unwrap();
        let join_op = r.report.ops.iter().find(|o| o.op.starts_with("join")).unwrap();

        let (jp, _) = costmodel::plan::plan_join(&memsim::profiles::origin2000(), 2);
        let model = ModelMachine::with_params(
            &memsim::profiles::origin2000(),
            ModelParams::implementation_matched(),
        );
        let expect_ms = plan_cost(&model, &jp, 5.0).total_ms();
        assert!(
            join_op.detail.contains(&format!("predicted {expect_ms:.2} ms")),
            "detail {:?} should price the outer side (expected {expect_ms:.2})",
            join_op.detail
        );
    }

    #[test]
    fn report_renders_without_simulation_too() {
        let t = item();
        let r = run(Query::scan(&t).filter(Pred::range_i32("qty", 1, 3)));
        let text = r.report.to_string();
        assert!(!text.contains("sim ms"), "{text}");
        assert!(text.contains("select(item)"), "{text}");
    }

    #[test]
    fn fixed_threads_match_sequential_and_are_reported() {
        let t = item();
        let mut b =
            TableBuilder::new("qtyinfo", 0).column("q", ColType::I32).column("bonus", ColType::F64);
        for (q, f) in [(1, 0.5), (2, 1.0), (3, 2.0), (4, 4.0), (5, 8.5)] {
            b.push_row(&[Value::I32(q), Value::F64(f)]).unwrap();
        }
        let info = b.finish();
        let plan = Query::scan(&t)
            .filter(Pred::range_i32("qty", 1, 4))
            .join(&info, ("qty", "q"))
            .group_by("shipmode")
            .agg(Agg::sum("bonus"))
            .agg(Agg::count())
            .build()
            .unwrap();
        let seq = execute(&mut NullTracker, &plan, &ExecOptions::default()).unwrap();
        for n in [2usize, 4, 7] {
            let opts = ExecOptions::default().with_threads(Threads::Fixed(n));
            let par = execute(&mut NullTracker, &plan, &opts).unwrap();
            assert_eq!(par.output, seq.output, "threads={n}");
            // The select, at least, fans out on a fixed setting and says so.
            let select = par.report.ops.iter().find(|o| o.op.starts_with("select")).unwrap();
            assert!(select.detail.contains(&format!("threads={n}")), "{}", select.detail);
        }
    }

    #[test]
    fn index_access_paths_flow_through_the_executor() {
        use monet_core::index::IndexKind;
        let mut b =
            TableBuilder::new("big", 0).column("qty", ColType::I32).column("price", ColType::F64);
        for i in 0..10_000i32 {
            b.push_row(&[Value::I32(i % 100), Value::F64(i as f64)]).unwrap();
        }
        let mut t = b.finish();
        t.create_index("qty", IndexKind::CsBTree).unwrap();
        t.create_index("qty", IndexKind::Hash).unwrap();

        let plan = Query::scan(&t)
            .filter(Pred::range_i32("qty", 7, 7))
            .agg(Agg::sum("price"))
            .agg(Agg::count())
            .build()
            .unwrap();
        let machine = profiles::origin2000();
        let scan = execute(
            &mut NullTracker,
            &plan,
            &ExecOptions::cost_model(machine).with_access(crate::access::AccessMode::Scan),
        )
        .unwrap();
        // Pin the compression policy: under `force` Auto would take the
        // packed scan by fiat; under `on` the point probe out-prices it,
        // which is the decision this test pins down.
        let auto = execute(
            &mut NullTracker,
            &plan,
            &ExecOptions::cost_model(machine)
                .with_access(crate::access::AccessMode::Auto)
                .with_compress(CompressMode::On),
        )
        .unwrap();
        assert_eq!(auto.output, scan.output, "access paths must be bit-identical");

        // On 10k rows a point predicate is index territory: the decision is
        // in the report, with both quotes.
        let sel = auto.report.ops.iter().find(|o| o.op.starts_with("select")).unwrap();
        assert_eq!(sel.access.len(), 1);
        let d = &sel.access[0];
        assert!(d.path.is_index(), "{d:?}");
        assert!(d.predicted_ms < d.scan_ms, "{d:?}");
        assert_eq!(d.matches_est, 100, "exact btree count");
        assert!(sel.detail.contains("via"), "{}", sel.detail);
        assert_eq!(sel.rows_out, 100);

        // The scan-mode report keeps the historical shape and records the
        // scan decision.
        let sel = scan.report.ops.iter().find(|o| o.op.starts_with("select")).unwrap();
        assert!(sel.detail.starts_with("scan-select"), "{}", sel.detail);
        assert!(sel.access.iter().all(|d| !d.path.is_index()));

        // A pure index select has no per-thread scan work to shard, even
        // under forced parallelism; the group op shards its gather input.
        let opts = ExecOptions::cost_model(machine)
            .with_access(crate::access::AccessMode::Index)
            .with_compress(CompressMode::On)
            .with_threads(Threads::Fixed(4));
        let par = execute(&mut NullTracker, &plan, &opts).unwrap();
        assert_eq!(par.output, scan.output);
        let sel = par.report.ops.iter().find(|o| o.op.starts_with("select")).unwrap();
        assert!(sel.rows_per_thread.is_none(), "{:?}", sel.rows_per_thread);
        let agg = par.report.ops.iter().find(|o| o.op.starts_with("aggregate")).unwrap();
        let shards = agg.rows_per_thread.as_ref().expect("gather shards");
        assert_eq!(shards.iter().sum::<usize>(), agg.rows_in);
    }

    #[test]
    fn grouped_min_max_match_sequential_at_every_thread_count() {
        let t = item();
        let q = || {
            Query::scan(&t)
                .group_by("shipmode")
                .agg(Agg::min("qty"))
                .agg(Agg::max("qty"))
                .agg(Agg::sum("price"))
                .agg(Agg::count())
        };
        let seq = run(q());
        let QueryOutput::Groups(rows) = &seq.output else { panic!("groups") };
        let air = rows.iter().find(|r| r.key == "AIR").unwrap();
        // AIR rows: qty 1 and 3, price 10 + 40.
        assert_eq!(
            air.values,
            vec![
                AggValue::MaybeI32(Some(1)),
                AggValue::MaybeI32(Some(3)),
                AggValue::F64(50.0),
                AggValue::Count(2),
            ]
        );
        for n in [2usize, 4, 7] {
            let opts = ExecOptions::default().with_threads(Threads::Fixed(n));
            let par = execute(&mut NullTracker, &q().build().unwrap(), &opts).unwrap();
            assert_eq!(par.output, seq.output, "threads={n}");
        }
        // Grouped min/max over a filtered stream (gathers the i32 column).
        let filtered = run(q().filter(Pred::range_i32("qty", 2, 5)));
        let QueryOutput::Groups(rows) = &filtered.output else { panic!("groups") };
        let air = rows.iter().find(|r| r.key == "AIR").unwrap();
        assert_eq!(air.values[0], AggValue::MaybeI32(Some(3)));
        assert_eq!(air.values[1], AggValue::MaybeI32(Some(3)));
    }

    #[test]
    fn thread_cap_clamps_fixed_and_auto() {
        let mut b = TableBuilder::new("wide", 0).column("qty", ColType::I32);
        for i in 0..2_000i32 {
            b.push_row(&[Value::I32(i % 10)]).unwrap();
        }
        let t = b.finish();
        let plan = Query::scan(&t).filter(Pred::range_i32("qty", 0, 4)).build().unwrap();
        let uncapped = ExecOptions::default().with_threads(Threads::Fixed(8));
        let capped = uncapped.with_thread_cap(2);
        let a = execute(&mut NullTracker, &plan, &uncapped).unwrap();
        let c = execute(&mut NullTracker, &plan, &capped).unwrap();
        assert_eq!(a.output, c.output, "the cap never changes results");
        let sel = c.report.ops.iter().find(|o| o.op.starts_with("select")).unwrap();
        assert!(sel.detail.contains("threads=2"), "{}", sel.detail);
        assert_eq!(sel.rows_per_thread.as_ref().map(Vec::len), Some(2));
        // A cap of one forces fully sequential execution even under Auto.
        let seq = ExecOptions::default().with_threads(Threads::Auto).with_thread_cap(1);
        let s = execute(&mut NullTracker, &plan, &seq).unwrap();
        assert_eq!(s.output, a.output);
        for op in &s.report.ops {
            assert!(!op.detail.contains("threads="), "cap=1 forked: {}", op.detail);
            assert!(op.rows_per_thread.is_none());
        }
    }

    #[test]
    fn parallel_join_and_group_ops_shard_their_row_counters() {
        // Planned on the Sun LX (64 KB L2): a 20k-tuple inner (160 KB)
        // exceeds the cache, so the cost model partitions the join — the
        // parallel kernels only shard partitioned algorithms.
        let machine = profiles::sun_lx();
        let mut b = TableBuilder::new("fact", 0)
            .column("k", ColType::I32)
            .column("v", ColType::F64)
            .column("tag", ColType::Str);
        for i in 0..30_000i32 {
            b.push_row(&[
                Value::I32(i % 20_000),
                Value::F64(i as f64 / 3.0),
                Value::from(if i % 2 == 0 { "A" } else { "B" }),
            ])
            .unwrap();
        }
        let fact = b.finish();
        let mut b = TableBuilder::new("dim", 0).column("id", ColType::I32);
        for i in 0..20_000i32 {
            b.push_row(&[Value::I32(i)]).unwrap();
        }
        let dim = b.finish();

        let plan = Query::scan(&fact)
            .join(&dim, ("k", "id"))
            .group_by("tag")
            .agg(Agg::sum("v"))
            .agg(Agg::max("k"))
            .build()
            .unwrap();
        let opts = ExecOptions::cost_model(machine).with_threads(Threads::Fixed(4));
        let par = execute(&mut NullTracker, &plan, &opts).unwrap();
        let seq = execute(&mut NullTracker, &plan, &ExecOptions::cost_model(machine)).unwrap();
        assert_eq!(par.output, seq.output);

        let join = par.report.ops.iter().find(|o| o.op.starts_with("join")).unwrap();
        assert!(join.detail.contains("threads=4"), "{}", join.detail);
        let shards = join.rows_per_thread.as_ref().expect("parallel join shards");
        assert_eq!(shards.iter().sum::<usize>(), join.rows_out, "pair counts merge to the total");
        let group = par.report.ops.iter().find(|o| o.op.starts_with("group")).unwrap();
        let shards = group.rows_per_thread.as_ref().expect("grouped-aggregate shards");
        assert_eq!(shards.iter().sum::<usize>(), group.rows_in, "domain slices cover every row");
        // Sequential runs stay unsharded on both ops.
        assert!(seq.report.ops.iter().all(|o| o.rows_per_thread.is_none()));
    }

    #[test]
    fn parallel_scan_select_shards_its_row_counters() {
        // Enough rows that even the packed (frame-sharded) kernel splits
        // into 4 chunks: 8 frames of 1024.
        let mut b = TableBuilder::new("wide", 0).column("qty", ColType::I32);
        for i in 0..8_192i32 {
            b.push_row(&[Value::I32(i % 10)]).unwrap();
        }
        let t = b.finish();
        let plan = Query::scan(&t).filter(Pred::range_i32("qty", 0, 4)).build().unwrap();
        let opts = ExecOptions::default().with_threads(Threads::Fixed(4));
        let par = execute(&mut NullTracker, &plan, &opts).unwrap();
        let sel = par.report.ops.iter().find(|o| o.op.starts_with("select")).unwrap();
        let shards = sel.rows_per_thread.as_ref().expect("parallel select shards");
        assert_eq!(shards.len(), 4);
        assert_eq!(shards.iter().sum::<usize>(), sel.rows_out, "shards merge to the op total");
        // Sequential runs stay unsharded.
        let seq = execute(&mut NullTracker, &plan, &ExecOptions::default()).unwrap();
        assert!(seq.report.ops.iter().all(|o| o.rows_per_thread.is_none()));
        assert_eq!(par.output, seq.output);
    }

    #[test]
    fn provided_scan_tickets_are_bit_identical_to_solo_evaluation() {
        use crate::shared::{scan_requests, ScanTicket};
        let mut b = TableBuilder::new("big", 0)
            .column("qty", ColType::I32)
            .column("price", ColType::F64)
            .column("mode", ColType::Str);
        for i in 0..5_000i32 {
            b.push_row(&[
                Value::I32(i % 97),
                Value::F64(i as f64 / 3.0),
                Value::from(["AIR", "MAIL", "SHIP"][i as usize % 3]),
            ])
            .unwrap();
        }
        let t = b.finish();
        let plan = Query::scan(&t)
            .filter(Pred::range_i32("qty", 10, 60).and(Pred::eq_str("mode", "AIR")))
            .group_by("mode")
            .agg(Agg::sum("price"))
            .agg(Agg::count())
            .build()
            .unwrap();
        let solo = execute(&mut NullTracker, &plan, &ExecOptions::default()).unwrap();

        // Produce every leaf's list through the cooperative kernel, as the
        // service's shared pass would.
        let reqs = scan_requests(&plan);
        assert_eq!(reqs.len(), 2);
        let mut ticket = ScanTicket::new();
        for r in &reqs {
            let lists =
                monet_core::scan::multi_select(&mut NullTracker, r.bat, &[r.pred.kernel_pred()])
                    .unwrap();
            ticket.provide(r.leaf, std::sync::Arc::new(lists.into_iter().next().unwrap()));
        }
        for threads in [Threads::Fixed(1), Threads::Fixed(4)] {
            let opts = ExecOptions::default().with_threads(threads);
            let fed = execute_with_scans(&mut NullTracker, &plan, &opts, &ticket).unwrap();
            assert!(fed.output.bitwise_eq(&solo.output), "{threads:?}");
            let sel = fed.report.ops.iter().find(|o| o.op.starts_with("select")).unwrap();
            assert_eq!(
                sel.notes,
                vec![AccessNote::SharedLeaves { provided: 2, total: 2 }],
                "{}",
                sel.detail
            );
            assert!(sel.detail.contains("2/2 leaves via shared scan"), "{}", sel.detail);
            assert!(sel.access.iter().all(|d| d.shared), "{:?}", sel.access);
            assert!(
                sel.shapes.is_empty(),
                "shared leaves carry no self-owned work: {:?}",
                sel.shapes
            );
            assert!(sel.rows_per_thread.is_none(), "no scan work ran here");
        }

        // A partial ticket: one leaf provided, the other evaluated here.
        let mut partial = ScanTicket::new();
        partial.provide(reqs[0].leaf, ticket.get(reqs[0].leaf).unwrap().clone());
        // Pin pushdown on: the note assertions below must hold on the
        // MONET_PUSHDOWN=0 CI legs too.
        let opts = ExecOptions::default().with_pushdown(PushdownMode::On);
        let fed = execute_with_scans(&mut NullTracker, &plan, &opts, &partial).unwrap();
        assert!(fed.output.bitwise_eq(&solo.output));
        let sel = fed.report.ops.iter().find(|o| o.op.starts_with("select")).unwrap();
        // The provided leaf costs nothing, so the pushdown planner orders it
        // first and restricts the unprovided leaf to its survivors.
        let provided_n = ticket.get(reqs[0].leaf).unwrap().len();
        assert_eq!(
            sel.notes,
            vec![
                AccessNote::SharedLeaves { provided: 1, total: 2 },
                AccessNote::Pushdown { order: vec![0, 1], cands_in: vec![None, Some(provided_n)] },
            ],
            "{}",
            sel.detail
        );
        assert!(sel.detail.contains("1/2 leaves via shared scan"), "{}", sel.detail);
        assert_eq!(sel.access.iter().filter(|d| d.shared).count(), 1);
        assert_eq!(sel.shapes.len(), 1, "the unprovided leaf scanned here: {:?}", sel.shapes);
    }

    #[test]
    fn auto_threads_stay_sequential_for_tiny_inputs_and_under_simulation() {
        let t = item();
        let plan = Query::scan(&t)
            .filter(Pred::range_f64("discnt", 0.0, 0.10))
            .group_by("shipmode")
            .agg(Agg::sum("price"))
            .build()
            .unwrap();
        // 5 rows: the fork overhead dwarfs the work, Auto must pick 1.
        let opts = ExecOptions::default().with_threads(Threads::Auto);
        let r = execute(&mut NullTracker, &plan, &opts).unwrap();
        for op in &r.report.ops {
            assert!(!op.detail.contains("threads="), "tiny input forked: {}", op.detail);
        }
        // Under the simulator, even Fixed(8) pins to one thread.
        let mut trk = SimTracker::for_machine(profiles::origin2000());
        let opts = ExecOptions::default().with_threads(Threads::Fixed(8));
        let sim = execute(&mut trk, &plan, &opts).unwrap();
        assert_eq!(sim.output, r.output);
        for op in &sim.report.ops {
            assert!(!op.detail.contains("threads="), "simulated run forked: {}", op.detail);
        }
    }
}
