//! Buildable column indexes — the catalog-facing wrapper the executor
//! consults when choosing a selection access path.
//!
//! A [`ColumnIndex`] is one of the three §3.2 index structures, bulk-loaded
//! from a BAT column via the order-preserving key mapping of
//! [`super::keys`]:
//!
//! * [`IndexKind::CsBTree`] — the cache-sensitive B+-tree with
//!   L1-line-sized nodes (the \[Ron98\] recommendation the paper endorses);
//!   supports equality *and* range probes, and exact range *counting* for
//!   selectivity estimation;
//! * [`IndexKind::Hash`] — the bucket-chained hash index (point lookups
//!   only; the cheapest eq path, cache-hostile but O(chain));
//! * [`IndexKind::TTree`] — the \[LC86\] T-tree, kept buildable so the
//!   paper's criticism stays measurable *inside* the engine, not just in
//!   the figure harness.
//!
//! The index also records the number of *distinct keys* seen at build time,
//! which is the equality-selectivity estimate (`len / distinct`) the cost
//! model prices hash and T-tree probes with.

use memsim::{MemTracker, Work};

use crate::storage::{Bat, Oid, StorageError};

use super::btree::CsBTree;
use super::hashidx::HashIndex;
use super::keys::{build_entries, distinct_keys};
use super::ttree::TTree;

/// Node size of catalog-built B+-trees: the Origin2000's 32-byte L1 line,
/// the paper's endorsed block size ("a B-tree with a block-size equal to
/// the cache line size is optimal").
pub const BTREE_NODE_BYTES: usize = 32;

/// The index structures a table column can carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    /// Cache-sensitive B+-tree with L1-line-sized nodes (eq + range).
    CsBTree,
    /// Bucket-chained hash index (eq only).
    Hash,
    /// \[LC86\] T-tree (eq only).
    TTree,
}

impl IndexKind {
    /// Short display name (`btree`, `hash`, `ttree`).
    pub fn name(self) -> &'static str {
        match self {
            IndexKind::CsBTree => "btree",
            IndexKind::Hash => "hash",
            IndexKind::TTree => "ttree",
        }
    }
}

#[derive(Debug, Clone)]
enum Backend {
    Btree(CsBTree),
    Hash(HashIndex),
    TTree(TTree),
}

/// A secondary index over one BAT column. See module docs.
#[derive(Debug, Clone)]
pub struct ColumnIndex {
    backend: Backend,
    distinct: usize,
    len: usize,
}

impl ColumnIndex {
    /// Build an index of `kind` over a BAT column. Fails with
    /// [`StorageError::TypeMismatch`] for unindexable tails (`F64`, `I64`).
    pub fn build(bat: &Bat, kind: IndexKind) -> Result<Self, StorageError> {
        let entries = build_entries(bat)?;
        let distinct = distinct_keys(&entries);
        let backend = match kind {
            IndexKind::CsBTree => {
                Backend::Btree(CsBTree::with_node_bytes(&entries, BTREE_NODE_BYTES))
            }
            IndexKind::Hash => Backend::Hash(HashIndex::new(&entries)),
            IndexKind::TTree => Backend::TTree(TTree::with_default_capacity(&entries)),
        };
        Ok(Self { backend, distinct, len: entries.len() })
    }

    /// Which structure backs this index.
    pub fn kind(&self) -> IndexKind {
        match &self.backend {
            Backend::Btree(_) => IndexKind::CsBTree,
            Backend::Hash(_) => IndexKind::Hash,
            Backend::TTree(_) => IndexKind::TTree,
        }
    }

    /// Number of indexed entries (the column length at build time).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the index holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Distinct keys seen at build time (the eq-selectivity estimator's
    /// denominator).
    pub fn distinct(&self) -> usize {
        self.distinct
    }

    /// True if the index answers *range* probes (only the B+-tree does).
    pub fn supports_range(&self) -> bool {
        matches!(self.backend, Backend::Btree(_))
    }

    /// The backing B+-tree, when this is a [`IndexKind::CsBTree`] index.
    pub fn btree(&self) -> Option<&CsBTree> {
        match &self.backend {
            Backend::Btree(t) => Some(t),
            _ => None,
        }
    }

    /// The backing T-tree, when this is a [`IndexKind::TTree`] index.
    pub fn ttree(&self) -> Option<&TTree> {
        match &self.backend {
            Backend::TTree(t) => Some(t),
            _ => None,
        }
    }

    /// Invoke `on_match(oid)` for every entry with exactly this key. OID
    /// order is backend-dependent (hash chains walk in reverse insertion
    /// order) — callers needing scan order sort the result.
    pub fn lookup_eq<M: MemTracker>(&self, trk: &mut M, key: u32, on_match: impl FnMut(Oid)) {
        match &self.backend {
            Backend::Btree(t) => t.lookup_eq(trk, key, on_match),
            Backend::Hash(h) => h.lookup_eq(trk, key, on_match),
            Backend::TTree(t) => t.lookup_eq(trk, key, on_match),
        }
    }

    /// Invoke `on_match(oid)` for every entry with `lo ≤ key ≤ hi`.
    /// Returns `false` (without probing) when the backend has no range
    /// support.
    pub fn lookup_range<M: MemTracker>(
        &self,
        trk: &mut M,
        lo: u32,
        hi: u32,
        mut on_match: impl FnMut(Oid),
    ) -> bool {
        match &self.backend {
            Backend::Btree(t) => {
                t.range(trk, lo, hi, |_, o| on_match(o));
                true
            }
            _ => false,
        }
    }

    /// Exact number of entries in `[lo, hi]` — B+-tree only (two descents,
    /// no leaf walk); `None` for backends that cannot count cheaply.
    pub fn count_range<M: MemTracker>(&self, trk: &mut M, lo: u32, hi: u32) -> Option<usize> {
        match &self.backend {
            Backend::Btree(t) => Some(t.count_range(trk, lo, hi)),
            _ => None,
        }
    }

    /// Candidate-restricted [`Self::lookup_eq`] — the pushdown probe
    /// variant. Probes as usual but emits only OIDs present in `cands` (an
    /// ascending list a prior predicate leaf produced), so the caller's
    /// sort-back-to-OID-order pays for the surviving entries instead of
    /// the full match set. Each probe-emitted entry is charged one
    /// [`Work::ScanIter`] for its membership test.
    pub fn lookup_eq_cands<M: MemTracker>(
        &self,
        trk: &mut M,
        key: u32,
        cands: &[Oid],
        mut on_match: impl FnMut(Oid),
    ) {
        let mut probed = 0u64;
        self.lookup_eq(trk, key, |o| {
            probed += 1;
            if cands.binary_search(&o).is_ok() {
                on_match(o);
            }
        });
        if M::ENABLED {
            trk.work(Work::ScanIter, probed);
        }
    }

    /// Candidate-restricted [`Self::lookup_range`]: like
    /// [`Self::lookup_eq_cands`], but over `lo ≤ key ≤ hi`. Returns `false`
    /// (without probing) when the backend has no range support.
    pub fn lookup_range_cands<M: MemTracker>(
        &self,
        trk: &mut M,
        lo: u32,
        hi: u32,
        cands: &[Oid],
        mut on_match: impl FnMut(Oid),
    ) -> bool {
        let mut probed = 0u64;
        let ok = self.lookup_range(trk, lo, hi, |o| {
            probed += 1;
            if cands.binary_search(&o).is_ok() {
                on_match(o);
            }
        });
        if M::ENABLED {
            trk.work(Work::ScanIter, probed);
        }
        ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::keys::key_of_i32;
    use crate::storage::Column;
    use memsim::NullTracker;

    fn bat() -> Bat {
        Bat::with_void_head(10, Column::I32(vec![4, -1, 4, 9, -1, 4]))
    }

    fn eq(idx: &ColumnIndex, v: i32) -> Vec<Oid> {
        let mut out = vec![];
        idx.lookup_eq(&mut NullTracker, key_of_i32(v), |o| out.push(o));
        out.sort_unstable();
        out
    }

    #[test]
    fn all_kinds_agree_on_lookups() {
        for kind in [IndexKind::CsBTree, IndexKind::Hash, IndexKind::TTree] {
            let idx = ColumnIndex::build(&bat(), kind).unwrap();
            assert_eq!(idx.kind(), kind);
            assert_eq!(idx.len(), 6);
            assert_eq!(idx.distinct(), 3);
            assert_eq!(eq(&idx, 4), vec![10, 12, 15], "{}", kind.name());
            assert_eq!(eq(&idx, -1), vec![11, 14], "{}", kind.name());
            assert!(eq(&idx, 5).is_empty(), "{}", kind.name());
        }
    }

    #[test]
    fn only_the_btree_ranges_and_counts() {
        let b = ColumnIndex::build(&bat(), IndexKind::CsBTree).unwrap();
        assert!(b.supports_range());
        let (lo, hi) = crate::index::keys::key_range_i32(-1, 4);
        let mut out = vec![];
        assert!(b.lookup_range(&mut NullTracker, lo, hi, |o| out.push(o)));
        out.sort_unstable();
        assert_eq!(out, vec![10, 11, 12, 14, 15]);
        assert_eq!(b.count_range(&mut NullTracker, lo, hi), Some(5));

        for kind in [IndexKind::Hash, IndexKind::TTree] {
            let idx = ColumnIndex::build(&bat(), kind).unwrap();
            assert!(!idx.supports_range());
            assert!(!idx.lookup_range(&mut NullTracker, lo, hi, |_| {}));
            assert_eq!(idx.count_range(&mut NullTracker, lo, hi), None);
            assert!(idx.btree().is_none());
        }
    }

    #[test]
    fn candidate_restricted_probes_filter_to_the_list() {
        for kind in [IndexKind::CsBTree, IndexKind::Hash, IndexKind::TTree] {
            let idx = ColumnIndex::build(&bat(), kind).unwrap();
            let mut out = vec![];
            idx.lookup_eq_cands(&mut NullTracker, key_of_i32(4), &[10, 15], |o| out.push(o));
            out.sort_unstable();
            assert_eq!(out, vec![10, 15], "{}", kind.name());
            let mut none = vec![];
            idx.lookup_eq_cands(&mut NullTracker, key_of_i32(4), &[], |o| none.push(o));
            assert!(none.is_empty(), "empty candidate list restricts to nothing");
        }
        let b = ColumnIndex::build(&bat(), IndexKind::CsBTree).unwrap();
        let (lo, hi) = crate::index::keys::key_range_i32(-1, 4);
        let mut out = vec![];
        assert!(b.lookup_range_cands(&mut NullTracker, lo, hi, &[11, 12, 13], |o| out.push(o)));
        out.sort_unstable();
        assert_eq!(out, vec![11, 12], "full range hits {{10,11,12,14,15}}, cands clip it");
    }

    #[test]
    fn unindexable_tails_error() {
        let f = Bat::with_void_head(0, Column::F64(vec![1.5]));
        for kind in [IndexKind::CsBTree, IndexKind::Hash, IndexKind::TTree] {
            assert!(matches!(ColumnIndex::build(&f, kind), Err(StorageError::TypeMismatch { .. })));
        }
    }
}
