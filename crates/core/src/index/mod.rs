//! Selection access paths — the §3.2 discussion, implemented.
//!
//! For selections the paper weighs three access paths:
//!
//! * **scan-select** — optimal locality, best at low selectivity (in
//!   `engine::select`);
//! * **bucket-chained hash / T-tree** — the \[LC86\] recommendation, which
//!   the paper criticizes: "both … cause random memory access to the entire
//!   relation; a non cache-friendly access pattern" ([`TTree`] implements
//!   the T-tree so the criticism can be measured);
//! * **B-tree with a block size equal to the cache line** — the \[Ron98\]
//!   result the paper endorses: "Our findings about the increased impact of
//!   cache misses indeed support this claim."
//!
//! This module provides the pieces to measure that trade-off on the
//! simulator — a bulk-loaded, cache-sensitive B+-tree with configurable node
//! size ([`CsBTree`]), a tracked binary search over a sorted array
//! ([`binary_search_tracked`]) as the classic pointer-free baseline whose
//! access pattern is *also* cache-hostile (log₂ C far-apart probes), and a
//! bucket-chained [`HashIndex`] over [`crate::join::ChainedTable`] — **and**
//! the pieces to *use* it: every structure bulk-loads from a BAT column
//! ([`keys`]' order-preserving key mapping), and [`catalog::ColumnIndex`]
//! wraps the three behind one probe interface so tables can carry attached
//! indexes the executor's access-path planner consults.

pub mod btree;
pub mod catalog;
pub mod hashidx;
pub mod keys;
pub mod ttree;

pub use btree::{binary_search_tracked, range_positions_tracked, CsBTree};
pub use catalog::{ColumnIndex, IndexKind, BTREE_NODE_BYTES};
pub use hashidx::HashIndex;
pub use keys::{build_entries, key_of_i32, key_range_i32};
pub use ttree::TTree;
