//! A bulk-loaded, implicit, cache-sensitive B+-tree.
//!
//! Nodes are fixed-size chunks of a flat per-level key array — no pointers,
//! no per-node allocation. The node size is a parameter measured in bytes so
//! the \[Ron98\] claim ("a B-tree with a block-size equal to the cache line
//! size is optimal") can be tested directly against the simulator: compare
//! `CsBTree::with_node_bytes(keys, 32)` (an L1 line on the Origin2000)
//! against page-sized nodes and against plain binary search.
//!
//! Why binary search is the interesting baseline: it does ~log₂ C probes
//! that start out *far apart* — every early probe is a cache and TLB miss on
//! a large array. The B+-tree does log_F C probes, each confined to one
//! line-sized node, and the upper levels (a few KB) stay cache-resident
//! across repeated lookups.

use memsim::MemTracker;

use crate::storage::{Bat, Oid, StorageError};

use super::keys::build_entries;

/// An immutable B+-tree over `(key, oid)` entries, bulk-loaded from data
/// sorted by key. See module docs.
#[derive(Debug, Clone)]
pub struct CsBTree {
    /// Keys per node (`F`).
    fanout: usize,
    /// `levels[0]` = all keys in order; `levels[k][i]` = max key of node `i`
    /// of level `k-1`. The last level has at most `fanout` entries.
    levels: Vec<Vec<u32>>,
    /// Payload OIDs, parallel to `levels[0]`.
    oids: Vec<Oid>,
}

impl CsBTree {
    /// Bulk-load from entries sorted by key (ascending; duplicates allowed).
    ///
    /// # Panics
    /// Panics if `fanout < 2` or the input is not sorted.
    pub fn new(entries: &[(u32, Oid)], fanout: usize) -> Self {
        assert!(fanout >= 2, "fanout must be at least 2");
        assert!(entries.windows(2).all(|w| w[0].0 <= w[1].0), "entries must be sorted by key");
        let keys: Vec<u32> = entries.iter().map(|e| e.0).collect();
        let oids: Vec<Oid> = entries.iter().map(|e| e.1).collect();
        let mut levels = vec![keys];
        while levels.last().unwrap().len() > fanout {
            let below = levels.last().unwrap();
            let up: Vec<u32> = below.chunks(fanout).map(|c| *c.last().unwrap()).collect();
            levels.push(up);
        }
        Self { fanout, levels, oids }
    }

    /// Bulk-load with nodes of `node_bytes` (keys are 4 bytes each).
    pub fn with_node_bytes(entries: &[(u32, Oid)], node_bytes: usize) -> Self {
        Self::new(entries, (node_bytes / 4).max(2))
    }

    /// Bulk-load over a BAT column with `node_bytes`-sized nodes, extracting
    /// and sorting the `(key, oid)` entries via the order-preserving key
    /// mapping of [`super::keys::build_entries`] — so callers never
    /// hand-build entry slices.
    pub fn from_column(bat: &Bat, node_bytes: usize) -> Result<Self, StorageError> {
        Ok(Self::with_node_bytes(&build_entries(bat)?, node_bytes))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.oids.len()
    }

    /// True if the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.oids.is_empty()
    }

    /// Tree height (levels above the leaves; 0 for ≤ fanout entries).
    pub fn height(&self) -> usize {
        self.levels.len() - 1
    }

    /// Keys per node.
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// Position of the first leaf key ≥ `key` (i.e. `lower_bound`), or
    /// `len()` if all keys are smaller. Every key comparison is tracked.
    pub fn lower_bound<M: MemTracker>(&self, trk: &mut M, key: u32) -> usize {
        if self.is_empty() {
            return 0;
        }
        // Descend from the top level; at each level `node` is the index of
        // the node to scan (a chunk of `fanout` entries).
        let mut node = 0usize;
        for level in self.levels.iter().rev() {
            let start = node * self.fanout;
            let end = (start + self.fanout).min(level.len());
            debug_assert!(start < level.len(), "descent within bounds");
            let mut pos = end; // "past this node" ⇒ key exceeds subtree max
            for (i, k) in level[start..end].iter().enumerate() {
                if M::ENABLED {
                    trk.read(k as *const u32 as usize, 4);
                }
                if *k >= key {
                    pos = start + i;
                    break;
                }
            }
            if pos == end && end == level.len() && node == level.len().div_ceil(self.fanout) - 1 {
                // Larger than every key in the tree.
                if level.as_ptr() == self.levels[0].as_ptr() {
                    return self.len();
                }
                // Keep descending along the rightmost spine.
                pos = end - 1;
            } else if pos == end {
                pos = end - 1;
            }
            node = pos;
        }
        node
    }

    /// Position one past the last leaf key ≤ `key` (i.e. `upper_bound`).
    pub fn upper_bound<M: MemTracker>(&self, trk: &mut M, key: u32) -> usize {
        match key.checked_add(1) {
            Some(next) => self.lower_bound(trk, next),
            None => self.len(), // key == u32::MAX: nothing is larger
        }
    }

    /// Number of entries with `lo ≤ key ≤ hi` — two descents, no leaf walk.
    /// This is what makes index-backed *selectivity estimation* exact and
    /// cheap: the executor prices scan vs. index with the true match count.
    pub fn count_range<M: MemTracker>(&self, trk: &mut M, lo: u32, hi: u32) -> usize {
        if lo > hi {
            return 0;
        }
        self.upper_bound(trk, hi).saturating_sub(self.lower_bound(trk, lo))
    }

    /// Invoke `on_match(oid)` for every entry with exactly this key.
    pub fn lookup_eq<M: MemTracker>(&self, trk: &mut M, key: u32, mut on_match: impl FnMut(Oid)) {
        let keys = &self.levels[0];
        let mut pos = self.lower_bound(trk, key);
        while pos < keys.len() {
            if M::ENABLED {
                trk.read(&keys[pos] as *const u32 as usize, 4);
            }
            if keys[pos] != key {
                break;
            }
            if M::ENABLED {
                trk.read(&self.oids[pos] as *const Oid as usize, 4);
            }
            on_match(self.oids[pos]);
            pos += 1;
        }
    }

    /// Invoke `on_match(key, oid)` for every entry with `lo ≤ key ≤ hi`
    /// (sequential leaf scan after one descent).
    pub fn range<M: MemTracker>(
        &self,
        trk: &mut M,
        lo: u32,
        hi: u32,
        mut on_match: impl FnMut(u32, Oid),
    ) {
        if lo > hi {
            return;
        }
        let keys = &self.levels[0];
        let mut pos = self.lower_bound(trk, lo);
        while pos < keys.len() {
            if M::ENABLED {
                trk.read(&keys[pos] as *const u32 as usize, 4);
            }
            if keys[pos] > hi {
                break;
            }
            if M::ENABLED {
                trk.read(&self.oids[pos] as *const Oid as usize, 4);
            }
            on_match(keys[pos], self.oids[pos]);
            pos += 1;
        }
    }

    /// Bytes of index structure *above* the leaves (the cache-resident part).
    pub fn inner_bytes(&self) -> usize {
        self.levels[1..].iter().map(|l| l.len() * 4).sum()
    }
}

/// Tracked binary search over keys sorted ascending: position of the first
/// element ≥ `key`. The classical index-free access path whose probe
/// pattern is cache-hostile on large arrays.
pub fn binary_search_tracked<M: MemTracker>(trk: &mut M, keys: &[u32], key: u32) -> usize {
    let mut lo = 0usize;
    let mut hi = keys.len();
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if M::ENABLED {
            trk.read(&keys[mid] as *const u32 as usize, 4);
        }
        if keys[mid] < key {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Tracked range positions via two binary searches (baseline for
/// [`CsBTree::range`]).
pub fn range_positions_tracked<M: MemTracker>(
    trk: &mut M,
    keys: &[u32],
    lo: u32,
    hi: u32,
) -> (usize, usize) {
    let start = binary_search_tracked(trk, keys, lo);
    let end = binary_search_tracked(trk, keys, hi.saturating_add(1).max(hi));
    (start, end.max(start))
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::{profiles, NullTracker, SimTracker};

    fn entries(n: u32, step: u32) -> Vec<(u32, Oid)> {
        (0..n).map(|i| (i * step, i)).collect()
    }

    #[test]
    fn lower_bound_matches_std() {
        let e = entries(10_000, 3);
        let keys: Vec<u32> = e.iter().map(|x| x.0).collect();
        for fanout in [2usize, 8, 32, 341] {
            let t = CsBTree::new(&e, fanout);
            for probe in [0u32, 1, 2, 3, 14_997, 15_000, 29_996, 29_997, 40_000] {
                let expect = keys.partition_point(|&k| k < probe);
                assert_eq!(
                    t.lower_bound(&mut NullTracker, probe),
                    expect,
                    "fanout {fanout} probe {probe}"
                );
                assert_eq!(binary_search_tracked(&mut NullTracker, &keys, probe), expect);
            }
        }
    }

    #[test]
    fn count_range_matches_filter() {
        let e = entries(5_000, 2);
        let t = CsBTree::with_node_bytes(&e, 32);
        for (lo, hi) in [(0, 0), (101, 211), (0, u32::MAX), (9_999, 9_999), (50, 10)] {
            let expect = e.iter().filter(|(k, _)| (lo..=hi).contains(k)).count();
            assert_eq!(t.count_range(&mut NullTracker, lo, hi), expect, "[{lo}, {hi}]");
        }
        assert_eq!(t.upper_bound(&mut NullTracker, u32::MAX), t.len());
    }

    #[test]
    fn from_column_handles_negative_keys() {
        use crate::storage::Column;
        let bat = Bat::with_void_head(500, Column::I32(vec![7, -3, 0, -3, 12]));
        let t = CsBTree::from_column(&bat, 32).unwrap();
        let probe = |v: i32| {
            let mut hits = vec![];
            t.lookup_eq(&mut NullTracker, super::super::keys::key_of_i32(v), |o| hits.push(o));
            hits
        };
        assert_eq!(probe(-3), vec![501, 503]);
        assert_eq!(probe(7), vec![500]);
        assert!(probe(5).is_empty());
        // Range across the sign boundary, via the order-preserving codec.
        let (klo, khi) = super::super::keys::key_range_i32(-3, 7);
        assert_eq!(t.count_range(&mut NullTracker, klo, khi), 4);
    }

    #[test]
    fn lookup_eq_finds_all_duplicates() {
        let e: Vec<(u32, Oid)> = [(5, 0), (7, 1), (7, 2), (7, 3), (9, 4)].to_vec();
        let t = CsBTree::new(&e, 2);
        let mut hits = vec![];
        t.lookup_eq(&mut NullTracker, 7, |o| hits.push(o));
        assert_eq!(hits, vec![1, 2, 3]);
        hits.clear();
        t.lookup_eq(&mut NullTracker, 6, |o| hits.push(o));
        assert!(hits.is_empty());
        t.lookup_eq(&mut NullTracker, 100, |o| hits.push(o));
        assert!(hits.is_empty());
    }

    #[test]
    fn range_scan_matches_filter() {
        let e = entries(5_000, 2); // keys 0,2,4,...
        let t = CsBTree::with_node_bytes(&e, 32);
        let mut got = vec![];
        t.range(&mut NullTracker, 101, 211, |k, o| got.push((k, o)));
        let expect: Vec<(u32, Oid)> =
            e.iter().copied().filter(|(k, _)| (101..=211).contains(k)).collect();
        assert_eq!(got, expect);
        // Degenerate ranges.
        got.clear();
        t.range(&mut NullTracker, 211, 101, |k, o| got.push((k, o)));
        assert!(got.is_empty());
    }

    #[test]
    fn empty_and_tiny_trees() {
        let t = CsBTree::new(&[], 8);
        assert!(t.is_empty());
        assert_eq!(t.lower_bound(&mut NullTracker, 5), 0);
        let t = CsBTree::new(&[(42, 7)], 8);
        assert_eq!(t.height(), 0);
        let mut hits = vec![];
        t.lookup_eq(&mut NullTracker, 42, |o| hits.push(o));
        assert_eq!(hits, vec![7]);
    }

    #[test]
    fn height_shrinks_with_fanout() {
        let e = entries(100_000, 1);
        let narrow = CsBTree::new(&e, 2);
        let wide = CsBTree::new(&e, 64);
        assert!(narrow.height() > wide.height());
        assert_eq!(wide.height(), 2); // 100k / 64 / 64 = 25 ≤ 64: two inner levels
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_input_rejected() {
        CsBTree::new(&[(3, 0), (1, 1)], 8);
    }

    #[test]
    fn line_sized_nodes_beat_binary_search_on_l2_misses() {
        // The \[Ron98\]/§3.2 claim on the simulated Origin2000: repeated
        // point lookups in a 4M-entry sorted array (16 MB keys, larger than
        // L2) — the line-sized B-tree's upper levels stay resident while
        // binary search misses on its early probes.
        let n = 1 << 22;
        let e: Vec<(u32, Oid)> = (0..n).map(|i| (i as u32, i as u32)).collect();
        let keys: Vec<u32> = e.iter().map(|x| x.0).collect();
        let tree = CsBTree::with_node_bytes(&e, 32); // L1-line nodes

        let probes: Vec<u32> =
            (0..2_000u32).map(|i| i.wrapping_mul(2_654_435_761) % n as u32).collect();

        let mut bt = SimTracker::for_machine(profiles::origin2000());
        for &p in &probes {
            let mut found = false;
            tree.lookup_eq(&mut bt, p, |_| found = true);
            assert!(found);
        }
        let tree_misses = bt.counters().l2_misses;

        let mut bs = SimTracker::for_machine(profiles::origin2000());
        for &p in &probes {
            let pos = binary_search_tracked(&mut bs, &keys, p);
            assert_eq!(keys[pos], p);
        }
        let bin_misses = bs.counters().l2_misses;

        assert!(
            tree_misses * 2 < bin_misses,
            "B-tree {tree_misses} vs binary search {bin_misses} L2 misses"
        );
    }

    #[test]
    fn inner_levels_are_small() {
        // With 32-byte nodes (F = 8) over 1M keys, inner levels total
        // ~1M/8 + 1M/64 + … ≈ 143k keys ≈ 0.57 MB ≪ the 4 MB leaf array.
        let e = entries(1 << 20, 1);
        let t = CsBTree::with_node_bytes(&e, 32);
        assert!(t.inner_bytes() < (1 << 20));
        assert!(t.inner_bytes() > 0);
    }
}
