//! Index-key extraction from BAT columns.
//!
//! Every index in this crate is keyed by `u32`. A column becomes indexable
//! by mapping its values onto `u32` keys **order-preservingly**, so that a
//! range predicate over the column translates into a key range over the
//! index:
//!
//! * `I32` — offset encoding ([`key_of_i32`]): flip the sign bit, so
//!   `i32::MIN ↦ 0` and ordering is preserved across the sign boundary;
//! * `Oid`/`U8` — identity (already unsigned);
//! * `Str` — the dictionary *code*. Codes are assigned in first-occurrence
//!   order, so only equality predicates are meaningful — which is exactly
//!   what the engine's string predicates are.
//!
//! `F64` columns are not indexable: their values do not map onto the 4-byte
//! key space, and the paper's §3.2 analysis only prices selections over
//! fixed-width integer BATs anyway.

use crate::storage::{Bat, Column, Oid, StorageError, ValueType};

/// Order-preserving `u32` key of an `i32` value (`i32::MIN ↦ 0`).
#[inline]
pub fn key_of_i32(v: i32) -> u32 {
    (v as u32) ^ 0x8000_0000
}

/// Map an inclusive `i32` range onto the index-key space (order-preserving,
/// so an inverted input range stays inverted).
#[inline]
pub fn key_range_i32(lo: i32, hi: i32) -> (u32, u32) {
    (key_of_i32(lo), key_of_i32(hi))
}

/// Extract `(key, oid)` entries from a BAT tail, sorted by `(key, oid)` —
/// the bulk-load input every index constructor takes. Returns
/// [`StorageError::TypeMismatch`] for tails with no `u32` key mapping
/// (`F64`, `I64`).
pub fn build_entries(bat: &Bat) -> Result<Vec<(u32, Oid)>, StorageError> {
    let mut entries: Vec<(u32, Oid)> = match bat.tail() {
        Column::I32(v) => {
            v.iter().enumerate().map(|(i, &x)| (key_of_i32(x), bat.head_oid(i))).collect()
        }
        Column::Oid(v) => v.iter().enumerate().map(|(i, &x)| (x, bat.head_oid(i))).collect(),
        Column::U8(v) => v.iter().enumerate().map(|(i, &x)| (x as u32, bat.head_oid(i))).collect(),
        Column::Str(sc) => (0..sc.len()).map(|i| (sc.codes.get(i), bat.head_oid(i))).collect(),
        other => {
            return Err(StorageError::TypeMismatch {
                expected: ValueType::I32,
                got: other.value_type(),
            })
        }
    };
    entries.sort_unstable();
    Ok(entries)
}

/// Number of distinct keys in a `(key, oid)` entry list sorted by key.
pub fn distinct_keys(entries: &[(u32, Oid)]) -> usize {
    let mut n = 0;
    let mut last = None;
    for &(k, _) in entries {
        if last != Some(k) {
            n += 1;
            last = Some(k);
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::StrColumn;

    #[test]
    fn i32_keys_preserve_order_across_the_sign_boundary() {
        let vals = [i32::MIN, -7, -1, 0, 1, 42, i32::MAX];
        let keys: Vec<u32> = vals.iter().map(|&v| key_of_i32(v)).collect();
        assert!(keys.windows(2).all(|w| w[0] < w[1]), "{keys:?}");
        assert_eq!(key_of_i32(i32::MIN), 0);
        assert_eq!(key_of_i32(i32::MAX), u32::MAX);
        let (lo, hi) = key_range_i32(-5, 5);
        assert!(lo < hi);
    }

    #[test]
    fn entries_sort_by_key_then_oid() {
        let bat = Bat::with_void_head(100, Column::I32(vec![3, -1, 3, 0]));
        let e = build_entries(&bat).unwrap();
        assert_eq!(
            e,
            vec![
                (key_of_i32(-1), 101),
                (key_of_i32(0), 103),
                (key_of_i32(3), 100),
                (key_of_i32(3), 102),
            ]
        );
        assert_eq!(distinct_keys(&e), 3);
    }

    #[test]
    fn string_entries_use_dictionary_codes() {
        let bat = Bat::with_void_head(0, Column::Str(StrColumn::from_strs(["B", "A", "B"])));
        let sc = bat.tail().as_str_col().unwrap();
        let e = build_entries(&bat).unwrap();
        let code_b = sc.dict.code_of("B").unwrap();
        assert_eq!(e.iter().filter(|&&(k, _)| k == code_b).count(), 2);
        assert_eq!(distinct_keys(&e), 2);
    }

    #[test]
    fn f64_tails_are_not_indexable() {
        let bat = Bat::with_void_head(0, Column::F64(vec![1.0]));
        assert!(matches!(build_entries(&bat), Err(StorageError::TypeMismatch { .. })));
    }
}
