//! A T-tree — the \[LC86\] main-memory index the paper argues *against*.
//!
//! Lehman & Carey's study (which §3.2 cites) found T-trees and bucket-chained
//! hash tables best for main-memory selections; the paper counters that both
//! "cause random memory access to the entire relation; a non cache-friendly
//! access pattern". To measure that claim we need an actual T-tree: a
//! balanced binary tree whose nodes each hold a block of sorted keys in
//! their own heap allocation (as 1986-style implementations did), searched
//! by pointer-chasing on `(min, max)` bounds and finished with an in-node
//! binary search.
//!
//! The cache hostility is structural: each descent step dereferences a node
//! whose block lives in a separate allocation, so the probe path touches
//! `log2(C/block)` scattered lines *plus* the block — compare
//! [`super::CsBTree`], whose upper levels are contiguous and tiny.

use memsim::MemTracker;

use crate::storage::Oid;

const NONE: u32 = u32::MAX;

/// Default keys per node, per \[LC86\]'s recommendation of "around 64".
pub const DEFAULT_NODE_CAPACITY: usize = 64;

#[derive(Debug, Clone)]
struct TNode {
    min: u32,
    max: u32,
    /// Sorted keys (own allocation, as in period implementations).
    keys: Vec<u32>,
    /// Payload, parallel to `keys`.
    oids: Vec<Oid>,
    left: u32,
    right: u32,
}

/// A balanced, bulk-loaded T-tree over `(key, oid)` entries. See module docs.
#[derive(Debug, Clone)]
pub struct TTree {
    nodes: Vec<TNode>,
    root: u32,
    /// Blocks in key order: `order[i]` is the node holding the i-th block
    /// of the sorted input (used to continue duplicate runs across nodes).
    order: Vec<u32>,
    len: usize,
    node_capacity: usize,
}

impl TTree {
    /// Bulk-load from entries sorted by key (duplicates allowed).
    ///
    /// # Panics
    /// Panics if `node_capacity == 0` or the input is not sorted.
    pub fn new(entries: &[(u32, Oid)], node_capacity: usize) -> Self {
        assert!(node_capacity > 0, "node capacity must be positive");
        assert!(entries.windows(2).all(|w| w[0].0 <= w[1].0), "entries must be sorted by key");
        let nblocks = entries.len().div_ceil(node_capacity);
        let mut nodes = Vec::with_capacity(nblocks);
        let mut order = vec![NONE; nblocks];
        let root = Self::build(entries, node_capacity, 0, nblocks, &mut nodes, &mut order);
        Self { nodes, root, order, len: entries.len(), node_capacity }
    }

    /// Bulk-load with the \[LC86\] default node capacity.
    pub fn with_default_capacity(entries: &[(u32, Oid)]) -> Self {
        Self::new(entries, DEFAULT_NODE_CAPACITY)
    }

    /// Bulk-load over a BAT column with the default node capacity (see
    /// [`super::keys::build_entries`] for the key mapping).
    pub fn from_column(bat: &crate::storage::Bat) -> Result<Self, crate::storage::StorageError> {
        Ok(Self::with_default_capacity(&super::keys::build_entries(bat)?))
    }

    /// Keys per node the tree was loaded with.
    pub fn node_capacity(&self) -> usize {
        self.node_capacity
    }

    fn build(
        entries: &[(u32, Oid)],
        cap: usize,
        lo_block: usize,
        hi_block: usize,
        nodes: &mut Vec<TNode>,
        order: &mut [u32],
    ) -> u32 {
        if lo_block >= hi_block {
            return NONE;
        }
        let mid = lo_block + (hi_block - lo_block) / 2;
        let start = mid * cap;
        let end = ((mid + 1) * cap).min(entries.len());
        let block = &entries[start..end];
        let idx = nodes.len() as u32;
        nodes.push(TNode {
            min: block.first().map_or(u32::MAX, |e| e.0),
            max: block.last().map_or(0, |e| e.0),
            keys: block.iter().map(|e| e.0).collect(),
            oids: block.iter().map(|e| e.1).collect(),
            left: NONE,
            right: NONE,
        });
        order[mid] = idx;
        let left = Self::build(entries, cap, lo_block, mid, nodes, order);
        let right = Self::build(entries, cap, mid + 1, hi_block, nodes, order);
        let node = &mut nodes[idx as usize];
        node.left = left;
        node.right = right;
        node.keys.windows(2).for_each(|w| debug_assert!(w[0] <= w[1], "block sorted"));
        idx
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of nodes (blocks).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Tree height (pointer-chase depth).
    pub fn height(&self) -> usize {
        fn depth(nodes: &[TNode], idx: u32) -> usize {
            if idx == NONE {
                return 0;
            }
            let n = &nodes[idx as usize];
            1 + depth(nodes, n.left).max(depth(nodes, n.right))
        }
        depth(&self.nodes, self.root)
    }

    /// Position of the block (in key order) that the descent for `key`
    /// bounds, if any. Tracks one header read per node visited.
    fn descend<M: MemTracker>(&self, trk: &mut M, key: u32) -> Option<u32> {
        let mut idx = self.root;
        while idx != NONE {
            let node = &self.nodes[idx as usize];
            if M::ENABLED {
                // Node header: min, max, child pointers.
                trk.read(node as *const TNode as usize, 16);
            }
            if key < node.min {
                idx = node.left;
            } else if key > node.max {
                idx = node.right;
            } else {
                return Some(idx);
            }
        }
        None
    }

    /// Invoke `on_match(oid)` for every entry with exactly this key
    /// (duplicate runs may span multiple blocks in either direction from
    /// the block the descent lands on).
    pub fn lookup_eq<M: MemTracker>(&self, trk: &mut M, key: u32, mut on_match: impl FnMut(Oid)) {
        let Some(idx) = self.descend(trk, key) else {
            return;
        };
        // The descent can land on any block of a duplicate run (several
        // consecutive blocks can have min = max = key); rewind to the run's
        // first block. A preceding block contains the key iff its max equals
        // it (blocks partition the sorted key sequence).
        let mut block_pos = self.order.iter().position(|&o| o == idx).expect("indexed");
        while block_pos > 0 {
            let prev = &self.nodes[self.order[block_pos - 1] as usize];
            if M::ENABLED {
                trk.read(prev as *const TNode as usize, 16);
            }
            if prev.max == key {
                block_pos -= 1;
            } else {
                break;
            }
        }
        // Binary search within the starting block (tracked).
        let node = &self.nodes[self.order[block_pos] as usize];
        let mut lo = 0usize;
        let mut hi = node.keys.len();
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if M::ENABLED {
                trk.read(&node.keys[mid] as *const u32 as usize, 4);
            }
            if node.keys[mid] < key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        // Walk the duplicate run forward, continuing across blocks.
        let mut node = &self.nodes[self.order[block_pos] as usize];
        let mut i = lo;
        loop {
            while i < node.keys.len() {
                if M::ENABLED {
                    trk.read(&node.keys[i] as *const u32 as usize, 4);
                }
                if node.keys[i] != key {
                    return;
                }
                if M::ENABLED {
                    trk.read(&node.oids[i] as *const Oid as usize, 4);
                }
                on_match(node.oids[i]);
                i += 1;
            }
            block_pos += 1;
            if block_pos >= self.order.len() {
                return;
            }
            node = &self.nodes[self.order[block_pos] as usize];
            if M::ENABLED {
                trk.read(node as *const TNode as usize, 16);
            }
            i = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::{profiles, NullTracker, SimTracker};

    fn entries(n: u32, step: u32) -> Vec<(u32, Oid)> {
        (0..n).map(|i| (i * step, i)).collect()
    }

    fn lookup(t: &TTree, key: u32) -> Vec<Oid> {
        let mut out = vec![];
        t.lookup_eq(&mut NullTracker, key, |o| out.push(o));
        out
    }

    #[test]
    fn finds_present_and_rejects_absent_keys() {
        let e = entries(10_000, 3);
        for cap in [1usize, 7, 64, 500] {
            let t = TTree::new(&e, cap);
            assert_eq!(t.len(), 10_000);
            for probe in [0u32, 3, 2_997, 14_997, 29_997] {
                assert_eq!(lookup(&t, probe), vec![probe / 3], "cap {cap} probe {probe}");
            }
            for absent in [1u32, 2, 29_998, 40_000] {
                assert!(lookup(&t, absent).is_empty(), "cap {cap} absent {absent}");
            }
        }
    }

    #[test]
    fn duplicate_runs_cross_block_boundaries() {
        // 300 copies of the same key with capacity 64: the run spans 5 blocks.
        let mut e: Vec<(u32, Oid)> = (0..300).map(|i| (42u32, i)).collect();
        e.insert(0, (1, 1000));
        e.push((99, 1001));
        let t = TTree::new(&e, 64);
        let hits = lookup(&t, 42);
        assert_eq!(hits.len(), 300);
        assert_eq!(hits, (0..300).collect::<Vec<_>>());
        assert_eq!(lookup(&t, 1), vec![1000]);
        assert_eq!(lookup(&t, 99), vec![1001]);
    }

    #[test]
    fn empty_tree() {
        let t = TTree::new(&[], 64);
        assert!(t.is_empty());
        assert!(lookup(&t, 5).is_empty());
    }

    #[test]
    fn balanced_height() {
        let t = TTree::new(&entries(64 * 1024, 1), 64);
        assert_eq!(t.node_count(), 1024);
        // Balanced: height ≈ log2(1024) = 10 (allow +1 for rounding).
        assert!(t.height() <= 11, "height {}", t.height());
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_rejected() {
        TTree::new(&[(5, 0), (1, 1)], 8);
    }

    #[test]
    fn ttree_loses_to_line_sized_btree_on_cache_misses() {
        // The §3.2 claim, measured: point lookups in a 4M-entry index.
        // The T-tree pointer-chases scattered per-node allocations; the
        // CsBTree's contiguous upper levels stay cache-resident.
        let n = 1 << 22;
        let e: Vec<(u32, Oid)> = (0..n).map(|i| (i as u32, i as u32)).collect();
        let ttree = TTree::with_default_capacity(&e);
        let btree = crate::index::CsBTree::with_node_bytes(&e, 32);
        let probes: Vec<u32> =
            (0..2_000u32).map(|i| i.wrapping_mul(2_654_435_761) % n as u32).collect();

        let mut tt = SimTracker::for_machine(profiles::origin2000());
        for &p in &probes {
            let mut found = false;
            ttree.lookup_eq(&mut tt, p, |_| found = true);
            assert!(found);
        }
        let mut bt = SimTracker::for_machine(profiles::origin2000());
        for &p in &probes {
            let mut found = false;
            btree.lookup_eq(&mut bt, p, |_| found = true);
            assert!(found);
        }
        // Measured gap on this workload: ~1.5x more L2 misses for the
        // T-tree (its node *headers* are contiguous in our Vec, which is
        // kinder than a 1986 allocator would be — the honest lower bound).
        let (t_miss, b_miss) = (tt.counters().l2_misses, bt.counters().l2_misses);
        assert!(
            (b_miss as f64) * 1.2 < t_miss as f64,
            "B-tree {b_miss} vs T-tree {t_miss} L2 misses"
        );
    }
}
