//! A bucket-chained hash index for point lookups — the \[LC86\] hash path
//! of §3.2, packaged as a *secondary index* over a BAT column.
//!
//! The paper's criticism ("hash tables … cause random memory access to the
//! entire relation; a non cache-friendly access pattern") applies to the
//! probe: each lookup walks a chain whose entries are scattered over the
//! whole `(key, oid)` array. That is still the cheapest access path for a
//! *point* query on a large relation — one chain walk beats a full scan by
//! orders of magnitude — which is why the cost model prices it per probe
//! rather than per relation ([`costmodel`'s access module]).
//!
//! Built on [`crate::join::ChainedTable`], the same no-allocation
//! heads+chain layout both hash-join variants use.

use memsim::{MemTracker, Work};

use crate::join::hashtable::DEFAULT_TUPLES_PER_BUCKET;
use crate::join::{Bun, ChainedTable, FibHash};
use crate::storage::{Bat, Oid, StorageError};

use super::keys::build_entries;

/// A bucket-chained hash index over `(key, oid)` entries.
#[derive(Debug, Clone)]
pub struct HashIndex {
    /// The indexed entries as BUNs (`head` = OID payload, `tail` = key).
    buns: Vec<Bun>,
    table: ChainedTable,
}

impl HashIndex {
    /// Build from `(key, oid)` entries (any order; duplicates allowed).
    pub fn new(entries: &[(u32, Oid)]) -> Self {
        let buns: Vec<Bun> = entries.iter().map(|&(k, o)| Bun::new(o, k)).collect();
        let table = ChainedTable::build(
            &mut memsim::NullTracker,
            FibHash,
            &buns,
            0,
            DEFAULT_TUPLES_PER_BUCKET,
        );
        Self { buns, table }
    }

    /// Build over a BAT column (see [`super::keys::build_entries`] for the
    /// key mapping).
    pub fn from_column(bat: &Bat) -> Result<Self, StorageError> {
        Ok(Self::new(&build_entries(bat)?))
    }

    /// Number of indexed entries.
    pub fn len(&self) -> usize {
        self.buns.len()
    }

    /// True if the index is empty.
    pub fn is_empty(&self) -> bool {
        self.buns.is_empty()
    }

    /// Invoke `on_match(oid)` for every entry with exactly this key, in
    /// chain order (no particular OID order — callers sort). Charges one
    /// [`Work::HashTuple`] per probe; every chain access is tracked.
    pub fn lookup_eq<M: MemTracker>(&self, trk: &mut M, key: u32, mut on_match: impl FnMut(Oid)) {
        if M::ENABLED {
            trk.work(Work::HashTuple, 1);
        }
        self.table.probe(trk, FibHash, &self.buns, key, |_, pos| {
            on_match(self.buns[pos as usize].head);
        });
    }

    /// Heap bytes of index structure (heads + chain + BUN array) — what the
    /// access cost model treats as the randomly-accessed footprint.
    pub fn footprint_bytes(&self) -> usize {
        self.table.footprint_bytes() + self.buns.len() * std::mem::size_of::<Bun>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::keys::key_of_i32;
    use crate::storage::Column;
    use memsim::NullTracker;

    fn lookup(idx: &HashIndex, key: u32) -> Vec<Oid> {
        let mut out = vec![];
        idx.lookup_eq(&mut NullTracker, key, |o| out.push(o));
        out.sort_unstable();
        out
    }

    #[test]
    fn finds_all_duplicates_and_nothing_else() {
        let idx = HashIndex::new(&[(5, 10), (7, 11), (5, 12), (9, 13)]);
        assert_eq!(lookup(&idx, 5), vec![10, 12]);
        assert_eq!(lookup(&idx, 7), vec![11]);
        assert!(lookup(&idx, 6).is_empty());
        assert_eq!(idx.len(), 4);
    }

    #[test]
    fn from_column_maps_i32_keys() {
        let bat = Bat::with_void_head(200, Column::I32(vec![-3, 8, -3]));
        let idx = HashIndex::from_column(&bat).unwrap();
        assert_eq!(lookup(&idx, key_of_i32(-3)), vec![200, 202]);
        assert_eq!(lookup(&idx, key_of_i32(8)), vec![201]);
    }

    #[test]
    fn empty_index() {
        let idx = HashIndex::new(&[]);
        assert!(idx.is_empty());
        assert!(lookup(&idx, 1).is_empty());
        assert!(idx.footprint_bytes() < 64);
    }
}
