//! Nested-loop join: the O(n·m) correctness oracle.
//!
//! Never competitive (and the paper does not plot it), but every other join
//! in this crate is property-tested against it, and radix-join uses the same
//! loop *within* clusters.

use memsim::{MemTracker, Work};

use super::{Bun, OidPair};

/// Compare every pair; emit matches in (left-position, right-position)
/// order.
pub fn nested_loop_join<M: MemTracker>(trk: &mut M, left: &[Bun], right: &[Bun]) -> Vec<OidPair> {
    let mut out = Vec::new();
    for lt in left {
        if M::ENABLED {
            trk.read(lt as *const Bun as usize, 8);
        }
        for rt in right {
            if M::ENABLED {
                trk.read(rt as *const Bun as usize, 8);
                trk.work(Work::RadixCompare, 1);
            }
            if lt.tail == rt.tail {
                out.push(OidPair::new(lt.head, rt.head));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::NullTracker;

    #[test]
    fn cross_product_on_all_equal() {
        let l: Vec<Bun> = (0..3).map(|i| Bun::new(i, 7)).collect();
        let r: Vec<Bun> = (10..14).map(|i| Bun::new(i, 7)).collect();
        assert_eq!(nested_loop_join(&mut NullTracker, &l, &r).len(), 12);
    }

    #[test]
    fn empty_inputs() {
        let r: Vec<Bun> = vec![Bun::new(0, 1)];
        assert!(nested_loop_join(&mut NullTracker, &[], &r).is_empty());
        assert!(nested_loop_join(&mut NullTracker, &r, &[]).is_empty());
    }

    #[test]
    fn emits_left_major_order() {
        let l = vec![Bun::new(0, 1), Bun::new(1, 2)];
        let r = vec![Bun::new(5, 2), Bun::new(6, 1)];
        let out = nested_loop_join(&mut NullTracker, &l, &r);
        assert_eq!(out, vec![OidPair::new(0, 6), OidPair::new(1, 5)]);
    }
}
