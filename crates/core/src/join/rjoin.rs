//! Radix-join (§3.3.1, Figures 7–8): cluster *finely* (cluster size ~8
//! tuples), then a plain nested loop inside each pair of matching clusters.
//!
//! "If the number of clusters H is high, the radix-clustering has brought
//! the potentially matching tuples near to each other. As chunk sizes are
//! small, a simple nested loop is then sufficient." Tuning `H ≈ C/8` plays
//! the role of bucket count in a hash table; driven to `H = C` the algorithm
//! degenerates into sort/merge-join with radix-sort as the sorting phase.

use memsim::{MemTracker, Work};

use super::cluster::{radix_cluster, ClusteredRel};
use super::hash::KeyHash;
use super::{Bun, OidPair};

/// Join two already-clustered relations with per-cluster nested loops
/// (the isolated join phase that Figure 10 measures).
///
/// # Panics
/// Panics if the operands were clustered on different bit counts.
pub fn radix_join_clustered<M: MemTracker, H: KeyHash>(
    trk: &mut M,
    _h: H,
    left: &ClusteredRel,
    right: &ClusteredRel,
) -> Vec<OidPair> {
    assert_eq!(left.bits, right.bits, "operands must share the radix bit count");
    let mut out: Vec<OidPair> = Vec::with_capacity(left.len());

    for c in 0..left.num_clusters() {
        let lc = left.cluster(c);
        let rc = right.cluster(c);
        if lc.is_empty() || rc.is_empty() {
            continue;
        }
        for lt in lc {
            if M::ENABLED {
                trk.read(lt as *const Bun as usize, 8);
            }
            for rt in rc {
                if M::ENABLED {
                    trk.read(rt as *const Bun as usize, 8);
                    trk.work(Work::RadixCompare, 1);
                }
                if lt.tail == rt.tail {
                    if M::ENABLED {
                        trk.work(Work::RadixResult, 1);
                        let addr = out.as_ptr() as usize + out.len() * 8;
                        trk.write(addr, 8);
                    }
                    out.push(OidPair::new(lt.head, rt.head));
                }
            }
        }
    }
    out
}

/// The complete radix-join of Figure 8: cluster both inputs on `bits` radix
/// bits, then nested-loop each cluster pair.
pub fn radix_join<M: MemTracker, H: KeyHash>(
    trk: &mut M,
    h: H,
    left: Vec<Bun>,
    right: Vec<Bun>,
    bits: u32,
    pass_bits: &[u32],
) -> Vec<OidPair> {
    let l = radix_cluster(trk, h, left, bits, pass_bits);
    let r = radix_cluster(trk, h, right, bits, pass_bits);
    radix_join_clustered(trk, h, &l, &r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join::hash::{FibHash, IdentityHash};
    use crate::join::nljoin::nested_loop_join;
    use crate::join::sort_pairs;
    use memsim::{profiles, NullTracker, SimTracker};

    fn pair_inputs(n: u32) -> (Vec<Bun>, Vec<Bun>) {
        let left: Vec<Bun> =
            (0..n).map(|i| Bun::new(i, (i.wrapping_mul(2654435761)) % (2 * n))).collect();
        let right: Vec<Bun> =
            (0..n).map(|i| Bun::new(i, (i.wrapping_mul(40503)) % (2 * n))).collect();
        (left, right)
    }

    #[test]
    fn matches_nested_loop_oracle_across_bit_counts() {
        let (l, r) = pair_inputs(400);
        let expect = sort_pairs(nested_loop_join(&mut NullTracker, &l, &r));
        for bits in [0u32, 2, 4, 6, 8] {
            let passes: Vec<u32> = if bits == 0 { vec![] } else { vec![bits] };
            let got = sort_pairs(radix_join(
                &mut NullTracker,
                FibHash,
                l.clone(),
                r.clone(),
                bits,
                &passes,
            ));
            assert_eq!(got, expect, "bits={bits}");
        }
    }

    #[test]
    fn fine_clustering_degenerates_toward_sort_merge() {
        // With H ≈ C the per-cluster nested loops see ~1 tuple each; the
        // join is still correct (this is the "radix min" end of Fig. 12).
        let n = 1024u32;
        let l: Vec<Bun> = (0..n).map(|i| Bun::new(i, i)).collect();
        let r: Vec<Bun> = (0..n).map(|i| Bun::new(i, n - 1 - i)).collect();
        let got = sort_pairs(radix_join(&mut NullTracker, FibHash, l, r, 10, &[5, 5]));
        assert_eq!(got.len(), n as usize);
        for (i, p) in got.iter().enumerate() {
            assert_eq!(p.left, i as u32);
            assert_eq!(p.right, n - 1 - i as u32);
        }
    }

    #[test]
    fn duplicates_and_empties() {
        let l = vec![Bun::new(0, 3), Bun::new(1, 3), Bun::new(2, 3)];
        let r = vec![Bun::new(7, 3), Bun::new(8, 3)];
        let got = radix_join(&mut NullTracker, IdentityHash, l.clone(), r.clone(), 2, &[2]);
        assert_eq!(got.len(), 6);
        assert!(radix_join(&mut NullTracker, FibHash, vec![], r, 2, &[2]).is_empty());
        assert!(radix_join(&mut NullTracker, FibHash, l, vec![], 2, &[2]).is_empty());
    }

    #[test]
    fn more_bits_reduce_compare_work() {
        // T_r's dominant term is C·(C/H)·w_r: doubling the bits halves the
        // nested-loop work. Verify via simulated CPU time of the join phase.
        let (l, r) = pair_inputs(1 << 12);
        let m = profiles::origin2000();
        let cpu_at = |bits: u32| {
            let mut t = SimTracker::for_machine(m);
            let lc = radix_cluster(&mut t, FibHash, l.clone(), bits, &[bits]);
            let rc = radix_cluster(&mut t, FibHash, r.clone(), bits, &[bits]);
            t.system_mut().reset_counters();
            radix_join_clustered(&mut t, FibHash, &lc, &rc);
            t.counters().cpu_ns
        };
        let c4 = cpu_at(4);
        let c8 = cpu_at(8);
        assert!(c4 > 8.0 * c8, "16x fewer comparisons expected: {c4} vs {c8}");
    }

    #[test]
    #[should_panic(expected = "share the radix bit count")]
    fn mismatched_bits_rejected() {
        let l = radix_cluster(&mut NullTracker, FibHash, vec![Bun::new(0, 0)], 2, &[2]);
        let r = radix_cluster(&mut NullTracker, FibHash, vec![Bun::new(0, 0)], 4, &[4]);
        radix_join_clustered(&mut NullTracker, FibHash, &l, &r);
    }
}
