//! Integer hash functions for radix clustering and bucket-chained tables.
//!
//! The paper radix-clusters "on the lower B bits of the integer hash-value
//! of a column" (§3.3.1). The hash function must be cheap (it runs once per
//! tuple per pass) and must spread keys over *all* 32 bits, because the
//! per-cluster hash tables of the partitioned hash-join take their bucket
//! index from the bits **above** the radix bits — see
//! [`crate::join::ChainedTable`].

/// A cheap 32-bit hash over join keys.
pub trait KeyHash: Copy {
    /// Hash a key.
    fn hash(&self, key: u32) -> u32;
}

/// The identity "hash". Valid for the paper's workload (uniformly
/// distributed unique random numbers already behave like hash values), and
/// useful in tests because cluster contents become predictable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IdentityHash;

impl KeyHash for IdentityHash {
    #[inline(always)]
    fn hash(&self, key: u32) -> u32 {
        key
    }
}

/// Fibonacci (multiplicative) hashing: one multiply by 2^32/φ. The default
/// for all experiments — robust to structured keys at almost zero cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FibHash;

impl KeyHash for FibHash {
    #[inline(always)]
    fn hash(&self, key: u32) -> u32 {
        key.wrapping_mul(0x9E37_79B1)
    }
}

/// The 32-bit murmur3 finalizer: slower than [`FibHash`] but a full
/// avalanche — used to check that results are hash-independent.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MurmurHash;

impl KeyHash for MurmurHash {
    #[inline(always)]
    fn hash(&self, key: u32) -> u32 {
        let mut h = key;
        h ^= h >> 16;
        h = h.wrapping_mul(0x85EB_CA6B);
        h ^= h >> 13;
        h = h.wrapping_mul(0xC2B2_AE35);
        h ^= h >> 16;
        h
    }
}

/// The lower `bits` bits of a hash — the radix of §3.3.1. `bits` may be 0
/// (no clustering) up to 32.
#[inline(always)]
pub fn radix_of(hash: u32, bits: u32) -> u32 {
    debug_assert!(bits <= 32);
    if bits == 0 {
        0
    } else {
        hash & (u32::MAX >> (32 - bits))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn radix_masks_low_bits() {
        assert_eq!(radix_of(0b1011_0110, 4), 0b0110);
        assert_eq!(radix_of(0xFFFF_FFFF, 0), 0);
        assert_eq!(radix_of(0xFFFF_FFFF, 32), 0xFFFF_FFFF);
        assert_eq!(radix_of(0x1234_5678, 8), 0x78);
    }

    #[test]
    fn hashes_are_deterministic_and_distinct_enough() {
        let keys: Vec<u32> = (0..10_000).collect();
        for spread in [
            keys.iter().map(|&k| FibHash.hash(k)).collect::<std::collections::HashSet<_>>(),
            keys.iter().map(|&k| MurmurHash.hash(k)).collect(),
        ] {
            assert_eq!(spread.len(), keys.len(), "hash must be injective on small ranges");
        }
    }

    #[test]
    fn fib_hash_spreads_sequential_keys_across_radix_buckets() {
        // Sequential keys land in distinct low-bit buckets reasonably evenly
        // under FibHash — the property radix clustering needs.
        let bits = 6;
        let mut counts = [0usize; 64];
        for k in 0..6400u32 {
            counts[radix_of(FibHash.hash(k), bits) as usize] += 1;
        }
        let (&min, &max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(min > 0, "every bucket used");
        assert!(max < 3 * 100, "no bucket more than 3x the mean");
    }

    #[test]
    fn murmur_differs_from_identity() {
        assert_ne!(MurmurHash.hash(1), 1);
        assert_eq!(IdentityHash.hash(12345), 12345);
    }
}
