//! Simple (non-partitioned) hash-join — the baseline of Figure 13.
//!
//! §3.2: "Hash-join has long been the preferred main-memory join algorithm.
//! … If this inner relation plus the hash table does not fit in any memory
//! cache, a performance problem occurs, due to the random access pattern."
//! This is exactly that algorithm: one bucket-chained table over the entire
//! inner relation, probed sequentially by the outer.

use memsim::{MemTracker, Work};

use super::hash::KeyHash;
use super::hashtable::{ChainedTable, DEFAULT_TUPLES_PER_BUCKET};
use super::{Bun, OidPair};

/// Join `left ⋈ right` with a single hash table built on `right`.
pub fn simple_hash_join<M: MemTracker, H: KeyHash>(
    trk: &mut M,
    h: H,
    left: &[Bun],
    right: &[Bun],
) -> Vec<OidPair> {
    // One table for the whole join — one w'_h charge.
    ChainedTable::charge_setup(trk);
    let table = ChainedTable::build(trk, h, right, 0, DEFAULT_TUPLES_PER_BUCKET);
    let mut out: Vec<OidPair> = Vec::with_capacity(left.len());
    for lt in left {
        if M::ENABLED {
            trk.read(lt as *const Bun as usize, 8);
            trk.work(Work::HashTuple, 1);
        }
        table.probe(trk, h, right, lt.tail, |trk, pos| {
            let pair = OidPair::new(lt.head, right[pos as usize].head);
            if M::ENABLED {
                let addr = out.as_ptr() as usize + out.len() * 8;
                trk.write(addr, 8);
            }
            out.push(pair);
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join::hash::{FibHash, MurmurHash};
    use crate::join::nljoin::nested_loop_join;
    use crate::join::phash::partitioned_hash_join;
    use crate::join::sort_pairs;
    use memsim::{profiles, NullTracker, SimTracker};

    #[test]
    fn matches_oracle() {
        let l: Vec<Bun> = (0..300).map(|i| Bun::new(i, i % 40)).collect();
        let r: Vec<Bun> = (0..80).map(|i| Bun::new(i, i % 50)).collect();
        let got = sort_pairs(simple_hash_join(&mut NullTracker, FibHash, &l, &r));
        let expect = sort_pairs(nested_loop_join(&mut NullTracker, &l, &r));
        assert_eq!(got, expect);
    }

    #[test]
    fn agrees_with_partitioned_variant() {
        let l: Vec<Bun> = (0..2000u32).map(|i| Bun::new(i, i.wrapping_mul(7919) % 3000)).collect();
        let r: Vec<Bun> =
            (0..2000u32).map(|i| Bun::new(i, i.wrapping_mul(104729) % 3000)).collect();
        let a = sort_pairs(simple_hash_join(&mut NullTracker, MurmurHash, &l, &r));
        let b = sort_pairs(partitioned_hash_join(&mut NullTracker, MurmurHash, l, r, 5, &[5]));
        assert_eq!(a, b);
    }

    #[test]
    fn empty_sides() {
        let r: Vec<Bun> = (0..5).map(|i| Bun::new(i, i)).collect();
        assert!(simple_hash_join(&mut NullTracker, FibHash, &[], &r).is_empty());
        assert!(simple_hash_join(&mut NullTracker, FibHash, &r, &[]).is_empty());
    }

    #[test]
    fn random_access_pattern_trashes_cache_on_large_inputs() {
        // §3.2's complaint quantified: when the inner relation + table
        // exceed L2, probes miss all the way to memory. The partitioned
        // variant on the same data stalls far less in its join phase *and*
        // in total.
        let n = 1 << 17; // 1 MiB per side of BUNs + table > L1, ~fits L2 but
                         // random probes still miss L1 constantly.
        let mut keys: Vec<u32> = (0..n as u32).collect();
        // Deterministic shuffle.
        let mut s = 99u64;
        for i in (1..keys.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            keys.swap(i, (s % (i as u64 + 1)) as usize);
        }
        let l: Vec<Bun> = keys.iter().enumerate().map(|(i, &k)| Bun::new(i as u32, k)).collect();
        let r: Vec<Bun> = (0..n as u32).map(|i| Bun::new(i, i)).collect();

        let mut ts = SimTracker::for_machine(profiles::origin2000());
        let simple = simple_hash_join(&mut ts, FibHash, &l, &r);
        let simple_ms = ts.counters().elapsed_ms();

        let mut tp = SimTracker::for_machine(profiles::origin2000());
        let part = partitioned_hash_join(&mut tp, FibHash, l, r, 8, &[8]);
        let part_ms = tp.counters().elapsed_ms();

        assert_eq!(simple.len(), part.len());
        assert!(part_ms < simple_ms, "partitioned {part_ms} ms should beat simple {simple_ms} ms");
    }
}
