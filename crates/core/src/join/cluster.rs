//! The multi-pass radix-cluster algorithm (§3.3.1, Figure 6).
//!
//! `radix_cluster` splits a relation into `H = 2^B` clusters on the lower
//! `B` bits of the key hash, in `P` passes of `B_p` bits each
//! (`Σ B_p = B`), starting with the leftmost bits of the radix window. The
//! point (§3.4.2): each pass concurrently fills only `H_p = 2^{B_p}`
//! cluster buffers, so keeping `H_p` below the number of TLB entries (and
//! cache lines) avoids the miss explosion that a straightforward one-pass
//! cluster ([`straightforward_cluster`], Figure 5) suffers for large `H`.
//!
//! Each pass runs the textbook two-phase histogram/scatter: count cluster
//! sizes, prefix-sum into start offsets, then scatter tuples. Both phases
//! read the input sequentially; the scatter writes `H_p` sequential streams.
//!
//! The output is radix-*ordered*: cluster `r` occupies
//! `bounds[r]..bounds[r+1]` and all its tuples share radix value `r`. The
//! paper exploits exactly this to pair clusters by merging on radix values
//! without any extra boundary structure ([`cluster_bounds_from_data`]
//! demonstrates that the bounds are recomputable from the data alone).

use memsim::{MemTracker, Work};

use super::hash::{radix_of, KeyHash};
use super::Bun;

/// A radix-clustered relation: the permuted tuples plus cluster boundaries.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusteredRel {
    /// Tuples in radix order.
    pub data: Vec<Bun>,
    /// Number of radix bits `B`.
    pub bits: u32,
    /// `2^B + 1` offsets; cluster `c` is `data[bounds[c]..bounds[c+1]]`.
    pub bounds: Vec<u32>,
}

impl ClusteredRel {
    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the relation has no tuples.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of clusters (`2^B`).
    pub fn num_clusters(&self) -> usize {
        self.bounds.len() - 1
    }

    /// The tuples of cluster `c`.
    #[inline]
    pub fn cluster(&self, c: usize) -> &[Bun] {
        &self.data[self.bounds[c] as usize..self.bounds[c + 1] as usize]
    }

    /// Iterate over `(radix_value, tuples)` for non-empty clusters.
    pub fn iter_nonempty(&self) -> impl Iterator<Item = (usize, &[Bun])> + '_ {
        (0..self.num_clusters()).filter_map(|c| {
            let s = self.cluster(c);
            (!s.is_empty()).then_some((c, s))
        })
    }

    /// Check the radix-order invariant (tests / debugging).
    pub fn verify<H: KeyHash>(&self, h: H) -> bool {
        if self.bounds.len() != (1usize << self.bits) + 1 {
            return false;
        }
        if *self.bounds.last().unwrap() as usize != self.data.len() || self.bounds[0] != 0 {
            return false;
        }
        (0..self.num_clusters()).all(|c| {
            self.cluster(c).iter().all(|t| radix_of(h.hash(t.tail), self.bits) == c as u32)
        })
    }
}

/// Validate pass layout: every pass non-zero, summing to `bits`.
fn check_passes(bits: u32, pass_bits: &[u32]) {
    if bits == 0 {
        assert!(pass_bits.is_empty(), "B = 0 admits no clustering passes");
        return;
    }
    assert!(!pass_bits.is_empty(), "B > 0 requires at least one pass");
    assert!(pass_bits.iter().all(|&b| b > 0), "zero-bit pass is useless");
    let total: u32 = pass_bits.iter().sum();
    assert_eq!(total, bits, "pass bits {pass_bits:?} must sum to B = {bits}");
}

/// Multi-pass radix-cluster. See module docs.
///
/// `pass_bits[p]` is `B_p`; use [`crate::strategy::plan_passes`] for the
/// paper's TLB-limited even split. With `pass_bits = [bits]` this *is* the
/// straightforward algorithm of Figure 5.
///
/// # Panics
/// Panics if the pass layout is inconsistent (passes must be non-zero and
/// sum to `bits`) or if
/// `bits > 28` (guarding the `2^B + 1` bounds allocation).
pub fn radix_cluster<M: MemTracker, H: KeyHash>(
    trk: &mut M,
    h: H,
    input: Vec<Bun>,
    bits: u32,
    pass_bits: &[u32],
) -> ClusteredRel {
    check_passes(bits, pass_bits);
    assert!(bits <= 28, "B = {bits} would allocate 2^{bits} cluster bounds");
    let n = input.len();
    assert!(n <= u32::MAX as usize, "cardinality exceeds u32 positions");
    if bits == 0 {
        return ClusteredRel { data: input, bits, bounds: vec![0, n as u32] };
    }

    let mut src = input;
    let mut dst = vec![Bun::default(); n];
    let mut cur_bounds: Vec<u32> = vec![0, n as u32];
    let mut remaining = bits;

    for &bp in pass_bits {
        remaining -= bp;
        let shift = remaining;
        let hp = 1usize << bp;
        let mask = (hp - 1) as u32;
        let ncl = cur_bounds.len() - 1;

        // Phase 1: per-cluster histograms over this pass's bits.
        let mut hist = vec![0u32; ncl * hp];
        {
            let hist_base = hist.as_ptr() as usize;
            for c in 0..ncl {
                let lo = cur_bounds[c] as usize;
                let hi = cur_bounds[c + 1] as usize;
                let row = c * hp;
                for t in &src[lo..hi] {
                    let idx = row + ((h.hash(t.tail) >> shift) & mask) as usize;
                    if M::ENABLED {
                        trk.read(t as *const Bun as usize, 8);
                        trk.write(hist_base + idx * 4, 4);
                    }
                    hist[idx] += 1;
                }
            }
        }

        // Prefix sums: turn counts into absolute start offsets; collect the
        // boundaries of the clustering this pass produces.
        let mut new_bounds = Vec::with_capacity(ncl * hp + 1);
        let mut offsets = hist;
        let mut acc = 0u32;
        for slot in offsets.iter_mut() {
            let cnt = *slot;
            *slot = acc;
            new_bounds.push(acc);
            acc += cnt;
        }
        new_bounds.push(acc);
        debug_assert_eq!(acc as usize, n);

        // Phase 2: scatter. Each source cluster fans out into its own hp
        // sub-ranges of dst; the concurrently written regions are hp (plus
        // the sequential read stream), which is what the TLB analysis of
        // §3.4.2 is about.
        {
            let off_base = offsets.as_ptr() as usize;
            let dst_base = dst.as_ptr() as usize;
            for c in 0..ncl {
                let lo = cur_bounds[c] as usize;
                let hi = cur_bounds[c + 1] as usize;
                let row = c * hp;
                for t in &src[lo..hi] {
                    let idx = row + ((h.hash(t.tail) >> shift) & mask) as usize;
                    let pos = offsets[idx] as usize;
                    offsets[idx] += 1;
                    dst[pos] = *t;
                    if M::ENABLED {
                        trk.read(t as *const Bun as usize, 8);
                        trk.write(off_base + idx * 4, 4);
                        trk.write(dst_base + pos * 8, 8);
                        trk.work(Work::ClusterTuple, 1);
                    }
                }
            }
        }

        std::mem::swap(&mut src, &mut dst);
        cur_bounds = new_bounds;
    }

    ClusteredRel { data: src, bits, bounds: cur_bounds }
}

/// The straightforward one-pass clustering of Figure 5 — the \[SKN94\]
/// baseline the radix-cluster improves on.
pub fn straightforward_cluster<M: MemTracker, H: KeyHash>(
    trk: &mut M,
    h: H,
    input: Vec<Bun>,
    bits: u32,
) -> ClusteredRel {
    if bits == 0 {
        radix_cluster(trk, h, input, 0, &[])
    } else {
        radix_cluster(trk, h, input, bits, &[bits])
    }
}

/// Recompute cluster boundaries by scanning radix-ordered data — the §3.3.1
/// observation that "an algorithm scanning a radix-clustered relation can
/// determine the cluster boundaries by looking at these lower B radix-bits",
/// so no boundary structure ever needs to be stored.
///
/// # Panics
/// Panics (in debug) if `data` is not radix-ordered on `bits` bits.
pub fn cluster_bounds_from_data<H: KeyHash>(data: &[Bun], h: H, bits: u32) -> Vec<u32> {
    let ncl = 1usize << bits;
    let mut bounds = vec![0u32; ncl + 1];
    let mut prev = 0u32;
    for (i, t) in data.iter().enumerate() {
        let r = radix_of(h.hash(t.tail), bits);
        debug_assert!(r >= prev, "data not radix-ordered at position {i}");
        // Close all clusters in (prev, r].
        for c in prev..r {
            bounds[c as usize + 1] = i as u32;
        }
        if r > prev {
            prev = r;
        }
    }
    for c in prev as usize..ncl {
        bounds[c + 1] = data.len() as u32;
    }
    bounds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join::hash::{FibHash, IdentityHash, MurmurHash};
    use memsim::{profiles, NullTracker, SimTracker};

    fn keys(n: usize, seed: u64) -> Vec<Bun> {
        // Deterministic pseudo-random unique-ish keys (splitmix64 stream).
        let mut state = seed;
        (0..n)
            .map(|i| {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                Bun::new(i as u32, (z ^ (z >> 31)) as u32)
            })
            .collect()
    }

    fn multiset(v: &[Bun]) -> Vec<Bun> {
        let mut s = v.to_vec();
        s.sort_unstable_by_key(|b| (b.tail, b.head));
        s
    }

    #[test]
    fn single_pass_produces_radix_order() {
        let input = keys(10_000, 1);
        let c = radix_cluster(&mut NullTracker, FibHash, input.clone(), 6, &[6]);
        assert!(c.verify(FibHash));
        assert_eq!(multiset(&c.data), multiset(&input), "clustering is a permutation");
        assert_eq!(c.num_clusters(), 64);
    }

    #[test]
    fn multi_pass_equals_single_pass() {
        let input = keys(20_000, 2);
        let one = radix_cluster(&mut NullTracker, FibHash, input.clone(), 9, &[9]);
        let two = radix_cluster(&mut NullTracker, FibHash, input.clone(), 9, &[5, 4]);
        let three = radix_cluster(&mut NullTracker, FibHash, input, 9, &[3, 3, 3]);
        // Same bounds always; same data if the scatter is stable (it is).
        assert_eq!(one.bounds, two.bounds);
        assert_eq!(one.bounds, three.bounds);
        assert_eq!(one.data, two.data);
        assert_eq!(one.data, three.data);
    }

    #[test]
    fn bounds_match_scan_derived_bounds() {
        let input = keys(5_000, 3);
        for bits in [0u32, 1, 4, 8] {
            let passes: Vec<u32> = if bits == 0 { vec![] } else { vec![bits] };
            let c = radix_cluster(&mut NullTracker, MurmurHash, input.clone(), bits, &passes);
            if bits > 0 {
                assert_eq!(
                    c.bounds,
                    cluster_bounds_from_data(&c.data, MurmurHash, bits),
                    "bits={bits}"
                );
            }
        }
    }

    #[test]
    fn zero_bits_is_identity() {
        let input = keys(100, 4);
        let c = radix_cluster(&mut NullTracker, FibHash, input.clone(), 0, &[]);
        assert_eq!(c.data, input);
        assert_eq!(c.bounds, vec![0, 100]);
        assert_eq!(c.num_clusters(), 1);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let c = radix_cluster(&mut NullTracker, FibHash, vec![], 4, &[4]);
        assert!(c.is_empty());
        assert_eq!(c.num_clusters(), 16);
        assert!(c.verify(FibHash));

        let c = radix_cluster(&mut NullTracker, FibHash, vec![Bun::new(0, 42)], 4, &[2, 2]);
        assert_eq!(c.len(), 1);
        assert!(c.verify(FibHash));
    }

    #[test]
    fn duplicate_keys_stay_together_and_stable() {
        let input: Vec<Bun> = (0..1000).map(|i| Bun::new(i, i % 7)).collect();
        let c = radix_cluster(&mut NullTracker, IdentityHash, input, 3, &[2, 1]);
        assert!(c.verify(IdentityHash));
        // Stability: within a cluster, OIDs of equal keys remain ascending.
        for (_, cl) in c.iter_nonempty() {
            for w in cl.windows(2) {
                if w[0].tail == w[1].tail {
                    assert!(w[0].head < w[1].head, "scatter must be stable");
                }
            }
        }
    }

    #[test]
    fn identity_hash_low_bits_are_cluster_values() {
        let input: Vec<Bun> = (0..64).map(|i| Bun::new(i, i)).collect();
        let c = radix_cluster(&mut NullTracker, IdentityHash, input, 2, &[2]);
        // Cluster r must contain keys ≡ r (mod 4).
        for (r, cl) in c.iter_nonempty() {
            assert!(cl.iter().all(|t| (t.tail % 4) as usize == r));
            assert_eq!(cl.len(), 16);
        }
    }

    #[test]
    fn straightforward_is_one_pass() {
        let input = keys(3_000, 5);
        let a = straightforward_cluster(&mut NullTracker, FibHash, input.clone(), 5);
        let b = radix_cluster(&mut NullTracker, FibHash, input, 5, &[5]);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "must sum to")]
    fn inconsistent_pass_bits_rejected() {
        radix_cluster(&mut NullTracker, FibHash, vec![], 6, &[3, 2]);
    }

    #[test]
    #[should_panic(expected = "at least one pass")]
    fn missing_passes_rejected() {
        radix_cluster(&mut NullTracker, FibHash, vec![], 6, &[]);
    }

    #[test]
    fn two_pass_cluster_has_fewer_tlb_misses_than_one_pass_at_high_bits() {
        // The paper's Figure 9 effect, scaled down: TLB trashing needs the
        // concurrently-written cluster regions to live on more pages than
        // the TLB has entries. At paper scale that takes 8M tuples; here we
        // shrink the page to 1 KiB so 64k tuples (512 KiB of output = 512
        // pages) exhibit it. One pass on 10 bits writes 1024 regions
        // round-robin over those pages (trash); two passes of 5 bits keep 32
        // concurrent regions < 64 TLB entries.
        let mut machine = profiles::origin2000();
        machine.tlb = memsim::TlbConfig::new(64, 1024);
        let input = keys(1 << 16, 6);
        let bits = 10;

        let mut t1 = SimTracker::for_machine(machine);
        radix_cluster(&mut t1, FibHash, input.clone(), bits, &[bits]);
        let one = t1.counters();

        let mut t2 = SimTracker::for_machine(machine);
        radix_cluster(&mut t2, FibHash, input, bits, &[5, 5]);
        let two = t2.counters();

        assert!(
            one.tlb_misses > 4 * two.tlb_misses,
            "1-pass TLB {} should dwarf 2-pass TLB {}",
            one.tlb_misses,
            two.tlb_misses
        );
        // And the elapsed-time ranking flips accordingly.
        assert!(
            one.elapsed_ms() > two.elapsed_ms(),
            "1-pass {} ms vs 2-pass {} ms",
            one.elapsed_ms(),
            two.elapsed_ms()
        );
    }

    #[test]
    fn low_bits_prefer_one_pass() {
        // Below the TLB limit (2^6 = 64 clusters), one pass must win —
        // the left half of Figure 9.
        let input = keys(1 << 16, 7);
        let bits = 4;
        let mut t1 = SimTracker::for_machine(profiles::origin2000());
        radix_cluster(&mut t1, FibHash, input.clone(), bits, &[bits]);
        let mut t2 = SimTracker::for_machine(profiles::origin2000());
        radix_cluster(&mut t2, FibHash, input, bits, &[2, 2]);
        assert!(t1.counters().elapsed_ms() < t2.counters().elapsed_ms());
    }
}
