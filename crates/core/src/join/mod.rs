//! The radix family of equi-join algorithms (§3.3) and their baselines.
//!
//! All algorithms operate on arrays of [`Bun`]s — the paper's 8-byte
//! `\[OID, int\]` records (§3.4.1: "binary relations (BATs) of 8 bytes wide
//! tuples") — joining on the `tail` value and producing a *join index*
//! \[Val87\]: a list of `\[OID, OID\]` pairs ([`OidPair`]).
//!
//! Every kernel is generic over [`memsim::MemTracker`]; pass
//! [`memsim::NullTracker`] for native speed or [`memsim::SimTracker`] to
//! replay the algorithm's access pattern through the simulated Origin2000.
//!
//! | paper name (Fig. 8/13)   | function |
//! |--------------------------|----------|
//! | radix-cluster            | [`radix_cluster`] |
//! | partitioned hash-join    | [`partitioned_hash_join`] |
//! | radix-join               | [`radix_join`] |
//! | simple hash              | [`simple_hash_join`] |
//! | sort-merge               | [`sort_merge_join`] |
//! | (correctness oracle)     | [`nested_loop_join`] |

pub mod cluster;
pub mod hash;
pub mod hashtable;
pub mod nljoin;
pub mod parallel;
pub mod phash;
pub mod rjoin;
pub mod shash;
pub mod smjoin;

pub use cluster::{cluster_bounds_from_data, radix_cluster, straightforward_cluster, ClusteredRel};
pub use hash::{radix_of, FibHash, IdentityHash, KeyHash, MurmurHash};
pub use hashtable::ChainedTable;
pub use nljoin::nested_loop_join;
pub use parallel::{
    par_join_clustered, par_join_clustered_sharded, par_partitioned_hash_join,
    par_partitioned_hash_join_sharded, par_radix_cluster, par_radix_join, par_radix_join_clustered,
    par_radix_join_clustered_sharded, par_radix_join_sharded,
};
pub use phash::{join_clustered, partitioned_hash_join};
pub use rjoin::{radix_join, radix_join_clustered};
pub use shash::simple_hash_join;
pub use smjoin::{
    merge_join_sorted, merge_sort_by_tail, radix_sort_by_tail, sort_merge_join, sort_merge_join_cmp,
};

use crate::storage::Oid;

/// One 8-byte BUN: `\[OID, value\]`, the unit of all join experiments.
#[repr(C)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct Bun {
    /// The tuple's object identifier.
    pub head: Oid,
    /// The join attribute value.
    pub tail: u32,
}

impl Bun {
    /// Construct a BUN.
    #[inline]
    pub const fn new(head: Oid, tail: u32) -> Self {
        Self { head, tail }
    }
}

/// One entry of a join index: the OIDs of a matching tuple pair.
#[repr(C)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OidPair {
    /// OID from the left (outer) relation.
    pub left: Oid,
    /// OID from the right (inner) relation.
    pub right: Oid,
}

impl OidPair {
    /// Construct a pair.
    #[inline]
    pub const fn new(left: Oid, right: Oid) -> Self {
        Self { left, right }
    }
}

/// Canonicalize a join result for comparison in tests: sorted by (left,
/// right).
pub fn sort_pairs(mut pairs: Vec<OidPair>) -> Vec<OidPair> {
    pairs.sort_unstable();
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bun_is_exactly_8_bytes() {
        // §3.4.1: "BATs of 8 bytes wide tuples" — the layout claim the whole
        // cost model rests on.
        assert_eq!(std::mem::size_of::<Bun>(), 8);
        assert_eq!(std::mem::align_of::<Bun>(), 4);
    }

    #[test]
    fn oid_pair_is_exactly_8_bytes() {
        assert_eq!(std::mem::size_of::<OidPair>(), 8);
    }

    #[test]
    fn sort_pairs_canonicalizes() {
        let p = vec![OidPair::new(2, 1), OidPair::new(1, 9), OidPair::new(1, 2)];
        let s = sort_pairs(p);
        assert_eq!(s, vec![OidPair::new(1, 2), OidPair::new(1, 9), OidPair::new(2, 1)]);
    }
}
