//! The bucket-chained hash table used by both hash-join variants.
//!
//! Layout follows the classic main-memory design the paper assumes: an array
//! of bucket heads plus a `next` chain array indexed by tuple position — no
//! per-entry allocation, no std `HashMap`. The paper sizes buckets for a
//! chain length of ~4 ("with a bucket-chain length of 4, up to 8 memory
//! accesses per tuple are necessary", §3.4.3); [`DEFAULT_TUPLES_PER_BUCKET`]
//! mirrors that.
//!
//! **Radix-bit shifting.** Inside a cluster of a `B`-bit radix-clustered
//! relation, *every* key shares its lower `B` hash bits — using them for
//! bucket selection would chain the entire cluster into one bucket. The
//! bucket index therefore uses the bits **above** the radix bits
//! (`hash >> radix_bits`). This detail is what makes partitioned hash-join
//! correct *and* fast, and it is ablated in the bench suite.

use memsim::{MemTracker, Work};

use super::hash::KeyHash;
use super::Bun;

/// Sentinel for "no entry".
const EMPTY: u32 = u32::MAX;

/// Bucket sizing matching the paper's chain length of ~4.
pub const DEFAULT_TUPLES_PER_BUCKET: usize = 4;

/// A bucket-chained hash table over a slice of [`Bun`]s.
///
/// The table borrows nothing: it stores positions into the build slice,
/// which callers pass again when probing (keeping the hot arrays minimal,
/// 4 bytes per tuple — the `12 bytes per tuple` the paper's strategy
/// formulas use are these 4 plus the 8-byte BUN).
#[derive(Debug, Clone)]
pub struct ChainedTable {
    mask: u32,
    shift: u32,
    heads: Vec<u32>,
    next: Vec<u32>,
}

impl ChainedTable {
    /// Build over `tuples`, skipping `radix_bits` low hash bits for bucket
    /// selection. `tuples_per_bucket` controls table size (power-of-two
    /// bucket count ≈ `len / tuples_per_bucket`).
    pub fn build<M: MemTracker, H: KeyHash>(
        trk: &mut M,
        h: H,
        tuples: &[Bun],
        radix_bits: u32,
        tuples_per_bucket: usize,
    ) -> Self {
        assert!(tuples_per_bucket > 0, "tuples_per_bucket must be positive");
        let nbuckets = (tuples.len() / tuples_per_bucket).next_power_of_two().max(1);
        let mut heads = vec![EMPTY; nbuckets];
        let mut next = vec![EMPTY; tuples.len()];
        let mask = (nbuckets - 1) as u32;
        let heads_base = heads.as_ptr() as usize;
        let next_base = next.as_ptr() as usize;
        for (i, t) in tuples.iter().enumerate() {
            let b = ((h.hash(t.tail) >> radix_bits) & mask) as usize;
            if M::ENABLED {
                trk.read(t as *const Bun as usize, 8);
                trk.write(heads_base + b * 4, 4);
                trk.write(next_base + i * 4, 4);
            }
            next[i] = heads[b];
            heads[b] = i as u32;
        }
        Self { mask, shift: radix_bits, heads, next }
    }

    /// Number of buckets.
    pub fn num_buckets(&self) -> usize {
        self.heads.len()
    }

    /// Walk the chain for `key`, invoking `on_match(trk, position)` for
    /// every build tuple whose tail equals `key`. `tuples` must be the build
    /// slice. The tracker is threaded through to the callback so result
    /// construction can be instrumented too.
    #[inline]
    pub fn probe<M: MemTracker, H: KeyHash>(
        &self,
        trk: &mut M,
        h: H,
        tuples: &[Bun],
        key: u32,
        mut on_match: impl FnMut(&mut M, u32),
    ) {
        let b = ((h.hash(key) >> self.shift) & self.mask) as usize;
        if M::ENABLED {
            trk.read(self.heads.as_ptr() as usize + b * 4, 4);
        }
        let mut pos = self.heads[b];
        while pos != EMPTY {
            let t = &tuples[pos as usize];
            if M::ENABLED {
                trk.read(t as *const Bun as usize, 8);
                trk.read(self.next.as_ptr() as usize + pos as usize * 4, 4);
            }
            if t.tail == key {
                on_match(trk, pos);
            }
            pos = self.next[pos as usize];
        }
    }

    /// Chain length of the bucket `key` maps to (diagnostics/tests).
    pub fn chain_len<H: KeyHash>(&self, h: H, key: u32) -> usize {
        let b = ((h.hash(key) >> self.shift) & self.mask) as usize;
        let mut n = 0;
        let mut pos = self.heads[b];
        while pos != EMPTY {
            n += 1;
            pos = self.next[pos as usize];
        }
        n
    }

    /// Distribution of chain lengths over all buckets (diagnostics/tests).
    pub fn chain_histogram(&self) -> Vec<usize> {
        let mut lens = Vec::with_capacity(self.heads.len());
        for &head in &self.heads {
            let mut n = 0;
            let mut pos = head;
            while pos != EMPTY {
                n += 1;
                pos = self.next[pos as usize];
            }
            lens.push(n);
        }
        lens
    }

    /// Approximate heap footprint in bytes (heads + chain array) — the
    /// "+4 bytes per tuple" of the paper's 12-byte-per-tuple rule.
    pub fn footprint_bytes(&self) -> usize {
        4 * (self.heads.len() + self.next.len())
    }

    /// Charge the per-cluster table setup/teardown cost (`w'_h`). Kept
    /// explicit so callers control when a "cluster" boundary occurs.
    #[inline]
    pub fn charge_setup<M: MemTracker>(trk: &mut M) {
        trk.work(Work::HashClusterSetup, 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join::hash::{FibHash, IdentityHash};
    use memsim::NullTracker;

    fn tuples(keys: &[u32]) -> Vec<Bun> {
        keys.iter().enumerate().map(|(i, &k)| Bun::new(i as u32, k)).collect()
    }

    fn probe_all(t: &ChainedTable, data: &[Bun], key: u32) -> Vec<u32> {
        let mut hits = vec![];
        t.probe(&mut NullTracker, FibHash, data, key, |_, p| hits.push(p));
        hits.sort_unstable();
        hits
    }

    #[test]
    fn finds_all_and_only_matches() {
        let data = tuples(&[5, 9, 5, 7, 5, 1]);
        let t = ChainedTable::build(&mut NullTracker, FibHash, &data, 0, 4);
        assert_eq!(probe_all(&t, &data, 5), vec![0, 2, 4]);
        assert_eq!(probe_all(&t, &data, 7), vec![3]);
        assert!(probe_all(&t, &data, 42).is_empty());
    }

    #[test]
    fn empty_build_side() {
        let data: Vec<Bun> = vec![];
        let t = ChainedTable::build(&mut NullTracker, FibHash, &data, 0, 4);
        assert_eq!(t.num_buckets(), 1);
        assert!(probe_all(&t, &data, 1).is_empty());
    }

    #[test]
    fn bucket_count_scales_with_input() {
        let data = tuples(&(0..1024).collect::<Vec<_>>());
        let t = ChainedTable::build(&mut NullTracker, FibHash, &data, 0, 4);
        assert_eq!(t.num_buckets(), 256);
        let t1 = ChainedTable::build(&mut NullTracker, FibHash, &data, 0, 1);
        assert_eq!(t1.num_buckets(), 1024);
    }

    #[test]
    fn radix_bits_must_be_skipped_inside_clusters() {
        // All keys share their low 6 bits (same radix cluster). Without the
        // shift they all chain into one bucket; with it they spread.
        let keys: Vec<u32> = (0..256u32).map(|i| (i << 6) | 0x2A).collect();
        let data = tuples(&keys);

        let bad = ChainedTable::build(&mut NullTracker, IdentityHash, &data, 0, 4);
        let bad_max = bad.chain_histogram().into_iter().max().unwrap();
        assert_eq!(bad_max, 256, "low radix bits put everything in one chain");

        let good = ChainedTable::build(&mut NullTracker, IdentityHash, &data, 6, 4);
        let good_max = good.chain_histogram().into_iter().max().unwrap();
        assert!(good_max <= 8, "shifted buckets stay short, got {good_max}");
    }

    #[test]
    fn chain_histogram_sums_to_len() {
        let data = tuples(&(0..100).map(|i| i * 3).collect::<Vec<_>>());
        let t = ChainedTable::build(&mut NullTracker, FibHash, &data, 0, 4);
        assert_eq!(t.chain_histogram().iter().sum::<usize>(), 100);
    }

    #[test]
    fn footprint_matches_12_bytes_per_tuple_rule() {
        // bucket count = len/4 ⇒ heads ≈ len ⇒ heads+next ≈ 4+1 bytes/tuple?
        // With tuples_per_bucket=4: heads = len/4 u32s (1 B/tuple) + next =
        // len u32s (4 B/tuple) ⇒ table ≈ 5 B/tuple; +8 B BUN ≈ 13 B, the
        // paper rounds to 12. Assert the same ballpark.
        let data = tuples(&(0..4096).collect::<Vec<_>>());
        let t = ChainedTable::build(&mut NullTracker, FibHash, &data, 0, 4);
        let per_tuple = (t.footprint_bytes() + data.len() * 8) as f64 / data.len() as f64;
        assert!((11.0..=14.0).contains(&per_tuple), "bytes/tuple {per_tuple}");
    }
}
