//! Partitioned hash-join (§3.3, Figure 8): radix-cluster both relations on
//! `B` bits, then bucket-chained hash-join each pair of matching clusters.
//!
//! With `B` chosen so that the inner cluster plus its hash table fits a
//! cache level (the `phash L2`/`phash TLB`/`phash L1` strategies of §3.4.4),
//! the random access of the hash lookup stays within that level and the
//! join runs at CPU speed — the \[SKN94\] idea, made scalable by the
//! multi-pass radix-cluster.

use memsim::{MemTracker, Work};

use super::cluster::{radix_cluster, ClusteredRel};
use super::hash::KeyHash;
use super::hashtable::{ChainedTable, DEFAULT_TUPLES_PER_BUCKET};
use super::{Bun, OidPair};

/// Join two already-clustered relations (the join phase in isolation —
/// what Figure 11 measures). Builds the hash table on the *right* cluster
/// and probes with the left, pairing clusters by radix value; empty pairs
/// are skipped, which is the "merge step on the radix-bits" of §3.3.1.
///
/// # Panics
/// Panics if the two relations were clustered on different bit counts.
pub fn join_clustered<M: MemTracker, H: KeyHash>(
    trk: &mut M,
    h: H,
    left: &ClusteredRel,
    right: &ClusteredRel,
) -> Vec<OidPair> {
    assert_eq!(left.bits, right.bits, "operands must share the radix bit count");
    let mut out: Vec<OidPair> = Vec::with_capacity(left.len());

    for c in 0..left.num_clusters() {
        let lc = left.cluster(c);
        let rc = right.cluster(c);
        if lc.is_empty() || rc.is_empty() {
            continue;
        }
        // Per-cluster table create/destroy — the w'_h · H term of T_h.
        ChainedTable::charge_setup(trk);
        let table = ChainedTable::build(trk, h, rc, right.bits, DEFAULT_TUPLES_PER_BUCKET);
        for lt in lc {
            if M::ENABLED {
                trk.read(lt as *const Bun as usize, 8);
                // w_h covers build + lookup + result per (outer) tuple.
                trk.work(Work::HashTuple, 1);
            }
            table.probe(trk, h, rc, lt.tail, |trk, pos| {
                let pair = OidPair::new(lt.head, rc[pos as usize].head);
                if M::ENABLED {
                    let addr = out.as_ptr() as usize + out.len() * 8;
                    trk.write(addr, 8);
                }
                out.push(pair);
            });
        }
    }
    out
}

/// The complete partitioned hash-join: cluster both inputs on `bits` radix
/// bits (in `pass_bits` passes), then [`join_clustered`].
///
/// Equivalent to Figure 8's `partitioned-hashjoin(L, R, H)`.
pub fn partitioned_hash_join<M: MemTracker, H: KeyHash>(
    trk: &mut M,
    h: H,
    left: Vec<Bun>,
    right: Vec<Bun>,
    bits: u32,
    pass_bits: &[u32],
) -> Vec<OidPair> {
    let l = radix_cluster(trk, h, left, bits, pass_bits);
    let r = radix_cluster(trk, h, right, bits, pass_bits);
    join_clustered(trk, h, &l, &r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join::hash::{FibHash, IdentityHash, MurmurHash};
    use crate::join::nljoin::nested_loop_join;
    use crate::join::sort_pairs;
    use memsim::{profiles, NullTracker, SimTracker};

    fn shuffled_pair(n: usize, seed: u64) -> (Vec<Bun>, Vec<Bun>) {
        // L and R over the same key set, independently permuted: hit rate 1.
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut keys: Vec<u32> = (0..n as u32).map(|k| k.wrapping_mul(2654435761)).collect();
        for i in (1..keys.len()).rev() {
            keys.swap(i, (next() % (i as u64 + 1)) as usize);
        }
        let left: Vec<Bun> = keys.iter().enumerate().map(|(i, &k)| Bun::new(i as u32, k)).collect();
        for i in (1..keys.len()).rev() {
            keys.swap(i, (next() % (i as u64 + 1)) as usize);
        }
        let right: Vec<Bun> =
            keys.iter().enumerate().map(|(i, &k)| Bun::new(i as u32, k)).collect();
        (left, right)
    }

    #[test]
    fn matches_nested_loop_oracle() {
        let (l, r) = shuffled_pair(500, 11);
        let expect = sort_pairs(nested_loop_join(&mut NullTracker, &l, &r));
        for bits in [0u32, 1, 3, 5, 7] {
            let passes: Vec<u32> = if bits == 0 { vec![] } else { vec![bits] };
            let got = sort_pairs(partitioned_hash_join(
                &mut NullTracker,
                FibHash,
                l.clone(),
                r.clone(),
                bits,
                &passes,
            ));
            assert_eq!(got, expect, "bits={bits}");
        }
    }

    #[test]
    fn hit_rate_one_produces_exactly_n_pairs() {
        let (l, r) = shuffled_pair(4_096, 12);
        let pairs = partitioned_hash_join(&mut NullTracker, FibHash, l, r, 4, &[4]);
        assert_eq!(pairs.len(), 4_096);
    }

    #[test]
    fn duplicates_produce_cross_products() {
        let l = vec![Bun::new(0, 7), Bun::new(1, 7), Bun::new(2, 9)];
        let r = vec![Bun::new(10, 7), Bun::new(11, 7), Bun::new(12, 8)];
        let got = sort_pairs(partitioned_hash_join(
            &mut NullTracker,
            MurmurHash,
            l.clone(),
            r.clone(),
            2,
            &[2],
        ));
        let expect = sort_pairs(nested_loop_join(&mut NullTracker, &l, &r));
        assert_eq!(got, expect);
        assert_eq!(got.len(), 4);
    }

    #[test]
    fn disjoint_inputs_produce_empty_result() {
        let l: Vec<Bun> = (0..100).map(|i| Bun::new(i, i * 2)).collect();
        let r: Vec<Bun> = (0..100).map(|i| Bun::new(i, i * 2 + 1)).collect();
        let pairs = partitioned_hash_join(&mut NullTracker, FibHash, l, r, 3, &[3]);
        assert!(pairs.is_empty());
    }

    #[test]
    fn empty_operands() {
        let r: Vec<Bun> = (0..10).map(|i| Bun::new(i, i)).collect();
        assert!(
            partitioned_hash_join(&mut NullTracker, FibHash, vec![], r.clone(), 2, &[2]).is_empty()
        );
        assert!(partitioned_hash_join(&mut NullTracker, FibHash, r, vec![], 2, &[2]).is_empty());
    }

    #[test]
    fn asymmetric_cardinalities() {
        let l: Vec<Bun> = (0..1000).map(|i| Bun::new(i, i % 50)).collect();
        let r: Vec<Bun> = (0..50).map(|i| Bun::new(i, i)).collect();
        let got = sort_pairs(partitioned_hash_join(
            &mut NullTracker,
            FibHash,
            l.clone(),
            r.clone(),
            3,
            &[3],
        ));
        let expect = sort_pairs(nested_loop_join(&mut NullTracker, &l, &r));
        assert_eq!(got, expect);
        assert_eq!(got.len(), 1000);
    }

    #[test]
    #[should_panic(expected = "share the radix bit count")]
    fn mismatched_bits_rejected() {
        let l = radix_cluster(&mut NullTracker, FibHash, vec![Bun::new(0, 0)], 2, &[2]);
        let r = radix_cluster(&mut NullTracker, FibHash, vec![Bun::new(0, 0)], 3, &[3]);
        join_clustered(&mut NullTracker, FibHash, &l, &r);
    }

    #[test]
    fn identity_hash_also_correct() {
        let (l, r) = shuffled_pair(300, 13);
        let got = sort_pairs(partitioned_hash_join(
            &mut NullTracker,
            IdentityHash,
            l.clone(),
            r.clone(),
            4,
            &[2, 2],
        ));
        let expect = sort_pairs(nested_loop_join(&mut NullTracker, &l, &r));
        assert_eq!(got, expect);
    }

    #[test]
    fn clustering_improves_join_phase_locality() {
        // Fig. 11's mechanism at small scale: with clusters that fit L1,
        // the join phase takes fewer L2+mem stalls per tuple than the
        // unclustered (bits=0) case on an out-of-cache relation.
        let (l, r) = shuffled_pair(1 << 16, 14); // 512 KiB per side
        let m = profiles::origin2000();

        let join_stalls = |bits: u32, passes: &[u32]| {
            let mut t = SimTracker::for_machine(m);
            let lc = radix_cluster(&mut t, FibHash, l.clone(), bits, passes);
            let rc = radix_cluster(&mut t, FibHash, r.clone(), bits, passes);
            t.system_mut().reset_counters(); // isolate the join phase
            join_clustered(&mut t, FibHash, &lc, &rc);
            let c = t.counters();
            c.stall_mem_ns + c.stall_tlb_ns
        };

        let unclustered = join_stalls(0, &[]);
        let clustered = join_stalls(8, &[8]);
        assert!(
            clustered < unclustered / 2.0,
            "clustered join stalls {clustered} vs unclustered {unclustered}"
        );
    }
}
