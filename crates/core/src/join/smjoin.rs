//! Sort-merge join — the classical baseline of Figure 13.
//!
//! §3.2: "Merge-join is not a viable alternative as it requires sorting on
//! both relations first, which would cause random access over even a larger
//! memory region." The sorting phase here is an LSB radix-sort on the full
//! 32-bit key (\[Knu68\], which the paper cites for radix-sort) — each of its
//! four 8-bit passes is exactly a 256-way scatter, i.e. the same memory
//! access pattern as a straightforward 8-bit cluster pass, which is why
//! sort-merge loses: it runs four such passes over the *entire* relation.

use memsim::{MemTracker, Work};

use super::{Bun, OidPair};

/// Stable LSB radix-sort by `tail`, 4 passes of 8 bits, instrumented.
pub fn radix_sort_by_tail<M: MemTracker>(trk: &mut M, input: Vec<Bun>) -> Vec<Bun> {
    let n = input.len();
    let mut src = input;
    let mut dst = vec![Bun::default(); n];
    for pass in 0..4u32 {
        let shift = pass * 8;
        let mut hist = [0u32; 256];
        let hist_base = hist.as_ptr() as usize;
        for t in &src {
            let b = ((t.tail >> shift) & 0xFF) as usize;
            if M::ENABLED {
                trk.read(t as *const Bun as usize, 8);
                trk.write(hist_base + b * 4, 4);
            }
            hist[b] += 1;
        }
        let mut acc = 0u32;
        for slot in hist.iter_mut() {
            let c = *slot;
            *slot = acc;
            acc += c;
        }
        let dst_base = dst.as_ptr() as usize;
        for t in &src {
            let b = ((t.tail >> shift) & 0xFF) as usize;
            let pos = hist[b] as usize;
            hist[b] += 1;
            dst[pos] = *t;
            if M::ENABLED {
                trk.read(t as *const Bun as usize, 8);
                trk.write(hist_base + b * 4, 4);
                trk.write(dst_base + pos * 8, 8);
                trk.work(Work::SortTuple, 1);
            }
        }
        std::mem::swap(&mut src, &mut dst);
    }
    src
}

/// Merge two relations already sorted by `tail`, producing all matching
/// OID pairs (duplicate runs yield cross products).
pub fn merge_join_sorted<M: MemTracker>(trk: &mut M, left: &[Bun], right: &[Bun]) -> Vec<OidPair> {
    debug_assert!(left.windows(2).all(|w| w[0].tail <= w[1].tail), "left not sorted");
    debug_assert!(right.windows(2).all(|w| w[0].tail <= w[1].tail), "right not sorted");
    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < left.len() && j < right.len() {
        if M::ENABLED {
            trk.read(&left[i] as *const Bun as usize, 8);
            trk.read(&right[j] as *const Bun as usize, 8);
            trk.work(Work::MergeTuple, 1);
        }
        let (lv, rv) = (left[i].tail, right[j].tail);
        if lv < rv {
            i += 1;
        } else if lv > rv {
            j += 1;
        } else {
            // Cross product of the equal-key runs.
            let i_end = left[i..].iter().position(|t| t.tail != lv).map_or(left.len(), |k| i + k);
            let j_end = right[j..].iter().position(|t| t.tail != rv).map_or(right.len(), |k| j + k);
            for lt in &left[i..i_end] {
                for rt in &right[j..j_end] {
                    if M::ENABLED {
                        let addr = out.as_ptr() as usize + out.len() * 8;
                        trk.write(addr, 8);
                        trk.work(Work::MergeTuple, 1);
                    }
                    out.push(OidPair::new(lt.head, rt.head));
                }
            }
            i = i_end;
            j = j_end;
        }
    }
    out
}

/// Tracked top-down mergesort by `tail` — the *comparison-based* sorting
/// phase a 1999 system would have used (our default [`radix_sort_by_tail`]
/// is a stronger baseline; see EXPERIMENTS.md). Access pattern per level:
/// two sequential input runs, one sequential output — log2(n) full sweeps
/// instead of radix-sort's four.
pub fn merge_sort_by_tail<M: MemTracker>(trk: &mut M, input: Vec<Bun>) -> Vec<Bun> {
    let n = input.len();
    let mut src = input;
    let mut dst = vec![Bun::default(); n];
    let mut width = 1usize;
    while width < n {
        let dst_base = dst.as_ptr() as usize;
        let mut lo = 0usize;
        while lo < n {
            let mid = (lo + width).min(n);
            let hi = (lo + 2 * width).min(n);
            let (mut i, mut j, mut k) = (lo, mid, lo);
            while i < mid || j < hi {
                let take_left = if i >= mid {
                    false
                } else if j >= hi {
                    true
                } else {
                    if M::ENABLED {
                        trk.read(&src[i] as *const Bun as usize, 8);
                        trk.read(&src[j] as *const Bun as usize, 8);
                        trk.work(Work::MergeTuple, 1);
                    }
                    src[i].tail <= src[j].tail
                };
                let t = if take_left {
                    let t = src[i];
                    i += 1;
                    t
                } else {
                    let t = src[j];
                    j += 1;
                    t
                };
                dst[k] = t;
                if M::ENABLED {
                    trk.write(dst_base + k * 8, 8);
                    trk.work(Work::SortTuple, 1);
                }
                k += 1;
            }
            lo = hi;
        }
        std::mem::swap(&mut src, &mut dst);
        width *= 2;
    }
    src
}

/// Sort-merge join with the comparison-based sorting phase (the weaker,
/// more period-faithful baseline).
pub fn sort_merge_join_cmp<M: MemTracker>(
    trk: &mut M,
    left: Vec<Bun>,
    right: Vec<Bun>,
) -> Vec<OidPair> {
    let l = merge_sort_by_tail(trk, left);
    let r = merge_sort_by_tail(trk, right);
    merge_join_sorted(trk, &l, &r)
}

/// The complete sort-merge join: radix-sort both sides, then merge.
pub fn sort_merge_join<M: MemTracker>(
    trk: &mut M,
    left: Vec<Bun>,
    right: Vec<Bun>,
) -> Vec<OidPair> {
    let l = radix_sort_by_tail(trk, left);
    let r = radix_sort_by_tail(trk, right);
    merge_join_sorted(trk, &l, &r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join::nljoin::nested_loop_join;
    use crate::join::sort_pairs;
    use memsim::NullTracker;

    fn pseudo_random(n: u32, mul: u32) -> Vec<Bun> {
        (0..n).map(|i| Bun::new(i, i.wrapping_mul(mul))).collect()
    }

    #[test]
    fn radix_sort_sorts_and_permutes() {
        let input = pseudo_random(10_000, 2654435761);
        let sorted = radix_sort_by_tail(&mut NullTracker, input.clone());
        assert!(sorted.windows(2).all(|w| w[0].tail <= w[1].tail));
        let mut a: Vec<u32> = input.iter().map(|t| t.tail).collect();
        let mut b: Vec<u32> = sorted.iter().map(|t| t.tail).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn radix_sort_is_stable() {
        let input: Vec<Bun> = (0..1000).map(|i| Bun::new(i, i % 5)).collect();
        let sorted = radix_sort_by_tail(&mut NullTracker, input);
        for w in sorted.windows(2) {
            if w[0].tail == w[1].tail {
                assert!(w[0].head < w[1].head);
            }
        }
    }

    #[test]
    fn radix_sort_handles_extreme_keys() {
        let input = vec![
            Bun::new(0, u32::MAX),
            Bun::new(1, 0),
            Bun::new(2, 1 << 31),
            Bun::new(3, 0xFF),
            Bun::new(4, 0xFF00),
        ];
        let sorted = radix_sort_by_tail(&mut NullTracker, input);
        let keys: Vec<u32> = sorted.iter().map(|t| t.tail).collect();
        assert_eq!(keys, vec![0, 0xFF, 0xFF00, 1 << 31, u32::MAX]);
    }

    #[test]
    fn merge_matches_oracle_with_duplicates() {
        let l: Vec<Bun> = (0..200).map(|i| Bun::new(i, i % 13)).collect();
        let r: Vec<Bun> = (0..150).map(|i| Bun::new(i, i % 17)).collect();
        let got = sort_pairs(sort_merge_join(&mut NullTracker, l.clone(), r.clone()));
        let expect = sort_pairs(nested_loop_join(&mut NullTracker, &l, &r));
        assert_eq!(got, expect);
    }

    #[test]
    fn unique_keys_hit_rate_one() {
        let l = pseudo_random(5_000, 2654435761);
        let mut r = l.clone();
        r.reverse();
        let got = sort_merge_join(&mut NullTracker, l, r);
        assert_eq!(got.len(), 5_000);
    }

    #[test]
    fn empty_inputs() {
        assert!(sort_merge_join(&mut NullTracker, vec![], vec![Bun::new(0, 1)]).is_empty());
        assert!(sort_merge_join(&mut NullTracker, vec![Bun::new(0, 1)], vec![]).is_empty());
    }

    #[test]
    fn merge_sort_sorts_stably_and_permutes() {
        let input: Vec<Bun> = (0..4321).map(|i| Bun::new(i, i.wrapping_mul(40503) % 97)).collect();
        let sorted = merge_sort_by_tail(&mut NullTracker, input.clone());
        assert!(sorted.windows(2).all(|w| w[0].tail <= w[1].tail));
        for w in sorted.windows(2) {
            if w[0].tail == w[1].tail {
                assert!(w[0].head < w[1].head, "mergesort must be stable");
            }
        }
        let mut a: Vec<u32> = input.iter().map(|t| t.tail).collect();
        let mut b: Vec<u32> = sorted.iter().map(|t| t.tail).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn cmp_variant_matches_radix_variant() {
        let l = pseudo_random(3_000, 2654435761);
        let r = pseudo_random(2_000, 40503);
        let a = sort_pairs(sort_merge_join(&mut NullTracker, l.clone(), r.clone()));
        let b = sort_pairs(sort_merge_join_cmp(&mut NullTracker, l, r));
        assert_eq!(a, b);
    }

    #[test]
    fn cmp_sort_costs_more_memory_traffic_at_scale() {
        // log2(n) sweeps vs 4: the comparison sort must show more simulated
        // line accesses on a large input.
        use memsim::{profiles, SimTracker};
        let input = pseudo_random(1 << 16, 2654435761);
        let mut a = SimTracker::for_machine(profiles::origin2000());
        radix_sort_by_tail(&mut a, input.clone());
        let mut b = SimTracker::for_machine(profiles::origin2000());
        merge_sort_by_tail(&mut b, input);
        assert!(
            b.counters().line_accesses > a.counters().line_accesses,
            "mergesort {} vs radix-sort {}",
            b.counters().line_accesses,
            a.counters().line_accesses
        );
    }
}
