//! Parallel radix-cluster and partitioned hash-join — an extension beyond
//! the (single-threaded) paper, following the design its successors adopted:
//! radix partitioning parallelizes naturally because pass 1 can fan out
//! *chunks* of the input independently (per-chunk histograms, then disjoint
//! scatter regions), and every later pass and every cluster-pair join is
//! embarrassingly parallel.
//!
//! **Determinism:** the parallel functions produce *bit-identical* output to
//! their sequential counterparts. Pass 1 assigns scatter regions
//! thread-major (thread 0's tuples precede thread 1's within every cluster),
//! which reproduces the sequential stable order; later passes and the join
//! process whole clusters, which are independent. Tests assert equality.
//!
//! **Instrumentation:** parallel execution is native-only (no `MemTracker`):
//! simulating one shared memory hierarchy from multiple threads would
//! serialize on the simulator and model a machine the paper never measured.
//! Run the sequential kernels for simulation.

use std::sync::atomic::{AtomicUsize, Ordering};

use super::cluster::ClusteredRel;
use super::hash::{radix_of, KeyHash};
use super::hashtable::{ChainedTable, DEFAULT_TUPLES_PER_BUCKET};
use super::{Bun, OidPair};
use memsim::NullTracker;

/// Shared mutable pointer for provably disjoint writes across threads.
#[derive(Clone, Copy)]
struct SendPtr<T>(*mut T);
// SAFETY: every use partitions the target into disjoint index ranges, one
// per thread; no two threads write the same element and nobody reads until
// the scope joins.
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Write `v` at element offset `idx`.
    ///
    /// A by-value method (rather than field access) so closures capture the
    /// whole `Send` wrapper — RFC 2229 disjoint capture would otherwise
    /// capture only the raw-pointer field, which is not `Send`.
    ///
    /// # Safety
    /// `idx` must lie within the allocation, and no other thread may access
    /// the same element concurrently.
    unsafe fn write(self, idx: usize, v: T) {
        // SAFETY: forwarded to the caller's contract above.
        unsafe { self.0.add(idx).write(v) }
    }
}

/// Parallel multi-pass radix-cluster. Equivalent to
/// [`super::radix_cluster`] with a `NullTracker` (and asserts the same
/// invariants); `threads = 1` simply delegates to it.
pub fn par_radix_cluster<H: KeyHash + Send + Sync>(
    h: H,
    input: Vec<Bun>,
    bits: u32,
    pass_bits: &[u32],
    threads: usize,
) -> ClusteredRel {
    assert!(threads >= 1, "need at least one thread");
    // Clamp so every worker gets at least two tuples; empty or tiny inputs
    // (including threads > tuple count) run sequentially instead of spawning
    // idle scoped threads.
    let threads = threads.min(input.len() / 2).max(1);
    if threads == 1 || bits == 0 {
        return super::radix_cluster(&mut NullTracker, h, input, bits, pass_bits);
    }
    let total: u32 = pass_bits.iter().sum();
    assert_eq!(total, bits, "pass bits must sum to B");

    let n = input.len();
    let mut src = input;
    let mut dst = vec![Bun::default(); n];
    let mut cur_bounds: Vec<u32> = vec![0, n as u32];
    let mut remaining = bits;

    for (pass_idx, &bp) in pass_bits.iter().enumerate() {
        remaining -= bp;
        let shift = remaining;
        let hp = 1usize << bp;
        let mask = (hp - 1) as u32;
        let ncl = cur_bounds.len() - 1;
        let mut new_bounds = vec![0u32; ncl * hp + 1];

        if pass_idx == 0 {
            // One source cluster (the whole input): parallelize by chunk.
            par_first_pass(h, &src, &mut dst, &mut new_bounds, shift, mask, hp, threads);
        } else {
            // Many independent source clusters: parallelize by cluster.
            par_cluster_pass(
                h,
                &src,
                &mut dst,
                &cur_bounds,
                &mut new_bounds,
                shift,
                mask,
                hp,
                threads,
            );
        }
        *new_bounds.last_mut().unwrap() = n as u32;
        std::mem::swap(&mut src, &mut dst);
        cur_bounds = new_bounds;
    }
    ClusteredRel { data: src, bits, bounds: cur_bounds }
}

/// Pass 1: per-thread chunk histograms, thread-major scatter offsets.
#[allow(clippy::too_many_arguments)]
fn par_first_pass<H: KeyHash + Send + Sync>(
    h: H,
    src: &[Bun],
    dst: &mut [Bun],
    new_bounds: &mut [u32],
    shift: u32,
    mask: u32,
    hp: usize,
    threads: usize,
) {
    let n = src.len();
    let chunk = n.div_ceil(threads);
    let ranges: Vec<(usize, usize)> = (0..threads)
        .map(|t| (t * chunk, ((t + 1) * chunk).min(n)))
        .filter(|(a, b)| a < b)
        .collect();

    // Phase 1: per-chunk histograms.
    let mut hists: Vec<Vec<u32>> = Vec::with_capacity(ranges.len());
    std::thread::scope(|s| {
        let handles: Vec<_> = ranges
            .iter()
            .map(|&(lo, hi)| {
                s.spawn(move || {
                    let mut hist = vec![0u32; hp];
                    for t in &src[lo..hi] {
                        hist[((h.hash(t.tail) >> shift) & mask) as usize] += 1;
                    }
                    hist
                })
            })
            .collect();
        for handle in handles {
            hists.push(handle.join().expect("histogram worker panicked"));
        }
    });

    // Thread-major prefix sums: cluster c starts at Σ_{c'<c} total(c');
    // within it, thread t starts after threads 0..t's contributions.
    let mut acc = 0u32;
    let mut offsets: Vec<Vec<u32>> = vec![vec![0u32; hp]; hists.len()];
    for c in 0..hp {
        new_bounds[c] = acc;
        for (t, hist) in hists.iter().enumerate() {
            offsets[t][c] = acc;
            acc += hist[c];
        }
    }

    // Phase 2: disjoint scatter.
    let dst_ptr = SendPtr(dst.as_mut_ptr());
    std::thread::scope(|s| {
        for (&(lo, hi), mut offs) in ranges.iter().zip(offsets) {
            s.spawn(move || {
                for t in &src[lo..hi] {
                    let idx = ((h.hash(t.tail) >> shift) & mask) as usize;
                    let pos = offs[idx] as usize;
                    offs[idx] += 1;
                    // SAFETY: positions handed to this thread are the
                    // half-open ranges reserved for (cluster, thread) pairs
                    // above; ranges are disjoint across threads.
                    unsafe { dst_ptr.write(pos, *t) };
                }
            });
        }
    });
}

/// Passes ≥ 2: clusters are independent; workers pull cluster indices from
/// an atomic counter (cheap dynamic load balancing).
#[allow(clippy::too_many_arguments)]
fn par_cluster_pass<H: KeyHash + Send + Sync>(
    h: H,
    src: &[Bun],
    dst: &mut [Bun],
    cur_bounds: &[u32],
    new_bounds: &mut [u32],
    shift: u32,
    mask: u32,
    hp: usize,
    threads: usize,
) {
    let ncl = cur_bounds.len() - 1;
    let next = AtomicUsize::new(0);
    let dst_ptr = SendPtr(dst.as_mut_ptr());
    let nb_ptr = SendPtr(new_bounds.as_mut_ptr());
    std::thread::scope(|s| {
        for _ in 0..threads.min(ncl) {
            let next = &next;
            s.spawn(move || {
                let mut hist = vec![0u32; hp];
                loop {
                    let c = next.fetch_add(1, Ordering::Relaxed);
                    if c >= ncl {
                        break;
                    }
                    let lo = cur_bounds[c] as usize;
                    let hi = cur_bounds[c + 1] as usize;
                    hist.fill(0);
                    for t in &src[lo..hi] {
                        hist[((h.hash(t.tail) >> shift) & mask) as usize] += 1;
                    }
                    let mut acc = lo as u32;
                    for (k, slot) in hist.iter_mut().enumerate() {
                        let cnt = *slot;
                        *slot = acc;
                        // SAFETY: entries [c*hp, (c+1)*hp) belong to this
                        // cluster only.
                        unsafe { nb_ptr.write(c * hp + k, acc) };
                        acc += cnt;
                    }
                    for t in &src[lo..hi] {
                        let idx = ((h.hash(t.tail) >> shift) & mask) as usize;
                        let pos = hist[idx] as usize;
                        hist[idx] += 1;
                        // SAFETY: positions lie in [lo, hi), owned by this
                        // cluster, processed by exactly one worker.
                        unsafe { dst_ptr.write(pos, *t) };
                    }
                }
            });
        }
    });
}

/// Distribute cluster pairs over workers in contiguous blocks and merge the
/// per-worker results thread-major, so the concatenated output preserves the
/// sequential cluster-major order exactly. `seq` handles the clamped shapes
/// (one thread or fewer clusters than workers); `per_cluster` joins one
/// non-empty cluster pair into the worker's output.
fn par_cluster_pairs<F, S>(
    left: &ClusteredRel,
    right: &ClusteredRel,
    threads: usize,
    seq: S,
    per_cluster: F,
) -> (Vec<OidPair>, Vec<usize>)
where
    F: Fn(&[Bun], &[Bun], &mut Vec<OidPair>) + Send + Sync,
    S: FnOnce() -> Vec<OidPair>,
{
    assert_eq!(left.bits, right.bits, "operands must share the radix bit count");
    let ncl = left.num_clusters();
    // Clamp to the cluster count (a worker owns at least one cluster pair);
    // one-thread or zero-cluster shapes delegate instead of spawning idle
    // scoped threads.
    let threads = threads.min(ncl);
    if threads <= 1 {
        let out = seq();
        let n = out.len();
        return (out, vec![n]);
    }
    let block = ncl.div_ceil(threads);
    let per_cluster = &per_cluster;
    let mut parts: Vec<Vec<OidPair>> = Vec::with_capacity(threads);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let lo = t * block;
                let hi = ((t + 1) * block).min(ncl);
                s.spawn(move || {
                    let mut out = Vec::new();
                    for c in lo..hi {
                        let lc = left.cluster(c);
                        let rc = right.cluster(c);
                        if lc.is_empty() || rc.is_empty() {
                            continue;
                        }
                        per_cluster(lc, rc, &mut out);
                    }
                    out
                })
            })
            .collect();
        for handle in handles {
            parts.push(handle.join().expect("cluster-pair join worker panicked"));
        }
    });
    let shards: Vec<usize> = parts.iter().map(Vec::len).collect();
    let total: usize = shards.iter().sum();
    let mut out = Vec::with_capacity(total);
    for p in parts {
        out.extend(p);
    }
    (out, shards)
}

/// Parallel join of two clustered relations: cluster pairs are distributed
/// over workers in contiguous blocks, so the concatenated result preserves
/// the sequential cluster-major order exactly.
pub fn par_join_clustered<H: KeyHash + Send + Sync>(
    h: H,
    left: &ClusteredRel,
    right: &ClusteredRel,
    threads: usize,
) -> Vec<OidPair> {
    par_join_clustered_sharded(h, left, right, threads).0
}

/// [`par_join_clustered`] plus the per-worker result-pair counts (one entry
/// per worker block, thread-major; sums to the result cardinality).
pub fn par_join_clustered_sharded<H: KeyHash + Send + Sync>(
    h: H,
    left: &ClusteredRel,
    right: &ClusteredRel,
    threads: usize,
) -> (Vec<OidPair>, Vec<usize>) {
    par_cluster_pairs(
        left,
        right,
        threads,
        || super::join_clustered(&mut NullTracker, h, left, right),
        |lc, rc, out| {
            let mut trk = NullTracker;
            let table = ChainedTable::build(&mut trk, h, rc, right.bits, DEFAULT_TUPLES_PER_BUCKET);
            for lt in lc {
                table.probe(&mut trk, h, rc, lt.tail, |_, pos| {
                    out.push(OidPair::new(lt.head, rc[pos as usize].head));
                });
            }
        },
    )
}

/// Parallel radix-join phase: per-cluster nested loops on the same
/// block schedule as [`par_join_clustered`], so the concatenated result
/// reproduces the sequential [`super::radix_join_clustered`] order exactly.
pub fn par_radix_join_clustered<H: KeyHash + Send + Sync>(
    h: H,
    left: &ClusteredRel,
    right: &ClusteredRel,
    threads: usize,
) -> Vec<OidPair> {
    par_radix_join_clustered_sharded(h, left, right, threads).0
}

/// [`par_radix_join_clustered`] plus per-worker result-pair counts.
pub fn par_radix_join_clustered_sharded<H: KeyHash + Send + Sync>(
    h: H,
    left: &ClusteredRel,
    right: &ClusteredRel,
    threads: usize,
) -> (Vec<OidPair>, Vec<usize>) {
    par_cluster_pairs(
        left,
        right,
        threads,
        || super::radix_join_clustered(&mut NullTracker, h, left, right),
        |lc, rc, out| {
            for lt in lc {
                for rt in rc {
                    if lt.tail == rt.tail {
                        out.push(OidPair::new(lt.head, rt.head));
                    }
                }
            }
        },
    )
}

/// The complete parallel radix-join: cluster both inputs in parallel, then
/// nested-loop each cluster pair across workers.
pub fn par_radix_join<H: KeyHash + Send + Sync>(
    h: H,
    left: Vec<Bun>,
    right: Vec<Bun>,
    bits: u32,
    pass_bits: &[u32],
    threads: usize,
) -> Vec<OidPair> {
    par_radix_join_sharded(h, left, right, bits, pass_bits, threads).0
}

/// [`par_radix_join`] plus the join phase's per-worker result-pair counts.
pub fn par_radix_join_sharded<H: KeyHash + Send + Sync>(
    h: H,
    left: Vec<Bun>,
    right: Vec<Bun>,
    bits: u32,
    pass_bits: &[u32],
    threads: usize,
) -> (Vec<OidPair>, Vec<usize>) {
    let l = par_radix_cluster(h, left, bits, pass_bits, threads);
    let r = par_radix_cluster(h, right, bits, pass_bits, threads);
    par_radix_join_clustered_sharded(h, &l, &r, threads)
}

/// The complete parallel partitioned hash-join.
pub fn par_partitioned_hash_join<H: KeyHash + Send + Sync>(
    h: H,
    left: Vec<Bun>,
    right: Vec<Bun>,
    bits: u32,
    pass_bits: &[u32],
    threads: usize,
) -> Vec<OidPair> {
    par_partitioned_hash_join_sharded(h, left, right, bits, pass_bits, threads).0
}

/// [`par_partitioned_hash_join`] plus the join phase's per-worker
/// result-pair counts.
pub fn par_partitioned_hash_join_sharded<H: KeyHash + Send + Sync>(
    h: H,
    left: Vec<Bun>,
    right: Vec<Bun>,
    bits: u32,
    pass_bits: &[u32],
    threads: usize,
) -> (Vec<OidPair>, Vec<usize>) {
    let l = par_radix_cluster(h, left, bits, pass_bits, threads);
    let r = par_radix_cluster(h, right, bits, pass_bits, threads);
    par_join_clustered_sharded(h, &l, &r, threads)
}

/// Sanity helper used in tests and benches: verify a parallel clustering
/// equals the sequential one on the same input.
pub fn assert_matches_sequential<H: KeyHash + Send + Sync>(
    h: H,
    input: &[Bun],
    bits: u32,
    pass_bits: &[u32],
    threads: usize,
) {
    let seq = super::radix_cluster(&mut NullTracker, h, input.to_vec(), bits, pass_bits);
    let par = par_radix_cluster(h, input.to_vec(), bits, pass_bits, threads);
    assert_eq!(seq.bounds, par.bounds, "bounds must match");
    assert_eq!(seq.data, par.data, "data order must match (stable scatter)");
    let _ = radix_of(0, bits);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join::hash::{FibHash, IdentityHash};
    use crate::join::{nested_loop_join, partitioned_hash_join, sort_pairs};

    fn keys(n: usize, seed: u64) -> Vec<Bun> {
        let mut state = seed;
        (0..n)
            .map(|i| {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                Bun::new(i as u32, (z ^ (z >> 31)) as u32)
            })
            .collect()
    }

    #[test]
    fn parallel_cluster_is_bit_identical_to_sequential() {
        let input = keys(100_000, 1);
        for threads in [2usize, 3, 4, 8] {
            for (bits, passes) in [(6u32, vec![6u32]), (10, vec![5, 5]), (12, vec![4, 4, 4])] {
                assert_matches_sequential(FibHash, &input, bits, &passes, threads);
            }
        }
    }

    #[test]
    fn parallel_cluster_handles_edge_shapes() {
        // Tiny input (falls back), skewed input, single cluster.
        assert_matches_sequential(FibHash, &keys(3, 2), 4, &[4], 8);
        let skewed: Vec<Bun> = (0..10_000).map(|i| Bun::new(i, (i % 3) * 1000)).collect();
        assert_matches_sequential(IdentityHash, &skewed, 8, &[4, 4], 4);
        assert_matches_sequential(FibHash, &keys(1000, 3), 1, &[1], 4);
    }

    #[test]
    fn parallel_join_matches_sequential_exactly() {
        let l = keys(20_000, 4);
        let r = keys(20_000, 5);
        let seq =
            partitioned_hash_join(&mut NullTracker, FibHash, l.clone(), r.clone(), 8, &[4, 4]);
        for threads in [2usize, 4, 7] {
            let par = par_partitioned_hash_join(FibHash, l.clone(), r.clone(), 8, &[4, 4], threads);
            assert_eq!(par, seq, "threads={threads}: even output order must match");
        }
    }

    #[test]
    fn parallel_join_correct_with_duplicates() {
        let l: Vec<Bun> = (0..500).map(|i| Bun::new(i, i % 19)).collect();
        let r: Vec<Bun> = (0..300).map(|i| Bun::new(i, i % 23)).collect();
        let oracle = sort_pairs(nested_loop_join(&mut NullTracker, &l, &r));
        let par = sort_pairs(par_partitioned_hash_join(FibHash, l, r, 5, &[5], 4));
        assert_eq!(par, oracle);
    }

    #[test]
    fn more_threads_than_clusters_is_fine() {
        let l = keys(1_000, 6);
        let r = keys(1_000, 7);
        let par = par_partitioned_hash_join(FibHash, l.clone(), r.clone(), 1, &[1], 16);
        let seq = partitioned_hash_join(&mut NullTracker, FibHash, l, r, 1, &[1]);
        assert_eq!(par, seq);
    }

    #[test]
    fn empty_inputs() {
        let par = par_partitioned_hash_join(FibHash, vec![], keys(10, 8), 2, &[2], 4);
        assert!(par.is_empty());
    }

    #[test]
    fn empty_input_clusters_without_panicking_at_any_thread_count() {
        for threads in [1usize, 2, 8, 64] {
            let c = par_radix_cluster(FibHash, Vec::new(), 6, &[3, 3], threads);
            assert!(c.data.is_empty());
            assert_eq!(c.bits, 6);
            let seq =
                super::super::radix_cluster(&mut NullTracker, FibHash, Vec::new(), 6, &[3, 3]);
            assert_eq!(c.bounds, seq.bounds);
            // Joining two empty clustered relations is also a no-op.
            assert!(par_join_clustered(FibHash, &c, &seq, threads).is_empty());
            assert!(par_radix_join_clustered(FibHash, &c, &seq, threads).is_empty());
        }
    }

    #[test]
    fn more_threads_than_tuples_clamps_to_sequential() {
        // 3 tuples, 64 threads: must not spawn 64 workers over nothing and
        // must match the sequential clustering bit for bit.
        for n in [1usize, 2, 3, 5] {
            let input = keys(n, 11);
            for threads in [n + 1, 16, 64] {
                assert_matches_sequential(FibHash, &input, 4, &[4], threads);
            }
        }
        // Same for the join: 2 tuples a side, 32 threads.
        let l = keys(2, 12);
        let r = keys(2, 13);
        let seq = partitioned_hash_join(&mut NullTracker, FibHash, l.clone(), r.clone(), 1, &[1]);
        assert_eq!(par_partitioned_hash_join(FibHash, l, r, 1, &[1], 32), seq);
    }

    #[test]
    fn parallel_radix_join_matches_sequential_exactly() {
        use crate::join::radix_join;
        let l = keys(10_000, 14);
        let r = keys(10_000, 15);
        let seq = radix_join(&mut NullTracker, FibHash, l.clone(), r.clone(), 10, &[5, 5]);
        for threads in [1usize, 2, 4, 7] {
            let par = par_radix_join(FibHash, l.clone(), r.clone(), 10, &[5, 5], threads);
            assert_eq!(par, seq, "threads={threads}: output order must match");
        }
    }

    #[test]
    fn parallel_radix_join_correct_with_duplicates() {
        let l: Vec<Bun> = (0..400).map(|i| Bun::new(i, i % 17)).collect();
        let r: Vec<Bun> = (0..250).map(|i| Bun::new(i, i % 13)).collect();
        let oracle = sort_pairs(nested_loop_join(&mut NullTracker, &l, &r));
        let par = sort_pairs(par_radix_join(FibHash, l, r, 4, &[4], 4));
        assert_eq!(par, oracle);
    }
}
