//! Clustering strategies and pass planning — §3.4.4.
//!
//! The paper identifies four named strategies for choosing the radix bit
//! count `B`, corresponding to the diagonals of Figures 10–12:
//!
//! * `phash L2`  — `B = log2(C·12/‖L2‖)`: inner cluster + hash table fits L2
//!   (this is the \[SKN94\] setting).
//! * `phash TLB` — `B = log2(C·12/‖TLB‖)`: cluster spans ≤ |TLB| pages.
//! * `phash L1`  — `B = log2(C·12/‖L1‖)`: cluster fits L1 (needs multi-pass
//!   clustering).
//! * `radix 8`   — `B = log2(C/8)`: radix-join with ~8-tuple clusters.
//!
//! plus the empirically best settings `phash min` (~200-tuple clusters) and
//! `radix min` (~4-tuple clusters). Pass planning follows §3.4.2's findings:
//! at most `log2(|TLB|)` bits per pass, bits distributed evenly.

use memsim::MachineConfig;

/// Bytes per tuple the paper's strategy formulas charge for the inner
/// relation *plus* its hash table: the 8-byte BUN + ~4 bytes of bucket/chain
/// arrays.
pub const PHASH_BYTES_PER_TUPLE: usize = 12;

/// Tuples per cluster for the `radix 8` strategy.
pub const RADIX8_TUPLES: usize = 8;

/// Tuples per cluster at the empirical optimum of partitioned hash-join
/// ("partitioned hash-join performs best with cluster size of approximately
/// 200 tuples", §3.4.4).
pub const PHASH_MIN_TUPLES: usize = 200;

/// Tuples per cluster at the empirical optimum of radix-join ("radix with
/// just 4 tuples per cluster", §3.4.4).
pub const RADIX_MIN_TUPLES: usize = 4;

/// `ceil(log2(x))` for positive ratios, clamped to ≥ 0.
fn ceil_log2_ratio(num: f64, den: f64) -> u32 {
    if num <= den || den <= 0.0 {
        return 0;
    }
    (num / den).log2().ceil() as u32
}

/// Bits so each cluster holds at most `tuples_per_cluster` tuples:
/// `B = ceil(log2(C / tuples_per_cluster))`.
pub fn bits_phash_tuples(cardinality: usize, tuples_per_cluster: usize) -> u32 {
    ceil_log2_ratio(cardinality as f64, tuples_per_cluster as f64)
}

/// `phash L2`: inner cluster + hash table (12 B/tuple) fits the L2 cache.
pub fn bits_phash_l2(cardinality: usize, m: &MachineConfig) -> u32 {
    ceil_log2_ratio((cardinality * PHASH_BYTES_PER_TUPLE) as f64, m.l2.capacity as f64)
}

/// `phash TLB`: inner cluster + hash table spans at most |TLB| pages.
pub fn bits_phash_tlb(cardinality: usize, m: &MachineConfig) -> u32 {
    ceil_log2_ratio((cardinality * PHASH_BYTES_PER_TUPLE) as f64, m.tlb_span() as f64)
}

/// `phash L1`: inner cluster + hash table fits the L1 cache.
pub fn bits_phash_l1(cardinality: usize, m: &MachineConfig) -> u32 {
    let l1 = m.l1.map_or(m.l2.capacity, |c| c.capacity);
    ceil_log2_ratio((cardinality * PHASH_BYTES_PER_TUPLE) as f64, l1 as f64)
}

/// `radix 8`: radix-join on ~8-tuple clusters, `B = log2(C/8)`.
pub fn bits_radix8(cardinality: usize) -> u32 {
    bits_phash_tuples(cardinality, RADIX8_TUPLES)
}

/// `phash min`: the empirically optimal ~200-tuple clusters.
pub fn bits_phash_min(cardinality: usize) -> u32 {
    bits_phash_tuples(cardinality, PHASH_MIN_TUPLES)
}

/// `radix min`: the empirically optimal ~4-tuple clusters.
pub fn bits_radix_min(cardinality: usize) -> u32 {
    bits_phash_tuples(cardinality, RADIX_MIN_TUPLES)
}

/// Split `bits` over passes so no pass creates more clusters than the TLB
/// has entries (§3.4.2: "the number of clusters per pass is limited to at
/// most the number of TLB entries"), distributing bits evenly ("the
/// performance strongly depends on even distribution of bits"). Larger
/// shares go to earlier passes.
pub fn plan_passes(bits: u32, tlb_entries: usize) -> Vec<u32> {
    if bits == 0 {
        return Vec::new();
    }
    let max_per_pass = (usize::BITS - 1 - tlb_entries.leading_zeros()).max(1); // floor(log2)
    let passes = bits.div_ceil(max_per_pass);
    let base = bits / passes;
    let extra = bits % passes;
    (0..passes).map(|p| if p < extra { base + 1 } else { base }).collect()
}

/// A fully specified clustering+join decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinPlan {
    /// Which algorithm to run.
    pub algorithm: Algorithm,
    /// Radix bits `B` (0 for the unpartitioned algorithms).
    pub bits: u32,
    /// Bits per clustering pass (empty when `bits == 0`).
    pub pass_bits: Vec<u32>,
}

/// Join algorithms the planner can choose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// Partitioned hash-join on radix-clustered inputs.
    PartitionedHash,
    /// Radix-join (fine clusters + nested loop).
    Radix,
    /// Non-partitioned bucket-chained hash join.
    SimpleHash,
    /// Sort-merge join.
    SortMerge,
}

/// Named strategies of §3.4.4 (plus the baselines), used by the figure
/// harness and the planner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// `phash L2`.
    PhashL2,
    /// `phash TLB`.
    PhashTlb,
    /// `phash L1`.
    PhashL1,
    /// `phash 256` (Figure 13's fixed-256-tuple-cluster variant).
    Phash256,
    /// `phash min` (~200-tuple clusters).
    PhashMin,
    /// `radix 8`.
    Radix8,
    /// `radix min` (~4-tuple clusters).
    RadixMin,
    /// Unpartitioned hash join.
    SimpleHash,
    /// Sort-merge join.
    SortMerge,
}

impl Strategy {
    /// All strategies, in Figure 13's legend order.
    pub const ALL: [Strategy; 9] = [
        Strategy::SortMerge,
        Strategy::SimpleHash,
        Strategy::PhashL2,
        Strategy::PhashTlb,
        Strategy::PhashL1,
        Strategy::Phash256,
        Strategy::PhashMin,
        Strategy::Radix8,
        Strategy::RadixMin,
    ];

    /// Display name matching the paper's legends.
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::PhashL2 => "phash L2",
            Strategy::PhashTlb => "phash TLB",
            Strategy::PhashL1 => "phash L1",
            Strategy::Phash256 => "phash 256",
            Strategy::PhashMin => "phash min",
            Strategy::Radix8 => "radix 8",
            Strategy::RadixMin => "radix min",
            Strategy::SimpleHash => "simple hash",
            Strategy::SortMerge => "sort-merge",
        }
    }

    /// Resolve to a concrete plan for joining two relations of `cardinality`
    /// tuples each on machine `m`.
    pub fn plan(&self, cardinality: usize, m: &MachineConfig) -> JoinPlan {
        let (algorithm, bits) = match self {
            Strategy::PhashL2 => (Algorithm::PartitionedHash, bits_phash_l2(cardinality, m)),
            Strategy::PhashTlb => (Algorithm::PartitionedHash, bits_phash_tlb(cardinality, m)),
            Strategy::PhashL1 => (Algorithm::PartitionedHash, bits_phash_l1(cardinality, m)),
            Strategy::Phash256 => (Algorithm::PartitionedHash, bits_phash_tuples(cardinality, 256)),
            Strategy::PhashMin => (Algorithm::PartitionedHash, bits_phash_min(cardinality)),
            Strategy::Radix8 => (Algorithm::Radix, bits_radix8(cardinality)),
            Strategy::RadixMin => (Algorithm::Radix, bits_radix_min(cardinality)),
            Strategy::SimpleHash => (Algorithm::SimpleHash, 0),
            Strategy::SortMerge => (Algorithm::SortMerge, 0),
        };
        JoinPlan { algorithm, bits, pass_bits: plan_passes(bits, m.tlb.entries) }
    }
}

/// Cache-heuristic auto-planner (no cost model): if the inner relation plus
/// hash table fits L1, nothing beats a simple hash join; otherwise use the
/// paper's empirically best partitioned hash-join (`phash min`), except at
/// very large cardinalities where `radix min`'s stability wins ("it
/// therefore is only a winner on the large cardinalities", §3.4.4).
/// `costmodel::plan` refines this with the analytical model.
pub fn heuristic_plan(inner_cardinality: usize, m: &MachineConfig) -> JoinPlan {
    let inner_bytes = inner_cardinality * PHASH_BYTES_PER_TUPLE;
    let l1 = m.l1.map_or(m.l2.capacity, |c| c.capacity);
    if inner_bytes <= l1 {
        return JoinPlan { algorithm: Algorithm::SimpleHash, bits: 0, pass_bits: vec![] };
    }
    // "Large" = clustering would need more passes than phash min can amortize;
    // the paper's Fig. 13 crossover sits around 4M–16M tuples on the
    // Origin2000. Expressed machine-independently: radix wins once the
    // relation exceeds ~1000x the TLB span.
    if inner_bytes > 1000 * m.tlb_span() {
        let bits = bits_radix_min(inner_cardinality);
        return JoinPlan {
            algorithm: Algorithm::Radix,
            bits,
            pass_bits: plan_passes(bits, m.tlb.entries),
        };
    }
    let bits = bits_phash_min(inner_cardinality);
    JoinPlan {
        algorithm: Algorithm::PartitionedHash,
        bits,
        pass_bits: plan_passes(bits, m.tlb.entries),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::profiles;

    #[test]
    fn strategy_bits_match_paper_formulas_on_origin2000() {
        let m = profiles::origin2000();
        // C = 8M: C·12 = 96 MB. L2 = 4 MB ⇒ 24x ⇒ 5 bits. ‖TLB‖ = 1 MB ⇒
        // 96x ⇒ 7 bits. L1 = 32 KB ⇒ 3072x ⇒ 12 bits. radix8 ⇒ 20 bits.
        let c = 8_000_000;
        assert_eq!(bits_phash_l2(c, &m), 5);
        assert_eq!(bits_phash_tlb(c, &m), 7);
        assert_eq!(bits_phash_l1(c, &m), 12);
        assert_eq!(bits_radix8(c), 20);
        assert_eq!(bits_radix_min(c), 21);
        // phash min: 8M/200 = 40960 ⇒ 16 bits.
        assert_eq!(bits_phash_min(c), 16);
    }

    #[test]
    fn small_relations_need_no_clustering() {
        let m = profiles::origin2000();
        // 1000 tuples × 12 B = 12 KB < L2, < ‖TLB‖, < L1.
        assert_eq!(bits_phash_l2(1000, &m), 0);
        assert_eq!(bits_phash_tlb(1000, &m), 0);
        assert_eq!(bits_phash_l1(1000, &m), 0);
    }

    #[test]
    fn pass_planning_respects_tlb_limit_and_evenness() {
        // 64 TLB entries ⇒ ≤ 6 bits per pass.
        assert_eq!(plan_passes(0, 64), Vec::<u32>::new());
        assert_eq!(plan_passes(6, 64), vec![6]);
        assert_eq!(plan_passes(7, 64), vec![4, 3]);
        assert_eq!(plan_passes(12, 64), vec![6, 6]);
        assert_eq!(plan_passes(13, 64), vec![5, 4, 4]);
        assert_eq!(plan_passes(18, 64), vec![6, 6, 6]);
        assert_eq!(plan_passes(20, 64), vec![5, 5, 5, 5]);
        for b in 1..=26 {
            let p = plan_passes(b, 64);
            assert_eq!(p.iter().sum::<u32>(), b);
            assert!(p.iter().all(|&x| x <= 6 && x > 0));
            let (mn, mx) = (p.iter().min().unwrap(), p.iter().max().unwrap());
            assert!(mx - mn <= 1, "uneven split {p:?}");
        }
    }

    #[test]
    fn paper_pass_thresholds() {
        // §3.4.2: "up to 6 bits, one pass … with more than 6 bits, two
        // passes … three passes with more than 12 bits, and four passes with
        // more than 18 bits."
        for (bits, expect_passes) in
            [(6u32, 1usize), (7, 2), (12, 2), (13, 3), (18, 3), (19, 4), (20, 4)]
        {
            assert_eq!(plan_passes(bits, 64).len(), expect_passes, "bits={bits}");
        }
    }

    #[test]
    fn strategies_resolve_to_plans() {
        let m = profiles::origin2000();
        let p = Strategy::PhashL1.plan(8_000_000, &m);
        assert_eq!(p.algorithm, Algorithm::PartitionedHash);
        assert_eq!(p.bits, 12);
        assert_eq!(p.pass_bits, vec![6, 6]);
        let r = Strategy::Radix8.plan(8_000_000, &m);
        assert_eq!(r.algorithm, Algorithm::Radix);
        assert_eq!(r.bits, 20);
        assert_eq!(r.pass_bits.len(), 4);
        let s = Strategy::SimpleHash.plan(8_000_000, &m);
        assert_eq!(s.bits, 0);
        assert!(s.pass_bits.is_empty());
    }

    #[test]
    fn heuristic_planner_tiers() {
        let m = profiles::origin2000();
        // Tiny: fits L1 ⇒ simple hash.
        assert_eq!(heuristic_plan(1_000, &m).algorithm, Algorithm::SimpleHash);
        // Medium: phash min.
        let mid = heuristic_plan(1_000_000, &m);
        assert_eq!(mid.algorithm, Algorithm::PartitionedHash);
        assert!(mid.bits > 0);
        // Huge: radix min.
        let big = heuristic_plan(100_000_000, &m);
        assert_eq!(big.algorithm, Algorithm::Radix);
    }

    #[test]
    fn all_strategies_have_names() {
        for s in Strategy::ALL {
            assert!(!s.name().is_empty());
        }
        assert_eq!(Strategy::ALL.len(), 9);
    }
}
