//! Hash partitioning of a [`DecomposedTable`] into shards.
//!
//! The paper treats layout as a function of the memory hierarchy; this
//! module climbs one rung further and makes *placement* a layout decision
//! too. A [`ShardedTable`] splits a decomposed table into `S` hash shards
//! on an `i32` partition key. Each shard is itself a full
//! [`DecomposedTable`] — per-shard columns, compressed representations and
//! a replica of the parent's index catalog — so every existing kernel runs
//! on a shard unchanged.
//!
//! Two invariants make sharded execution bit-identical to unsharded
//! execution (see `engine::dist`):
//!
//! * **Shared dictionaries.** Shard string columns *gather the parent's
//!   codes and clone the parent's dictionary* rather than re-interning.
//!   Codes are therefore globally consistent: a grouped result merged in
//!   ascending code order reproduces the unsharded group order, and a
//!   selection constant missing from the dictionary is missing from every
//!   shard alike.
//! * **Monotone OID maps.** Shard tables are rebased to seqbase 0, and each
//!   shard carries the ascending list of global OIDs its rows came from
//!   ([`TableShard::oids`]); local OID `i` is global OID `oids[i]`, so
//!   per-shard outputs map back into parent OID space order-preservingly.

use crate::compress::CompressedColumn;
use crate::storage::{
    Bat, Codes, Column, DecomposedTable, NamedBat, Oid, StorageError, StrColumn, ValueType,
};

/// The multiplicative hash assigning a partition-key value to a shard.
/// Fibonacci hashing on the key's bit pattern — the same family the
/// paper's radix algorithms use — taken from the high word so low-entropy
/// keys still spread.
#[inline]
pub fn shard_of(key: i32, shards: usize) -> usize {
    debug_assert!(shards > 0);
    let h = (key as u32 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    ((h >> 32) as usize) % shards
}

/// One hash shard of a [`ShardedTable`].
#[derive(Debug, Clone)]
pub struct TableShard {
    /// The shard's rows as a self-contained decomposed table (seqbase 0,
    /// dictionaries shared with the parent, indexes and compressed columns
    /// rebuilt per shard).
    pub table: DecomposedTable,
    /// Ascending global (parent) OID of each local row: local OID `i` in
    /// `table` is parent OID `oids[i]`.
    pub oids: Vec<Oid>,
}

/// Per-shard row statistics — what a placement layer keys on.
#[derive(Debug, Clone)]
pub struct ShardStats {
    /// Rows per shard.
    pub rows: Vec<usize>,
    /// Largest shard's share relative to the uniform share
    /// (`max_rows * shards / total`); 1.0 = perfectly even, higher = skew.
    pub skew: f64,
}

/// A [`DecomposedTable`] hash-partitioned on one `i32` key column.
#[derive(Debug, Clone)]
pub struct ShardedTable {
    name: String,
    key: String,
    shards: Vec<TableShard>,
}

impl ShardedTable {
    /// Partition `parent` into `shards` hash shards on `key` (an `i32`
    /// column — the joinable key type). Every shard replicates the
    /// parent's index catalog and rebuilds compressed representations over
    /// its own rows.
    pub fn partition(
        parent: &DecomposedTable,
        key: &str,
        shards: usize,
    ) -> Result<Self, StorageError> {
        let shards = shards.max(1);
        let key_bat = parent.bat(key)?;
        let keys = key_bat.tail().as_i32().ok_or(StorageError::TypeMismatch {
            expected: ValueType::I32,
            got: key_bat.tail().value_type(),
        })?;

        // Rows per shard, in ascending position order — the monotone OID
        // map the merge relies on.
        let mut rows: Vec<Vec<usize>> = vec![Vec::new(); shards];
        for (pos, &k) in keys.iter().enumerate() {
            rows[shard_of(k, shards)].push(pos);
        }

        let built = rows
            .into_iter()
            .enumerate()
            .map(|(h, rows)| {
                let cols = parent
                    .columns()
                    .iter()
                    .map(|c| NamedBat {
                        name: c.name.clone(),
                        bat: Bat::with_void_head(0, gather(c.bat.tail(), &rows))
                            .with_props(c.bat.props()),
                    })
                    .collect();
                let mut table = DecomposedTable::from_parts(
                    format!("{}[{h}/{shards}]", parent.name()),
                    0,
                    rows.len(),
                    cols,
                );
                // Replicate the parent's index catalog; the shard has the
                // same column types, so every build succeeds.
                for idx in parent.indexes() {
                    table.create_index(&idx.column, idx.index.kind())?;
                }
                table.build_compressed();
                let oids: Vec<Oid> =
                    rows.iter().map(|&pos| parent.seqbase() + pos as Oid).collect();
                Ok(TableShard { table, oids })
            })
            .collect::<Result<Vec<_>, StorageError>>()?;

        Ok(Self { name: parent.name().to_owned(), key: key.to_owned(), shards: built })
    }

    /// The parent table's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The partition-key column.
    pub fn key(&self) -> &str {
        &self.key
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// All shards, in shard order.
    pub fn shards(&self) -> &[TableShard] {
        &self.shards
    }

    /// Shard `i`.
    pub fn shard(&self, i: usize) -> &TableShard {
        &self.shards[i]
    }

    /// Total rows across shards (the parent's row count).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.table.len()).sum()
    }

    /// True when the parent had no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Per-shard row counts and the skew factor.
    pub fn stats(&self) -> ShardStats {
        let rows: Vec<usize> = self.shards.iter().map(|s| s.table.len()).collect();
        let total: usize = rows.iter().sum();
        let max = rows.iter().copied().max().unwrap_or(0);
        let skew = if total == 0 { 1.0 } else { max as f64 * rows.len() as f64 / total as f64 };
        ShardStats { rows, skew }
    }

    /// The shard with the most rows (ties to the lowest index).
    pub fn hottest(&self) -> usize {
        self.shards
            .iter()
            .enumerate()
            .max_by(|(ia, a), (ib, b)| a.table.len().cmp(&b.table.len()).then(ib.cmp(ia)))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

/// Gather `col` at `rows`. String columns keep the parent's dictionary and
/// gather codes at the parent width — the invariant that makes shard
/// results merge bit-identically (see the module docs).
fn gather(col: &Column, rows: &[usize]) -> Column {
    match col {
        Column::U8(v) => Column::U8(rows.iter().map(|&i| v[i]).collect()),
        Column::U16(v) => Column::U16(rows.iter().map(|&i| v[i]).collect()),
        Column::I32(v) => Column::I32(rows.iter().map(|&i| v[i]).collect()),
        Column::I64(v) => Column::I64(rows.iter().map(|&i| v[i]).collect()),
        Column::F64(v) => Column::F64(rows.iter().map(|&i| v[i]).collect()),
        Column::Oid(v) => Column::Oid(rows.iter().map(|&i| v[i]).collect()),
        Column::Str(sc) => Column::Str(StrColumn {
            codes: match &sc.codes {
                Codes::U8(v) => Codes::U8(rows.iter().map(|&i| v[i]).collect()),
                Codes::U16(v) => Codes::U16(rows.iter().map(|&i| v[i]).collect()),
            },
            dict: sc.dict.clone(),
        }),
    }
}

/// How many bytes of column data one shard's compressed representations
/// save versus uncompressed tails (reporting helper for figures).
pub fn compressed_savings(shard: &TableShard) -> usize {
    shard
        .table
        .columns()
        .iter()
        .filter_map(|c| {
            let cc: &CompressedColumn = shard.table.compressed_of(&c.name)?;
            cc.uncompressed_bytes().checked_sub(cc.compressed_bytes())
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexKind;
    use crate::storage::{ColType, TableBuilder, Value};

    fn table(n: usize) -> DecomposedTable {
        let mut b = TableBuilder::new("t", 500)
            .column("k", ColType::I32)
            .column("price", ColType::F64)
            .column("mode", ColType::Str);
        for i in 0..n {
            b.push_row(&[
                Value::I32((i % 37) as i32),
                Value::F64(i as f64 * 0.5),
                Value::from(["AIR", "SHIP", "MAIL"][i % 3]),
            ])
            .unwrap();
        }
        b.finish()
    }

    #[test]
    fn partition_covers_every_row_exactly_once() {
        let t = table(1000);
        for s in [1, 2, 4, 7] {
            let st = ShardedTable::partition(&t, "k", s).unwrap();
            assert_eq!(st.shard_count(), s);
            assert_eq!(st.len(), 1000);
            let mut seen: Vec<Oid> = st.shards().iter().flat_map(|sh| sh.oids.clone()).collect();
            seen.sort_unstable();
            let expect: Vec<Oid> = (0..1000).map(|i| 500 + i as Oid).collect();
            assert_eq!(seen, expect);
            for sh in st.shards() {
                assert!(sh.oids.windows(2).all(|w| w[0] < w[1]), "oid maps ascend");
                assert_eq!(sh.table.seqbase(), 0);
                assert_eq!(sh.table.len(), sh.oids.len());
            }
        }
    }

    #[test]
    fn rows_land_on_their_hash_shard_with_values_intact() {
        let t = table(300);
        let st = ShardedTable::partition(&t, "k", 4).unwrap();
        for sh in st.shards() {
            let keys = sh.table.bat("k").unwrap().tail().as_i32().unwrap().to_vec();
            for (local, &global) in sh.oids.iter().enumerate() {
                assert_eq!(
                    shard_of(keys[local], 4),
                    st.shards().iter().position(|x| std::ptr::eq(x, sh)).unwrap()
                );
                assert_eq!(t.tuple(global).unwrap(), sh.table.tuple(local as Oid).unwrap());
            }
        }
    }

    #[test]
    fn shard_dictionaries_are_shared_with_the_parent() {
        let t = table(300);
        let parent_dict = t.bat("mode").unwrap().tail().as_str_col().unwrap().dict.clone();
        let st = ShardedTable::partition(&t, "k", 4).unwrap();
        for sh in st.shards() {
            let sc = sh.table.bat("mode").unwrap().tail().as_str_col().unwrap();
            assert_eq!(sc.dict, parent_dict, "codes must stay parent-compatible");
        }
    }

    #[test]
    fn indexes_and_compression_replicate_per_shard() {
        let mut t = table(4000);
        t.create_index("k", IndexKind::Hash).unwrap();
        t.create_index("k", IndexKind::CsBTree).unwrap();
        let st = ShardedTable::partition(&t, "k", 3).unwrap();
        for sh in st.shards() {
            assert_eq!(sh.table.indexes().len(), 2);
            assert!(sh.table.index_of("k", IndexKind::Hash).is_some());
            // mode has 3 distinct values over thousands of rows: dictionary
            // compression survives sharding.
            assert!(sh.table.compressed_of("mode").is_some());
        }
    }

    #[test]
    fn empty_and_single_shard_edges() {
        let t = table(50);
        let st = ShardedTable::partition(&t, "k", 1).unwrap();
        assert_eq!(st.shard(0).table.len(), 50);
        assert_eq!(st.stats().skew, 1.0);

        // A constant key puts every row in one shard; the rest are empty.
        let mut b = TableBuilder::new("c", 0).column("k", ColType::I32);
        for _ in 0..20 {
            b.push_row(&[Value::I32(7)]).unwrap();
        }
        let c = b.finish();
        let st = ShardedTable::partition(&c, "k", 4).unwrap();
        let stats = st.stats();
        assert_eq!(stats.rows.iter().sum::<usize>(), 20);
        assert_eq!(stats.rows.iter().filter(|&&r| r == 0).count(), 3);
        assert_eq!(stats.skew, 4.0);
        assert_eq!(st.shard(st.hottest()).table.len(), 20);

        // An empty parent shards into S empty shards.
        let e = TableBuilder::new("e", 0).column("k", ColType::I32).finish();
        let st = ShardedTable::partition(&e, "k", 4).unwrap();
        assert!(st.is_empty());
        assert_eq!(st.shard_count(), 4);
    }

    #[test]
    fn non_i32_keys_are_rejected() {
        let t = table(10);
        assert!(matches!(
            ShardedTable::partition(&t, "price", 2),
            Err(StorageError::TypeMismatch { .. })
        ));
        assert!(matches!(
            ShardedTable::partition(&t, "ghost", 2),
            Err(StorageError::NoSuchColumn(_))
        ));
    }
}
