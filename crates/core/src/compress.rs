//! Compressed column storage scanned *directly* — the next turn of the
//! paper's crank.
//!
//! The paper's thesis is that sequential operators are priced by the bytes
//! they stream, not the instructions they retire. Vertical decomposition
//! and byte encodings (§3.1) already shrink the stream; this module goes
//! one step further and stores columns in light-weight compressed forms the
//! scan kernels evaluate **without decompressing into a column first**:
//!
//! * **Frame-of-reference + bit-packing** ([`ForColumn`]): values are split
//!   into fixed-size frames, each stored as `value - frame_min` packed at
//!   the frame's minimal bit width. A 4-byte integer column whose frames
//!   span small ranges streams at a few *bits* per value.
//! * **Run-length encoding** ([`RleColumn`]): sorted or clustered columns
//!   collapse into `(value, start, len)` runs; a predicate touches 12 bytes
//!   per run instead of 4 bytes per tuple.
//! * **Dictionary packing** ([`DictColumn`]): the §3.1 byte-encoded string
//!   codes, re-packed at `⌈log₂ |dict|⌉` bits — the paper's `shipmode`
//!   column drops from 8 bits to 3.
//!
//! Every frame and run carries min/max metadata, so selections skip whole
//! blocks whose value range cannot intersect the predicate — and emit
//! blocks the predicate provably covers without unpacking a single word.
//!
//! The kernels mirror [`crate::scan`]'s cooperative contract exactly: K
//! predicate leaves per pass, one ascending candidate-OID list per leaf,
//! **bit-identical** to the uncompressed scan at every thread count. Under
//! a counting [`MemTracker`] the memory system is charged the *compressed*
//! byte spans actually touched (block metadata always; packed payload only
//! when a block must be unpacked), while the CPU is conservatively charged
//! one [`Work::ScanIter`] per tuple per predicate — the same asymmetry
//! `costmodel::scan::packed_scan_cost` prices with its fractional
//! bits-per-value stride.

use memsim::{track_read, track_read_slice, MemTracker, Work};

use crate::scan::ScanPred;
use crate::storage::{Codes, Column, Oid, StorageError, ValueType};

/// Values per frame-of-reference frame. Big enough that the 16-byte frame
/// header amortizes to ~0.125 bits/value, small enough that local value
/// ranges (not the global range) set the packed width.
pub const FRAME_LEN: usize = 1024;

/// Which compressed representation a column uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Encoding {
    /// Frame-of-reference + bit-packing (i32 columns).
    For,
    /// Run-length encoding (sorted/clustered i32 columns).
    Rle,
    /// Bit-packed dictionary codes (string columns).
    Dict,
}

impl Encoding {
    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            Encoding::For => "for",
            Encoding::Rle => "rle",
            Encoding::Dict => "dict",
        }
    }
}

/// Per-frame metadata of a [`ForColumn`]: the reference (= frame minimum),
/// the frame maximum (for block skipping), the packed bit width, and the
/// frame's first word in the shared payload buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Frame {
    /// Frame reference: the smallest value in the frame.
    pub base: i32,
    /// The largest value in the frame (skip metadata).
    pub max: i32,
    /// Bits per packed value (0 for constant frames).
    pub bits: u32,
    /// First word of this frame's payload in the column's word buffer.
    pub offset: u32,
}

/// A frame-of-reference bit-packed i32 column.
#[derive(Debug, Clone, PartialEq)]
pub struct ForColumn {
    len: usize,
    frames: Vec<Frame>,
    words: Vec<u64>,
}

/// Minimal bits to represent any value in `0..=range`.
fn bits_for(range: u64) -> u32 {
    64 - range.leading_zeros()
}

impl ForColumn {
    /// Encode a value slice (frames of [`FRAME_LEN`], per-frame reference
    /// and minimal bit width).
    pub fn encode(values: &[i32]) -> ForColumn {
        let mut frames = Vec::with_capacity(values.len().div_ceil(FRAME_LEN));
        let mut words = Vec::new();
        for chunk in values.chunks(FRAME_LEN) {
            let base = *chunk.iter().min().expect("chunks are non-empty");
            let max = *chunk.iter().max().expect("chunks are non-empty");
            let bits = bits_for((max as i64 - base as i64) as u64);
            let offset = u32::try_from(words.len()).expect("packed payload fits u32 words");
            if bits > 0 {
                let mut word = 0u64;
                let mut used = 0u32;
                for &v in chunk {
                    let delta = (v as i64 - base as i64) as u64;
                    word |= delta << used;
                    if used + bits >= 64 {
                        words.push(word);
                        let spilled = used + bits - 64;
                        word = if spilled > 0 { delta >> (bits - spilled) } else { 0 };
                        used = spilled;
                    } else {
                        used += bits;
                    }
                }
                if used > 0 {
                    words.push(word);
                }
            }
            frames.push(Frame { base, max, bits, offset });
        }
        ForColumn { len: values.len(), frames, words }
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the column holds no values.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The frame headers.
    pub fn frames(&self) -> &[Frame] {
        &self.frames
    }

    /// Row range `[lo, hi)` of frame `f`.
    fn frame_rows(&self, f: usize) -> (usize, usize) {
        (f * FRAME_LEN, ((f + 1) * FRAME_LEN).min(self.len))
    }

    /// The packed payload words of frame `f`.
    fn frame_words(&self, f: usize) -> &[u64] {
        let start = self.frames[f].offset as usize;
        let end = self.frames.get(f + 1).map(|fr| fr.offset as usize).unwrap_or(self.words.len());
        &self.words[start..end]
    }

    /// Append frame `f`'s decoded values to `out`.
    fn unpack_frame(&self, f: usize, out: &mut Vec<i32>) {
        let fr = self.frames[f];
        let (lo, hi) = self.frame_rows(f);
        if fr.bits == 0 {
            out.extend(std::iter::repeat_n(fr.base, hi - lo));
            return;
        }
        let mask = (1u64 << fr.bits) - 1; // bits <= 33 < 64 for i32 ranges
        let mut widx = fr.offset as usize;
        let mut used = 0u32;
        for _ in lo..hi {
            let mut raw = self.words[widx] >> used;
            if used + fr.bits > 64 {
                raw |= self.words[widx + 1] << (64 - used);
            }
            out.push((fr.base as i64 + (raw & mask) as i64) as i32);
            used += fr.bits;
            if used >= 64 {
                used -= 64;
                widx += 1;
            }
        }
    }

    /// Decode the whole column (tests and verification; not a hot path).
    pub fn decode(&self) -> Vec<i32> {
        let mut out = Vec::with_capacity(self.len);
        for f in 0..self.frames.len() {
            self.unpack_frame(f, &mut out);
        }
        out
    }

    /// Exact heap bytes of the compressed representation.
    pub fn compressed_bytes(&self) -> usize {
        self.frames.len() * std::mem::size_of::<Frame>() + self.words.len() * 8
    }

    /// Metadata-only estimate of how many values fall in `[lo, hi]`: each
    /// frame contributes its row count scaled by the overlap of `[lo, hi]`
    /// with `[base, max]` under a uniform-occupancy assumption. Touches
    /// only the frame headers — selectivity sniffing for planners, never a
    /// payload read.
    pub fn estimate_range(&self, lo: i32, hi: i32) -> usize {
        let mut est = 0.0f64;
        for (f, fr) in self.frames.iter().enumerate() {
            let olo = lo.max(fr.base) as i64;
            let ohi = hi.min(fr.max) as i64;
            if olo > ohi {
                continue;
            }
            let (a, b) = self.frame_rows(f);
            let width = (fr.max as i64 - fr.base as i64 + 1) as f64;
            est += (b - a) as f64 * (ohi - olo + 1) as f64 / width;
        }
        est.round() as usize
    }
}

/// One run of a [`RleColumn`]: `len` consecutive tuples of `value` starting
/// at row `start`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Run {
    /// The repeated value.
    pub value: i32,
    /// First row of the run.
    pub start: u32,
    /// Number of consecutive tuples.
    pub len: u32,
}

/// A run-length-encoded i32 column.
#[derive(Debug, Clone, PartialEq)]
pub struct RleColumn {
    len: usize,
    runs: Vec<Run>,
}

impl RleColumn {
    /// Encode a value slice into maximal runs.
    pub fn encode(values: &[i32]) -> RleColumn {
        let mut runs: Vec<Run> = Vec::new();
        for (i, &v) in values.iter().enumerate() {
            match runs.last_mut() {
                Some(r) if r.value == v => r.len += 1,
                _ => runs.push(Run { value: v, start: i as u32, len: 1 }),
            }
        }
        RleColumn { len: values.len(), runs }
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the column holds no values.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The runs.
    pub fn runs(&self) -> &[Run] {
        &self.runs
    }

    /// Decode the whole column (tests and verification; not a hot path).
    pub fn decode(&self) -> Vec<i32> {
        let mut out = Vec::with_capacity(self.len);
        for r in &self.runs {
            out.extend(std::iter::repeat_n(r.value, r.len as usize));
        }
        out
    }

    /// Exact heap bytes of the compressed representation.
    pub fn compressed_bytes(&self) -> usize {
        self.runs.len() * std::mem::size_of::<Run>()
    }
}

/// Bit-packed dictionary codes: the §3.1 byte encoding re-packed at
/// `⌈log₂ |dict|⌉` bits per code. The dictionary itself stays with the
/// uncompressed [`crate::storage::StrColumn`]; equality constants arrive
/// here already translated to codes ([`ScanPred::EqCode`]).
#[derive(Debug, Clone, PartialEq)]
pub struct DictColumn {
    packed: ForColumn,
    code_width: usize,
}

impl DictColumn {
    /// Pack a code stream (codes fit i32: dictionaries max out at 2^16).
    pub fn encode(codes: &Codes) -> DictColumn {
        let vals: Vec<i32> = (0..codes.len()).map(|i| codes.get(i) as i32).collect();
        DictColumn { packed: ForColumn::encode(&vals), code_width: codes.width() }
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.packed.len()
    }

    /// Whether the column holds no values.
    pub fn is_empty(&self) -> bool {
        self.packed.is_empty()
    }

    /// Bytes per code in the *uncompressed* encoding (1 or 2).
    pub fn code_width(&self) -> usize {
        self.code_width
    }

    /// Decode the code stream (tests and verification).
    pub fn decode(&self) -> Vec<i32> {
        self.packed.decode()
    }

    /// Exact heap bytes of the compressed representation.
    pub fn compressed_bytes(&self) -> usize {
        self.packed.compressed_bytes()
    }

    /// Metadata-only estimate of how many codes equal `code` (see
    /// [`ForColumn::estimate_range`]).
    pub fn estimate_eq(&self, code: u32) -> usize {
        self.packed.estimate_range(code as i32, code as i32)
    }
}

/// A column in one of the compressed representations, behind one scan
/// interface.
#[derive(Debug, Clone, PartialEq)]
pub enum CompressedColumn {
    /// Frame-of-reference + bit-packing.
    For(ForColumn),
    /// Run-length encoding.
    Rle(RleColumn),
    /// Bit-packed dictionary codes.
    Dict(DictColumn),
}

/// Cheap one-pass statistics driving [`pick_encoding`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColumnStats {
    /// Number of values.
    pub len: usize,
    /// Smallest value (0 when empty).
    pub min: i32,
    /// Largest value (0 when empty).
    pub max: i32,
    /// Number of maximal equal-value runs (sortedness/clustering signal).
    pub runs: usize,
    /// Exact bytes a frame-of-reference encoding would occupy.
    pub for_bytes: usize,
}

impl ColumnStats {
    /// Gather statistics over an i32 slice in one pass.
    pub fn of_i32(values: &[i32]) -> ColumnStats {
        let mut min = 0i32;
        let mut max = 0i32;
        let mut runs = 0usize;
        let mut prev: Option<i32> = None;
        let mut for_bytes = 0usize;
        for chunk in values.chunks(FRAME_LEN) {
            let cmin = *chunk.iter().min().expect("chunks are non-empty");
            let cmax = *chunk.iter().max().expect("chunks are non-empty");
            if prev.is_none() {
                min = cmin;
                max = cmax;
            } else {
                min = min.min(cmin);
                max = max.max(cmax);
            }
            for &v in chunk {
                if prev != Some(v) {
                    runs += 1;
                }
                prev = Some(v);
            }
            let bits = bits_for((cmax as i64 - cmin as i64) as u64) as usize;
            for_bytes += std::mem::size_of::<Frame>() + (chunk.len() * bits).div_ceil(64) * 8;
        }
        ColumnStats { len: values.len(), min, max, runs, for_bytes }
    }

    /// Exact bytes a run-length encoding would occupy.
    pub fn rle_bytes(&self) -> usize {
        self.runs * std::mem::size_of::<Run>()
    }
}

/// Choose a compressed representation for `col` from its statistics, or
/// `None` when no encoding would save at least 1/8 of the stored bytes.
/// i32 columns weigh RLE (wins on sorted/clustered data) against
/// frame-of-reference (wins on small local ranges); string columns pack
/// their dictionary codes when the dictionary is small enough to shave
/// bits off the code width. Other types stay uncompressed.
pub fn pick_encoding(col: &Column) -> Option<Encoding> {
    match col {
        Column::I32(values) => {
            if values.is_empty() {
                return Some(Encoding::For); // trivial, but keeps kernels total
            }
            let stats = ColumnStats::of_i32(values);
            let raw = values.len() * 4;
            let (best, bytes) = if stats.rle_bytes() < stats.for_bytes {
                (Encoding::Rle, stats.rle_bytes())
            } else {
                (Encoding::For, stats.for_bytes)
            };
            (bytes * 8 <= raw * 7).then_some(best)
        }
        Column::Str(sc) => {
            if sc.is_empty() {
                return Some(Encoding::Dict);
            }
            let max_code = (0..sc.codes.len()).map(|i| sc.codes.get(i)).max().unwrap_or(0);
            let bits = bits_for(max_code as u64) as usize;
            let raw = sc.len() * sc.codes.width();
            let packed = sc.len() * bits / 8 + sc.len().div_ceil(FRAME_LEN) * 16;
            (packed * 8 <= raw * 7).then_some(Encoding::Dict)
        }
        _ => None,
    }
}

impl CompressedColumn {
    /// Encode `col` per [`pick_encoding`], or `None` when the column should
    /// stay uncompressed.
    pub fn encode(col: &Column) -> Option<CompressedColumn> {
        match (pick_encoding(col)?, col) {
            (Encoding::Rle, Column::I32(v)) => Some(CompressedColumn::Rle(RleColumn::encode(v))),
            (Encoding::For, Column::I32(v)) => Some(CompressedColumn::For(ForColumn::encode(v))),
            (Encoding::Dict, Column::Str(sc)) => {
                Some(CompressedColumn::Dict(DictColumn::encode(&sc.codes)))
            }
            _ => None,
        }
    }

    /// The representation in use.
    pub fn encoding(&self) -> Encoding {
        match self {
            CompressedColumn::For(_) => Encoding::For,
            CompressedColumn::Rle(_) => Encoding::Rle,
            CompressedColumn::Dict(_) => Encoding::Dict,
        }
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        match self {
            CompressedColumn::For(c) => c.len(),
            CompressedColumn::Rle(c) => c.len(),
            CompressedColumn::Dict(c) => c.len(),
        }
    }

    /// True when the column holds no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Exact heap bytes of the compressed representation.
    pub fn compressed_bytes(&self) -> usize {
        match self {
            CompressedColumn::For(c) => c.compressed_bytes(),
            CompressedColumn::Rle(c) => c.compressed_bytes(),
            CompressedColumn::Dict(c) => c.compressed_bytes(),
        }
    }

    /// Bytes the values occupy uncompressed (4 per i32; the code width per
    /// dictionary code).
    pub fn uncompressed_bytes(&self) -> usize {
        match self {
            CompressedColumn::For(c) => c.len() * 4,
            CompressedColumn::Rle(c) => c.len() * 4,
            CompressedColumn::Dict(c) => c.len() * c.code_width(),
        }
    }

    /// Average stored bits per value — the stride term
    /// `costmodel::scan::packed_scan_cost` prices.
    pub fn bits_per_value(&self) -> f64 {
        self.compressed_bytes() as f64 * 8.0 / self.len().max(1) as f64
    }

    /// Decode into plain values (codes for [`CompressedColumn::Dict`]) —
    /// tests and verification only.
    pub fn decode(&self) -> Vec<i32> {
        match self {
            CompressedColumn::For(c) => c.decode(),
            CompressedColumn::Rle(c) => c.decode(),
            CompressedColumn::Dict(c) => c.decode(),
        }
    }

    /// Metadata-only estimate of how many values satisfy `pred`, reading
    /// frame headers / runs but never the payload: FOR frames scale their
    /// row count by uniform range overlap, RLE runs count exactly, dict
    /// frames likewise over the code stream. `None` when this
    /// representation cannot evaluate `pred` — the caller falls back to
    /// whatever prior it has.
    pub fn estimate_matches(&self, pred: &ScanPred) -> Option<usize> {
        match (self, pred) {
            (CompressedColumn::For(c), ScanPred::RangeI32 { lo, hi }) => {
                Some(c.estimate_range(*lo, *hi))
            }
            (CompressedColumn::Rle(c), ScanPred::RangeI32 { lo, hi }) => Some(
                c.runs()
                    .iter()
                    .filter(|r| *lo <= r.value && r.value <= *hi)
                    .map(|r| r.len as usize)
                    .sum(),
            ),
            (CompressedColumn::Dict(c), ScanPred::EqCode { code }) => Some(c.estimate_eq(*code)),
            _ => None,
        }
    }

    /// True when `pred` can be evaluated directly on this representation.
    pub fn supports(&self, pred: &ScanPred) -> bool {
        matches!(
            (pred, self),
            (ScanPred::RangeI32 { .. }, CompressedColumn::For(_) | CompressedColumn::Rle(_))
                | (ScanPred::EqCode { .. }, CompressedColumn::Dict(_))
        )
    }
}

/// The value type a compressed column logically stores (error reporting).
fn logical_type(cc: &CompressedColumn) -> ValueType {
    match cc {
        CompressedColumn::For(_) | CompressedColumn::Rle(_) => ValueType::I32,
        CompressedColumn::Dict(_) => ValueType::Str,
    }
}

/// The column type a predicate expects (mirrors [`crate::scan`]).
fn pred_type(p: &ScanPred) -> ValueType {
    match p {
        ScanPred::RangeI32 { .. } => ValueType::I32,
        ScanPred::RangeF64 { .. } => ValueType::F64,
        ScanPred::EqCode { .. } => ValueType::Str,
    }
}

/// Check every predicate is evaluable against `cc` (range over FOR/RLE,
/// code equality over packed dictionaries; F64 columns are never
/// compressed).
fn check_types(cc: &CompressedColumn, preds: &[ScanPred]) -> Result<(), StorageError> {
    for p in preds {
        if !cc.supports(p) {
            return Err(StorageError::TypeMismatch {
                expected: pred_type(p),
                got: logical_type(cc),
            });
        }
    }
    Ok(())
}

/// The inclusive value-space bounds of a predicate against this column
/// (codes for dictionaries), as `(lo, hi)` in i64 so code/i32 spaces unify.
fn pred_bounds(p: &ScanPred) -> (i64, i64) {
    match p {
        ScanPred::RangeI32 { lo, hi } => (*lo as i64, *hi as i64),
        ScanPred::EqCode { code } => (*code as i64, *code as i64),
        ScanPred::RangeF64 { .. } => unreachable!("check_types rejected this predicate"),
    }
}

/// How a predicate relates to a block's `[min, max]` value range.
#[derive(Clone, Copy, PartialEq, Eq)]
enum BlockFate {
    /// No value in the block can qualify: skip without unpacking.
    Skip,
    /// Every value in the block qualifies: emit all OIDs without unpacking.
    TakeAll,
    /// The ranges straddle: unpack and test each value.
    Test,
}

fn classify(lo: i64, hi: i64, min: i64, max: i64) -> BlockFate {
    if hi < min || lo > max {
        BlockFate::Skip
    } else if lo <= min && max <= hi {
        BlockFate::TakeAll
    } else {
        BlockFate::Test
    }
}

/// Evaluate frames `[flo, fhi)` of a FOR-packed stream against every
/// predicate, charging block metadata always and packed payload only when
/// a frame must be unpacked.
#[allow(clippy::too_many_arguments)]
fn for_chunk<M: MemTracker>(
    trk: &mut M,
    fc: &ForColumn,
    seqbase: Oid,
    bounds: &[(i64, i64)],
    flo: usize,
    fhi: usize,
    out: &mut [Vec<Oid>],
    scratch: &mut Vec<i32>,
) {
    for f in flo..fhi {
        let fr = fc.frames[f];
        if M::ENABLED {
            track_read(trk, &fc.frames[f]);
        }
        let (rlo, rhi) = fc.frame_rows(f);
        let fates: Vec<BlockFate> = bounds
            .iter()
            .map(|&(lo, hi)| classify(lo, hi, fr.base as i64, fr.max as i64))
            .collect();
        if fates.contains(&BlockFate::Test) {
            if M::ENABLED {
                track_read_slice(trk, fc.frame_words(f));
            }
            scratch.clear();
            fc.unpack_frame(f, scratch);
        }
        for (k, fate) in fates.iter().enumerate() {
            match fate {
                BlockFate::Skip => {}
                BlockFate::TakeAll => {
                    out[k].extend((rlo..rhi).map(|i| seqbase + i as Oid));
                }
                BlockFate::Test => {
                    let (lo, hi) = bounds[k];
                    for (i, &v) in scratch.iter().enumerate() {
                        if (lo..=hi).contains(&(v as i64)) {
                            out[k].push(seqbase + (rlo + i) as Oid);
                        }
                    }
                }
            }
        }
    }
}

/// Evaluate runs `[rlo, rhi)` of an RLE stream against every predicate.
/// The runs *are* the stream: one 12-byte read per run, whatever K is.
fn rle_chunk<M: MemTracker>(
    trk: &mut M,
    rc: &RleColumn,
    seqbase: Oid,
    bounds: &[(i64, i64)],
    rlo: usize,
    rhi: usize,
    out: &mut [Vec<Oid>],
) {
    if M::ENABLED && rlo < rhi {
        track_read_slice(trk, &rc.runs[rlo..rhi]);
    }
    for r in &rc.runs[rlo..rhi] {
        let v = r.value as i64;
        for (k, &(lo, hi)) in bounds.iter().enumerate() {
            if (lo..=hi).contains(&v) {
                out[k].extend((r.start..r.start + r.len).map(|i| seqbase + i));
            }
        }
    }
}

/// Evaluate one shard of the compressed column (a contiguous range of
/// frames or runs) against every predicate.
fn compressed_chunk<M: MemTracker>(
    trk: &mut M,
    cc: &CompressedColumn,
    seqbase: Oid,
    bounds: &[(i64, i64)],
    lo: usize,
    hi: usize,
    out: &mut [Vec<Oid>],
) {
    match cc {
        CompressedColumn::For(fc) => {
            let mut scratch = Vec::with_capacity(FRAME_LEN);
            for_chunk(trk, fc, seqbase, bounds, lo, hi, out, &mut scratch);
        }
        CompressedColumn::Dict(dc) => {
            let mut scratch = Vec::with_capacity(FRAME_LEN);
            for_chunk(trk, &dc.packed, seqbase, bounds, lo, hi, out, &mut scratch);
        }
        CompressedColumn::Rle(rc) => rle_chunk(trk, rc, seqbase, bounds, lo, hi, out),
    }
}

/// The number of shardable units (frames or runs) of a compressed column.
fn unit_count(cc: &CompressedColumn) -> usize {
    match cc {
        CompressedColumn::For(fc) => fc.frames.len(),
        CompressedColumn::Dict(dc) => dc.packed.frames.len(),
        CompressedColumn::Rle(rc) => rc.runs.len(),
    }
}

/// One-pass K-predicate scan-select directly on a compressed column (void
/// head starting at `seqbase`): stream the compressed form once, return one
/// ascending candidate OID list per predicate — each bit-identical to the
/// solo *uncompressed* scan-select of that predicate. Under a counting
/// tracker the memory system is charged the compressed byte spans touched
/// (block metadata always; packed payload only for blocks the min/max
/// metadata could not settle) and the CPU one [`Work::ScanIter`] per tuple
/// per predicate.
pub fn multi_select_compressed<M: MemTracker>(
    trk: &mut M,
    cc: &CompressedColumn,
    seqbase: Oid,
    preds: &[ScanPred],
) -> Result<Vec<Vec<Oid>>, StorageError> {
    check_types(cc, preds)?;
    let mut out: Vec<Vec<Oid>> = preds.iter().map(|_| Vec::new()).collect();
    if preds.is_empty() {
        return Ok(out);
    }
    if M::ENABLED {
        trk.work(Work::ScanIter, (cc.len() * preds.len()) as u64);
    }
    let bounds: Vec<(i64, i64)> = preds.iter().map(pred_bounds).collect();
    compressed_chunk(trk, cc, seqbase, &bounds, 0, unit_count(cc), &mut out);
    Ok(out)
}

/// Evaluate the row range `[row_lo, row_hi)` of a FOR-packed stream,
/// clipping partial frames at both ends: a `TakeAll` frame emits only the
/// clipped OID span, a `Test` frame unpacks once but tests only the
/// clipped indices.
#[allow(clippy::too_many_arguments)]
fn for_chunk_rows<M: MemTracker>(
    trk: &mut M,
    fc: &ForColumn,
    seqbase: Oid,
    bounds: &[(i64, i64)],
    row_lo: usize,
    row_hi: usize,
    out: &mut [Vec<Oid>],
    scratch: &mut Vec<i32>,
) {
    let flo = row_lo / FRAME_LEN;
    let fhi = row_hi.div_ceil(FRAME_LEN).min(fc.frames.len());
    for f in flo..fhi {
        let fr = fc.frames[f];
        if M::ENABLED {
            track_read(trk, &fc.frames[f]);
        }
        let (rlo, rhi) = fc.frame_rows(f);
        let clo = rlo.max(row_lo);
        let chi = rhi.min(row_hi);
        if clo >= chi {
            continue;
        }
        let fates: Vec<BlockFate> = bounds
            .iter()
            .map(|&(lo, hi)| classify(lo, hi, fr.base as i64, fr.max as i64))
            .collect();
        if fates.contains(&BlockFate::Test) {
            if M::ENABLED {
                track_read_slice(trk, fc.frame_words(f));
            }
            scratch.clear();
            fc.unpack_frame(f, scratch);
        }
        for (k, fate) in fates.iter().enumerate() {
            match fate {
                BlockFate::Skip => {}
                BlockFate::TakeAll => {
                    out[k].extend((clo..chi).map(|i| seqbase + i as Oid));
                }
                BlockFate::Test => {
                    let (lo, hi) = bounds[k];
                    for (i, &v) in scratch[clo - rlo..chi - rlo].iter().enumerate() {
                        if (lo..=hi).contains(&(v as i64)) {
                            out[k].push(seqbase + (clo + i) as Oid);
                        }
                    }
                }
            }
        }
    }
}

/// Evaluate the row range `[row_lo, row_hi)` of an RLE stream, clipping
/// the first and last runs to the range. Runs are sorted by `start`, so
/// the first overlapping run is found by binary search.
fn rle_chunk_rows<M: MemTracker>(
    trk: &mut M,
    rc: &RleColumn,
    seqbase: Oid,
    bounds: &[(i64, i64)],
    row_lo: usize,
    row_hi: usize,
    out: &mut [Vec<Oid>],
) {
    let first = rc.runs.partition_point(|r| (r.start + r.len) as usize <= row_lo);
    let last = rc.runs.partition_point(|r| (r.start as usize) < row_hi);
    if first >= last {
        return;
    }
    if M::ENABLED {
        track_read_slice(trk, &rc.runs[first..last]);
    }
    for r in &rc.runs[first..last] {
        let v = r.value as i64;
        let clo = (r.start as usize).max(row_lo) as u32;
        let chi = ((r.start + r.len) as usize).min(row_hi) as u32;
        for (k, &(lo, hi)) in bounds.iter().enumerate() {
            if (lo..=hi).contains(&v) {
                out[k].extend((clo..chi).map(|i| seqbase + i));
            }
        }
    }
}

/// Chunk-bounded [`multi_select_compressed`]: evaluate every predicate
/// over the row range `[row_lo, row_hi)` only, clipping partial FOR frames
/// and RLE runs at the chunk borders. Concatenating the lists of
/// consecutive chunks in ascending `row_lo` order reproduces the one-shot
/// kernel (and therefore the uncompressed scan) bit for bit — the
/// compressed leg of the service's chunked elevator pass.
pub fn multi_select_compressed_range<M: MemTracker>(
    trk: &mut M,
    cc: &CompressedColumn,
    seqbase: Oid,
    preds: &[ScanPred],
    row_lo: usize,
    row_hi: usize,
) -> Result<Vec<Vec<Oid>>, StorageError> {
    check_types(cc, preds)?;
    let row_hi = row_hi.min(cc.len());
    let row_lo = row_lo.min(row_hi);
    let mut out: Vec<Vec<Oid>> = preds.iter().map(|_| Vec::new()).collect();
    if preds.is_empty() || row_lo == row_hi {
        return Ok(out);
    }
    if M::ENABLED {
        trk.work(Work::ScanIter, ((row_hi - row_lo) * preds.len()) as u64);
    }
    let bounds: Vec<(i64, i64)> = preds.iter().map(pred_bounds).collect();
    match cc {
        CompressedColumn::For(fc) => {
            let mut scratch = Vec::with_capacity(FRAME_LEN);
            for_chunk_rows(trk, fc, seqbase, &bounds, row_lo, row_hi, &mut out, &mut scratch);
        }
        CompressedColumn::Dict(dc) => {
            let mut scratch = Vec::with_capacity(FRAME_LEN);
            for_chunk_rows(
                trk,
                &dc.packed,
                seqbase,
                &bounds,
                row_lo,
                row_hi,
                &mut out,
                &mut scratch,
            );
        }
        CompressedColumn::Rle(rc) => {
            rle_chunk_rows(trk, rc, seqbase, &bounds, row_lo, row_hi, &mut out)
        }
    }
    Ok(out)
}

/// Evaluate only the candidate rows that fall in a FOR-packed stream,
/// grouped by frame: each *touched* frame pays its header read, and only
/// frames the min/max metadata cannot settle unpack their payload. A
/// `TakeAll` frame emits its candidates without unpacking; a `Skip` frame
/// emits nothing.
fn for_chunk_cands<M: MemTracker>(
    trk: &mut M,
    fc: &ForColumn,
    seqbase: Oid,
    bounds: &[(i64, i64)],
    cands: &[Oid],
    out: &mut [Vec<Oid>],
    scratch: &mut Vec<i32>,
) {
    let mut i = 0usize;
    while i < cands.len() {
        let row = (cands[i] - seqbase) as usize;
        let f = row / FRAME_LEN;
        let fr = fc.frames[f];
        if M::ENABLED {
            track_read(trk, &fc.frames[f]);
        }
        let (rlo, rhi) = fc.frame_rows(f);
        // The frame's candidate group: ascending OIDs make it contiguous.
        let end = i + cands[i..].partition_point(|&c| ((c - seqbase) as usize) < rhi);
        let fates: Vec<BlockFate> = bounds
            .iter()
            .map(|&(lo, hi)| classify(lo, hi, fr.base as i64, fr.max as i64))
            .collect();
        if fates.contains(&BlockFate::Test) {
            if M::ENABLED {
                track_read_slice(trk, fc.frame_words(f));
            }
            scratch.clear();
            fc.unpack_frame(f, scratch);
        }
        for (k, fate) in fates.iter().enumerate() {
            match fate {
                BlockFate::Skip => {}
                BlockFate::TakeAll => out[k].extend_from_slice(&cands[i..end]),
                BlockFate::Test => {
                    let (lo, hi) = bounds[k];
                    for &c in &cands[i..end] {
                        let v = scratch[(c - seqbase) as usize - rlo];
                        if (lo..=hi).contains(&(v as i64)) {
                            out[k].push(c);
                        }
                    }
                }
            }
        }
        i = end;
    }
}

/// Evaluate only the candidate rows that fall in an RLE stream: runs and
/// candidates are both ascending, so the two merge in one pass, and only
/// the *touched* runs pay their 12-byte read — runs without a surviving
/// candidate are never fetched.
fn rle_chunk_cands<M: MemTracker>(
    trk: &mut M,
    rc: &RleColumn,
    seqbase: Oid,
    bounds: &[(i64, i64)],
    cands: &[Oid],
    out: &mut [Vec<Oid>],
) {
    let mut r = match cands.first() {
        Some(&c) => {
            rc.runs.partition_point(|run| (run.start + run.len) as usize <= (c - seqbase) as usize)
        }
        None => return,
    };
    let mut i = 0usize;
    while i < cands.len() && r < rc.runs.len() {
        let run = rc.runs[r];
        if M::ENABLED {
            track_read(trk, &rc.runs[r]);
        }
        let run_end = (run.start + run.len) as usize;
        let end = i + cands[i..].partition_point(|&c| ((c - seqbase) as usize) < run_end);
        let v = run.value as i64;
        for (k, &(lo, hi)) in bounds.iter().enumerate() {
            if (lo..=hi).contains(&v) {
                out[k].extend_from_slice(&cands[i..end]);
            }
        }
        i = end;
        r += 1;
        if i < cands.len() {
            // Jump over runs no candidate touches.
            let row = (cands[i] - seqbase) as usize;
            r += rc.runs[r..].partition_point(|run| (run.start + run.len) as usize <= row);
        }
    }
}

/// Candidate-restricted [`multi_select_compressed`] — the pushdown entry
/// point. `cands` is an ascending OID list a prior predicate leaf already
/// produced; each returned list is exactly *full-column result ∩ `cands`*,
/// in ascending OID order, so intersecting leaf results in any evaluation
/// order is bit-identical to full-column evaluation. The kernel jumps
/// directly to the FOR/dict frames and RLE runs containing surviving
/// candidates: untouched blocks pay nothing at all (not even metadata),
/// touched frames pay their header plus — only when min/max cannot settle
/// every predicate — their packed payload, and the CPU is charged one
/// [`Work::ScanIter`] per *candidate* (not per tuple) per predicate.
pub fn multi_select_compressed_cands<M: MemTracker>(
    trk: &mut M,
    cc: &CompressedColumn,
    seqbase: Oid,
    preds: &[ScanPred],
    cands: &[Oid],
) -> Result<Vec<Vec<Oid>>, StorageError> {
    check_types(cc, preds)?;
    let mut out: Vec<Vec<Oid>> = preds.iter().map(|_| Vec::new()).collect();
    if preds.is_empty() || cands.is_empty() {
        return Ok(out);
    }
    debug_assert!(cands.windows(2).all(|w| w[0] < w[1]), "candidates ascend");
    debug_assert!(
        cands.iter().all(|&c| c >= seqbase && ((c - seqbase) as usize) < cc.len()),
        "candidates address rows of this column"
    );
    if M::ENABLED {
        trk.work(Work::ScanIter, (cands.len() * preds.len()) as u64);
    }
    let bounds: Vec<(i64, i64)> = preds.iter().map(pred_bounds).collect();
    match cc {
        CompressedColumn::For(fc) => {
            let mut scratch = Vec::with_capacity(FRAME_LEN);
            for_chunk_cands(trk, fc, seqbase, &bounds, cands, &mut out, &mut scratch);
        }
        CompressedColumn::Dict(dc) => {
            let mut scratch = Vec::with_capacity(FRAME_LEN);
            for_chunk_cands(trk, &dc.packed, seqbase, &bounds, cands, &mut out, &mut scratch);
        }
        CompressedColumn::Rle(rc) => rle_chunk_cands(trk, rc, seqbase, &bounds, cands, &mut out),
    }
    Ok(out)
}

/// The number of distinct blocks (FOR/dict frames or RLE runs) an ascending
/// candidate list touches — the exact block count
/// [`multi_select_compressed_cands`] charges metadata for, and the quantity
/// `costmodel::scan::cand_packed_scan_cost` estimates from |candidates|.
pub fn touched_blocks(cc: &CompressedColumn, seqbase: Oid, cands: &[Oid]) -> usize {
    let mut n = 0usize;
    match cc {
        CompressedColumn::For(_) | CompressedColumn::Dict(_) => {
            let mut last = usize::MAX;
            for &c in cands {
                let f = (c - seqbase) as usize / FRAME_LEN;
                if f != last {
                    n += 1;
                    last = f;
                }
            }
        }
        CompressedColumn::Rle(rc) => {
            let mut r = 0usize;
            for &c in cands {
                let row = (c - seqbase) as usize;
                r += rc.runs[r..].partition_point(|run| (run.start + run.len) as usize <= row);
                if r < rc.runs.len() && (rc.runs[r].start as usize) <= row {
                    // First candidate in this run counts it; later ones
                    // advance past it before counting again.
                    n += 1;
                    r += 1;
                }
            }
        }
    }
    n
}

/// Sharded parallel [`multi_select_compressed`] (native-only; no tracker):
/// the frame/run space splits into contiguous chunks, per-predicate lists
/// merge thread-major — bit-identical to the sequential kernel (and to the
/// uncompressed scan) at every thread count. Also returns each worker's
/// total match count summed across the K predicates (the sharded
/// `rows_per_thread` accounting).
pub fn par_multi_select_compressed_counted(
    cc: &CompressedColumn,
    seqbase: Oid,
    preds: &[ScanPred],
    threads: usize,
) -> Result<(Vec<Vec<Oid>>, Vec<usize>), StorageError> {
    check_types(cc, preds)?;
    let units = unit_count(cc);
    let threads = threads.min(units).max(1);
    let bounds: Vec<(i64, i64)> = preds.iter().map(pred_bounds).collect();
    if threads == 1 {
        let mut out: Vec<Vec<Oid>> = preds.iter().map(|_| Vec::new()).collect();
        compressed_chunk(&mut memsim::NullTracker, cc, seqbase, &bounds, 0, units, &mut out);
        let matches = out.iter().map(Vec::len).sum();
        return Ok((out, vec![matches]));
    }
    let chunk = units.div_ceil(threads);
    let ranges: Vec<(usize, usize)> = (0..threads)
        .map(|t| (t * chunk, ((t + 1) * chunk).min(units)))
        .filter(|(a, b)| a < b)
        .collect();
    let bounds = &bounds;
    let mut parts: Vec<Vec<Vec<Oid>>> = Vec::with_capacity(ranges.len());
    std::thread::scope(|s| {
        let handles: Vec<_> = ranges
            .iter()
            .map(|&(lo, hi)| {
                s.spawn(move || {
                    let mut out: Vec<Vec<Oid>> = preds.iter().map(|_| Vec::new()).collect();
                    compressed_chunk(
                        &mut memsim::NullTracker,
                        cc,
                        seqbase,
                        bounds,
                        lo,
                        hi,
                        &mut out,
                    );
                    out
                })
            })
            .collect();
        for h in handles {
            parts.push(h.join().expect("compressed scan worker panicked"));
        }
    });
    let counts: Vec<usize> = parts.iter().map(|p| p.iter().map(Vec::len).sum()).collect();
    let mut out: Vec<Vec<Oid>> = preds.iter().map(|_| Vec::new()).collect();
    for part in parts {
        for (k, list) in part.into_iter().enumerate() {
            out[k].extend(list);
        }
    }
    Ok((out, counts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::multi_select;
    use crate::storage::{Bat, StrColumn};
    use memsim::{NullTracker, SimTracker};

    fn uniform(n: usize, seed: u64) -> Vec<i32> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((x >> 33) % 4096) as i32
            })
            .collect()
    }

    #[test]
    fn for_roundtrip_is_lossless() {
        for values in [
            uniform(10_000, 7),
            vec![],
            vec![42; 3000],
            (0..5000).map(|i| i - 2500).collect(),
            vec![i32::MIN, i32::MAX, 0, -1, 1],
        ] {
            let fc = ForColumn::encode(&values);
            assert_eq!(fc.decode(), values);
            assert_eq!(fc.len(), values.len());
        }
    }

    #[test]
    fn rle_roundtrip_and_run_structure() {
        let values: Vec<i32> = (0..10_000).map(|i| i / 64).collect();
        let rc = RleColumn::encode(&values);
        assert_eq!(rc.decode(), values);
        assert_eq!(rc.runs().len(), 10_000usize.div_ceil(64));
        assert!(rc.compressed_bytes() * 2 < values.len() * 4);
    }

    #[test]
    fn dict_roundtrip() {
        let strs: Vec<&str> = (0..1000).map(|i| ["AIR", "MAIL", "SHIP"][i % 3]).collect();
        let sc = StrColumn::from_strs(strs);
        let dc = DictColumn::encode(&sc.codes);
        let expect: Vec<i32> = (0..sc.len()).map(|i| sc.codes.get(i) as i32).collect();
        assert_eq!(dc.decode(), expect);
        // 3 distinct values: 2 bits/code vs 8 uncompressed.
        assert!(dc.compressed_bytes() * 3 < sc.len());
    }

    #[test]
    fn pick_encoding_is_stats_driven() {
        // Small local ranges: frame-of-reference.
        assert_eq!(pick_encoding(&Column::I32(uniform(20_000, 3))), Some(Encoding::For));
        // Long runs: RLE.
        let clustered: Vec<i32> = (0..20_000).map(|i| i / 64).collect();
        assert_eq!(pick_encoding(&Column::I32(clustered)), Some(Encoding::Rle));
        // Full-entropy values: no saving, stay uncompressed.
        let wide: Vec<i32> = (0..20_000)
            .map(|i| (i as i64 * 0x9E3779B9 % (1i64 << 31)) as i32 - (1 << 30))
            .collect();
        assert_eq!(pick_encoding(&Column::I32(wide)), None);
        // Small dictionary: packed codes.
        let strs: Vec<&str> = (0..1000).map(|i| ["A", "B", "C"][i % 3]).collect();
        assert_eq!(pick_encoding(&Column::Str(StrColumn::from_strs(strs))), Some(Encoding::Dict));
        // F64 never compresses.
        assert_eq!(pick_encoding(&Column::F64(vec![1.0; 100])), None);
    }

    fn reference(values: Vec<i32>, seqbase: Oid, preds: &[ScanPred]) -> Vec<Vec<Oid>> {
        let bat = Bat::with_void_head(seqbase, Column::I32(values));
        multi_select(&mut NullTracker, &bat, preds).unwrap()
    }

    #[test]
    fn compressed_selects_match_uncompressed_bit_for_bit() {
        let preds = [
            ScanPred::RangeI32 { lo: 100, hi: 900 },
            ScanPred::RangeI32 { lo: 0, hi: 5000 }, // full
            ScanPred::RangeI32 { lo: 7, hi: 7 },
            ScanPred::RangeI32 { lo: 9000, hi: 9999 }, // empty
        ];
        for values in [uniform(30_000, 11), (0..30_000).map(|i| i / 64).collect::<Vec<i32>>()] {
            let cc = CompressedColumn::encode(&Column::I32(values.clone())).unwrap();
            let expect = reference(values, 500, &preds);
            let got = multi_select_compressed(&mut NullTracker, &cc, 500, &preds).unwrap();
            assert_eq!(got, expect, "{:?}", cc.encoding());
            for threads in [1usize, 2, 4, 7, 64] {
                let (par, counts) =
                    par_multi_select_compressed_counted(&cc, 500, &preds, threads).unwrap();
                assert_eq!(par, expect, "{:?} threads={threads}", cc.encoding());
                assert_eq!(
                    counts.iter().sum::<usize>(),
                    expect.iter().map(Vec::len).sum::<usize>()
                );
            }
        }
    }

    #[test]
    fn row_ranged_chunks_concatenate_to_the_one_shot_kernel() {
        let preds = [
            ScanPred::RangeI32 { lo: 100, hi: 900 },
            ScanPred::RangeI32 { lo: 0, hi: 5000 }, // full: TakeAll frames clipped
            ScanPred::RangeI32 { lo: 7, hi: 7 },
            ScanPred::RangeI32 { lo: 9000, hi: 9999 }, // empty: Skip frames
        ];
        for values in [uniform(30_011, 11), (0..30_011).map(|i| i / 64).collect::<Vec<i32>>()] {
            let cc = CompressedColumn::encode(&Column::I32(values.clone())).unwrap();
            let expect = reference(values, 500, &preds);
            // Chunk borders deliberately misaligned with both the 1024-row
            // frames and the 64-row runs.
            for chunk in [1usize, 777, 1024, 4099, 30_011, 60_000] {
                let mut acc: Vec<Vec<Oid>> = preds.iter().map(|_| Vec::new()).collect();
                let mut lo = 0;
                while lo < cc.len() {
                    let hi = (lo + chunk).min(cc.len());
                    let part =
                        multi_select_compressed_range(&mut NullTracker, &cc, 500, &preds, lo, hi)
                            .unwrap();
                    for (k, list) in part.into_iter().enumerate() {
                        acc[k].extend(list);
                    }
                    lo = hi;
                }
                assert_eq!(acc, expect, "{:?} chunk={chunk}", cc.encoding());
            }
        }
    }

    #[test]
    fn row_ranged_dict_chunks_match_uncompressed() {
        let strs: Vec<&str> = (0..5003).map(|i| ["AIR", "MAIL", "SHIP", "RAIL"][i % 4]).collect();
        let sc = StrColumn::from_strs(strs);
        let cc = CompressedColumn::encode(&Column::Str(sc.clone())).unwrap();
        let bat = Bat::with_void_head(10, Column::Str(sc));
        let preds = [ScanPred::EqCode { code: 2 }, ScanPred::EqCode { code: 0 }];
        let expect = multi_select(&mut NullTracker, &bat, &preds).unwrap();
        let mut acc: Vec<Vec<Oid>> = preds.iter().map(|_| Vec::new()).collect();
        let mut lo = 0;
        while lo < cc.len() {
            let hi = (lo + 997).min(cc.len());
            let part =
                multi_select_compressed_range(&mut NullTracker, &cc, 10, &preds, lo, hi).unwrap();
            for (k, list) in part.into_iter().enumerate() {
                acc[k].extend(list);
            }
            lo = hi;
        }
        assert_eq!(acc, expect);
        // Clamped and empty ranges are no-ops.
        let empty =
            multi_select_compressed_range(&mut NullTracker, &cc, 10, &preds, 9000, 9001).unwrap();
        assert!(empty.iter().all(Vec::is_empty));
    }

    #[test]
    fn dict_eq_matches_uncompressed() {
        let strs: Vec<&str> = (0..5000).map(|i| ["AIR", "MAIL", "SHIP", "RAIL"][i % 4]).collect();
        let sc = StrColumn::from_strs(strs);
        let cc = CompressedColumn::encode(&Column::Str(sc.clone())).unwrap();
        let bat = Bat::with_void_head(10, Column::Str(sc));
        for code in 0..4u32 {
            let preds = [ScanPred::EqCode { code }];
            let expect = multi_select(&mut NullTracker, &bat, &preds).unwrap();
            let got = multi_select_compressed(&mut NullTracker, &cc, 10, &preds).unwrap();
            assert_eq!(got, expect, "code {code}");
            let (par, _) = par_multi_select_compressed_counted(&cc, 10, &preds, 4).unwrap();
            assert_eq!(par, expect);
        }
    }

    #[test]
    fn compressed_scan_streams_fewer_bytes() {
        let values = uniform(100_000, 5); // 12-bit range: ~8/3x fewer bytes
        let cc = CompressedColumn::encode(&Column::I32(values.clone())).unwrap();
        assert!(cc.compressed_bytes() * 2 <= cc.uncompressed_bytes(), "{}", cc.bits_per_value());
        let preds = [ScanPred::RangeI32 { lo: 2048, hi: 4095 }]; // splits every frame
        let run_unc = || {
            let bat = Bat::with_void_head(0, Column::I32(values.clone()));
            let mut trk = SimTracker::for_machine(memsim::profiles::origin2000());
            multi_select(&mut trk, &bat, &preds).unwrap();
            trk.counters()
        };
        let run_cmp = || {
            let mut trk = SimTracker::for_machine(memsim::profiles::origin2000());
            multi_select_compressed(&mut trk, &cc, 0, &preds).unwrap();
            trk.counters()
        };
        let (unc, cmp) = (run_unc(), run_cmp());
        assert!(
            cmp.l2_misses * 2 <= unc.l2_misses,
            "compressed {} vs uncompressed {} L2 misses",
            cmp.l2_misses,
            unc.l2_misses
        );
        assert!((cmp.cpu_ns - unc.cpu_ns).abs() < 1e-6, "same per-tuple CPU charge");
    }

    #[test]
    fn block_skipping_avoids_payload_reads() {
        // Sorted values: a narrow predicate touches one frame's payload.
        let values: Vec<i32> = (0..100_000).collect();
        let cc = CompressedColumn::encode(&Column::I32(values)).unwrap();
        assert_eq!(cc.encoding(), Encoding::For, "sorted uniques pack, not run");
        let narrow = [ScanPred::RangeI32 { lo: 50_000, hi: 50_010 }];
        let full = [ScanPred::RangeI32 { lo: 0, hi: 100_000 }];
        let count = |preds: &[ScanPred]| {
            let mut trk = SimTracker::for_machine(memsim::profiles::origin2000());
            let lists = multi_select_compressed(&mut trk, &cc, 0, preds).unwrap();
            (lists[0].len(), trk.counters())
        };
        let (n_narrow, c_narrow) = count(&narrow);
        let (n_full, c_full) = count(&full);
        assert_eq!(n_narrow, 11);
        assert_eq!(n_full, 100_000);
        // The narrow scan reads headers plus at most two frames' payloads;
        // the full scan take-alls every frame and reads *no* payload.
        assert!(c_narrow.line_accesses < 500, "{}", c_narrow.line_accesses);
        assert!(c_full.line_accesses < 200, "{}", c_full.line_accesses);
    }

    /// `full ∩ cands`, both ascending — the contract the candidate kernels
    /// must reproduce exactly.
    fn intersect_ref(full: &[Oid], cands: &[Oid]) -> Vec<Oid> {
        full.iter().copied().filter(|o| cands.binary_search(o).is_ok()).collect()
    }

    #[test]
    fn candidate_kernels_return_exactly_full_intersect_cands() {
        let preds = [
            ScanPred::RangeI32 { lo: 100, hi: 900 },
            ScanPred::RangeI32 { lo: 0, hi: 5000 }, // full: TakeAll frames
            ScanPred::RangeI32 { lo: 7, hi: 7 },
            ScanPred::RangeI32 { lo: 9000, hi: 9999 }, // empty: Skip frames
        ];
        let seqbase = 500;
        for values in [uniform(30_011, 11), (0..30_011).map(|i| i / 64).collect::<Vec<i32>>()] {
            let n = values.len();
            let cc = CompressedColumn::encode(&Column::I32(values.clone())).unwrap();
            let full = multi_select_compressed(&mut NullTracker, &cc, seqbase, &preds).unwrap();
            let cand_shapes: Vec<Vec<Oid>> = vec![
                vec![],                                                     // empty
                (0..n).map(|i| seqbase + i as Oid).collect(),               // all-pass
                (0..n).step_by(1013).map(|i| seqbase + i as Oid).collect(), // sparse
                (2048..2300).map(|i| seqbase + i as Oid).collect(),         // one dense cluster
                vec![seqbase, seqbase + (n as Oid) - 1],                    // both ends
            ];
            for cands in &cand_shapes {
                let got =
                    multi_select_compressed_cands(&mut NullTracker, &cc, seqbase, &preds, cands)
                        .unwrap();
                for (k, list) in got.iter().enumerate() {
                    assert_eq!(
                        *list,
                        intersect_ref(&full[k], cands),
                        "{:?} pred {k} |cands|={}",
                        cc.encoding(),
                        cands.len()
                    );
                }
            }
        }
        // Dict: same contract over packed codes.
        let strs: Vec<&str> = (0..5003).map(|i| ["AIR", "MAIL", "SHIP", "RAIL"][i % 4]).collect();
        let cc = CompressedColumn::encode(&Column::Str(StrColumn::from_strs(strs))).unwrap();
        let preds = [ScanPred::EqCode { code: 2 }, ScanPred::EqCode { code: 0 }];
        let full = multi_select_compressed(&mut NullTracker, &cc, 10, &preds).unwrap();
        let cands: Vec<Oid> = (0..5003).step_by(7).map(|i| 10 + i as Oid).collect();
        let got = multi_select_compressed_cands(&mut NullTracker, &cc, 10, &preds, &cands).unwrap();
        for (k, list) in got.iter().enumerate() {
            assert_eq!(*list, intersect_ref(&full[k], &cands), "dict pred {k}");
        }
    }

    #[test]
    fn candidate_kernel_touches_only_candidate_blocks() {
        // 100 frames; candidates confined to two of them.
        let values = uniform(102_400, 5);
        let cc = CompressedColumn::encode(&Column::I32(values)).unwrap();
        assert_eq!(cc.encoding(), Encoding::For);
        let preds = [ScanPred::RangeI32 { lo: 2048, hi: 4095 }]; // straddles every frame
        let cands: Vec<Oid> = (3 * 1024..4 * 1024).chain(71 * 1024..72 * 1024).collect();
        assert_eq!(touched_blocks(&cc, 0, &cands), 2);
        let run_full = || {
            let mut trk = SimTracker::for_machine(memsim::profiles::origin2000());
            multi_select_compressed(&mut trk, &cc, 0, &preds).unwrap();
            trk.counters()
        };
        let run_cands = || {
            let mut trk = SimTracker::for_machine(memsim::profiles::origin2000());
            multi_select_compressed_cands(&mut trk, &cc, 0, &preds, &cands).unwrap();
            trk.counters()
        };
        let (full, restricted) = (run_full(), run_cands());
        assert!(
            restricted.l2_misses * 10 <= full.l2_misses,
            "2/100 frames touched must stream >=10x fewer bytes ({} vs {})",
            restricted.l2_misses,
            full.l2_misses
        );
        assert!(restricted.cpu_ns < full.cpu_ns / 10.0, "CPU follows |cands|, not rows");

        // RLE: touched runs only.
        let clustered: Vec<i32> = (0..102_400).map(|i| i / 64).collect();
        let rc = CompressedColumn::encode(&Column::I32(clustered)).unwrap();
        assert_eq!(rc.encoding(), Encoding::Rle);
        let sparse: Vec<Oid> = (0..102_400).step_by(6400).collect();
        assert_eq!(touched_blocks(&rc, 0, &sparse), sparse.len(), "one run per sparse candidate");
        let dense: Vec<Oid> = (128..192).collect(); // inside one 64-row run
        assert_eq!(touched_blocks(&rc, 0, &dense), 1);
        let got = multi_select_compressed_cands(
            &mut NullTracker,
            &rc,
            0,
            &[ScanPred::RangeI32 { lo: 0, hi: 5 }],
            &dense,
        )
        .unwrap();
        assert_eq!(got[0], dense, "run value 2 passes, all candidates survive");
    }

    #[test]
    fn type_mismatches_are_errors() {
        let cc = CompressedColumn::encode(&Column::I32(uniform(2000, 1))).unwrap();
        let err =
            multi_select_compressed(&mut NullTracker, &cc, 0, &[ScanPred::EqCode { code: 0 }])
                .unwrap_err();
        assert!(matches!(err, StorageError::TypeMismatch { .. }), "{err:?}");
        let err = par_multi_select_compressed_counted(
            &cc,
            0,
            &[ScanPred::RangeF64 { lo: 0.0, hi: 1.0 }],
            2,
        )
        .unwrap_err();
        assert!(matches!(err, StorageError::TypeMismatch { .. }), "{err:?}");
    }

    #[test]
    fn empty_and_constant_columns() {
        let empty = CompressedColumn::encode(&Column::I32(vec![])).unwrap();
        let lists = multi_select_compressed(
            &mut NullTracker,
            &empty,
            0,
            &[ScanPred::RangeI32 { lo: 0, hi: 10 }],
        )
        .unwrap();
        assert!(lists[0].is_empty());
        let constant = CompressedColumn::encode(&Column::I32(vec![7; 5000])).unwrap();
        let lists = multi_select_compressed(
            &mut NullTracker,
            &constant,
            100,
            &[ScanPred::RangeI32 { lo: 7, hi: 7 }, ScanPred::RangeI32 { lo: 8, hi: 9 }],
        )
        .unwrap();
        assert_eq!(lists[0].len(), 5000);
        assert_eq!(lists[0][0], 100);
        assert!(lists[1].is_empty());
        assert!(multi_select_compressed(&mut NullTracker, &constant, 0, &[]).unwrap().is_empty());
    }
}
