#![warn(missing_docs)]

//! # monet-core — the paper's primary contribution
//!
//! This crate implements the two pillars of Boncz, Manegold & Kersten's
//! VLDB 1999 paper:
//!
//! 1. **Vertically decomposed storage** (§3.1, Figure 4): relations are
//!    stored column-wise as Binary Association Tables ([`storage::Bat`]) of
//!    fixed-width `\[OID, value\]` records (BUNs), with the paper's two space
//!    optimizations — *virtual OIDs* (dense ascending OID columns are not
//!    materialized; [`storage::Head::Void`]) and *byte encodings*
//!    (low-cardinality columns stored as 1/2-byte codes against a dictionary;
//!    [`storage::StrColumn`]). An NSM row-store ([`storage::RowTable`]) is
//!    provided as the layout baseline the paper argues against.
//!
//! 2. **Radix algorithms for equi-join** (§3.3): the multi-pass
//!    [`join::radix_cluster`], the [`join::partitioned_hash_join`], and the
//!    [`join::radix_join`], together with the baselines they are compared
//!    with in Figure 13 — non-partitioned bucket-chained hash join
//!    ([`join::simple_hash_join`]), sort-merge join ([`join::sort_merge_join`])
//!    and a nested-loop oracle ([`join::nested_loop_join`]).
//!
//! Every algorithm is generic over a [`memsim::MemTracker`], so a single
//! implementation runs both natively (zero-overhead `NullTracker`; used by
//! the criterion benches) and under the simulated Origin2000 (`SimTracker`;
//! used to regenerate the paper's figures with exact miss counts).
//!
//! [`strategy`] implements §3.4.4's clustering strategies (`phash_L2`,
//! `phash_TLB`, `phash_L1`, `radix_8`, …) and the pass planning rule that
//! keeps the per-pass cluster fan-out below the TLB entry count.
//!
//! ## Quick example
//!
//! ```
//! use memsim::NullTracker;
//! use monet_core::join::{partitioned_hash_join, FibHash, Bun};
//! use monet_core::strategy::{bits_phash_tuples, plan_passes};
//!
//! let left: Vec<Bun> = (0..10_000).map(|i| Bun::new(i, i * 7 % 10_000)).collect();
//! let right: Vec<Bun> = (0..10_000).map(|i| Bun::new(i, i)).collect();
//! let bits = bits_phash_tuples(left.len(), 200);
//! let passes = plan_passes(bits, 64);
//! let pairs = partitioned_hash_join(&mut NullTracker, FibHash, left, right, bits, &passes);
//! assert_eq!(pairs.len(), 10_000); // hit rate 1
//! ```

pub mod compress;
pub mod index;
pub mod join;
pub mod scan;
pub mod shard;
pub mod storage;
pub mod strategy;

pub use compress::{pick_encoding, CompressedColumn, Encoding};
pub use index::{ColumnIndex, CsBTree, HashIndex, IndexKind};
pub use join::{Bun, OidPair};
pub use shard::{shard_of, ShardStats, ShardedTable, TableShard};
pub use storage::{Bat, Column, Oid, Value};
