//! The N-ary Storage Model (NSM) baseline: consecutive-byte tuple records.
//!
//! §3.1: "The default physical tuple representation is a consecutive byte
//! sequence, which must always be accessed by the bottom operators in a
//! query evaluation tree." Scanning one attribute of such a table reads with
//! a stride equal to the record width — the X axis of Figure 3. This module
//! provides that layout, including a tracked scan so the simulator can show
//! the stride penalty directly against the DSM layout.

use memsim::{MemTracker, Work};

use super::value::{Value, ValueType};
use super::StorageError;

/// Fixed-width field types for NSM records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldType {
    /// 1 byte.
    U8,
    /// 2 bytes.
    U16,
    /// 4 bytes.
    I32,
    /// 8 bytes.
    I64,
    /// 8 bytes.
    F64,
    /// Fixed-length character field of `n` bytes (e.g. `char(27)` comments).
    Char(usize),
}

impl FieldType {
    /// Width in bytes.
    pub fn width(self) -> usize {
        match self {
            FieldType::U8 => 1,
            FieldType::U16 => 2,
            FieldType::I32 => 4,
            FieldType::I64 => 8,
            FieldType::F64 => 8,
            FieldType::Char(n) => n,
        }
    }
}

/// A record schema: named fields at packed offsets.
#[derive(Debug, Clone)]
pub struct RowSchema {
    fields: Vec<(String, FieldType)>,
    offsets: Vec<usize>,
    width: usize,
}

impl RowSchema {
    /// Build a packed schema (fields laid out in declaration order, no
    /// padding — a lower bound on what a slotted page would use).
    pub fn new(fields: Vec<(String, FieldType)>) -> Self {
        let mut offsets = Vec::with_capacity(fields.len());
        let mut off = 0;
        for (_, ft) in &fields {
            offsets.push(off);
            off += ft.width();
        }
        Self { fields, offsets, width: off }
    }

    /// Record width in bytes — the scan stride.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of fields.
    pub fn arity(&self) -> usize {
        self.fields.len()
    }

    /// Byte offset of field `i` within a record.
    pub fn offset(&self, i: usize) -> usize {
        self.offsets[i]
    }

    /// Field type of field `i`.
    pub fn field_type(&self, i: usize) -> FieldType {
        self.fields[i].1
    }

    /// Index of the field named `name`.
    pub fn field_index(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|(n, _)| n == name)
    }
}

/// A row-store table: one contiguous byte array of fixed-width records.
#[derive(Debug, Clone)]
pub struct RowTable {
    schema: RowSchema,
    data: Vec<u8>,
    len: usize,
}

impl RowTable {
    /// Empty table with `schema`.
    pub fn new(schema: RowSchema) -> Self {
        Self { schema, data: Vec::new(), len: 0 }
    }

    /// The schema.
    pub fn schema(&self) -> &RowSchema {
        &self.schema
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if there are no records.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Record width (the stride of a one-attribute scan).
    pub fn record_width(&self) -> usize {
        self.schema.width
    }

    /// Total bytes of record storage.
    pub fn stored_bytes(&self) -> usize {
        self.data.len()
    }

    /// Append one record.
    pub fn push_row(&mut self, row: &[Value]) -> Result<(), StorageError> {
        if row.len() != self.schema.arity() {
            return Err(StorageError::ArityMismatch {
                expected: self.schema.arity(),
                got: row.len(),
            });
        }
        let start = self.data.len();
        self.data.resize(start + self.schema.width, 0);
        for (i, v) in row.iter().enumerate() {
            let off = start + self.schema.offsets[i];
            let ft = self.schema.fields[i].1;
            write_field(&mut self.data[off..off + ft.width()], ft, v)?;
        }
        self.len += 1;
        Ok(())
    }

    /// Read field `field` of record `row`.
    pub fn get(&self, row: usize, field: usize) -> Option<Value> {
        if row >= self.len || field >= self.schema.arity() {
            return None;
        }
        let off = row * self.schema.width + self.schema.offsets[field];
        let ft = self.schema.fields[field].1;
        Some(read_field(&self.data[off..off + ft.width()], ft))
    }

    /// Tracked scan of one `U8` field: sums the byte over all records,
    /// touching memory with stride = record width. This is exactly the §2
    /// experiment embodied in a table scan; compare with the same scan over
    /// a DSM byte column (stride 1).
    pub fn scan_sum_u8_tracked<M: MemTracker>(&self, trk: &mut M, field: usize) -> u64 {
        let ft = self.schema.fields[field].1;
        assert_eq!(ft, FieldType::U8, "scan_sum_u8 requires a U8 field");
        let off = self.schema.offsets[field];
        let width = self.schema.width;
        let mut sum = 0u64;
        let base = self.data.as_ptr() as usize;
        for row in 0..self.len {
            let idx = row * width + off;
            if M::ENABLED {
                trk.read(base + idx, 1);
                trk.work(Work::ScanIter, 1);
            }
            sum += self.data[idx] as u64;
        }
        sum
    }

    /// Tracked scan of one `I32` field (stride = record width).
    pub fn scan_sum_i32_tracked<M: MemTracker>(&self, trk: &mut M, field: usize) -> i64 {
        let ft = self.schema.fields[field].1;
        assert_eq!(ft, FieldType::I32, "scan_sum_i32 requires an I32 field");
        let off = self.schema.offsets[field];
        let width = self.schema.width;
        let mut sum = 0i64;
        let base = self.data.as_ptr() as usize;
        for row in 0..self.len {
            let idx = row * width + off;
            if M::ENABLED {
                trk.read(base + idx, 4);
                trk.work(Work::ScanIter, 1);
            }
            let bytes: [u8; 4] = self.data[idx..idx + 4].try_into().unwrap();
            sum += i32::from_le_bytes(bytes) as i64;
        }
        sum
    }
}

fn write_field(dst: &mut [u8], ft: FieldType, v: &Value) -> Result<(), StorageError> {
    let mismatch = |got: ValueType| StorageError::TypeMismatch {
        expected: match ft {
            FieldType::U8 => ValueType::U8,
            FieldType::U16 => ValueType::U16,
            FieldType::I32 => ValueType::I32,
            FieldType::I64 => ValueType::I64,
            FieldType::F64 => ValueType::F64,
            FieldType::Char(_) => ValueType::Str,
        },
        got,
    };
    match (ft, v) {
        (FieldType::U8, Value::U8(x)) => dst[0] = *x,
        (FieldType::U16, Value::U16(x)) => dst.copy_from_slice(&x.to_le_bytes()),
        (FieldType::I32, Value::I32(x)) => dst.copy_from_slice(&x.to_le_bytes()),
        (FieldType::I64, Value::I64(x)) => dst.copy_from_slice(&x.to_le_bytes()),
        (FieldType::F64, Value::F64(x)) => dst.copy_from_slice(&x.to_le_bytes()),
        (FieldType::Char(n), Value::Str(s)) => {
            let bytes = s.as_bytes();
            let take = bytes.len().min(n);
            dst[..take].copy_from_slice(&bytes[..take]);
            for b in dst[take..].iter_mut() {
                *b = 0;
            }
        }
        (_, other) => return Err(mismatch(other.value_type())),
    }
    Ok(())
}

fn read_field(src: &[u8], ft: FieldType) -> Value {
    match ft {
        FieldType::U8 => Value::U8(src[0]),
        FieldType::U16 => Value::U16(u16::from_le_bytes(src.try_into().unwrap())),
        FieldType::I32 => Value::I32(i32::from_le_bytes(src.try_into().unwrap())),
        FieldType::I64 => Value::I64(i64::from_le_bytes(src.try_into().unwrap())),
        FieldType::F64 => Value::F64(f64::from_le_bytes(src.try_into().unwrap())),
        FieldType::Char(_) => {
            let end = src.iter().position(|&b| b == 0).unwrap_or(src.len());
            Value::Str(String::from_utf8_lossy(&src[..end]).into_owned())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::{profiles, NullTracker, SimTracker};

    fn schema() -> RowSchema {
        RowSchema::new(vec![
            ("flag".into(), FieldType::U8),
            ("qty".into(), FieldType::I32),
            ("price".into(), FieldType::F64),
            ("comment".into(), FieldType::Char(27)),
        ])
    }

    #[test]
    fn packed_offsets_and_width() {
        let s = schema();
        assert_eq!(s.offset(0), 0);
        assert_eq!(s.offset(1), 1);
        assert_eq!(s.offset(2), 5);
        assert_eq!(s.offset(3), 13);
        assert_eq!(s.width(), 40);
        assert_eq!(s.field_index("price"), Some(2));
    }

    #[test]
    fn roundtrip_values() {
        let mut t = RowTable::new(schema());
        t.push_row(&[Value::U8(3), Value::I32(-7), Value::F64(14.25), Value::Str("hello".into())])
            .unwrap();
        assert_eq!(t.get(0, 0).unwrap(), Value::U8(3));
        assert_eq!(t.get(0, 1).unwrap(), Value::I32(-7));
        assert_eq!(t.get(0, 2).unwrap(), Value::F64(14.25));
        assert_eq!(t.get(0, 3).unwrap(), Value::Str("hello".into()));
        assert!(t.get(1, 0).is_none());
        assert!(t.get(0, 4).is_none());
    }

    #[test]
    fn char_field_truncates_and_pads() {
        let mut t = RowTable::new(RowSchema::new(vec![("c".into(), FieldType::Char(3))]));
        t.push_row(&[Value::Str("abcdef".into())]).unwrap();
        t.push_row(&[Value::Str("x".into())]).unwrap();
        assert_eq!(t.get(0, 0).unwrap(), Value::Str("abc".into()));
        assert_eq!(t.get(1, 0).unwrap(), Value::Str("x".into()));
    }

    #[test]
    fn scan_sum_matches_naive() {
        let mut t = RowTable::new(schema());
        for i in 0..100u8 {
            t.push_row(&[
                Value::U8(i),
                Value::I32(i as i32 * 2),
                Value::F64(0.0),
                Value::Str("".into()),
            ])
            .unwrap();
        }
        assert_eq!(t.scan_sum_u8_tracked(&mut NullTracker, 0), (0..100u64).sum());
        assert_eq!(t.scan_sum_i32_tracked(&mut NullTracker, 1), (0..100i64).map(|i| i * 2).sum());
    }

    #[test]
    fn wide_records_cause_more_misses_than_narrow_scan() {
        // The §3.1 claim, in miniature: scanning a 1-byte attribute of a
        // 40-byte record costs ~1 L1 miss per tuple on the Origin2000
        // (stride 40 > line 32), while the same data in a DSM byte column
        // costs 1 per 32 tuples.
        let mut t = RowTable::new(schema());
        let n = 10_000;
        for i in 0..n {
            t.push_row(&[
                Value::U8((i % 250) as u8),
                Value::I32(i as i32),
                Value::F64(0.0),
                Value::Str("pad".into()),
            ])
            .unwrap();
        }
        let mut trk = SimTracker::for_machine(profiles::origin2000());
        t.scan_sum_u8_tracked(&mut trk, 0);
        let nsm_misses = trk.counters().l1_misses;

        let dsm: Vec<u8> = (0..n).map(|i| (i % 250) as u8).collect();
        let mut trk2 = SimTracker::for_machine(profiles::origin2000());
        let base = dsm.as_ptr() as usize;
        for i in 0..n {
            trk2.read(base + i, 1);
        }
        let dsm_misses = trk2.counters().l1_misses;
        assert!(nsm_misses > dsm_misses * 10, "NSM {nsm_misses} vs DSM {dsm_misses} misses");
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut t = RowTable::new(schema());
        assert!(matches!(t.push_row(&[Value::U8(1)]), Err(StorageError::ArityMismatch { .. })));
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut t = RowTable::new(schema());
        let r = t.push_row(&[
            Value::I32(1), // should be U8
            Value::I32(1),
            Value::F64(0.0),
            Value::Str("".into()),
        ]);
        assert!(matches!(r, Err(StorageError::TypeMismatch { .. })));
    }
}
