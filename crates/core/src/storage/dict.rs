//! String dictionaries — the paper's "encoding BAT" (Figure 4).
//!
//! Columns with low domain cardinality are stored as fixed-size 1- or 2-byte
//! integer codes; the dictionary maps codes back to strings. The paper
//! chooses this over bit-compression deliberately: a selection on the string
//! `"MAIL"` is *re-mapped once* to a selection on the byte `3`, after which
//! the scan runs without any decoding work per tuple (§3.1).

use std::collections::HashMap;

/// An order-of-insertion string dictionary with reverse lookup.
///
/// Codes are dense `0..len`. The dictionary itself is tiny by assumption
/// (that is the point of the encoding), so a std `HashMap` for the reverse
/// index is fine — it is never touched during scans.
#[derive(Debug, Clone, Default)]
pub struct StrDict {
    values: Vec<String>,
    index: HashMap<String, u32>,
}

impl StrDict {
    /// Empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if no values have been interned.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Intern `s`, returning its code (existing or fresh).
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&c) = self.index.get(s) {
            return c;
        }
        let c = self.values.len() as u32;
        self.values.push(s.to_owned());
        self.index.insert(s.to_owned(), c);
        c
    }

    /// The code of `s`, if it has been interned.
    ///
    /// This is the §3.1 *predicate re-mapping* hook: a selection on a string
    /// constant calls this once, then scans the code column.
    pub fn code_of(&self, s: &str) -> Option<u32> {
        self.index.get(s).copied()
    }

    /// The string for a code.
    ///
    /// # Panics
    /// Panics if `code` was never handed out.
    pub fn decode(&self, code: u32) -> &str {
        &self.values[code as usize]
    }

    /// All values in code order.
    pub fn values(&self) -> &[String] {
        &self.values
    }

    /// Heap bytes of the dictionary payload (for the Fig. 4 accounting).
    pub fn heap_bytes(&self) -> usize {
        self.values.iter().map(|s| s.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_dense() {
        let mut d = StrDict::new();
        assert_eq!(d.intern("AIR"), 0);
        assert_eq!(d.intern("MAIL"), 1);
        assert_eq!(d.intern("AIR"), 0);
        assert_eq!(d.intern("SHIP"), 2);
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn decode_roundtrip() {
        let mut d = StrDict::new();
        for s in ["TRUCK", "RAIL", "REG AIR", "FOB"] {
            let c = d.intern(s);
            assert_eq!(d.decode(c), s);
            assert_eq!(d.code_of(s), Some(c));
        }
        assert_eq!(d.code_of("NO SUCH"), None);
    }

    #[test]
    fn predicate_remapping_example_from_paper() {
        // "a selection on a string 'MAIL' can be re-mapped to a selection on
        // a byte with value 3" — with the Fig. 4 insertion order, MAIL gets
        // whatever dense code its first occurrence dictates; the remap is
        // exact either way.
        let mut d = StrDict::new();
        for s in ["AIR", "TRUCK", "SHIP", "MAIL"] {
            d.intern(s);
        }
        assert_eq!(d.code_of("MAIL"), Some(3));
    }

    #[test]
    fn heap_bytes_counts_payload() {
        let mut d = StrDict::new();
        d.intern("ab");
        d.intern("cde");
        assert_eq!(d.heap_bytes(), 5);
    }
}
