//! The Binary Association Table (BAT) — Monet's storage unit.
//!
//! A BAT is logically an array of `\[OID, value\]` BUNs. Physically the head
//! and tail are separate columns, and §3.1's *virtual-OID* optimization
//! ([`Head::Void`]) avoids materializing the head entirely when it is dense
//! and ascending — which is the case for every BAT produced by decomposing a
//! relation. Besides halving memory traffic, void heads make
//! positional lookup O(1), "effectively eliminating all join cost" for
//! tuple-reconstruction joins (§3.1).

use super::column::Column;
use super::value::Value;
use super::{Oid, StorageError};

/// The head (OID) column of a BAT.
#[derive(Debug, Clone, PartialEq)]
pub enum Head {
    /// Virtual OIDs: position `i` has OID `seqbase + i`. Nothing is stored.
    Void {
        /// OID of position 0.
        seqbase: Oid,
    },
    /// Materialized OIDs (e.g. the result of a selection).
    Oids(Vec<Oid>),
}

impl Head {
    /// OID at position `i`.
    #[inline]
    pub fn get(&self, i: usize) -> Oid {
        match self {
            Head::Void { seqbase } => seqbase + i as Oid,
            Head::Oids(v) => v[i],
        }
    }

    /// Stored bytes per BUN for this head: 0 when void, 4 otherwise —
    /// the Fig. 4 "8 bytes → 4 bytes" step.
    pub fn width(&self) -> usize {
        match self {
            Head::Void { .. } => 0,
            Head::Oids(_) => std::mem::size_of::<Oid>(),
        }
    }

    /// Length if materialized (`None` for void, which adopts the tail's).
    fn stored_len(&self) -> Option<usize> {
        match self {
            Head::Void { .. } => None,
            Head::Oids(v) => Some(v.len()),
        }
    }
}

/// Tail-column properties Monet tracks to enable algorithm shortcuts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TailProps {
    /// Values are non-decreasing in position order.
    pub sorted: bool,
    /// Values are unique ("key" property).
    pub key: bool,
}

/// A Binary Association Table. See module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct Bat {
    head: Head,
    tail: Column,
    props: TailProps,
}

impl Bat {
    /// Construct from an explicit head and tail.
    pub fn new(head: Head, tail: Column) -> Result<Self, StorageError> {
        if let Some(hl) = head.stored_len() {
            if hl != tail.len() {
                return Err(StorageError::LengthMismatch { head: hl, tail: tail.len() });
            }
        }
        Ok(Self { head, tail, props: TailProps::default() })
    }

    /// The common case: a void head starting at `seqbase`.
    pub fn with_void_head(seqbase: Oid, tail: Column) -> Self {
        Self { head: Head::Void { seqbase }, tail, props: TailProps::default() }
    }

    /// Set tail properties (caller asserts them; `debug_assert`-validated).
    pub fn with_props(mut self, props: TailProps) -> Self {
        debug_assert!(!props.sorted || self.check_sorted(), "props claim sorted but tail is not");
        self.props = props;
        self
    }

    /// Number of BUNs.
    pub fn len(&self) -> usize {
        self.tail.len()
    }

    /// True if the BAT has no BUNs.
    pub fn is_empty(&self) -> bool {
        self.tail.is_empty()
    }

    /// The head column.
    pub fn head(&self) -> &Head {
        &self.head
    }

    /// The tail column.
    pub fn tail(&self) -> &Column {
        &self.tail
    }

    /// Tail properties.
    pub fn props(&self) -> TailProps {
        self.props
    }

    /// True if the head is virtual (void).
    pub fn head_is_void(&self) -> bool {
        matches!(self.head, Head::Void { .. })
    }

    /// OID at position `i`.
    #[inline]
    pub fn head_oid(&self, i: usize) -> Oid {
        self.head.get(i)
    }

    /// Tail value at position `i` (dynamic typing; not for hot paths).
    pub fn tail_value(&self, i: usize) -> Value {
        self.tail.get(i)
    }

    /// The BUN at position `i`.
    pub fn bun(&self, i: usize) -> (Oid, Value) {
        (self.head_oid(i), self.tail_value(i))
    }

    /// Stored bytes per BUN — the Figure 4 accounting: materialized-OID int
    /// BAT = 8, void int BAT = 4, void byte-encoded string BAT = 1.
    pub fn bun_width(&self) -> usize {
        self.head.width() + self.tail.tail_width()
    }

    /// Total stored bytes of the BUN array (excludes dictionary heaps).
    pub fn stored_bytes(&self) -> usize {
        self.bun_width() * self.len()
    }

    /// Position of `oid`, using O(1) positional lookup on void heads
    /// (the §3.1 fast path) and a scan otherwise.
    pub fn find_oid(&self, oid: Oid) -> Option<usize> {
        match &self.head {
            Head::Void { seqbase } => {
                let pos = oid.checked_sub(*seqbase)? as usize;
                (pos < self.len()).then_some(pos)
            }
            Head::Oids(v) => v.iter().position(|&o| o == oid),
        }
    }

    /// Iterate over BUNs (dynamic typing; for tests and display).
    pub fn iter(&self) -> impl Iterator<Item = (Oid, Value)> + '_ {
        (0..self.len()).map(|i| self.bun(i))
    }

    /// Materialize the head as an OID column (used by `reverse`).
    pub fn materialized_head(&self) -> Vec<Oid> {
        match &self.head {
            Head::Void { seqbase } => (0..self.len() as Oid).map(|i| seqbase + i).collect(),
            Head::Oids(v) => v.clone(),
        }
    }

    /// Monet's `reverse`: swap head and tail. Only defined when the tail is
    /// an OID column (the common case in query plans: join indices and
    /// selection results).
    pub fn reverse(&self) -> Result<Bat, StorageError> {
        match &self.tail {
            Column::Oid(tail_oids) => Ok(Bat {
                head: Head::Oids(tail_oids.clone()),
                tail: Column::Oid(self.materialized_head()),
                props: TailProps::default(),
            }),
            _ => Err(StorageError::TypeMismatch {
                expected: super::ValueType::Oid,
                got: self.tail.value_type(),
            }),
        }
    }

    /// Monet's `mirror`: a BAT mapping each OID to itself.
    pub fn mirror(&self) -> Bat {
        match &self.head {
            Head::Void { seqbase } => Bat {
                head: Head::Void { seqbase: *seqbase },
                tail: Column::Oid(self.materialized_head()),
                props: TailProps { sorted: true, key: true },
            },
            Head::Oids(v) => Bat {
                head: Head::Oids(v.clone()),
                tail: Column::Oid(v.clone()),
                props: TailProps::default(),
            },
        }
    }

    fn check_sorted(&self) -> bool {
        let n = self.len();
        if n < 2 {
            return true;
        }
        (1..n).all(|i| {
            let a = self.tail.get(i - 1);
            let b = self.tail.get(i);
            match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => x <= y,
                _ => true, // strings: property not validated here
            }
        })
    }
}

/// Incremental BAT construction with automatic void-head detection.
///
/// If every appended OID continues the dense ascending run started by the
/// first one, the builder produces a [`Head::Void`]; otherwise it
/// materializes (the paper: decomposition BATs always end up void).
#[derive(Debug)]
pub struct BatBuilder {
    oids: Vec<Oid>,
    dense: bool,
    tail: Column,
}

impl BatBuilder {
    /// Start a builder whose tail has the type of `template`.
    pub fn new(tail: Column) -> Self {
        assert!(tail.is_empty(), "builder requires an empty tail column");
        Self { oids: Vec::new(), dense: true, tail }
    }

    /// Append one BUN.
    pub fn push(&mut self, oid: Oid, v: &Value) -> Result<(), StorageError> {
        self.tail.push(v)?;
        if self.dense && !self.oids.is_empty() {
            let expected = self.oids[0] + self.oids.len() as Oid;
            if oid != expected {
                self.dense = false;
            }
        }
        self.oids.push(oid);
        Ok(())
    }

    /// Finish, producing a void head when possible.
    pub fn finish(self) -> Bat {
        let head = if self.dense {
            Head::Void { seqbase: self.oids.first().copied().unwrap_or(0) }
        } else {
            Head::Oids(self.oids)
        };
        Bat { head, tail: self.tail, props: TailProps::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::column::StrColumn;

    fn int_bat() -> Bat {
        Bat::with_void_head(1000, Column::I32(vec![10, 11, 13, 12]))
    }

    #[test]
    fn void_head_positional_semantics() {
        let b = int_bat();
        assert_eq!(b.len(), 4);
        assert_eq!(b.head_oid(0), 1000);
        assert_eq!(b.head_oid(3), 1003);
        assert_eq!(b.bun(2), (1002, Value::I32(13)));
        assert_eq!(b.find_oid(1002), Some(2));
        assert_eq!(b.find_oid(999), None);
        assert_eq!(b.find_oid(1004), None);
    }

    #[test]
    fn figure4_bun_widths() {
        // Materialized [oid, int] BUN: 8 bytes.
        let mat = Bat::new(Head::Oids(vec![1, 2, 3]), Column::I32(vec![7, 8, 9])).unwrap();
        assert_eq!(mat.bun_width(), 8);
        // Void head halves it.
        let void = int_bat();
        assert_eq!(void.bun_width(), 4);
        // Void + byte encoding: 1 byte per BUN (the shipmode column).
        let ship = Bat::with_void_head(
            1000,
            Column::Str(StrColumn::from_strs(["AIR", "MAIL", "AIR", "TRUCK"])),
        );
        assert_eq!(ship.bun_width(), 1);
        assert_eq!(ship.stored_bytes(), 4);
    }

    #[test]
    fn length_mismatch_rejected() {
        let err = Bat::new(Head::Oids(vec![1]), Column::I32(vec![1, 2])).unwrap_err();
        assert_eq!(err, StorageError::LengthMismatch { head: 1, tail: 2 });
    }

    #[test]
    fn builder_detects_dense_heads() {
        let mut b = BatBuilder::new(Column::I32(vec![]));
        for (i, v) in [5, 6, 7].iter().enumerate() {
            b.push(100 + i as Oid, &Value::I32(*v)).unwrap();
        }
        let bat = b.finish();
        assert!(bat.head_is_void());
        assert_eq!(bat.head_oid(2), 102);
    }

    #[test]
    fn builder_materializes_non_dense_heads() {
        let mut b = BatBuilder::new(Column::I32(vec![]));
        b.push(1, &Value::I32(10)).unwrap();
        b.push(5, &Value::I32(20)).unwrap();
        let bat = b.finish();
        assert!(!bat.head_is_void());
        assert_eq!(bat.head_oid(1), 5);
        assert_eq!(bat.bun_width(), 8);
    }

    #[test]
    fn reverse_swaps_columns() {
        let b = Bat::with_void_head(0, Column::Oid(vec![30, 10, 20]));
        let r = b.reverse().unwrap();
        assert_eq!(r.head_oid(0), 30);
        assert_eq!(r.tail_value(0), Value::Oid(0));
        assert!(b.reverse().unwrap().reverse().is_ok());
    }

    #[test]
    fn reverse_requires_oid_tail() {
        assert!(int_bat().reverse().is_err());
    }

    #[test]
    fn mirror_maps_oids_to_themselves() {
        let m = int_bat().mirror();
        assert_eq!(m.bun(1), (1001, Value::Oid(1001)));
        assert!(m.props().key);
    }

    #[test]
    fn empty_builder_yields_empty_void_bat() {
        let bat = BatBuilder::new(Column::I32(vec![])).finish();
        assert!(bat.is_empty());
        assert!(bat.head_is_void());
    }
}
