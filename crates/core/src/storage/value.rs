//! Dynamically typed cell values.
//!
//! `Value` is the convenience currency of the non-performance-critical API
//! (building tables, inspecting results, tests). Hot paths — scans, joins,
//! aggregates — always work on the typed column arrays directly; `Value`
//! never appears in an inner loop.

use std::fmt;

use super::Oid;

/// The type of a [`Value`] / column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueType {
    /// 1-byte unsigned integer (also the narrow byte-encoding width).
    U8,
    /// 2-byte unsigned integer (the wide byte-encoding width).
    U16,
    /// 4-byte signed integer.
    I32,
    /// 8-byte signed integer.
    I64,
    /// 8-byte IEEE float.
    F64,
    /// 4-byte object identifier.
    Oid,
    /// Variable-length string (stored dictionary-encoded).
    Str,
}

impl ValueType {
    /// Bytes one value of this type occupies in a BUN tail. Strings report
    /// the width of their dictionary code *as stored*, which depends on the
    /// column; this returns the conservative 2-byte default and is refined
    /// by [`super::Column::tail_width`].
    pub fn fixed_width(self) -> usize {
        match self {
            ValueType::U8 => 1,
            ValueType::U16 => 2,
            ValueType::I32 => 4,
            ValueType::I64 => 8,
            ValueType::F64 => 8,
            ValueType::Oid => 4,
            ValueType::Str => 2,
        }
    }
}

/// One dynamically typed value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// 1-byte unsigned integer.
    U8(u8),
    /// 2-byte unsigned integer.
    U16(u16),
    /// 4-byte signed integer.
    I32(i32),
    /// 8-byte signed integer.
    I64(i64),
    /// 8-byte IEEE float.
    F64(f64),
    /// Object identifier.
    Oid(Oid),
    /// Owned string.
    Str(String),
}

impl Value {
    /// The type tag of this value.
    pub fn value_type(&self) -> ValueType {
        match self {
            Value::U8(_) => ValueType::U8,
            Value::U16(_) => ValueType::U16,
            Value::I32(_) => ValueType::I32,
            Value::I64(_) => ValueType::I64,
            Value::F64(_) => ValueType::F64,
            Value::Oid(_) => ValueType::Oid,
            Value::Str(_) => ValueType::Str,
        }
    }

    /// Extract an `i32`, if that is what this is.
    pub fn as_i32(&self) -> Option<i32> {
        match self {
            Value::I32(v) => Some(*v),
            _ => None,
        }
    }

    /// Extract an `i64`, widening from the integer types.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::U8(v) => Some(*v as i64),
            Value::U16(v) => Some(*v as i64),
            Value::I32(v) => Some(*v as i64),
            Value::I64(v) => Some(*v),
            Value::Oid(v) => Some(*v as i64),
            _ => None,
        }
    }

    /// Extract an `f64`, widening from the numeric types.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(v) => Some(*v),
            other => other.as_i64().map(|v| v as f64),
        }
    }

    /// Extract a string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::U8(v) => write!(f, "{v}"),
            Value::U16(v) => write!(f, "{v}"),
            Value::I32(v) => write!(f, "{v}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Oid(v) => write!(f, "{v}@"),
            Value::Str(v) => write!(f, "{v}"),
        }
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::I32(v)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_tags_and_widths() {
        assert_eq!(Value::I32(1).value_type(), ValueType::I32);
        assert_eq!(ValueType::I32.fixed_width(), 4);
        assert_eq!(ValueType::U8.fixed_width(), 1);
        assert_eq!(ValueType::F64.fixed_width(), 8);
        assert_eq!(ValueType::Oid.fixed_width(), 4);
    }

    #[test]
    fn widening_accessors() {
        assert_eq!(Value::U8(200).as_i64(), Some(200));
        assert_eq!(Value::I32(-5).as_f64(), Some(-5.0));
        assert_eq!(Value::Str("x".into()).as_i64(), None);
        assert_eq!(Value::Str("x".into()).as_str(), Some("x"));
        assert_eq!(Value::F64(1.5).as_f64(), Some(1.5));
    }

    #[test]
    fn from_conversions() {
        assert_eq!(Value::from(3), Value::I32(3));
        assert_eq!(Value::from("ab"), Value::Str("ab".into()));
        assert_eq!(Value::from(2.5), Value::F64(2.5));
    }

    #[test]
    fn display() {
        assert_eq!(Value::I32(42).to_string(), "42");
        assert_eq!(Value::Oid(7).to_string(), "7@");
        assert_eq!(Value::Str("MAIL".into()).to_string(), "MAIL");
    }
}
