//! Vertically decomposed storage — §3.1 / Figure 4 of the paper.
//!
//! Monet stores each column of a relational table in a separate binary table
//! (a *BAT*), represented as an array of fixed-size two-field
//! `\[OID, value\]` records (*BUNs*). The two space optimizations of §3.1 —
//! virtual OIDs and byte encodings — together shrink the 8-byte BUN of a
//! low-cardinality column like `shipmode` to a single byte, which is what
//! makes the stride-1 scan of Figure 3 reachable in practice.
//!
//! Submodules:
//! * [`value`] — dynamically typed cell values for the non-hot-path API.
//! * [`dict`] — string dictionaries (the paper's "encoding BAT").
//! * `column` — typed column storage including 1/2-byte encoded columns.
//! * [`bat`] — the BAT itself: head (void or materialized) + tail column.
//! * [`table`] — DSM decomposition of an n-ary relation into BATs.
//! * [`nsm`] — the N-ary (slotted-record) layout used as a baseline.

pub mod bat;
pub mod column;
pub mod dict;
pub mod nsm;
pub mod table;
pub mod value;

pub use bat::{Bat, BatBuilder, Head, TailProps};
pub use column::{Codes, Column, StrColumn};
pub use dict::StrDict;
pub use nsm::{FieldType, RowSchema, RowTable};
pub use table::{AttachedIndex, ColType, DecomposedTable, NamedBat, TableBuilder};
pub use value::{Value, ValueType};

use std::fmt;

/// Object identifier. Monet's OIDs are 4-byte system-generated surrogates;
/// `u32` matches the paper's 8-byte `\[OID, int\]` BUN layout exactly.
pub type Oid = u32;

/// Errors from storage operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// Head and tail columns differ in length.
    LengthMismatch {
        /// Head length.
        head: usize,
        /// Tail length.
        tail: usize,
    },
    /// A value of the wrong type was supplied to a typed column.
    TypeMismatch {
        /// Type the column stores.
        expected: ValueType,
        /// Type that was supplied.
        got: ValueType,
    },
    /// A dictionary-encoded column exceeded the capacity of its code width
    /// (e.g. a 257th distinct string in a `u8`-coded column).
    DictOverflow {
        /// Maximum number of codes the width allows.
        capacity: usize,
    },
    /// An operation requiring a void (virtual-OID) head was applied to a
    /// BAT with a materialized head.
    NonVoidHead,
    /// Row arity does not match the table schema.
    ArityMismatch {
        /// Number of columns in the schema.
        expected: usize,
        /// Number of values supplied.
        got: usize,
    },
    /// Unknown column name.
    NoSuchColumn(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::LengthMismatch { head, tail } => {
                write!(f, "head/tail length mismatch: {head} vs {tail}")
            }
            StorageError::TypeMismatch { expected, got } => {
                write!(f, "type mismatch: expected {expected:?}, got {got:?}")
            }
            StorageError::DictOverflow { capacity } => {
                write!(f, "dictionary overflow: code width allows {capacity} distinct values")
            }
            StorageError::NonVoidHead => write!(f, "operation requires a void head"),
            StorageError::ArityMismatch { expected, got } => {
                write!(f, "row arity mismatch: schema has {expected} columns, got {got}")
            }
            StorageError::NoSuchColumn(name) => write!(f, "no such column: {name}"),
        }
    }
}

impl std::error::Error for StorageError {}
