//! Full vertical (DSM) decomposition of an n-ary relation — Figure 4.
//!
//! A [`DecomposedTable`] stores one void-headed BAT per attribute. All BATs
//! share the same seqbase, so a logical tuple is the set of BUNs with equal
//! OID and tuple reconstruction is positional.

use crate::compress::CompressedColumn;
use crate::index::{ColumnIndex, IndexKind};

use super::bat::{Bat, BatBuilder};
use super::column::{Column, StrColumn};
use super::nsm::{FieldType, RowSchema, RowTable};
use super::value::{Value, ValueType};
use super::{Oid, StorageError};

/// A named column of a decomposed table.
#[derive(Debug, Clone)]
pub struct NamedBat {
    /// Attribute name.
    pub name: String,
    /// The column's BAT (void head).
    pub bat: Bat,
}

/// A secondary index attached to one column of a [`DecomposedTable`].
#[derive(Debug, Clone)]
pub struct AttachedIndex {
    /// The indexed column.
    pub column: String,
    /// The built index.
    pub index: ColumnIndex,
}

/// A vertically decomposed relation: one BAT per attribute.
#[derive(Debug, Clone)]
pub struct DecomposedTable {
    name: String,
    seqbase: Oid,
    len: usize,
    cols: Vec<NamedBat>,
    indexes: Vec<AttachedIndex>,
    compressed: Vec<Option<CompressedColumn>>,
}

impl DecomposedTable {
    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of logical tuples.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the table has no tuples.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// First OID.
    pub fn seqbase(&self) -> Oid {
        self.seqbase
    }

    /// All columns in declaration order.
    pub fn columns(&self) -> &[NamedBat] {
        &self.cols
    }

    /// The BAT for attribute `name`.
    pub fn bat(&self, name: &str) -> Result<&Bat, StorageError> {
        self.cols
            .iter()
            .find(|c| c.name == name)
            .map(|c| &c.bat)
            .ok_or_else(|| StorageError::NoSuchColumn(name.to_owned()))
    }

    /// Build and attach a secondary index of `kind` on column `col`
    /// (replacing an existing index of the same kind on that column).
    /// Fails for unknown columns and for unindexable column types.
    pub fn create_index(&mut self, col: &str, kind: IndexKind) -> Result<(), StorageError> {
        let index = ColumnIndex::build(self.bat(col)?, kind)?;
        self.indexes.retain(|a| !(a.column == col && a.index.kind() == kind));
        self.indexes.push(AttachedIndex { column: col.to_owned(), index });
        Ok(())
    }

    /// All attached indexes, in creation order.
    pub fn indexes(&self) -> &[AttachedIndex] {
        &self.indexes
    }

    /// The indexes attached to column `col`, in creation order.
    pub fn indexes_on<'a>(&'a self, col: &'a str) -> impl Iterator<Item = &'a ColumnIndex> {
        self.indexes.iter().filter(move |a| a.column == col).map(|a| &a.index)
    }

    /// The index of `kind` on column `col`, if one was created.
    pub fn index_of(&self, col: &str, kind: IndexKind) -> Option<&ColumnIndex> {
        self.indexes.iter().find(|a| a.column == col && a.index.kind() == kind).map(|a| &a.index)
    }

    /// The compressed representation of column `col`, if
    /// [`crate::compress::pick_encoding`] found one worth keeping.
    pub fn compressed_of(&self, col: &str) -> Option<&CompressedColumn> {
        let idx = self.cols.iter().position(|c| c.name == col)?;
        self.compressed.get(idx)?.as_ref()
    }

    /// (Re)build the compressed representations of every column, per
    /// [`crate::compress::pick_encoding`]. [`TableBuilder::finish`] does
    /// this automatically; call it again after mutating columns in place.
    pub fn build_compressed(&mut self) {
        self.compressed =
            self.cols.iter().map(|c| CompressedColumn::encode(c.bat.tail())).collect();
    }

    /// Assemble a table from pre-built void-headed columns (all of length
    /// `len`). Crate-internal: the sharding layer ([`crate::shard`]) gathers
    /// parent columns directly — keeping shard dictionaries code-compatible
    /// with the parent — instead of re-interning through [`TableBuilder`].
    pub(crate) fn from_parts(name: String, seqbase: Oid, len: usize, cols: Vec<NamedBat>) -> Self {
        debug_assert!(cols.iter().all(|c| c.bat.len() == len));
        Self { name, seqbase, len, cols, indexes: Vec::new(), compressed: Vec::new() }
    }

    /// Reconstruct logical tuple `oid` (positional; O(columns)).
    pub fn tuple(&self, oid: Oid) -> Option<Vec<Value>> {
        let pos = oid.checked_sub(self.seqbase)? as usize;
        if pos >= self.len {
            return None;
        }
        Some(self.cols.iter().map(|c| c.bat.tail_value(pos)).collect())
    }

    /// Stored bytes per logical tuple across all BATs — the Fig. 4
    /// comparison number (≈ 80 B relational vs the sum of BUN widths here).
    pub fn bytes_per_tuple(&self) -> usize {
        self.cols.iter().map(|c| c.bat.bun_width()).sum()
    }

    /// Per-column `(name, bun_width)` breakdown for reports.
    pub fn width_breakdown(&self) -> Vec<(&str, usize)> {
        self.cols.iter().map(|c| (c.name.as_str(), c.bat.bun_width())).collect()
    }

    /// Convert to the N-ary (row-store) layout for baseline comparisons.
    /// Encoded string columns are widened to their code width in the record
    /// (matching what a relational system would at best store inline for a
    /// dictionary-compressed column; a `varchar` would be far wider).
    pub fn to_nsm(&self) -> RowTable {
        let fields: Vec<(String, FieldType)> = self
            .cols
            .iter()
            .map(|c| {
                let ft = match c.bat.tail().value_type() {
                    ValueType::U8 => FieldType::U8,
                    ValueType::U16 => FieldType::U16,
                    ValueType::I32 => FieldType::I32,
                    ValueType::I64 => FieldType::I64,
                    ValueType::F64 => FieldType::F64,
                    ValueType::Oid => FieldType::I32,
                    ValueType::Str => match c.bat.tail().tail_width() {
                        1 => FieldType::U8,
                        _ => FieldType::U16,
                    },
                };
                (c.name.clone(), ft)
            })
            .collect();
        let schema = RowSchema::new(fields);
        let mut rt = RowTable::new(schema);
        for pos in 0..self.len {
            let row: Vec<Value> = self
                .cols
                .iter()
                .map(|c| match c.bat.tail() {
                    Column::Str(sc) => {
                        let code = sc.codes.get(pos);
                        if sc.codes.width() == 1 {
                            Value::U8(code as u8)
                        } else {
                            Value::U16(code as u16)
                        }
                    }
                    Column::Oid(v) => Value::I32(v[pos] as i32),
                    other => other.get(pos),
                })
                .collect();
            rt.push_row(&row).expect("schema derived from table");
        }
        rt
    }
}

/// Declared column type for [`TableBuilder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColType {
    /// 4-byte integer.
    I32,
    /// 8-byte integer.
    I64,
    /// 8-byte float.
    F64,
    /// 1-byte integer.
    U8,
    /// Dictionary-encoded string (code width chosen automatically).
    Str,
}

/// Builds a [`DecomposedTable`] row by row.
#[derive(Debug)]
pub struct TableBuilder {
    name: String,
    seqbase: Oid,
    builders: Vec<(String, BatBuilder)>,
    next_oid: Oid,
}

impl TableBuilder {
    /// Start a table named `name` with OIDs from `seqbase`.
    pub fn new(name: &str, seqbase: Oid) -> Self {
        Self { name: name.to_owned(), seqbase, builders: Vec::new(), next_oid: seqbase }
    }

    /// Declare a column.
    pub fn column(mut self, name: &str, ty: ColType) -> Self {
        let col = match ty {
            ColType::I32 => Column::I32(Vec::new()),
            ColType::I64 => Column::I64(Vec::new()),
            ColType::F64 => Column::F64(Vec::new()),
            ColType::U8 => Column::U8(Vec::new()),
            ColType::Str => Column::Str(StrColumn::new_u16()),
        };
        self.builders.push((name.to_owned(), BatBuilder::new(col)));
        self
    }

    /// Append one row (values in declaration order).
    pub fn push_row(&mut self, row: &[Value]) -> Result<(), StorageError> {
        if row.len() != self.builders.len() {
            return Err(StorageError::ArityMismatch {
                expected: self.builders.len(),
                got: row.len(),
            });
        }
        let oid = self.next_oid;
        for ((_, b), v) in self.builders.iter_mut().zip(row) {
            b.push(oid, v)?;
        }
        self.next_oid += 1;
        Ok(())
    }

    /// Finish the table, narrowing string columns to 1-byte codes where the
    /// dictionary allows (the paper's byte-encoding step) and building
    /// compressed representations for the columns where
    /// [`crate::compress::pick_encoding`] finds a saving.
    pub fn finish(self) -> DecomposedTable {
        let len = (self.next_oid - self.seqbase) as usize;
        let cols: Vec<NamedBat> = self
            .builders
            .into_iter()
            .map(|(name, b)| {
                let bat = narrow_str_codes(b.finish());
                NamedBat { name, bat }
            })
            .collect();
        let mut t = DecomposedTable {
            name: self.name,
            seqbase: self.seqbase,
            len,
            cols,
            indexes: Vec::new(),
            compressed: Vec::new(),
        };
        t.build_compressed();
        t
    }
}

/// Re-encode a u16-coded string column as u8 codes when ≤ 256 distinct
/// values were seen.
fn narrow_str_codes(bat: Bat) -> Bat {
    use super::column::Codes;
    if let Column::Str(sc) = bat.tail() {
        if sc.dict.len() <= 256 {
            if let Codes::U16(codes) = &sc.codes {
                let narrowed = StrColumn {
                    codes: Codes::U8(codes.iter().map(|&c| c as u8).collect()),
                    dict: sc.dict.clone(),
                };
                let seqbase = match bat.head() {
                    super::bat::Head::Void { seqbase } => *seqbase,
                    super::bat::Head::Oids(_) => unreachable!("table BATs are void"),
                };
                return Bat::with_void_head(seqbase, Column::Str(narrowed));
            }
        }
    }
    bat
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item_like() -> DecomposedTable {
        let mut b = TableBuilder::new("Item", 1000)
            .column("qty", ColType::I32)
            .column("price", ColType::F64)
            .column("shipmode", ColType::Str);
        let rows = [(1, 92.80, "SHIP"), (3, 37.50, "AIR"), (2, 11.50, "MAIL"), (6, 75.00, "AIR")];
        for (q, p, s) in rows {
            b.push_row(&[Value::I32(q), Value::F64(p), Value::from(s)]).unwrap();
        }
        b.finish()
    }

    #[test]
    fn decomposition_produces_void_bats() {
        let t = item_like();
        assert_eq!(t.len(), 4);
        for c in t.columns() {
            assert!(c.bat.head_is_void(), "column {} must be void", c.name);
            assert_eq!(c.bat.len(), 4);
        }
    }

    #[test]
    fn tuple_reconstruction_is_positional() {
        let t = item_like();
        let tup = t.tuple(1002).unwrap();
        assert_eq!(tup[0], Value::I32(2));
        assert_eq!(tup[2], Value::Str("MAIL".into()));
        assert!(t.tuple(999).is_none());
        assert!(t.tuple(1004).is_none());
    }

    #[test]
    fn string_columns_get_byte_codes() {
        let t = item_like();
        let ship = t.bat("shipmode").unwrap();
        assert_eq!(ship.bun_width(), 1, "void + u8 encoding = 1 byte per BUN");
        assert_eq!(t.bytes_per_tuple(), 4 + 8 + 1);
    }

    #[test]
    fn nsm_conversion_matches_values() {
        let t = item_like();
        let rt = t.to_nsm();
        assert_eq!(rt.len(), 4);
        // Row 2: qty=2, price=11.50, shipmode code for "MAIL".
        assert_eq!(rt.get(2, 0).unwrap(), Value::I32(2));
        assert_eq!(rt.get(2, 1).unwrap(), Value::F64(11.50));
        let ship = t.bat("shipmode").unwrap().tail().as_str_col().unwrap();
        let mail_code = ship.dict.code_of("MAIL").unwrap();
        assert_eq!(rt.get(2, 2).unwrap(), Value::U8(mail_code as u8));
        assert_eq!(rt.record_width(), 4 + 8 + 1);
    }

    #[test]
    fn indexes_attach_per_column_and_kind() {
        use crate::index::{key_of_i32, IndexKind};
        use memsim::NullTracker;
        let mut t = item_like();
        t.create_index("qty", IndexKind::CsBTree).unwrap();
        t.create_index("qty", IndexKind::Hash).unwrap();
        t.create_index("shipmode", IndexKind::Hash).unwrap();
        // Re-creating an existing kind replaces, not duplicates.
        t.create_index("qty", IndexKind::Hash).unwrap();
        assert_eq!(t.indexes().len(), 3);
        assert_eq!(t.indexes_on("qty").count(), 2);
        let b = t.index_of("qty", IndexKind::CsBTree).unwrap();
        let mut hits = vec![];
        b.lookup_eq(&mut NullTracker, key_of_i32(2), |o| hits.push(o));
        assert_eq!(hits, vec![1002]);
        assert!(t.index_of("qty", IndexKind::TTree).is_none());
        assert!(t.index_of("price", IndexKind::Hash).is_none());
        // Errors: unknown column, unindexable type.
        assert!(t.create_index("ghost", IndexKind::Hash).is_err());
        assert!(matches!(
            t.create_index("price", IndexKind::CsBTree),
            Err(StorageError::TypeMismatch { .. })
        ));
        // Cloning carries the catalog along.
        let c = t.clone();
        assert_eq!(c.indexes().len(), 3);
    }

    #[test]
    fn finish_builds_compressed_representations() {
        use crate::compress::Encoding;
        let mut b = TableBuilder::new("t", 0)
            .column("clustered", ColType::I32)
            .column("price", ColType::F64)
            .column("mode", ColType::Str);
        for i in 0..4000 {
            b.push_row(&[
                Value::I32(i / 64),
                Value::F64(i as f64),
                Value::from(["AIR", "SHIP", "MAIL"][i as usize % 3]),
            ])
            .unwrap();
        }
        let t = b.finish();
        assert_eq!(t.compressed_of("clustered").unwrap().encoding(), Encoding::Rle);
        assert_eq!(t.compressed_of("mode").unwrap().encoding(), Encoding::Dict);
        assert!(t.compressed_of("price").is_none(), "f64 stays uncompressed");
        assert!(t.compressed_of("ghost").is_none());
        // The compressed form decodes back to the stored column.
        let qty = t.bat("clustered").unwrap().tail().as_i32().unwrap();
        assert_eq!(t.compressed_of("clustered").unwrap().decode(), qty);
    }

    #[test]
    fn arity_and_missing_column_errors() {
        let mut b = TableBuilder::new("t", 0).column("a", ColType::I32);
        assert!(matches!(
            b.push_row(&[Value::I32(1), Value::I32(2)]),
            Err(StorageError::ArityMismatch { expected: 1, got: 2 })
        ));
        b.push_row(&[Value::I32(1)]).unwrap();
        let t = b.finish();
        assert!(matches!(t.bat("nope"), Err(StorageError::NoSuchColumn(_))));
    }
}
