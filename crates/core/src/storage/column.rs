//! Typed column storage: the tail arrays of BATs.
//!
//! Columns are plain contiguous `Vec`s of fixed-width values — the layout
//! whose stride-1/stride-8 behaviour Figure 3 measures. String columns are
//! always dictionary-encoded ([`StrColumn`]) with a 1- or 2-byte code width
//! (§3.1's byte encodings); there is deliberately no "raw string column",
//! because the paper's design argues such a thing should not exist in the
//! hot path.

use super::dict::StrDict;
use super::value::{Value, ValueType};
use super::{Oid, StorageError};

/// Code width of an encoded string column.
#[derive(Debug, Clone, PartialEq)]
pub enum Codes {
    /// 1-byte codes (≤ 256 distinct values) — the Fig. 4 `shipmode` case.
    U8(Vec<u8>),
    /// 2-byte codes (≤ 65536 distinct values).
    U16(Vec<u16>),
}

impl Codes {
    /// Number of entries.
    pub fn len(&self) -> usize {
        match self {
            Codes::U8(v) => v.len(),
            Codes::U16(v) => v.len(),
        }
    }

    /// True if there are no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Code at position `i`.
    #[inline]
    pub fn get(&self, i: usize) -> u32 {
        match self {
            Codes::U8(v) => v[i] as u32,
            Codes::U16(v) => v[i] as u32,
        }
    }

    /// Bytes per code.
    pub fn width(&self) -> usize {
        match self {
            Codes::U8(_) => 1,
            Codes::U16(_) => 2,
        }
    }

    /// Append a code, or fail if it exceeds the width.
    pub fn push(&mut self, code: u32) -> Result<(), StorageError> {
        match self {
            Codes::U8(v) => {
                if code > u8::MAX as u32 {
                    return Err(StorageError::DictOverflow { capacity: 256 });
                }
                v.push(code as u8);
            }
            Codes::U16(v) => {
                if code > u16::MAX as u32 {
                    return Err(StorageError::DictOverflow { capacity: 65536 });
                }
                v.push(code as u16);
            }
        }
        Ok(())
    }
}

/// A dictionary-encoded string column: fixed-width codes + encoding BAT.
#[derive(Debug, Clone, PartialEq)]
pub struct StrColumn {
    /// The per-row codes.
    pub codes: Codes,
    /// The dictionary ("encoding BAT" in Fig. 4).
    pub dict: StrDict,
}

impl PartialEq for StrDict {
    fn eq(&self, other: &Self) -> bool {
        self.values() == other.values()
    }
}

impl StrColumn {
    /// Empty column with 1-byte codes (widened on demand by the builder).
    pub fn new_u8() -> Self {
        Self { codes: Codes::U8(Vec::new()), dict: StrDict::new() }
    }

    /// Empty column with 2-byte codes.
    pub fn new_u16() -> Self {
        Self { codes: Codes::U16(Vec::new()), dict: StrDict::new() }
    }

    /// Build from strings, choosing the narrowest code width that fits.
    pub fn from_strs<'a>(vals: impl IntoIterator<Item = &'a str>) -> Self {
        let vals: Vec<&str> = vals.into_iter().collect();
        let mut dict = StrDict::new();
        let raw: Vec<u32> = vals.iter().map(|s| dict.intern(s)).collect();
        let codes = if dict.len() <= 256 {
            Codes::U8(raw.iter().map(|&c| c as u8).collect())
        } else {
            Codes::U16(raw.iter().map(|&c| c as u16).collect())
        };
        Self { codes, dict }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True if there are no rows.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Decoded string at row `i`.
    pub fn get(&self, i: usize) -> &str {
        self.dict.decode(self.codes.get(i))
    }

    /// Append a string (interning it).
    pub fn push(&mut self, s: &str) -> Result<(), StorageError> {
        let code = self.dict.intern(s);
        self.codes.push(code)
    }
}

/// A typed column (the tail of a BAT).
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// 1-byte integers (and the storage for u8-encoded categorical data).
    U8(Vec<u8>),
    /// 2-byte integers.
    U16(Vec<u16>),
    /// 4-byte integers.
    I32(Vec<i32>),
    /// 8-byte integers.
    I64(Vec<i64>),
    /// 8-byte floats.
    F64(Vec<f64>),
    /// OIDs (join indices, reconstruction inputs).
    Oid(Vec<Oid>),
    /// Dictionary-encoded strings.
    Str(StrColumn),
}

impl Column {
    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::U8(v) => v.len(),
            Column::U16(v) => v.len(),
            Column::I32(v) => v.len(),
            Column::I64(v) => v.len(),
            Column::F64(v) => v.len(),
            Column::Oid(v) => v.len(),
            Column::Str(c) => c.len(),
        }
    }

    /// True if there are no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The column's value type.
    pub fn value_type(&self) -> ValueType {
        match self {
            Column::U8(_) => ValueType::U8,
            Column::U16(_) => ValueType::U16,
            Column::I32(_) => ValueType::I32,
            Column::I64(_) => ValueType::I64,
            Column::F64(_) => ValueType::F64,
            Column::Oid(_) => ValueType::Oid,
            Column::Str(_) => ValueType::Str,
        }
    }

    /// Bytes per value *as stored* — the quantity Figure 4 accounts.
    /// Encoded string columns report their code width (1 or 2), which is the
    /// paper's "1 byte per column" for `shipmode`.
    pub fn tail_width(&self) -> usize {
        match self {
            Column::U8(_) => 1,
            Column::U16(_) => 2,
            Column::I32(_) => 4,
            Column::I64(_) => 8,
            Column::F64(_) => 8,
            Column::Oid(_) => 4,
            Column::Str(c) => c.codes.width(),
        }
    }

    /// Dynamically typed value at row `i` (not for hot paths).
    pub fn get(&self, i: usize) -> Value {
        match self {
            Column::U8(v) => Value::U8(v[i]),
            Column::U16(v) => Value::U16(v[i]),
            Column::I32(v) => Value::I32(v[i]),
            Column::I64(v) => Value::I64(v[i]),
            Column::F64(v) => Value::F64(v[i]),
            Column::Oid(v) => Value::Oid(v[i]),
            Column::Str(c) => Value::Str(c.get(i).to_owned()),
        }
    }

    /// Append a dynamically typed value.
    pub fn push(&mut self, v: &Value) -> Result<(), StorageError> {
        let expected = self.value_type();
        match (self, v) {
            (Column::U8(c), Value::U8(x)) => c.push(*x),
            (Column::U16(c), Value::U16(x)) => c.push(*x),
            (Column::I32(c), Value::I32(x)) => c.push(*x),
            (Column::I64(c), Value::I64(x)) => c.push(*x),
            (Column::F64(c), Value::F64(x)) => c.push(*x),
            (Column::Oid(c), Value::Oid(x)) => c.push(*x),
            (Column::Str(c), Value::Str(x)) => return c.push(x),
            _ => return Err(StorageError::TypeMismatch { expected, got: v.value_type() }),
        }
        Ok(())
    }

    /// Typed view: `i32` data, if that is what this column stores.
    pub fn as_i32(&self) -> Option<&[i32]> {
        match self {
            Column::I32(v) => Some(v),
            _ => None,
        }
    }

    /// Typed view: `f64` data.
    pub fn as_f64(&self) -> Option<&[f64]> {
        match self {
            Column::F64(v) => Some(v),
            _ => None,
        }
    }

    /// Typed view: `u8` data (raw bytes or u8 codes).
    pub fn as_u8(&self) -> Option<&[u8]> {
        match self {
            Column::U8(v) => Some(v),
            Column::Str(c) => match &c.codes {
                Codes::U8(v) => Some(v),
                Codes::U16(_) => None,
            },
            _ => None,
        }
    }

    /// Typed view: OID data.
    pub fn as_oid(&self) -> Option<&[Oid]> {
        match self {
            Column::Oid(v) => Some(v),
            _ => None,
        }
    }

    /// The encoded string column, if this is one.
    pub fn as_str_col(&self) -> Option<&StrColumn> {
        match self {
            Column::Str(c) => Some(c),
            _ => None,
        }
    }
}

impl From<Vec<i32>> for Column {
    fn from(v: Vec<i32>) -> Self {
        Column::I32(v)
    }
}

impl From<Vec<f64>> for Column {
    fn from(v: Vec<f64>) -> Self {
        Column::F64(v)
    }
}

impl From<Vec<i64>> for Column {
    fn from(v: Vec<i64>) -> Self {
        Column::I64(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths_match_figure4() {
        // Fig. 4: an int column in a BAT has a 4-byte tail; an encoded
        // shipmode column has a 1-byte tail.
        assert_eq!(Column::I32(vec![1, 2]).tail_width(), 4);
        let ship = Column::Str(StrColumn::from_strs(["AIR", "MAIL", "AIR"]));
        assert_eq!(ship.tail_width(), 1);
    }

    #[test]
    fn str_column_roundtrip_and_width_choice() {
        let c = StrColumn::from_strs(["a", "b", "a", "c"]);
        assert_eq!(c.len(), 4);
        assert_eq!(c.get(2), "a");
        assert_eq!(c.codes.width(), 1);

        // >256 distinct values forces u16 codes.
        let many: Vec<String> = (0..300).map(|i| format!("v{i}")).collect();
        let c = StrColumn::from_strs(many.iter().map(|s| s.as_str()));
        assert_eq!(c.codes.width(), 2);
        assert_eq!(c.get(299), "v299");
    }

    #[test]
    fn u8_codes_overflow_is_an_error() {
        let mut c = StrColumn::new_u8();
        for i in 0..256 {
            c.push(&format!("s{i}")).unwrap();
        }
        let err = c.push("one-too-many").unwrap_err();
        assert_eq!(err, StorageError::DictOverflow { capacity: 256 });
    }

    #[test]
    fn push_type_checks() {
        let mut c = Column::I32(vec![]);
        c.push(&Value::I32(5)).unwrap();
        let err = c.push(&Value::F64(1.0)).unwrap_err();
        assert!(matches!(err, StorageError::TypeMismatch { .. }));
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(0), Value::I32(5));
    }

    #[test]
    fn typed_views() {
        let c = Column::I32(vec![1, 2, 3]);
        assert_eq!(c.as_i32().unwrap(), &[1, 2, 3]);
        assert!(c.as_f64().is_none());
        let s = Column::Str(StrColumn::from_strs(["x", "y"]));
        assert_eq!(s.as_u8().unwrap(), &[0, 1]);
    }
}
