//! Cooperative (multi-predicate) scan-selects: K predicate leaves
//! evaluated against one column in a **single** stream.
//!
//! The paper's thesis is that sequential scans are priced by their memory
//! traffic, not their instruction count — so when K queries each need a
//! scan-select over the *same* column, streaming the column once and
//! evaluating all K predicates per tuple pays the cache-miss bill once
//! instead of K times (the MonetDB/X100 cooperative-scan observation).
//! [`multi_select`] is that kernel: one pass, K candidate lists out, each
//! **bit-identical** to the corresponding solo scan-select (same ascending
//! OID order, because tuples are visited in scan order either way).
//!
//! [`par_multi_select_counted`] is the sharded parallel variant: the index
//! space splits into contiguous chunks, each worker evaluates all K
//! predicates over its chunk, and per-predicate lists merge thread-major —
//! the same determinism discipline as every other parallel kernel in this
//! workspace. It also returns per-thread match totals, feeding the sharded
//! `rows_per_thread` accounting of execution reports.
//!
//! Under a counting [`MemTracker`] the kernel charges the memory system
//! once per tuple ([`track_read`]) and the CPU once per tuple *per
//! predicate* ([`Work::ScanIter`] × K) — exactly the asymmetry
//! `costmodel::shared` prices.

use memsim::{track_read, MemTracker, Work};

use crate::storage::{Bat, Codes, Column, Oid, StorageError, ValueType};

/// One predicate leaf of a cooperative scan, lowered to kernel form (string
/// equality arrives as a dictionary code; the re-map happened once,
/// upstream).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScanPred {
    /// `lo <= x <= hi` over an `I32` column.
    RangeI32 {
        /// Inclusive lower bound.
        lo: i32,
        /// Inclusive upper bound.
        hi: i32,
    },
    /// `lo <= x <= hi` over an `F64` column.
    RangeF64 {
        /// Inclusive lower bound.
        lo: f64,
        /// Inclusive upper bound.
        hi: f64,
    },
    /// `code(x) == code` over a dictionary-encoded string column.
    EqCode {
        /// The dictionary code of the constant.
        code: u32,
    },
}

/// The column type a predicate can stream over.
fn expected_type(p: &ScanPred) -> ValueType {
    match p {
        ScanPred::RangeI32 { .. } => ValueType::I32,
        ScanPred::RangeF64 { .. } => ValueType::F64,
        ScanPred::EqCode { .. } => ValueType::Str,
    }
}

/// Check every predicate is evaluable against `col`, so the scan loops can
/// match on the column type once, outside the hot loop.
fn check_types(col: &Column, preds: &[ScanPred]) -> Result<(), StorageError> {
    for p in preds {
        let ok = matches!(
            (p, col),
            (ScanPred::RangeI32 { .. }, Column::I32(_))
                | (ScanPred::RangeF64 { .. }, Column::F64(_))
                | (ScanPred::EqCode { .. }, Column::Str(_))
        );
        if !ok {
            return Err(StorageError::TypeMismatch {
                expected: expected_type(p),
                got: col.value_type(),
            });
        }
    }
    Ok(())
}

/// Evaluate one chunk `[lo, hi)` of the column against every predicate,
/// appending qualifying OIDs to the per-predicate lists.
fn scan_chunk(bat: &Bat, preds: &[ScanPred], lo: usize, hi: usize, out: &mut [Vec<Oid>]) {
    match bat.tail() {
        Column::I32(data) => {
            for (i, v) in data[lo..hi].iter().enumerate() {
                let oid = bat.head_oid(lo + i);
                for (p, list) in preds.iter().zip(out.iter_mut()) {
                    if let ScanPred::RangeI32 { lo, hi } = p {
                        if (*lo..=*hi).contains(v) {
                            list.push(oid);
                        }
                    }
                }
            }
        }
        Column::F64(data) => {
            for (i, v) in data[lo..hi].iter().enumerate() {
                let oid = bat.head_oid(lo + i);
                for (p, list) in preds.iter().zip(out.iter_mut()) {
                    if let ScanPred::RangeF64 { lo, hi } = p {
                        if *v >= *lo && *v <= *hi {
                            list.push(oid);
                        }
                    }
                }
            }
        }
        Column::Str(sc) => match &sc.codes {
            Codes::U8(data) => {
                for (i, c) in data[lo..hi].iter().enumerate() {
                    let oid = bat.head_oid(lo + i);
                    for (p, list) in preds.iter().zip(out.iter_mut()) {
                        if let ScanPred::EqCode { code } = p {
                            if u32::from(*c) == *code {
                                list.push(oid);
                            }
                        }
                    }
                }
            }
            Codes::U16(data) => {
                for (i, c) in data[lo..hi].iter().enumerate() {
                    let oid = bat.head_oid(lo + i);
                    for (p, list) in preds.iter().zip(out.iter_mut()) {
                        if let ScanPred::EqCode { code } = p {
                            if u32::from(*c) == *code {
                                list.push(oid);
                            }
                        }
                    }
                }
            }
        },
        _ => unreachable!("check_types rejected this column"),
    }
}

/// One-pass K-predicate scan-select: stream `bat`'s tail once, return one
/// ascending candidate OID list per predicate — each bit-identical to the
/// solo scan-select of that predicate. Under a counting tracker the memory
/// system is charged once per tuple and the CPU once per tuple per
/// predicate.
pub fn multi_select<M: MemTracker>(
    trk: &mut M,
    bat: &Bat,
    preds: &[ScanPred],
) -> Result<Vec<Vec<Oid>>, StorageError> {
    check_types(bat.tail(), preds)?;
    let mut out: Vec<Vec<Oid>> = preds.iter().map(|_| Vec::new()).collect();
    if M::ENABLED {
        // Charge the stream before the pass: one read per tuple (the data
        // is touched once, whatever K is), K predicate evaluations of CPU.
        match bat.tail() {
            Column::I32(data) => data.iter().for_each(|v| track_read(trk, v)),
            Column::F64(data) => data.iter().for_each(|v| track_read(trk, v)),
            Column::Str(sc) => match &sc.codes {
                Codes::U8(data) => data.iter().for_each(|v| track_read(trk, v)),
                Codes::U16(data) => data.iter().for_each(|v| track_read(trk, v)),
            },
            _ => unreachable!("check_types rejected this column"),
        }
        trk.work(Work::ScanIter, (bat.len() * preds.len()) as u64);
    }
    scan_chunk(bat, preds, 0, bat.len(), &mut out);
    Ok(out)
}

/// Chunk-bounded [`multi_select`]: evaluate every predicate over the row
/// range `[lo, hi)` only. Concatenating the lists of consecutive chunks in
/// ascending `lo` order reproduces the one-shot kernel bit for bit — this
/// is the primitive the service's chunked *elevator* pass is built on,
/// where riders can attach at chunk boundaries and wrap around. Under a
/// counting tracker the chunk's tuples are charged once to the memory
/// system and `(hi - lo) × K` predicate evaluations to the CPU.
pub fn multi_select_range<M: MemTracker>(
    trk: &mut M,
    bat: &Bat,
    preds: &[ScanPred],
    lo: usize,
    hi: usize,
) -> Result<Vec<Vec<Oid>>, StorageError> {
    check_types(bat.tail(), preds)?;
    let hi = hi.min(bat.len());
    let lo = lo.min(hi);
    let mut out: Vec<Vec<Oid>> = preds.iter().map(|_| Vec::new()).collect();
    if M::ENABLED {
        match bat.tail() {
            Column::I32(data) => data[lo..hi].iter().for_each(|v| track_read(trk, v)),
            Column::F64(data) => data[lo..hi].iter().for_each(|v| track_read(trk, v)),
            Column::Str(sc) => match &sc.codes {
                Codes::U8(data) => data[lo..hi].iter().for_each(|v| track_read(trk, v)),
                Codes::U16(data) => data[lo..hi].iter().for_each(|v| track_read(trk, v)),
            },
            _ => unreachable!("check_types rejected this column"),
        }
        trk.work(Work::ScanIter, ((hi - lo) * preds.len()) as u64);
    }
    scan_chunk(bat, preds, lo, hi, &mut out);
    Ok(out)
}

/// Candidate-restricted [`multi_select`] — the pushdown entry point for
/// uncompressed columns. `cands` is an ascending OID list a prior
/// predicate leaf already produced; each returned list is exactly
/// *full-column result ∩ `cands`*, in ascending OID order, so leaf results
/// intersect to the same set in any evaluation order. The kernel
/// gather-tests only the candidate rows: under a counting tracker the
/// memory system is charged one read per *candidate* (candidates ascend,
/// so the touches are a forward sweep whose effective stride the cache
/// simulation prices naturally) and the CPU one [`Work::ScanIter`] per
/// candidate per predicate.
pub fn multi_select_cands<M: MemTracker>(
    trk: &mut M,
    bat: &Bat,
    preds: &[ScanPred],
    cands: &[Oid],
) -> Result<Vec<Vec<Oid>>, StorageError> {
    check_types(bat.tail(), preds)?;
    let mut out: Vec<Vec<Oid>> = preds.iter().map(|_| Vec::new()).collect();
    if preds.is_empty() || cands.is_empty() {
        return Ok(out);
    }
    debug_assert!(cands.windows(2).all(|w| w[0] < w[1]), "candidates ascend");
    if M::ENABLED {
        trk.work(Work::ScanIter, (cands.len() * preds.len()) as u64);
    }
    match bat.tail() {
        Column::I32(data) => {
            for &c in cands {
                let Some(i) = bat.find_oid(c) else { continue };
                let v = &data[i];
                if M::ENABLED {
                    track_read(trk, v);
                }
                for (p, list) in preds.iter().zip(out.iter_mut()) {
                    if let ScanPred::RangeI32 { lo, hi } = p {
                        if (*lo..=*hi).contains(v) {
                            list.push(c);
                        }
                    }
                }
            }
        }
        Column::F64(data) => {
            for &c in cands {
                let Some(i) = bat.find_oid(c) else { continue };
                let v = &data[i];
                if M::ENABLED {
                    track_read(trk, v);
                }
                for (p, list) in preds.iter().zip(out.iter_mut()) {
                    if let ScanPred::RangeF64 { lo, hi } = p {
                        if *v >= *lo && *v <= *hi {
                            list.push(c);
                        }
                    }
                }
            }
        }
        Column::Str(sc) => {
            for &c in cands {
                let Some(i) = bat.find_oid(c) else { continue };
                let code_at = match &sc.codes {
                    Codes::U8(data) => {
                        if M::ENABLED {
                            track_read(trk, &data[i]);
                        }
                        u32::from(data[i])
                    }
                    Codes::U16(data) => {
                        if M::ENABLED {
                            track_read(trk, &data[i]);
                        }
                        u32::from(data[i])
                    }
                };
                for (p, list) in preds.iter().zip(out.iter_mut()) {
                    if let ScanPred::EqCode { code } = p {
                        if code_at == *code {
                            list.push(c);
                        }
                    }
                }
            }
        }
        _ => unreachable!("check_types rejected this column"),
    }
    Ok(out)
}

/// Sharded parallel [`multi_select`] (native-only; no tracker): contiguous
/// chunks, per-predicate thread-major merge — bit-identical to the
/// sequential kernel at every thread count. Also returns each worker's
/// total match count summed across the K predicates (the sharded
/// `rows_per_thread` accounting).
pub fn par_multi_select_counted(
    bat: &Bat,
    preds: &[ScanPred],
    threads: usize,
) -> Result<(Vec<Vec<Oid>>, Vec<usize>), StorageError> {
    check_types(bat.tail(), preds)?;
    let n = bat.len();
    let threads = threads.min(n).max(1);
    if threads == 1 {
        let mut out: Vec<Vec<Oid>> = preds.iter().map(|_| Vec::new()).collect();
        scan_chunk(bat, preds, 0, n, &mut out);
        let matches = out.iter().map(Vec::len).sum();
        return Ok((out, vec![matches]));
    }
    let chunk = n.div_ceil(threads);
    let ranges: Vec<(usize, usize)> = (0..threads)
        .map(|t| (t * chunk, ((t + 1) * chunk).min(n)))
        .filter(|(a, b)| a < b)
        .collect();
    let mut parts: Vec<Vec<Vec<Oid>>> = Vec::with_capacity(ranges.len());
    std::thread::scope(|s| {
        let handles: Vec<_> = ranges
            .iter()
            .map(|&(lo, hi)| {
                s.spawn(move || {
                    let mut out: Vec<Vec<Oid>> = preds.iter().map(|_| Vec::new()).collect();
                    scan_chunk(bat, preds, lo, hi, &mut out);
                    out
                })
            })
            .collect();
        for h in handles {
            parts.push(h.join().expect("cooperative scan worker panicked"));
        }
    });
    let counts: Vec<usize> = parts.iter().map(|p| p.iter().map(Vec::len).sum()).collect();
    let mut out: Vec<Vec<Oid>> = preds.iter().map(|_| Vec::new()).collect();
    for part in parts {
        for (k, list) in part.into_iter().enumerate() {
            out[k].extend(list);
        }
    }
    Ok((out, counts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::StrColumn;
    use memsim::{NullTracker, SimTracker};

    fn i32_bat(n: usize) -> Bat {
        Bat::with_void_head(100, Column::I32((0..n as i32).map(|i| (i * 37) % 101).collect()))
    }

    /// Solo reference: a plain single-predicate scan through the same
    /// kernel (K = 1 degenerates to exactly the solo loop).
    fn solo(bat: &Bat, p: ScanPred) -> Vec<Oid> {
        multi_select(&mut NullTracker, bat, &[p]).unwrap().remove(0)
    }

    #[test]
    fn k_way_lists_match_solo_scans() {
        let b = i32_bat(1_000);
        let preds = [
            ScanPred::RangeI32 { lo: 10, hi: 40 },
            ScanPred::RangeI32 { lo: 0, hi: 100 }, // full selectivity
            ScanPred::RangeI32 { lo: 200, hi: 99 }, // empty
            ScanPred::RangeI32 { lo: 7, hi: 7 },
        ];
        let lists = multi_select(&mut NullTracker, &b, &preds).unwrap();
        assert_eq!(lists.len(), preds.len());
        for (k, p) in preds.iter().enumerate() {
            assert_eq!(lists[k], solo(&b, *p), "pred {k}");
            assert!(lists[k].windows(2).all(|w| w[0] < w[1]), "ascending");
        }
        assert_eq!(lists[1].len(), 1_000);
        assert!(lists[2].is_empty());
    }

    #[test]
    fn f64_and_str_columns() {
        let f = Bat::with_void_head(0, Column::F64((0..500).map(|i| i as f64 / 10.0).collect()));
        let lists = multi_select(
            &mut NullTracker,
            &f,
            &[ScanPred::RangeF64 { lo: 1.0, hi: 2.0 }, ScanPred::RangeF64 { lo: 40.0, hi: 60.0 }],
        )
        .unwrap();
        assert_eq!(lists[0].len(), 11);
        assert_eq!(lists[1].len(), 100, "40.0..=49.9");

        let strs: Vec<&str> = (0..300).map(|i| ["AIR", "MAIL", "SHIP"][i % 3]).collect();
        let s = Bat::with_void_head(50, Column::Str(StrColumn::from_strs(strs)));
        let code = |needle: &str| {
            s.tail().as_str_col().unwrap().dict.code_of(needle).expect("in dictionary")
        };
        let lists = multi_select(
            &mut NullTracker,
            &s,
            &[ScanPred::EqCode { code: code("MAIL") }, ScanPred::EqCode { code: code("AIR") }],
        )
        .unwrap();
        assert_eq!(lists[0].len(), 100);
        assert_eq!(lists[1][0], 50, "OIDs carry the seqbase");
    }

    #[test]
    fn parallel_variant_is_bit_identical_and_counts_shard_matches() {
        let b = i32_bat(10_007);
        let preds = [
            ScanPred::RangeI32 { lo: 0, hi: 50 },
            ScanPred::RangeI32 { lo: 50, hi: 101 },
            ScanPred::RangeI32 { lo: 13, hi: 13 },
        ];
        let seq = multi_select(&mut NullTracker, &b, &preds).unwrap();
        for threads in [1usize, 2, 4, 7, 64] {
            let (par, counts) = par_multi_select_counted(&b, &preds, threads).unwrap();
            assert_eq!(par, seq, "threads={threads}");
            assert_eq!(
                counts.iter().sum::<usize>(),
                seq.iter().map(Vec::len).sum::<usize>(),
                "threads={threads}"
            );
            assert!(counts.len() <= threads.max(1));
        }
    }

    #[test]
    fn chunked_ranges_concatenate_to_the_one_shot_kernel() {
        let b = i32_bat(10_007);
        let preds = [
            ScanPred::RangeI32 { lo: 0, hi: 50 },
            ScanPred::RangeI32 { lo: 13, hi: 13 },
            ScanPred::RangeI32 { lo: 200, hi: 99 }, // empty
        ];
        let seq = multi_select(&mut NullTracker, &b, &preds).unwrap();
        for chunk in [1usize, 97, 1024, 4096, 10_007, 20_000] {
            let mut acc: Vec<Vec<Oid>> = preds.iter().map(|_| Vec::new()).collect();
            let mut lo = 0;
            while lo < b.len() {
                let hi = (lo + chunk).min(b.len());
                let part = multi_select_range(&mut NullTracker, &b, &preds, lo, hi).unwrap();
                for (k, list) in part.into_iter().enumerate() {
                    acc[k].extend(list);
                }
                lo = hi;
            }
            assert_eq!(acc, seq, "chunk={chunk}");
        }
        // Out-of-range and inverted bounds clamp to empty work.
        let empty = multi_select_range(&mut NullTracker, &b, &preds, 20_000, 30_000).unwrap();
        assert!(empty.iter().all(Vec::is_empty));
    }

    #[test]
    fn range_kernel_charges_only_its_chunk() {
        let b = i32_bat(50_000);
        let preds = [ScanPred::RangeI32 { lo: 0, hi: 50 }, ScanPred::RangeI32 { lo: 10, hi: 60 }];
        let run = |lo: usize, hi: usize| {
            let mut trk = SimTracker::for_machine(memsim::profiles::origin2000());
            multi_select_range(&mut trk, &b, &preds, lo, hi).unwrap();
            trk.counters()
        };
        let half = run(0, 25_000);
        let full = run(0, 50_000);
        assert_eq!(half.reads * 2, full.reads, "memory charge follows the chunk");
        assert!(half.cpu_ns < full.cpu_ns);
    }

    #[test]
    fn candidate_restricted_scan_is_full_intersect_cands() {
        let b = i32_bat(10_007);
        let preds = [
            ScanPred::RangeI32 { lo: 0, hi: 50 },
            ScanPred::RangeI32 { lo: 13, hi: 13 },
            ScanPred::RangeI32 { lo: 200, hi: 99 }, // empty
        ];
        let full = multi_select(&mut NullTracker, &b, &preds).unwrap();
        let shapes: Vec<Vec<Oid>> = vec![
            vec![],
            (0..10_007).map(|i| 100 + i as Oid).collect(), // all-pass
            (0..10_007).step_by(97).map(|i| 100 + i as Oid).collect(),
            vec![100, 100 + 10_006],
        ];
        for cands in &shapes {
            let got = multi_select_cands(&mut NullTracker, &b, &preds, cands).unwrap();
            for (k, list) in got.iter().enumerate() {
                let want: Vec<Oid> =
                    full[k].iter().copied().filter(|o| cands.binary_search(o).is_ok()).collect();
                assert_eq!(*list, want, "pred {k} |cands|={}", cands.len());
            }
        }
        // Str and F64 columns take the same path.
        let strs: Vec<&str> = (0..300).map(|i| ["AIR", "MAIL", "SHIP"][i % 3]).collect();
        let s = Bat::with_void_head(50, Column::Str(StrColumn::from_strs(strs)));
        let preds = [ScanPred::EqCode { code: 1 }];
        let full = multi_select(&mut NullTracker, &s, &preds).unwrap();
        let cands: Vec<Oid> = (0..300).step_by(2).map(|i| 50 + i as Oid).collect();
        let got = multi_select_cands(&mut NullTracker, &s, &preds, &cands).unwrap();
        let want: Vec<Oid> =
            full[0].iter().copied().filter(|o| cands.binary_search(o).is_ok()).collect();
        assert_eq!(got[0], want);
    }

    #[test]
    fn candidate_restricted_scan_charges_per_candidate() {
        let b = i32_bat(50_000);
        let preds = [ScanPred::RangeI32 { lo: 0, hi: 50 }];
        let full = {
            let mut trk = SimTracker::for_machine(memsim::profiles::origin2000());
            multi_select(&mut trk, &b, &preds).unwrap();
            trk.counters()
        };
        let cands: Vec<Oid> = (0..50_000).step_by(500).map(|i| 100 + i as Oid).collect();
        let restricted = {
            let mut trk = SimTracker::for_machine(memsim::profiles::origin2000());
            multi_select_cands(&mut trk, &b, &preds, &cands).unwrap();
            trk.counters()
        };
        assert_eq!(restricted.reads as usize, cands.len(), "one read per candidate");
        assert!(restricted.l2_misses * 10 <= full.l2_misses, "sparse candidates skip lines");
        assert!(restricted.cpu_ns < full.cpu_ns / 100.0, "CPU follows |cands|");
    }

    #[test]
    fn type_mismatch_is_an_error() {
        let b = i32_bat(10);
        let err = multi_select(&mut NullTracker, &b, &[ScanPred::RangeF64 { lo: 0.0, hi: 1.0 }])
            .unwrap_err();
        assert!(matches!(err, StorageError::TypeMismatch { .. }), "{err:?}");
        let err = par_multi_select_counted(&b, &[ScanPred::EqCode { code: 0 }], 4).unwrap_err();
        assert!(matches!(err, StorageError::TypeMismatch { .. }), "{err:?}");
    }

    #[test]
    fn merged_pass_streams_the_memory_once_but_pays_cpu_per_predicate() {
        let b = i32_bat(50_000);
        let k_pred = |k: usize| {
            (0..k).map(|i| ScanPred::RangeI32 { lo: i as i32, hi: 50 + i as i32 }).collect()
        };
        let run = |preds: Vec<ScanPred>| {
            let mut trk = SimTracker::for_machine(memsim::profiles::origin2000());
            multi_select(&mut trk, &b, &preds).unwrap();
            trk.counters()
        };
        let one = run(k_pred(1));
        let eight = run(k_pred(8));
        assert_eq!(eight.reads, one.reads, "the column is streamed once regardless of K");
        assert_eq!(eight.l2_misses, one.l2_misses, "no extra cache traffic from extra predicates");
        assert!(eight.cpu_ns > 7.0 * one.cpu_ns, "CPU scales with K");
    }

    #[test]
    fn zero_predicates_is_a_no_op() {
        let b = i32_bat(100);
        assert!(multi_select(&mut NullTracker, &b, &[]).unwrap().is_empty());
        let (lists, counts) = par_multi_select_counted(&b, &[], 4).unwrap();
        assert!(lists.is_empty());
        assert_eq!(counts.iter().sum::<usize>(), 0);
    }
}
