//! The cost-model drift observatory: per-[`ShapeKind`] EWMA residuals of
//! simulated-actual vs model-quoted operator time.
//!
//! Every scheduling decision in the service — admission order, thread
//! leases, shared-scan discounts — is made *against the model*
//! ([`costmodel::quote`]). The observatory closes the loop: at delivery,
//! each operator's model price (summed over its
//! [`costmodel::quote::OpShape`]s) is compared with the simulated
//! [`memsim`] counters the tracing run attributed to it, and the ratio
//! `actual / model` feeds a per-shape-kind exponentially weighted moving
//! average. A kind whose EWMA leaves the configured band (`1/band ..
//! band`) is *flagged* — the signal a placement or sharding layer would
//! use to recalibrate before trusting the model on new hardware.

use std::collections::BTreeMap;

use costmodel::quote::ShapeKind;

/// Default EWMA weight for the newest sample.
pub const DEFAULT_ALPHA: f64 = 0.2;

/// Default acceptance band: ratios within `[1/2, 2]` are healthy.
pub const DEFAULT_BAND: f64 = 2.0;

/// Running residual state for one operator shape kind.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShapeDrift {
    /// Residual samples recorded.
    pub samples: u64,
    /// EWMA of `actual_ns / model_ns` (seeded by the first sample).
    pub ewma: f64,
    /// Smallest ratio seen.
    pub min: f64,
    /// Largest ratio seen.
    pub max: f64,
    /// Total model nanoseconds across samples.
    pub model_ns: f64,
    /// Total simulated-actual nanoseconds across samples.
    pub actual_ns: f64,
}

impl ShapeDrift {
    /// Lifetime mean ratio: total actual over total model time.
    pub fn mean_ratio(&self) -> f64 {
        if self.model_ns > 0.0 {
            self.actual_ns / self.model_ns
        } else {
            0.0
        }
    }
}

/// Accumulates model-vs-actual residuals per shape kind.
#[derive(Debug, Clone)]
pub struct DriftMonitor {
    alpha: f64,
    band: f64,
    shapes: BTreeMap<ShapeKind, ShapeDrift>,
}

impl DriftMonitor {
    /// A monitor flagging EWMA ratios outside `[1/band, band]`
    /// (`band >= 1`), with the default EWMA weight.
    pub fn new(band: f64) -> Self {
        Self { alpha: DEFAULT_ALPHA, band: band.max(1.0), shapes: BTreeMap::new() }
    }

    /// Override the EWMA weight (`0 < alpha <= 1`).
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha.clamp(f64::MIN_POSITIVE, 1.0);
        self
    }

    /// Record one residual: an operator of `kind` the model priced at
    /// `model_ns` that simulated to `actual_ns`. Non-positive times carry
    /// no ratio information and are ignored.
    pub fn record(&mut self, kind: ShapeKind, model_ns: f64, actual_ns: f64) {
        if model_ns.is_nan() || actual_ns.is_nan() || model_ns <= 0.0 || actual_ns <= 0.0 {
            return;
        }
        let ratio = actual_ns / model_ns;
        let d = self.shapes.entry(kind).or_insert(ShapeDrift {
            samples: 0,
            ewma: ratio,
            min: ratio,
            max: ratio,
            model_ns: 0.0,
            actual_ns: 0.0,
        });
        d.samples += 1;
        d.ewma = self.alpha * ratio + (1.0 - self.alpha) * d.ewma;
        d.min = d.min.min(ratio);
        d.max = d.max.max(ratio);
        d.model_ns += model_ns;
        d.actual_ns += actual_ns;
    }

    /// Snapshot the per-kind residuals.
    pub fn report(&self) -> DriftReport {
        DriftReport {
            band: self.band,
            rows: self
                .shapes
                .iter()
                .map(|(&kind, &drift)| DriftRow {
                    kind,
                    drift,
                    flagged: !(1.0 / self.band..=self.band).contains(&drift.ewma),
                })
                .collect(),
        }
    }
}

/// One kind's row in a [`DriftReport`].
#[derive(Debug, Clone, Copy)]
pub struct DriftRow {
    /// The operator shape kind.
    pub kind: ShapeKind,
    /// Its residual state.
    pub drift: ShapeDrift,
    /// Whether the EWMA left the band.
    pub flagged: bool,
}

/// A snapshot of the drift observatory, one row per shape kind observed.
#[derive(Debug, Clone, Default)]
pub struct DriftReport {
    /// The acceptance band in force.
    pub band: f64,
    /// Per-kind residuals, ordered by kind.
    pub rows: Vec<DriftRow>,
}

impl DriftReport {
    /// Kinds whose EWMA left the band.
    pub fn flagged(&self) -> Vec<ShapeKind> {
        self.rows.iter().filter(|r| r.flagged).map(|r| r.kind).collect()
    }
}

impl std::fmt::Display for DriftReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{:<14} {:>8} {:>10} {:>10} {:>10} {:>10}  band ±{:.1}x",
            "shape", "samples", "ewma", "mean", "min", "max", self.band
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<14} {:>8} {:>9.2}x {:>9.2}x {:>9.2}x {:>9.2}x  {}",
                r.kind.name(),
                r.drift.samples,
                r.drift.ewma,
                r.drift.mean_ratio(),
                r.drift.min,
                r.drift.max,
                if r.flagged { "FLAGGED" } else { "ok" }
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewma_seeds_on_first_sample_and_tracks() {
        let mut m = DriftMonitor::new(2.0).with_alpha(0.5);
        m.record(ShapeKind::Select, 100.0, 110.0);
        let r = m.report();
        assert_eq!(r.rows.len(), 1);
        assert!((r.rows[0].drift.ewma - 1.1).abs() < 1e-12, "seeded at the first ratio");
        m.record(ShapeKind::Select, 100.0, 90.0);
        let e = m.report().rows[0].drift.ewma;
        assert!((e - (0.5 * 0.9 + 0.5 * 1.1)).abs() < 1e-12);
        assert_eq!(m.report().rows[0].drift.samples, 2);
        assert!((m.report().rows[0].drift.mean_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn band_flags_both_directions() {
        let mut m = DriftMonitor::new(2.0);
        m.record(ShapeKind::Select, 100.0, 150.0); // 1.5x: inside
        let r = m.report();
        assert!(!r.rows[0].flagged);
        let mut over = DriftMonitor::new(2.0);
        over.record(ShapeKind::Aggregate, 100.0, 500.0); // 5x: out
        assert_eq!(over.report().flagged(), vec![ShapeKind::Aggregate]);
        let mut under = DriftMonitor::new(2.0);
        under.record(ShapeKind::Gather, 500.0, 100.0); // 0.2x: out
        assert_eq!(under.report().flagged(), vec![ShapeKind::Gather]);
    }

    #[test]
    fn zero_or_negative_times_are_ignored() {
        let mut m = DriftMonitor::new(2.0);
        m.record(ShapeKind::Select, 0.0, 100.0);
        m.record(ShapeKind::Select, 100.0, 0.0);
        m.record(ShapeKind::Select, f64::NAN, 100.0);
        assert!(m.report().rows.is_empty());
    }
}
