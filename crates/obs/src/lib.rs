#![warn(missing_docs)]

//! # obs — observability for the memory-bottleneck query service
//!
//! The paper's method is to *model* memory behavior, then hold execution
//! to the model. This crate is the holding-to part, three tools the
//! service threads through its submit path:
//!
//! * [`trace`] — per-query lifecycle traces: logically-timestamped event
//!   lists (admitted → queued → lease → elevator chunks → delivered, or
//!   the cache-hit / collapse / shed short-circuits) recorded into
//!   per-session ring buffers and exportable as JSONL
//!   (`MONET_TRACE=path|stderr|0`). A legal-lifecycle DFA
//!   ([`trace::validate_lifecycle`]) makes "every query has a complete
//!   story" a checkable invariant.
//! * [`drift`] — the cost-model drift observatory: per-
//!   [`costmodel::quote::ShapeKind`] EWMA ratios of simulated-actual vs
//!   model-quoted operator time, flagging kinds that leave a configured
//!   band. The feedback hook cost-driven placement/sharding will need.
//! * [`hist`] — mergeable log-bucketed histograms with bounded memory and
//!   a proven relative quantile error, replacing the service's
//!   sample-window percentiles; per-session histograms merge exactly into
//!   the global distribution.
//!
//! The crate is deliberately engine-agnostic: it depends only on
//! [`memsim`] (counters) and [`costmodel`] (shape kinds), so every layer
//! above can record into it without cycles.

pub mod drift;
pub mod hist;
pub mod trace;

pub use drift::{DriftMonitor, DriftReport, DriftRow, ShapeDrift};
pub use hist::{HistSummary, LogHistogram};
pub use trace::{
    validate_lifecycle, LifecycleError, QueryTrace, Terminal, TraceBuilder, TraceEntry, TraceEvent,
    TraceMode, TraceRing, TraceSink,
};
