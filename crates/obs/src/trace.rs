//! Query lifecycle traces: logically-timestamped event lists, the legal
//! lifecycle DFA, per-session ring buffers, and JSONL export.
//!
//! Every submitted query gets a [`QueryTrace`]: an ordered list of
//! [`TraceEvent`]s stamped from one global logical clock (an atomic
//! counter — no wall time, so the *sequence* is deterministic for a given
//! schedule). Events accumulate in a stack-local [`TraceBuilder`] owned by
//! the query's thread — recording an event is a `Vec::push` plus one
//! relaxed-ish atomic increment, no lock — and the completed trace is
//! pushed into the session's bounded [`TraceRing`] (one mutex per session,
//! uncontended in the one-thread-per-session model) and optionally
//! exported as one JSON line.
//!
//! The legal lifecycle is a DFA ([`validate_lifecycle`]):
//!
//! ```text
//! Start ──CacheHit──────────────────────────────▶ done
//! Start ──Collapsed─────────────────────────────▶ done
//! Start ──Admitted──┬─Shed──────────────────────▶ done
//!                   ├─Queued─▶ LeaseGranted ─┐
//!                   └─LeaseGranted ──────────┴▶ Running
//! Running ──ElevatorAttached|ChunkDone──────────▶ Running
//! Running ──Preempted─▶ LeaseGranted────────────▶ Running
//! Running ──Failed──────────────────────────────▶ done
//! Running ──OpDone*─▶ Delivered─────────────────▶ done
//! Running ──Delivered───────────────────────────▶ done
//! ```
//!
//! `repro trace` and the `trace_props` property suite assert that 100% of
//! traces, under every terminal state the concurrent service can produce,
//! validate against this DFA.

use std::collections::VecDeque;
use std::fmt;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use memsim::EventCounters;

/// Where completed traces go (`MONET_TRACE` / `ServiceConfig.trace`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum TraceMode {
    /// Tracing disabled: no clock, no rings, no per-query overhead.
    #[default]
    Off,
    /// Record into per-session rings only (inspect via the service API).
    Ring,
    /// Rings plus one JSON line per completed trace on stderr.
    Stderr,
    /// Rings plus JSONL appended to the given file path.
    File(String),
}

impl TraceMode {
    /// Parse a `MONET_TRACE` value: `0`/`off`/empty → `Off`, `1`/`on`/
    /// `ring` → `Ring`, `stderr` → `Stderr`, anything else is a file path.
    pub fn parse(v: &str) -> Self {
        match v.trim() {
            "" | "0" | "off" | "false" => TraceMode::Off,
            "1" | "on" | "true" | "ring" => TraceMode::Ring,
            "stderr" => TraceMode::Stderr,
            path => TraceMode::File(path.to_owned()),
        }
    }

    /// Whether tracing is on at all.
    pub fn enabled(&self) -> bool {
        *self != TraceMode::Off
    }
}

/// One lifecycle event. Timestamps live in [`TraceEntry`]; the payloads
/// here are what each stage knew at the moment it happened.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// The query entered admission with this cost quote.
    Admitted {
        /// The whole-query model quote in milliseconds (coverage-discounted).
        quote_ms: f64,
        /// Operators priced into the quote.
        ops: usize,
        /// Predicate leaves a shared pass already covered at quote time.
        covered: usize,
    },
    /// Admission had no thread to lease; the query joined the queue.
    Queued {
        /// Queue depth at enqueue time (including this query).
        depth: usize,
    },
    /// The scheduler leased `threads` worker threads.
    LeaseGranted {
        /// Threads leased.
        threads: usize,
    },
    /// Another query's predicate attached to this query's elevator pass at
    /// a chunk boundary.
    ElevatorAttached {
        /// The streamed column, as `table.column`.
        col: String,
        /// First row of the next chunk — where the rider boards.
        chunk: usize,
        /// Predicate leaves that attached at this boundary.
        riders: usize,
    },
    /// One cooperative-scan chunk finished streaming.
    ChunkDone {
        /// The streamed column, as `table.column`.
        col: String,
        /// First row of the chunk.
        lo: usize,
        /// One past the last row of the chunk.
        hi: usize,
        /// Predicates evaluated while streaming.
        preds: usize,
        /// Simulated memory counters for the chunk (tracing runs the
        /// kernel under the simulator; `None` only if simulation was
        /// skipped).
        sim: Option<EventCounters>,
    },
    /// The pass yielded its lease between chunks to a cheaper waiter.
    Preempted {
        /// Model milliseconds of streaming still owed when it yielded.
        remaining_ms: f64,
    },
    /// The query collapsed onto a concurrent identical execution.
    Collapsed {
        /// The leader's flight id.
        leader: u64,
    },
    /// The result came straight from the result cache.
    CacheHit,
    /// The admission queue was full; the query was shed without running.
    Shed,
    /// One operator of the final execution finished ([`engine`]'s
    /// per-operator `ExecReport` folded into the trace).
    OpDone {
        /// Operator name, e.g. `select(Item)`.
        op: String,
        /// Rows entering the operator.
        rows_in: usize,
        /// Rows leaving the operator.
        rows_out: usize,
        /// Simulated counters attributed to the operator.
        sim: Option<EventCounters>,
    },
    /// Execution failed; the error is delivered to the submitter.
    Failed {
        /// The engine error, rendered.
        error: String,
    },
    /// The result reached the submitter.
    Delivered {
        /// End-to-end wall milliseconds (submission to result).
        total_ms: f64,
        /// Wall milliseconds spent before execution began.
        queue_ms: f64,
        /// Total simulated nanoseconds across operators.
        actual_ns: f64,
        /// Result rows delivered.
        rows: usize,
    },
}

impl TraceEvent {
    /// The event's name as exported to JSONL.
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::Admitted { .. } => "Admitted",
            TraceEvent::Queued { .. } => "Queued",
            TraceEvent::LeaseGranted { .. } => "LeaseGranted",
            TraceEvent::ElevatorAttached { .. } => "ElevatorAttached",
            TraceEvent::ChunkDone { .. } => "ChunkDone",
            TraceEvent::Preempted { .. } => "Preempted",
            TraceEvent::Collapsed { .. } => "Collapsed",
            TraceEvent::CacheHit => "CacheHit",
            TraceEvent::Shed => "Shed",
            TraceEvent::OpDone { .. } => "OpDone",
            TraceEvent::Failed { .. } => "Failed",
            TraceEvent::Delivered { .. } => "Delivered",
        }
    }
}

/// One event with its logical timestamp.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEntry {
    /// Logical time: a global monotone counter shared by every query, so
    /// timestamps order events *across* traces too.
    pub t: u64,
    /// The event.
    pub event: TraceEvent,
}

/// The full lifecycle of one submitted query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryTrace {
    /// Service-wide query id, in submission order.
    pub query: u64,
    /// The submitting session.
    pub session: usize,
    /// Events in the order they happened.
    pub events: Vec<TraceEntry>,
}

impl QueryTrace {
    /// The trace as one JSON line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        let mut s = String::with_capacity(128 + 96 * self.events.len());
        s.push_str(&format!(
            "{{\"query\":{},\"session\":{},\"events\":[",
            self.query, self.session
        ));
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            entry_json(e, &mut s);
        }
        s.push_str("]}");
        s
    }
}

fn json_escape(v: &str, out: &mut String) {
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

fn counters_json(c: &Option<EventCounters>, out: &mut String) {
    match c {
        None => out.push_str("null"),
        Some(c) => out.push_str(&format!(
            "{{\"reads\":{},\"writes\":{},\"l1_misses\":{},\"l2_misses\":{},\"tlb_misses\":{},\
             \"cpu_ns\":{},\"elapsed_ns\":{}}}",
            c.reads,
            c.writes,
            c.l1_misses,
            c.l2_misses,
            c.tlb_misses,
            json_f64(c.cpu_ns),
            json_f64(c.elapsed_ns()),
        )),
    }
}

fn entry_json(e: &TraceEntry, out: &mut String) {
    out.push_str(&format!("{{\"t\":{},\"ev\":\"{}\"", e.t, e.event.name()));
    match &e.event {
        TraceEvent::Admitted { quote_ms, ops, covered } => {
            out.push_str(&format!(
                ",\"quote_ms\":{},\"ops\":{ops},\"covered\":{covered}",
                json_f64(*quote_ms)
            ));
        }
        TraceEvent::Queued { depth } => out.push_str(&format!(",\"depth\":{depth}")),
        TraceEvent::LeaseGranted { threads } => out.push_str(&format!(",\"threads\":{threads}")),
        TraceEvent::ElevatorAttached { col, chunk, riders } => {
            out.push_str(",\"col\":\"");
            json_escape(col, out);
            out.push_str(&format!("\",\"chunk\":{chunk},\"riders\":{riders}"));
        }
        TraceEvent::ChunkDone { col, lo, hi, preds, sim } => {
            out.push_str(",\"col\":\"");
            json_escape(col, out);
            out.push_str(&format!("\",\"lo\":{lo},\"hi\":{hi},\"preds\":{preds},\"sim\":"));
            counters_json(sim, out);
        }
        TraceEvent::Preempted { remaining_ms } => {
            out.push_str(&format!(",\"remaining_ms\":{}", json_f64(*remaining_ms)));
        }
        TraceEvent::Collapsed { leader } => out.push_str(&format!(",\"leader\":{leader}")),
        TraceEvent::CacheHit | TraceEvent::Shed => {}
        TraceEvent::OpDone { op, rows_in, rows_out, sim } => {
            out.push_str(",\"op\":\"");
            json_escape(op, out);
            out.push_str(&format!("\",\"rows_in\":{rows_in},\"rows_out\":{rows_out},\"sim\":"));
            counters_json(sim, out);
        }
        TraceEvent::Failed { error } => {
            out.push_str(",\"error\":\"");
            json_escape(error, out);
            out.push('"');
        }
        TraceEvent::Delivered { total_ms, queue_ms, actual_ns, rows } => {
            out.push_str(&format!(
                ",\"total_ms\":{},\"queue_ms\":{},\"actual_ns\":{},\"rows\":{rows}",
                json_f64(*total_ms),
                json_f64(*queue_ms),
                json_f64(*actual_ns)
            ));
        }
    }
    out.push('}');
}

/// A query's terminal state, as decided by [`validate_lifecycle`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Terminal {
    /// Executed and delivered.
    Delivered,
    /// Answered from the result cache.
    CacheHit,
    /// Collapsed onto a concurrent identical execution.
    Collapsed,
    /// Shed at admission (queue full).
    Shed,
    /// Execution failed.
    Failed,
}

/// A lifecycle violation: where in the trace, and what rule broke.
#[derive(Debug, Clone, PartialEq)]
pub struct LifecycleError {
    /// The offending query id.
    pub query: u64,
    /// Index into `events` (== `events.len()` for a missing terminal).
    pub at: usize,
    /// Human-readable rule.
    pub message: String,
}

impl fmt::Display for LifecycleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "query {} event {}: {}", self.query, self.at, self.message)
    }
}

impl std::error::Error for LifecycleError {}

/// Check a trace against the legal lifecycle DFA (module docs) and return
/// its terminal state. Also enforces strictly increasing logical
/// timestamps.
pub fn validate_lifecycle(trace: &QueryTrace) -> Result<Terminal, LifecycleError> {
    #[derive(Debug, Clone, Copy, PartialEq)]
    enum S {
        Start,
        Admitted,
        Queued,
        Running,
        Yielded,
        Reporting,
        Done(Terminal),
    }
    let err = |at: usize, message: String| LifecycleError { query: trace.query, at, message };
    let mut state = S::Start;
    let mut last_t: Option<u64> = None;
    for (i, entry) in trace.events.iter().enumerate() {
        if let Some(prev) = last_t {
            if entry.t <= prev {
                return Err(err(i, format!("timestamp {} not after {}", entry.t, prev)));
            }
        }
        last_t = Some(entry.t);
        let ev = &entry.event;
        state = match (state, ev) {
            (S::Start, TraceEvent::CacheHit) => S::Done(Terminal::CacheHit),
            (S::Start, TraceEvent::Collapsed { .. }) => S::Done(Terminal::Collapsed),
            (S::Start, TraceEvent::Admitted { .. }) => S::Admitted,
            (S::Admitted, TraceEvent::Shed) => S::Done(Terminal::Shed),
            (S::Admitted, TraceEvent::Queued { .. }) => S::Queued,
            (S::Admitted | S::Queued | S::Yielded, TraceEvent::LeaseGranted { .. }) => S::Running,
            (S::Running, TraceEvent::ElevatorAttached { .. } | TraceEvent::ChunkDone { .. }) => {
                S::Running
            }
            (S::Running, TraceEvent::Preempted { .. }) => S::Yielded,
            (S::Running | S::Reporting, TraceEvent::OpDone { .. }) => S::Reporting,
            (S::Running, TraceEvent::Failed { .. }) => S::Done(Terminal::Failed),
            (S::Running | S::Reporting, TraceEvent::Delivered { .. }) => {
                S::Done(Terminal::Delivered)
            }
            (s, ev) => {
                return Err(err(i, format!("illegal event {} in state {s:?}", ev.name())));
            }
        };
    }
    match state {
        S::Done(t) => Ok(t),
        s => Err(err(trace.events.len(), format!("trace ends mid-lifecycle in state {s:?}"))),
    }
}

/// A bounded ring of completed traces (one per session).
#[derive(Debug, Default)]
pub struct TraceRing {
    buf: VecDeque<QueryTrace>,
    cap: usize,
    /// Traces evicted because the ring was full.
    pub dropped: u64,
}

impl TraceRing {
    /// A ring retaining the most recent `cap` traces (`cap >= 1`).
    pub fn new(cap: usize) -> Self {
        Self { buf: VecDeque::new(), cap: cap.max(1), dropped: 0 }
    }

    /// Push a completed trace, evicting the oldest when full.
    pub fn push(&mut self, trace: QueryTrace) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(trace);
    }

    /// Snapshot the retained traces, oldest first.
    pub fn snapshot(&self) -> Vec<QueryTrace> {
        self.buf.iter().cloned().collect()
    }
}

/// Accumulates one query's events on its own thread — plain pushes, no
/// lock; timestamps come from the sink's shared atomic clock.
#[derive(Debug)]
pub struct TraceBuilder {
    /// The query id this trace belongs to.
    pub query: u64,
    session: usize,
    events: Vec<TraceEntry>,
}

impl TraceBuilder {
    /// Record one event, stamping it from `sink`'s logical clock.
    pub fn push(&mut self, sink: &TraceSink, event: TraceEvent) {
        self.events.push(TraceEntry { t: sink.tick(), event });
    }
}

enum SinkOut {
    Stderr,
    File(std::fs::File),
}

/// The service-wide trace collector: the logical clock, per-session rings,
/// and the optional JSONL export stream.
pub struct TraceSink {
    clock: AtomicU64,
    next_query: AtomicU64,
    rings: Mutex<Vec<Arc<Mutex<TraceRing>>>>,
    ring_cap: usize,
    out: Option<Mutex<SinkOut>>,
}

impl TraceSink {
    /// Build a sink for `mode`; `None` when tracing is off. An unopenable
    /// file path degrades to ring-only recording (with a note on stderr)
    /// rather than failing service construction.
    pub fn new(mode: &TraceMode, ring_cap: usize) -> Option<Self> {
        let out = match mode {
            TraceMode::Off => return None,
            TraceMode::Ring => None,
            TraceMode::Stderr => Some(SinkOut::Stderr),
            TraceMode::File(path) => match std::fs::File::create(path) {
                Ok(f) => Some(SinkOut::File(f)),
                Err(e) => {
                    eprintln!("obs: cannot open trace file {path}: {e}; recording to rings only");
                    None
                }
            },
        };
        Some(Self {
            clock: AtomicU64::new(0),
            next_query: AtomicU64::new(0),
            rings: Mutex::new(Vec::new()),
            ring_cap,
            out: out.map(Mutex::new),
        })
    }

    /// Advance the logical clock and return the new timestamp (starting
    /// at 1, so 0 never appears and "strictly increasing" has headroom).
    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Register one session's ring; call once per session, in session-id
    /// order.
    pub fn register_session(&self) {
        let mut rings = self.rings.lock().expect("trace rings lock");
        rings.push(Arc::new(Mutex::new(TraceRing::new(self.ring_cap))));
    }

    /// Start a trace for a fresh query id in `session`.
    pub fn begin(&self, session: usize) -> TraceBuilder {
        TraceBuilder {
            query: self.next_query.fetch_add(1, Ordering::Relaxed),
            session,
            events: Vec::with_capacity(8),
        }
    }

    /// Complete a trace: push it into its session's ring and export one
    /// JSON line when an output stream is configured.
    pub fn finish(&self, builder: TraceBuilder) {
        let trace =
            QueryTrace { query: builder.query, session: builder.session, events: builder.events };
        if let Some(out) = &self.out {
            let line = trace.to_jsonl();
            let mut out = out.lock().expect("trace out lock");
            let res = match &mut *out {
                SinkOut::Stderr => writeln!(std::io::stderr().lock(), "{line}"),
                SinkOut::File(f) => writeln!(f, "{line}"),
            };
            drop(res); // diagnostics must never fail a query
        }
        let ring = {
            let rings = self.rings.lock().expect("trace rings lock");
            rings.get(trace.session).cloned()
        };
        if let Some(ring) = ring {
            ring.lock().expect("trace ring lock").push(trace);
        }
    }

    /// Snapshot every session's retained traces, ordered by query id.
    pub fn traces(&self) -> Vec<QueryTrace> {
        let rings: Vec<_> = self.rings.lock().expect("trace rings lock").clone();
        let mut all: Vec<QueryTrace> =
            rings.iter().flat_map(|r| r.lock().expect("trace ring lock").snapshot()).collect();
        all.sort_by_key(|t| t.query);
        all
    }

    /// Total traces evicted from full rings.
    pub fn dropped(&self) -> u64 {
        let rings: Vec<_> = self.rings.lock().expect("trace rings lock").clone();
        rings.iter().map(|r| r.lock().expect("trace ring lock").dropped).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(t: u64, event: TraceEvent) -> TraceEntry {
        TraceEntry { t, event }
    }

    fn trace(events: Vec<TraceEntry>) -> QueryTrace {
        QueryTrace { query: 9, session: 0, events }
    }

    #[test]
    fn full_delivered_lifecycle_validates() {
        let t = trace(vec![
            entry(1, TraceEvent::Admitted { quote_ms: 1.5, ops: 2, covered: 0 }),
            entry(2, TraceEvent::Queued { depth: 1 }),
            entry(5, TraceEvent::LeaseGranted { threads: 2 }),
            entry(
                6,
                TraceEvent::ChunkDone {
                    col: "Item.qty".into(),
                    lo: 0,
                    hi: 100,
                    preds: 2,
                    sim: None,
                },
            ),
            entry(
                7,
                TraceEvent::ElevatorAttached { col: "Item.qty".into(), chunk: 100, riders: 1 },
            ),
            entry(8, TraceEvent::Preempted { remaining_ms: 0.3 }),
            entry(9, TraceEvent::LeaseGranted { threads: 1 }),
            entry(
                10,
                TraceEvent::ChunkDone {
                    col: "Item.qty".into(),
                    lo: 100,
                    hi: 200,
                    preds: 3,
                    sim: None,
                },
            ),
            entry(
                11,
                TraceEvent::OpDone {
                    op: "select(Item)".into(),
                    rows_in: 200,
                    rows_out: 10,
                    sim: None,
                },
            ),
            entry(
                12,
                TraceEvent::Delivered { total_ms: 2.0, queue_ms: 0.5, actual_ns: 1e4, rows: 10 },
            ),
        ]);
        assert_eq!(validate_lifecycle(&t), Ok(Terminal::Delivered));
    }

    #[test]
    fn short_terminals_validate() {
        for (ev, term) in [
            (TraceEvent::CacheHit, Terminal::CacheHit),
            (TraceEvent::Collapsed { leader: 3 }, Terminal::Collapsed),
        ] {
            assert_eq!(validate_lifecycle(&trace(vec![entry(4, ev)])), Ok(term));
        }
        let shed = trace(vec![
            entry(1, TraceEvent::Admitted { quote_ms: 0.1, ops: 1, covered: 0 }),
            entry(2, TraceEvent::Shed),
        ]);
        assert_eq!(validate_lifecycle(&shed), Ok(Terminal::Shed));
        let failed = trace(vec![
            entry(1, TraceEvent::Admitted { quote_ms: 0.1, ops: 1, covered: 0 }),
            entry(2, TraceEvent::LeaseGranted { threads: 1 }),
            entry(3, TraceEvent::Failed { error: "boom".into() }),
        ]);
        assert_eq!(validate_lifecycle(&failed), Ok(Terminal::Failed));
    }

    #[test]
    fn illegal_sequences_are_rejected() {
        // Delivered without ever being admitted.
        let t = trace(vec![entry(
            1,
            TraceEvent::Delivered { total_ms: 1.0, queue_ms: 0.0, actual_ns: 0.0, rows: 0 },
        )]);
        assert!(validate_lifecycle(&t).is_err());
        // Chunk work after delivery.
        let t = trace(vec![
            entry(1, TraceEvent::Admitted { quote_ms: 0.1, ops: 1, covered: 0 }),
            entry(2, TraceEvent::LeaseGranted { threads: 1 }),
            entry(
                3,
                TraceEvent::Delivered { total_ms: 1.0, queue_ms: 0.0, actual_ns: 0.0, rows: 1 },
            ),
            entry(4, TraceEvent::ChunkDone { col: "x".into(), lo: 0, hi: 1, preds: 1, sim: None }),
        ]);
        assert!(validate_lifecycle(&t).is_err());
        // Missing terminal.
        let t = trace(vec![
            entry(1, TraceEvent::Admitted { quote_ms: 0.1, ops: 1, covered: 0 }),
            entry(2, TraceEvent::LeaseGranted { threads: 1 }),
        ]);
        let e = validate_lifecycle(&t).unwrap_err();
        assert!(e.message.contains("mid-lifecycle"), "{e}");
        // Non-increasing timestamps.
        let t = trace(vec![
            entry(5, TraceEvent::Admitted { quote_ms: 0.1, ops: 1, covered: 0 }),
            entry(5, TraceEvent::LeaseGranted { threads: 1 }),
        ]);
        assert!(validate_lifecycle(&t).unwrap_err().message.contains("timestamp"));
        // A cache hit cannot follow admission.
        let t = trace(vec![
            entry(1, TraceEvent::Admitted { quote_ms: 0.1, ops: 1, covered: 0 }),
            entry(2, TraceEvent::CacheHit),
        ]);
        assert!(validate_lifecycle(&t).is_err());
    }

    #[test]
    fn jsonl_escapes_and_shapes_lines() {
        let t = trace(vec![
            entry(1, TraceEvent::Admitted { quote_ms: 0.25, ops: 1, covered: 0 }),
            entry(2, TraceEvent::LeaseGranted { threads: 1 }),
            entry(3, TraceEvent::Failed { error: "bad \"col\"\nname\t\\".into() }),
        ]);
        let line = t.to_jsonl();
        assert!(!line.contains('\n'), "one line: {line}");
        assert!(line.starts_with("{\"query\":9,\"session\":0,\"events\":["));
        assert!(line.contains("\"ev\":\"Admitted\",\"quote_ms\":0.25,\"ops\":1,\"covered\":0"));
        assert!(line.contains("bad \\\"col\\\"\\nname\\t\\\\"), "{line}");
        let sim = Some(EventCounters { reads: 3, cpu_ns: 1.5, ..EventCounters::default() });
        let t = trace(vec![entry(
            1,
            TraceEvent::ChunkDone { col: "Item.qty".into(), lo: 0, hi: 8, preds: 2, sim },
        )]);
        assert!(t.to_jsonl().contains("\"sim\":{\"reads\":3,"), "{}", t.to_jsonl());
    }

    #[test]
    fn sink_rings_collect_per_session_and_bound_memory() {
        let sink = TraceSink::new(&TraceMode::Ring, 2).expect("ring mode is on");
        assert!(TraceSink::new(&TraceMode::Off, 2).is_none());
        sink.register_session();
        sink.register_session();
        for i in 0..5 {
            let mut tb = sink.begin(i % 2);
            tb.push(&sink, TraceEvent::CacheHit);
            sink.finish(tb);
        }
        let all = sink.traces();
        assert_eq!(all.len(), 4, "session 0's ring (cap 2) evicted one of its three");
        assert_eq!(sink.dropped(), 1);
        let ids: Vec<u64> = all.iter().map(|t| t.query).collect();
        assert!(ids.windows(2).all(|w| w[0] < w[1]), "sorted by query id: {ids:?}");
        // Timestamps are globally strictly increasing.
        let ts: Vec<u64> = all.iter().flat_map(|t| &t.events).map(|e| e.t).collect();
        assert!(ts.windows(2).all(|w| w[0] < w[1]), "{ts:?}");
        for t in &all {
            validate_lifecycle(t).expect("cache-hit traces validate");
        }
    }
}
