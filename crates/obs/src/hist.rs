//! Mergeable log-bucketed histograms for latency percentiles.
//!
//! The service used to keep a bounded vector of recent samples per metric
//! and sort it on every snapshot ([`service`'s `SampleWindow`]) — percentiles
//! were exact but covered only the most recent window, and merging two
//! windows is not meaningful. A [`LogHistogram`] inverts the trade:
//! geometric buckets bound the *relative* quantile error by construction
//! ([`LogHistogram::REL_ERROR`], under 5%), memory is bounded by the fixed
//! bucket range however many samples arrive, and merging is exact —
//! elementwise bucket addition gives bit-for-bit the histogram of the
//! union, so per-session histograms roll up into one global distribution
//! without ever moving raw samples.
//!
//! Buckets are geometric with [`SUB`] sub-buckets per octave: bucket `i >= 1`
//! covers `(V0·2^((i-1)/SUB), V0·2^(i/SUB)]` and reports its geometric
//! midpoint; bucket `0` holds everything at or below `V0` (1 ns when the
//! unit is milliseconds). The exact maximum is tracked on the side, so
//! `max` and the top quantiles never overshoot the data.

/// Sub-buckets per octave (power of two). 8 gives a bucket width of
/// `2^(1/8) ≈ 1.09×`, i.e. at most ~4.4% relative error at the geometric
/// midpoint.
const SUB: usize = 8;

/// Smallest resolvable sample; with millisecond samples this is 1 ns.
const V0: f64 = 1e-6;

/// Octaves covered above `V0`; `41` spans 1 ns .. ~36 min in milliseconds.
/// Everything beyond clamps into the last bucket.
const OCTAVES: usize = 41;

/// Total bucket count (one underflow bucket + the geometric range).
const NBUCKETS: usize = 1 + OCTAVES * SUB;

/// Summary statistics computed from a [`LogHistogram`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HistSummary {
    /// Number of recorded samples.
    pub count: usize,
    /// Exact arithmetic mean (0 when empty).
    pub mean: f64,
    /// Median (nearest-rank over buckets; within [`LogHistogram::REL_ERROR`]).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Exact largest sample.
    pub max: f64,
}

/// A fixed-size log-bucketed histogram of non-negative samples.
///
/// `record` is O(1), memory is O(1) (at most [`NBUCKETS`] counters,
/// allocated lazily up to the highest bucket touched), and
/// [`LogHistogram::merge`] produces exactly the histogram of the combined
/// sample sets.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LogHistogram {
    /// Bucket counts, allocated up to the highest touched bucket.
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    max: f64,
}

impl LogHistogram {
    /// Worst-case relative error of a quantile that falls strictly inside
    /// a bucket: half a bucket width, `2^(1/(2·SUB)) - 1`.
    pub const REL_ERROR: f64 = 0.0443; // 2^(1/16) - 1 ≈ 0.0443

    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket a sample lands in.
    fn bucket_of(v: f64) -> usize {
        if v.is_nan() || v <= V0 {
            // NaN and negatives also land in the underflow bucket rather
            // than corrupting the structure.
            return 0;
        }
        let octaves = (v / V0).log2();
        // The tiny slack keeps exact bucket upper bounds (and values a few
        // ulps above them) in their own bucket despite log2 rounding.
        let idx = (octaves * SUB as f64 - 1e-9).ceil().max(0.0) as usize;
        idx.min(NBUCKETS - 1)
    }

    /// The representative value reported for a bucket: the geometric
    /// midpoint of its range (`V0` for the underflow bucket).
    fn representative(idx: usize) -> f64 {
        if idx == 0 {
            V0
        } else {
            V0 * ((idx as f64 - 0.5) / SUB as f64).exp2()
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: f64) {
        let idx = Self::bucket_of(v);
        if self.counts.len() <= idx {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        self.count += 1;
        if v.is_finite() {
            self.sum += v.max(0.0);
            self.max = self.max.max(v);
        }
    }

    /// Fold `other` into `self`. The result is exactly the histogram of
    /// the union of both sample sets (identical bucket counts, sum, count,
    /// and max) — the property that lets per-session histograms merge into
    /// a global one.
    pub fn merge(&mut self, other: &Self) {
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> usize {
        self.count as usize
    }

    /// The exact largest recorded sample (0 when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// The exact sum of recorded samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// The nearest-rank `q`-quantile (`q` in `[0, 1]`), reported at its
    /// bucket's geometric midpoint and clamped to the exact maximum (so
    /// the top quantiles never exceed the data).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let top = self.counts.iter().rposition(|&c| c > 0).unwrap_or(0);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // The highest occupied bucket reports the exact maximum
                // (which lives in it), so top quantiles never overshoot
                // the data and a lone sample reports exactly.
                return if idx == top { self.max } else { Self::representative(idx) };
            }
        }
        self.max
    }

    /// Summarize: exact count/mean/max, bucketed p50/p95/p99.
    pub fn summary(&self) -> HistSummary {
        if self.count == 0 {
            return HistSummary::default();
        }
        HistSummary {
            count: self.count as usize,
            mean: self.sum / self.count as f64,
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            max: self.max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random stream (no external deps in this crate).
    fn lcg(seed: u64) -> impl FnMut() -> f64 {
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            // Spread samples over ~7 orders of magnitude.
            let u = ((s >> 11) as f64) / (1u64 << 53) as f64;
            1e-3 * (u * 23.0).exp2()
        }
    }

    #[test]
    fn empty_summary_is_zero() {
        assert_eq!(LogHistogram::new().summary(), HistSummary::default());
        assert_eq!(LogHistogram::new().quantile(0.5), 0.0);
    }

    #[test]
    fn merge_equals_histogramming_the_union() {
        // The satellite's exactness contract: merging per-session
        // histograms must give *exact* bucket counts — identical to one
        // histogram fed every sample.
        let mut gen = lcg(7);
        let sessions: Vec<Vec<f64>> =
            (0..5).map(|i| (0..(200 + i * 57)).map(|_| gen()).collect()).collect();
        let mut merged = LogHistogram::new();
        for sess in &sessions {
            let mut h = LogHistogram::new();
            for &v in sess {
                h.record(v);
            }
            merged.merge(&h);
        }
        let mut union = LogHistogram::new();
        for &v in sessions.iter().flatten() {
            union.record(v);
        }
        assert_eq!(merged.counts, union.counts, "merge must match the union bucket for bucket");
        assert_eq!(merged.count(), union.count());
        assert_eq!(merged.max(), union.max());
        // The sum is exact per histogram; across a merge only f64 addition
        // order differs.
        assert!((merged.sum() - union.sum()).abs() <= union.sum().abs() * 1e-12);
        assert_eq!(merged.count(), sessions.iter().map(Vec::len).sum::<usize>());
    }

    #[test]
    fn quantiles_stay_within_the_error_bound() {
        let mut gen = lcg(42);
        let mut samples: Vec<f64> = (0..10_000).map(|_| gen()).collect();
        let mut h = LogHistogram::new();
        for &v in &samples {
            h.record(v);
        }
        samples.sort_by(f64::total_cmp);
        for q in [0.5, 0.9, 0.95, 0.99] {
            let exact = samples[((q * samples.len() as f64).ceil() as usize).max(1) - 1];
            let approx = h.quantile(q);
            let rel = (approx - exact).abs() / exact;
            assert!(
                rel <= LogHistogram::REL_ERROR + 1e-9,
                "q={q}: approx {approx} vs exact {exact} (rel {rel:.4})"
            );
        }
        assert_eq!(h.max(), *samples.last().unwrap(), "max is exact");
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((h.summary().mean - mean).abs() < 1e-9, "mean is exact");
    }

    #[test]
    fn memory_is_bounded_regardless_of_sample_count() {
        let mut h = LogHistogram::new();
        for i in 0..1_000_000u64 {
            // Adversarial spread including huge outliers.
            h.record((i % 977) as f64 * 1e3 + 0.001);
        }
        h.record(f64::INFINITY - f64::INFINITY); // NaN → underflow bucket
        h.record(-5.0);
        h.record(1e300); // clamps into the top bucket
        assert!(h.counts.len() <= NBUCKETS, "bucket storage is capped: {}", h.counts.len());
        assert_eq!(h.count(), 1_000_003);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let mut h = LogHistogram::new();
        h.record(7.0);
        let s = h.summary();
        // Clamped to the exact max, a lone sample reports exactly.
        assert_eq!((s.p50, s.p95, s.p99, s.max), (7.0, 7.0, 7.0, 7.0));
        assert_eq!(s.count, 1);
    }

    #[test]
    fn bucket_bounds_are_half_open_and_ordered() {
        // A value exactly on a bucket's upper bound lands in that bucket.
        for i in 1..64usize {
            let hi = V0 * (i as f64 / SUB as f64).exp2();
            assert_eq!(LogHistogram::bucket_of(hi), i, "upper bound of bucket {i}");
            let eps = hi * (1.0 + 1e-6);
            assert_eq!(LogHistogram::bucket_of(eps), i + 1, "just above bucket {i}");
        }
        assert_eq!(LogHistogram::bucket_of(0.0), 0);
        assert_eq!(LogHistogram::bucket_of(V0), 0);
    }
}
