//! Machine profiles.
//!
//! The paper's experiments run on an SGI Origin2000 whose full geometry is
//! given in §3.4.1; Figure 3 additionally plots three older Sun workstations
//! for which the paper lists CPU clock and line sizes. Latencies for the Sun
//! machines are not given in the paper; the values below are period-plausible
//! reconstructions chosen so that Figure 3's *shape* statement holds (memory
//! latency nearly flat across the decade while CPU speed grows ~10×). They
//! are documented here and in DESIGN.md as part of the hardware substitution.

use crate::config::{CacheConfig, Latencies, MachineConfig, TlbConfig, WorkCosts};

/// Work costs calibrated by the paper on the Origin2000 (§3.4 footnotes).
pub fn origin2000_work() -> WorkCosts {
    WorkCosts {
        cluster_tuple_ns: 50.0,
        radix_compare_ns: 24.0,
        radix_result_ns: 240.0,
        hash_tuple_ns: 680.0,
        hash_cluster_ns: 3600.0,
        scan_iter_ns: 16.0, // 4 cycles @ 250 MHz
        sort_tuple_ns: 50.0,
        merge_tuple_ns: 24.0,
    }
}

/// SGI Origin2000, one 250 MHz MIPS R10000 (the paper's experiment machine).
///
/// Geometry from §3.4.1: L1 32 KB = 1024 × 32 B lines; L2 4 MB = 32768 ×
/// 128 B lines; 16 KB pages, 64 TLB entries. Latencies from the paper's
/// calibration: l_TLB = 228 ns, l_L2 = 24 ns, l_Mem = 412 ns.
pub fn origin2000() -> MachineConfig {
    MachineConfig {
        name: "origin2k",
        cpu_mhz: 250.0,
        l1: Some(CacheConfig::new(32 * 1024, 32, 2)),
        l2: CacheConfig::new(4 * 1024 * 1024, 128, 2),
        tlb: TlbConfig::new(64, 16 * 1024),
        vm: None,
        lat: Latencies { l2_ns: 24.0, mem_ns: 412.0, tlb_ns: 228.0 },
        work: origin2000_work(),
    }
}

fn scaled_work(scan_iter_ns: f64, scale: f64) -> WorkCosts {
    let w = origin2000_work();
    WorkCosts {
        cluster_tuple_ns: w.cluster_tuple_ns * scale,
        radix_compare_ns: w.radix_compare_ns * scale,
        radix_result_ns: w.radix_result_ns * scale,
        hash_tuple_ns: w.hash_tuple_ns * scale,
        hash_cluster_ns: w.hash_cluster_ns * scale,
        scan_iter_ns,
        sort_tuple_ns: w.sort_tuple_ns * scale,
        merge_tuple_ns: w.merge_tuple_ns * scale,
    }
}

/// Sun Ultra Enterprise 450, 296 MHz UltraSPARC-II (Fig. 3, year 1997).
///
/// Fig. 3 gives L2 line 64 B, L1 line 16 B. Cache capacities (16 KB L1,
/// 1 MB L2), 64-entry/8 KB TLB and the latency set are period-plausible
/// reconstructions (see module docs).
pub fn sun_ultra450() -> MachineConfig {
    MachineConfig {
        name: "sun450",
        cpu_mhz: 296.0,
        l1: Some(CacheConfig::new(16 * 1024, 16, 1)),
        l2: CacheConfig::new(1024 * 1024, 64, 1),
        tlb: TlbConfig::new(64, 8 * 1024),
        vm: None,
        lat: Latencies { l2_ns: 30.0, mem_ns: 270.0, tlb_ns: 200.0 },
        work: scaled_work(13.5, 250.0 / 296.0), // 4 cycles @ 296 MHz
    }
}

/// Sun Ultra 1, 143 MHz UltraSPARC-I (Fig. 3, year 1995).
pub fn sun_ultra1() -> MachineConfig {
    MachineConfig {
        name: "ultra",
        cpu_mhz: 143.0,
        l1: Some(CacheConfig::new(16 * 1024, 16, 1)),
        l2: CacheConfig::new(512 * 1024, 64, 1),
        tlb: TlbConfig::new(64, 8 * 1024),
        vm: None,
        lat: Latencies { l2_ns: 42.0, mem_ns: 266.0, tlb_ns: 230.0 },
        work: scaled_work(28.0, 250.0 / 143.0), // 4 cycles @ 143 MHz
    }
}

/// Sun LX, 50 MHz microSPARC (Fig. 3, year 1992).
///
/// The paper lists only an L2 with 16 B lines for this machine (no on-chip
/// data cache is modelled), so `l1` is `None` and every cache miss is an L2
/// miss in the model's terms.
pub fn sun_lx() -> MachineConfig {
    MachineConfig {
        name: "sunLX",
        cpu_mhz: 50.0,
        l1: None,
        l2: CacheConfig::new(64 * 1024, 16, 1),
        tlb: TlbConfig::new(32, 4 * 1024),
        vm: None,
        lat: Latencies { l2_ns: 60.0, mem_ns: 220.0, tlb_ns: 180.0 },
        work: scaled_work(80.0, 250.0 / 50.0), // 4 cycles @ 50 MHz
    }
}

/// A present-day commodity x86 core (extension; not in the paper).
///
/// Used in EXPERIMENTS.md to show the §2 trend has continued: relative to
/// the Origin2000 the CPU is ~15× faster per cycle-count while DRAM latency
/// has barely halved, so the stall fraction at large stride is even worse.
pub fn modern() -> MachineConfig {
    MachineConfig {
        name: "modern",
        cpu_mhz: 4000.0,
        l1: Some(CacheConfig::new(48 * 1024, 64, 12)),
        l2: CacheConfig::new(32 * 1024 * 1024, 64, 16), // LLC stand-in
        tlb: TlbConfig::new(1536, 4 * 1024),
        vm: None,
        lat: Latencies { l2_ns: 12.0, mem_ns: 80.0, tlb_ns: 25.0 },
        work: scaled_work(1.0, 250.0 / 4000.0), // 4 cycles @ 4 GHz
    }
}

/// Derive a profile whose memory-hierarchy latencies are scaled by `factor`
/// (geometry and CPU work costs unchanged).
///
/// This models a *placement* of the same hardware under different memory
/// conditions — a remote or contended replica of a shard sees the same
/// caches but pays more per miss — and is what the sharded-execution placer
/// feeds to the cost model so shard plans are priced per copy.
pub fn with_latency_scale(mut cfg: MachineConfig, factor: f64) -> MachineConfig {
    cfg.lat = Latencies {
        l2_ns: cfg.lat.l2_ns * factor,
        mem_ns: cfg.lat.mem_ns * factor,
        tlb_ns: cfg.lat.tlb_ns * factor,
    };
    cfg
}

/// The four machines of Figure 3, oldest last (matching the figure legend).
pub fn figure3_machines() -> Vec<MachineConfig> {
    vec![origin2000(), sun_ultra450(), sun_ultra1(), sun_lx()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn origin2000_matches_paper_geometry() {
        let m = origin2000();
        let l1 = m.l1.unwrap();
        assert_eq!(l1.lines(), 1024);
        assert_eq!(l1.line, 32);
        assert_eq!(m.l2.lines(), 32768);
        assert_eq!(m.l2.line, 128);
        assert_eq!(m.tlb.entries, 64);
        assert_eq!(m.tlb.page, 16 * 1024);
        assert_eq!(m.tlb_span(), 1 << 20);
        assert!((m.work.scan_iter_ns - 4.0 * m.ns_per_cycle()).abs() < 1e-9);
    }

    #[test]
    fn figure3_line_sizes_match_legend() {
        let ms = figure3_machines();
        assert_eq!(ms[0].l1_line(), 32);
        assert_eq!(ms[0].l2.line, 128);
        assert_eq!(ms[1].l1_line(), 16);
        assert_eq!(ms[1].l2.line, 64);
        assert_eq!(ms[2].l1_line(), 16);
        assert_eq!(ms[2].l2.line, 64);
        assert!(ms[3].l1.is_none());
        assert_eq!(ms[3].l2.line, 16);
    }

    #[test]
    fn latency_scale_touches_only_latencies() {
        let base = origin2000();
        let far = with_latency_scale(origin2000(), 1.5);
        assert!((far.lat.mem_ns - base.lat.mem_ns * 1.5).abs() < 1e-9);
        assert!((far.lat.l2_ns - base.lat.l2_ns * 1.5).abs() < 1e-9);
        assert!((far.lat.tlb_ns - base.lat.tlb_ns * 1.5).abs() < 1e-9);
        assert_eq!(far.work.scan_iter_ns, base.work.scan_iter_ns);
        assert_eq!(far.l2.line, base.l2.line);
        assert_eq!(far.name, base.name);
    }

    #[test]
    fn cpu_speed_grows_much_faster_than_memory_improves() {
        // The §1/Fig. 1 premise encoded in the profiles: 1992→1998 CPU work
        // per iteration drops ~5×, memory latency changes by < 2×.
        let old = sun_lx();
        let new = origin2000();
        assert!(old.work.scan_iter_ns / new.work.scan_iter_ns > 4.0);
        assert!(old.lat.mem_ns / new.lat.mem_ns > 0.5);
        assert!(new.lat.mem_ns / old.lat.mem_ns < 2.0);
    }
}
