//! A fully associative TLB with LRU replacement.
//!
//! Modern-for-1999 MMUs (§1 of the paper) hold translations for the ~64 most
//! recently used pages; a miss traps to the OS and is the single most
//! expensive memory event on the Origin2000 (228 ns — more than half a DRAM
//! access). The paper's radix-cluster analysis (§3.4.2) hinges on keeping the
//! number of concurrently written regions below the TLB entry count, so this
//! component is load-bearing for the reproduction.

use crate::config::TlbConfig;

const INVALID: u64 = u64::MAX;

/// Fully associative, true-LRU TLB. See module docs.
#[derive(Debug, Clone)]
pub struct Tlb {
    cfg: TlbConfig,
    page_shift: u32,
    pages: Vec<u64>,
    stamps: Vec<u64>,
    clock: u64,
    /// Fast path for the common sequential-access case.
    last_page: u64,
}

impl Tlb {
    /// Build an empty TLB with the given geometry.
    pub fn new(cfg: TlbConfig) -> Self {
        Self {
            cfg,
            page_shift: cfg.page.trailing_zeros(),
            pages: vec![INVALID; cfg.entries],
            stamps: vec![0; cfg.entries],
            clock: 0,
            last_page: INVALID,
        }
    }

    /// The geometry this TLB was built with.
    #[inline]
    pub fn config(&self) -> TlbConfig {
        self.cfg
    }

    /// Page number of an address.
    #[inline]
    pub fn page_of(&self, addr: u64) -> u64 {
        addr >> self.page_shift
    }

    /// Look up the page containing `addr`. Returns `true` on hit; on miss the
    /// LRU entry is replaced (the OS refill the paper describes).
    #[inline]
    pub fn access(&mut self, addr: u64) -> bool {
        let page = self.page_of(addr);
        if page == self.last_page {
            // Repeated access to the same page: guaranteed hit and, because
            // it was the most recent touch, its stamp is already maximal —
            // no LRU bookkeeping needed.
            return true;
        }
        self.clock += 1;
        for i in 0..self.pages.len() {
            if self.pages[i] == page {
                self.stamps[i] = self.clock;
                self.last_page = page;
                return true;
            }
        }
        // Miss: replace LRU (or first invalid) entry.
        let mut victim = 0;
        let mut oldest = u64::MAX;
        for i in 0..self.pages.len() {
            if self.pages[i] == INVALID {
                victim = i;
                break;
            }
            if self.stamps[i] < oldest {
                oldest = self.stamps[i];
                victim = i;
            }
        }
        self.pages[victim] = page;
        self.stamps[victim] = self.clock;
        self.last_page = page;
        false
    }

    /// Whether a page is resident (no side effects).
    pub fn contains_page(&self, page: u64) -> bool {
        self.pages.contains(&page)
    }

    /// Invalidate the entry for one page, if present (used by the VM level:
    /// evicting a page from physical memory must unmap it).
    pub fn invalidate_page(&mut self, page: u64) {
        for i in 0..self.pages.len() {
            if self.pages[i] == page {
                self.pages[i] = INVALID;
                self.stamps[i] = 0;
            }
        }
        if self.last_page == page {
            self.last_page = INVALID;
        }
    }

    /// Invalidate all entries.
    pub fn invalidate(&mut self) {
        self.pages.fill(INVALID);
        self.stamps.fill(0);
        self.clock = 0;
        self.last_page = INVALID;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tlb4() -> Tlb {
        Tlb::new(TlbConfig::new(4, 4096))
    }

    #[test]
    fn hit_within_page_miss_across() {
        let mut t = tlb4();
        assert!(!t.access(0));
        assert!(t.access(100));
        assert!(t.access(4095));
        assert!(!t.access(4096));
    }

    #[test]
    fn lru_eviction_order() {
        let mut t = tlb4();
        for p in 0..4u64 {
            assert!(!t.access(p * 4096));
        }
        // Touch page 0 to make page 1 the LRU.
        assert!(t.access(0));
        assert!(!t.access(4 * 4096)); // evicts page 1
        assert!(t.access(0));
        assert!(!t.access(4096)); // page 1 gone
    }

    #[test]
    fn round_robin_over_more_pages_than_entries_always_misses() {
        let mut t = tlb4();
        // 8 pages cycled repeatedly through a 4-entry LRU TLB: every access
        // misses (the classic LRU worst case the radix-cluster avoids).
        let mut misses = 0;
        for round in 0..3 {
            for p in 0..8u64 {
                if !t.access(p * 4096) {
                    misses += 1;
                }
            }
            let _ = round;
        }
        assert_eq!(misses, 24);
    }

    #[test]
    fn working_set_within_entries_hits_after_warmup() {
        let mut t = tlb4();
        for p in 0..4u64 {
            t.access(p * 4096);
        }
        for p in 0..4u64 {
            assert!(t.access(p * 4096));
        }
    }

    #[test]
    fn last_page_fast_path_does_not_corrupt_lru() {
        let mut t = tlb4();
        for p in 0..4u64 {
            t.access(p * 4096);
        }
        // Hammer page 3 via the fast path, then insert a new page: the LRU
        // victim must be page 0, not page 3.
        for _ in 0..100 {
            assert!(t.access(3 * 4096 + 8));
        }
        assert!(!t.access(9 * 4096));
        assert!(t.contains_page(3));
        assert!(!t.contains_page(0));
    }
}
