//! The paper's §2 "reality check": sequentially scan an in-memory buffer,
//! reading one byte per iteration at a configurable stride (Figure 3).
//!
//! This mimics a read-only scan of a one-byte column in a table whose
//! record width equals the stride — e.g. a zero-selectivity selection or a
//! simple `MAX`/`SUM` aggregate. The experiment exists in two forms:
//!
//! * [`scan_sim`] — replay of the address stream through a simulated machine,
//!   reproducing the figure for all four 1990s machines;
//! * [`scan_native`] — the same loop over a real buffer on the host CPU,
//!   wall-clock timed, showing the effect persists on modern hardware.

use std::time::Instant;

use crate::config::MachineConfig;
use crate::counters::EventCounters;
use crate::system::{Access, MemorySystem};
use crate::tracker::Work;

/// Number of iterations used throughout the paper's Figure 3.
pub const PAPER_ITERATIONS: usize = 200_000;

/// One measured point of the stride sweep.
#[derive(Debug, Clone, Copy)]
pub struct StridePoint {
    /// Record width in bytes (the X axis of Fig. 3).
    pub stride: usize,
    /// Elapsed milliseconds for all iterations (the Y axis of Fig. 3).
    pub elapsed_ms: f64,
    /// Full event breakdown (simulated runs only; zeroed for native runs).
    pub counters: EventCounters,
}

/// Simulate the scan of `iters` one-byte reads at `stride` on `machine`,
/// starting with cold caches (the paper's stated starting condition).
pub fn scan_sim(machine: MachineConfig, iters: usize, stride: usize) -> StridePoint {
    assert!(stride > 0, "stride must be positive");
    let mut sys = MemorySystem::new(machine);
    // A page-aligned base keeps page-boundary behaviour identical across
    // runs; any constant works since the simulator sees raw addresses.
    let base: u64 = 1 << 30;
    let iter_ns = machine.work.scan_iter_ns;
    for i in 0..iters {
        sys.touch(base + (i * stride) as u64, 1, Access::Read);
        sys.cpu_ns(iter_ns);
    }
    let _ = Work::ScanIter; // unit of the per-iteration charge above
    let counters = sys.counters();
    StridePoint { stride, elapsed_ms: counters.elapsed_ms(), counters }
}

/// Simulate the full Figure 3 sweep for one machine.
pub fn scan_sweep_sim(
    machine: MachineConfig,
    iters: usize,
    strides: impl IntoIterator<Item = usize>,
) -> Vec<StridePoint> {
    strides.into_iter().map(|s| scan_sim(machine, iters, s)).collect()
}

/// The stride values plotted in Figure 3 (1..256 with denser sampling at the
/// cache-line transition points).
pub fn figure3_strides() -> Vec<usize> {
    let mut v: Vec<usize> = (1..=32).collect();
    v.extend((36..=256).step_by(4));
    v
}

/// Run the scan natively on the host: `iters` one-byte reads at `stride`
/// over a freshly written buffer, wall-clock timed.
///
/// The accumulated sum is returned through the point's `counters.cpu_ns`
/// being zero and is consumed internally via `black_box`, preventing the
/// compiler from deleting the loop.
pub fn scan_native(iters: usize, stride: usize) -> StridePoint {
    assert!(stride > 0, "stride must be positive");
    let len = iters * stride;
    // Touch every page on allocation so the measurement excludes page
    // faults, matching "the buffer was in memory".
    let buf = vec![1u8; len];
    let mut sum = 0u64;
    let start = Instant::now();
    let mut idx = 0usize;
    for _ in 0..iters {
        // Safety: idx = i*stride < iters*stride = len by construction.
        sum += unsafe { *buf.get_unchecked(idx) } as u64;
        idx += stride;
    }
    let elapsed = start.elapsed();
    std::hint::black_box(sum);
    StridePoint {
        stride,
        elapsed_ms: elapsed.as_secs_f64() * 1e3,
        counters: EventCounters::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles;

    #[test]
    fn miss_rates_saturate_at_line_sizes() {
        // The figure's mechanism: L1 miss rate reaches 1/iter at the L1 line
        // size, L2 at the L2 line size; beyond that, performance is flat.
        let m = profiles::origin2000();
        let iters = 20_000;
        let at = |s: usize| scan_sim(m, iters, s);

        let s1 = at(1);
        // Stride 1: one L1 miss per 32 iterations.
        assert_eq!(s1.counters.l1_misses as usize, iters / 32);

        let s32 = at(32);
        assert_eq!(s32.counters.l1_misses as usize, iters);
        // At stride 32, L2 misses once per 4 iterations (128/32).
        assert_eq!(s32.counters.l2_misses as usize, iters / 4);

        let s128 = at(128);
        assert_eq!(s128.counters.l1_misses as usize, iters);
        assert_eq!(s128.counters.l2_misses as usize, iters);

        let s256 = at(256);
        assert_eq!(s256.counters.l2_misses as usize, iters);
        // Flat beyond the L2 line size:
        assert!((s256.elapsed_ms - s128.elapsed_ms).abs() / s128.elapsed_ms < 0.05);
    }

    #[test]
    fn cost_grows_monotonically_up_to_l2_line() {
        let m = profiles::origin2000();
        let pts = scan_sweep_sim(m, 10_000, [1, 8, 16, 32, 64, 128]);
        for w in pts.windows(2) {
            assert!(
                w[1].elapsed_ms > w[0].elapsed_ms,
                "stride {} -> {} must increase cost",
                w[0].stride,
                w[1].stride
            );
        }
    }

    #[test]
    fn stall_fraction_at_max_stride_matches_papers_95_percent_claim() {
        let m = profiles::origin2000();
        let p = scan_sim(m, 50_000, 256);
        // 4 cycles of work vs ~660 ns of stalls: >90% of time is memory.
        assert!(
            p.counters.stall_fraction() > 0.9,
            "stall fraction {}",
            p.counters.stall_fraction()
        );
    }

    #[test]
    fn newer_machine_is_faster_at_stride_1_but_not_at_stride_256() {
        // Fig. 3's punchline: the origin2k beats the sunLX by ~an order of
        // magnitude at stride 1 (CPU-bound), but by far less at stride 256
        // (memory-bound).
        let iters = 20_000;
        let new1 = scan_sim(profiles::origin2000(), iters, 1).elapsed_ms;
        let old1 = scan_sim(profiles::sun_lx(), iters, 1).elapsed_ms;
        let new256 = scan_sim(profiles::origin2000(), iters, 256).elapsed_ms;
        let old256 = scan_sim(profiles::sun_lx(), iters, 256).elapsed_ms;
        let speedup_small = old1 / new1;
        let speedup_large = old256 / new256;
        assert!(speedup_small > 4.0, "stride-1 speedup {speedup_small}");
        assert!(speedup_large < speedup_small / 2.0, "stride-256 speedup {speedup_large}");
    }

    #[test]
    fn stride8_vs_stride1_cycle_costs_match_paper_section_3_1() {
        // §3.1: on the Origin2000 a stride-8 scan costs ~10 cycles/iteration,
        // a stride-1 scan ~4 cycles. Check we land in that neighbourhood.
        let m = profiles::origin2000();
        let iters = 100_000;
        let cyc = |s: usize| {
            scan_sim(m, iters, s).counters.elapsed_ns() / iters as f64 / m.ns_per_cycle()
        };
        let c1 = cyc(1);
        let c8 = cyc(8);
        assert!((3.0..=6.0).contains(&c1), "stride-1 cycles {c1}");
        assert!((8.0..=13.0).contains(&c8), "stride-8 cycles {c8}");
    }

    #[test]
    fn native_scan_runs_and_is_positive() {
        let p = scan_native(10_000, 64);
        assert!(p.elapsed_ms >= 0.0);
        assert_eq!(p.stride, 64);
    }

    #[test]
    fn figure3_strides_cover_the_axis() {
        let s = figure3_strides();
        assert_eq!(*s.first().unwrap(), 1);
        assert_eq!(*s.last().unwrap(), 256);
        assert!(s.contains(&32) && s.contains(&128));
    }
}
