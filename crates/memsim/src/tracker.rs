//! The [`MemTracker`] abstraction: one algorithm implementation, two modes.
//!
//! Every algorithm in the reproduction (`monet-core`) is generic over a
//! `MemTracker`. With [`NullTracker`] every hook is an empty `#[inline]`
//! function, so the monomorphized code is the plain native algorithm — this
//! is what the criterion benches time on the host CPU. With [`SimTracker`]
//! every data access is replayed through a [`MemorySystem`] and every unit of
//! algorithmic work is charged its calibrated `w` cost, reproducing the
//! paper's hardware-counter measurements on the simulated Origin2000.
//!
//! Addresses passed to the tracker are the algorithm's *real* heap addresses,
//! so cache-set conflicts and page boundaries are realistic.

use crate::config::WorkCosts;
use crate::counters::EventCounters;
use crate::system::{Access, MemorySystem};

/// Units of algorithmic work, mapped to the paper's calibrated `w` constants
/// (see [`WorkCosts`]). Algorithms report *what* they did; only the simulated
/// machine knows what it costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Work {
    /// One tuple processed by one radix-cluster pass (`w_c`).
    ClusterTuple,
    /// One join-predicate evaluation in radix-join's nested loop (`w_r`).
    RadixCompare,
    /// One result tuple created by radix-join (`w'_r`).
    RadixResult,
    /// One tuple's worth of hash-join work: build or probe (`w_h`).
    HashTuple,
    /// One hash-table creation/destruction (`w'_h`, per cluster).
    HashClusterSetup,
    /// One iteration of the §2 scan experiment (4 cycles on the Origin2000).
    ScanIter,
    /// One tuple moved by one radix-sort pass (sort-merge baseline).
    SortTuple,
    /// One tuple advanced by the merge phase (sort-merge baseline).
    MergeTuple,
}

impl Work {
    /// The calibrated cost of this work unit on a machine, in nanoseconds.
    #[inline]
    pub fn cost_ns(self, w: &WorkCosts) -> f64 {
        match self {
            Work::ClusterTuple => w.cluster_tuple_ns,
            Work::RadixCompare => w.radix_compare_ns,
            Work::RadixResult => w.radix_result_ns,
            Work::HashTuple => w.hash_tuple_ns,
            Work::HashClusterSetup => w.hash_cluster_ns,
            Work::ScanIter => w.scan_iter_ns,
            Work::SortTuple => w.sort_tuple_ns,
            Work::MergeTuple => w.merge_tuple_ns,
        }
    }
}

/// Instrumentation hooks called by the algorithms in `monet-core`.
///
/// Implementations must be cheap: the hooks sit in the innermost loops of
/// every join. `ENABLED` lets algorithms skip *building* expensive arguments
/// (not just the call) when tracking is off.
pub trait MemTracker {
    /// `false` for [`NullTracker`]; lets call sites guard costly bookkeeping.
    const ENABLED: bool;

    /// A load of `len` bytes at `addr`.
    fn read(&mut self, addr: usize, len: usize);

    /// A store of `len` bytes at `addr`.
    fn write(&mut self, addr: usize, len: usize);

    /// `count` units of algorithmic work of kind `w`.
    fn work(&mut self, w: Work, count: u64);

    /// Raw CPU-time charge (rarely needed; prefer [`work`](Self::work)).
    fn cpu_ns(&mut self, ns: f64);

    /// Event counters accumulated so far, when this tracker counts anything
    /// (`None` for [`NullTracker`]). Consumers such as the query executor use
    /// before/after snapshots to attribute simulated cost per operator.
    fn counters_snapshot(&self) -> Option<EventCounters> {
        None
    }
}

/// Track a read of one `T` value.
#[inline(always)]
pub fn track_read<T, M: MemTracker>(m: &mut M, r: &T) {
    if M::ENABLED {
        m.read(r as *const T as usize, core::mem::size_of::<T>());
    }
}

/// Track a write of one `T` value.
#[inline(always)]
pub fn track_write<T, M: MemTracker>(m: &mut M, r: &T) {
    if M::ENABLED {
        m.write(r as *const T as usize, core::mem::size_of::<T>());
    }
}

/// Track a sequential read of a whole slice (counts each element).
#[inline(always)]
pub fn track_read_slice<T, M: MemTracker>(m: &mut M, s: &[T]) {
    if M::ENABLED && !s.is_empty() {
        m.read(s.as_ptr() as usize, core::mem::size_of_val(s));
    }
}

/// Track a sequential write of a whole slice.
#[inline(always)]
pub fn track_write_slice<T, M: MemTracker>(m: &mut M, s: &[T]) {
    if M::ENABLED && !s.is_empty() {
        m.write(s.as_ptr() as usize, core::mem::size_of_val(s));
    }
}

/// The zero-cost tracker: all hooks are no-ops that the optimizer removes.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullTracker;

impl MemTracker for NullTracker {
    const ENABLED: bool = false;

    #[inline(always)]
    fn read(&mut self, _addr: usize, _len: usize) {}

    #[inline(always)]
    fn write(&mut self, _addr: usize, _len: usize) {}

    #[inline(always)]
    fn work(&mut self, _w: Work, _count: u64) {}

    #[inline(always)]
    fn cpu_ns(&mut self, _ns: f64) {}
}

/// The simulating tracker: replays every access through a [`MemorySystem`].
#[derive(Debug, Clone)]
pub struct SimTracker {
    sys: MemorySystem,
}

impl SimTracker {
    /// Wrap a memory system (usually fresh and cold).
    pub fn new(sys: MemorySystem) -> Self {
        Self { sys }
    }

    /// Build directly from a machine profile.
    pub fn for_machine(cfg: crate::config::MachineConfig) -> Self {
        Self::new(MemorySystem::new(cfg))
    }

    /// Counter snapshot.
    pub fn counters(&self) -> EventCounters {
        self.sys.counters()
    }

    /// Access the underlying system (reset, invalidate, machine info).
    pub fn system_mut(&mut self) -> &mut MemorySystem {
        &mut self.sys
    }

    /// Access the underlying system immutably.
    pub fn system(&self) -> &MemorySystem {
        &self.sys
    }

    /// Unwrap the memory system.
    pub fn into_system(self) -> MemorySystem {
        self.sys
    }
}

impl MemTracker for SimTracker {
    const ENABLED: bool = true;

    #[inline]
    fn read(&mut self, addr: usize, len: usize) {
        self.sys.touch(addr as u64, len, Access::Read);
    }

    #[inline]
    fn write(&mut self, addr: usize, len: usize) {
        self.sys.touch(addr as u64, len, Access::Write);
    }

    #[inline]
    fn work(&mut self, w: Work, count: u64) {
        let ns = w.cost_ns(&self.sys.machine().work);
        self.sys.cpu_ns(ns * count as f64);
    }

    #[inline]
    fn cpu_ns(&mut self, ns: f64) {
        self.sys.cpu_ns(ns);
    }

    fn counters_snapshot(&self) -> Option<EventCounters> {
        Some(self.sys.counters())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles;

    #[test]
    fn null_tracker_is_zero_sized() {
        assert_eq!(core::mem::size_of::<NullTracker>(), 0);
    }

    #[test]
    fn sim_tracker_counts_reads_and_writes() {
        let mut t = SimTracker::for_machine(profiles::origin2000());
        let data = vec![0u64; 1024];
        for v in &data {
            track_read(&mut t, v);
        }
        let c = t.counters();
        assert_eq!(c.reads, 1024);
        // 8 KiB sequential: one miss per 32-byte line, modulo the slice not
        // being line-aligned (at most one extra line).
        assert!(c.l1_misses >= 256 && c.l1_misses <= 257, "l1 {}", c.l1_misses);
    }

    #[test]
    fn work_charges_calibrated_cost() {
        let mut t = SimTracker::for_machine(profiles::origin2000());
        t.work(Work::ClusterTuple, 1000);
        assert!((t.counters().cpu_ns - 50_000.0).abs() < 1e-9);
        t.work(Work::HashClusterSetup, 2);
        assert!((t.counters().cpu_ns - 57_200.0).abs() < 1e-9);
    }

    #[test]
    fn track_slice_counts_whole_span() {
        let mut t = SimTracker::for_machine(profiles::origin2000());
        let data = vec![0u8; 4096];
        track_read_slice(&mut t, &data);
        let c = t.counters();
        assert_eq!(c.reads, 1);
        assert!(c.l1_misses >= 128 && c.l1_misses <= 129);
    }

    #[test]
    fn generic_helper_respects_enabled_flag() {
        // With NullTracker the helpers must not panic and do nothing
        // observable (compile-time guarantee mostly; smoke test here).
        let mut t = NullTracker;
        let v = 42u32;
        track_read(&mut t, &v);
        track_write(&mut t, &v);
        t.work(Work::ScanIter, 10);
    }
}
