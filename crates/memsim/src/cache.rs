//! An N-way set-associative cache model with true LRU replacement.
//!
//! The model tracks *presence* only (tags), not contents — sufficient for
//! counting hits and misses, which is all the paper's methodology needs.
//! Writes are modelled as write-allocate (a write miss fetches the line),
//! matching both the R10000's caches and the cost model's treatment of
//! "storing the output" as incurring one miss per line.

use crate::config::CacheConfig;

/// Invalid-tag sentinel. Tags are line numbers (`addr >> line_shift`), which
/// for realistic address spaces never reach `u64::MAX`.
const INVALID: u64 = u64::MAX;

/// A set-associative cache. See module docs.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    cfg: CacheConfig,
    line_shift: u32,
    set_mask: u64,
    assoc: usize,
    /// `sets * assoc` tags, row-major by set.
    tags: Vec<u64>,
    /// LRU stamp per way; larger = more recently used.
    stamps: Vec<u64>,
    clock: u64,
}

impl SetAssocCache {
    /// Build an empty (all-invalid) cache with the given geometry.
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.sets();
        Self {
            cfg,
            line_shift: cfg.line.trailing_zeros(),
            set_mask: (sets as u64) - 1,
            assoc: cfg.assoc,
            tags: vec![INVALID; sets * cfg.assoc],
            stamps: vec![0; sets * cfg.assoc],
            clock: 0,
        }
    }

    /// The geometry this cache was built with.
    #[inline]
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Line number for an address (shared with callers that want to iterate
    /// over the lines an access spans).
    #[inline]
    pub fn line_of(&self, addr: u64) -> u64 {
        addr >> self.line_shift
    }

    /// Access one cache line (by line number). Returns `true` on hit.
    /// On miss the LRU way of the set is replaced.
    #[inline]
    pub fn access_line(&mut self, line: u64) -> bool {
        self.clock += 1;
        let set = (line & self.set_mask) as usize;
        let base = set * self.assoc;
        let ways = &mut self.tags[base..base + self.assoc];
        // Hit path: linear scan; assoc is small (1–16).
        for (i, tag) in ways.iter().enumerate() {
            if *tag == line {
                self.stamps[base + i] = self.clock;
                return true;
            }
        }
        // Miss: evict LRU way.
        let mut victim = 0;
        let mut oldest = u64::MAX;
        for i in 0..self.assoc {
            let s = self.stamps[base + i];
            if self.tags[base + i] == INVALID {
                victim = i;
                break;
            }
            if s < oldest {
                oldest = s;
                victim = i;
            }
        }
        self.tags[base + victim] = line;
        self.stamps[base + victim] = self.clock;
        false
    }

    /// Convenience: access by byte address (single line — the caller is
    /// responsible for splitting accesses that straddle a line boundary,
    /// as [`crate::MemorySystem::touch`] does).
    #[inline]
    pub fn access_addr(&mut self, addr: u64) -> bool {
        self.access_line(self.line_of(addr))
    }

    /// Whether a line is currently resident (no LRU update, no side effects).
    pub fn contains_line(&self, line: u64) -> bool {
        let set = (line & self.set_mask) as usize;
        let base = set * self.assoc;
        self.tags[base..base + self.assoc].contains(&line)
    }

    /// Invalidate everything (used to guarantee the paper's "buffer is in
    /// memory but not in any cache" starting condition).
    pub fn invalidate(&mut self) {
        self.tags.fill(INVALID);
        self.stamps.fill(0);
        self.clock = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SetAssocCache {
        // 4 lines of 16 bytes, 2-way: 2 sets.
        SetAssocCache::new(CacheConfig::new(64, 16, 2))
    }

    #[test]
    fn first_touch_misses_second_hits() {
        let mut c = tiny();
        assert!(!c.access_addr(0));
        assert!(c.access_addr(0));
        assert!(c.access_addr(15)); // same line
        assert!(!c.access_addr(16)); // next line
    }

    #[test]
    fn lru_evicts_least_recently_used_way() {
        let mut c = tiny();
        // Lines 0, 2, 4 all map to set 0 (line index even).
        assert!(!c.access_addr(0)); // line 0 -> set 0
        assert!(!c.access_addr(32)); // line 2 -> set 0
        assert!(c.access_addr(0)); // touch line 0 again: line 32 is now LRU
        assert!(!c.access_addr(64)); // line 4 -> set 0, evicts line 2 (addr 32)
        assert!(c.access_addr(0)); // still resident
        assert!(!c.access_addr(32)); // was evicted
    }

    #[test]
    fn direct_mapped_conflicts() {
        // 4 lines of 16 bytes, direct mapped: 4 sets; lines 0 and 4 conflict.
        let mut c = SetAssocCache::new(CacheConfig::new(64, 16, 1));
        assert!(!c.access_addr(0));
        assert!(!c.access_addr(64)); // line 4, same set as line 0
        assert!(!c.access_addr(0)); // was evicted: conflict miss
    }

    #[test]
    fn sequential_scan_miss_rate_is_one_per_line() {
        let mut c = SetAssocCache::new(CacheConfig::new(1024, 32, 2));
        let mut misses = 0;
        for addr in (0..4096u64).step_by(4) {
            if !c.access_addr(addr) {
                misses += 1;
            }
        }
        assert_eq!(misses, 4096 / 32);
    }

    #[test]
    fn working_set_larger_than_cache_trashes() {
        let mut c = SetAssocCache::new(CacheConfig::new(1024, 32, 2));
        // Two full passes over 4 KiB (4x capacity): pass 2 misses every line
        // again because LRU evicted them.
        for _ in 0..2 {
            let mut misses = 0;
            for addr in (0..4096u64).step_by(32) {
                if !c.access_addr(addr) {
                    misses += 1;
                }
            }
            assert_eq!(misses, 128);
        }
    }

    #[test]
    fn working_set_within_cache_hits_after_warmup() {
        let mut c = SetAssocCache::new(CacheConfig::new(1024, 32, 2));
        for addr in (0..1024u64).step_by(32) {
            c.access_addr(addr);
        }
        for addr in (0..1024u64).step_by(32) {
            assert!(c.access_addr(addr), "warm line {addr} should hit");
        }
    }

    #[test]
    fn invalidate_clears_residency() {
        let mut c = tiny();
        c.access_addr(0);
        assert!(c.contains_line(0));
        c.invalidate();
        assert!(!c.contains_line(0));
        assert!(!c.access_addr(0));
    }
}
