//! [`MemorySystem`]: the composed TLB → L1 → L2 hierarchy with event counting
//! and the paper's latency-decomposition clock.

use std::collections::HashMap;

use crate::cache::SetAssocCache;
use crate::config::{MachineConfig, VmConfig};
use crate::counters::EventCounters;
use crate::tlb::Tlb;

/// Kind of memory access. The cache model is write-allocate, so reads and
/// writes behave identically for miss counting; the distinction is kept for
/// the `reads`/`writes` counters and potential write-through extensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// A load.
    Read,
    /// A store (write-allocate).
    Write,
}

/// The simulated memory hierarchy of one machine.
///
/// Drive it with [`touch`](Self::touch) using *real* addresses (e.g.
/// `slice.as_ptr() as u64 + offset`): using genuine heap addresses means set
/// conflicts, page boundaries and alignment behave as they would on hardware.
///
/// An inclusive hierarchy is modelled: every L1 miss is looked up in L2 (and
/// allocated there), mirroring the R10000.
#[derive(Debug, Clone)]
pub struct MemorySystem {
    cfg: MachineConfig,
    l1: Option<SetAssocCache>,
    l2: SetAssocCache,
    tlb: Tlb,
    vm: Option<VmState>,
    counters: EventCounters,
}

/// Resident-page set with true LRU replacement (the §4 virtual-memory
/// level). Residency is consulted on TLB misses only — a TLB-mapped page is
/// by construction resident — which keeps the hot path cheap; the LRU stamp
/// therefore refreshes on TLB misses, a documented approximation.
#[derive(Debug, Clone)]
struct VmState {
    cfg: VmConfig,
    /// page -> LRU stamp
    resident: HashMap<u64, u64>,
    /// stamp -> page (inverse map for O(log n) victim search)
    by_stamp: std::collections::BTreeMap<u64, u64>,
    clock: u64,
}

impl VmState {
    fn new(cfg: VmConfig) -> Self {
        Self {
            cfg,
            resident: HashMap::new(),
            by_stamp: std::collections::BTreeMap::new(),
            clock: 0,
        }
    }

    /// `Ok(())` if the page was already resident. Otherwise faults it in,
    /// returning the evicted LRU page (if any) so the caller can shoot down
    /// its TLB entry — preserving the invariant "TLB-mapped ⇒ resident".
    fn access(&mut self, page: u64) -> Result<(), Option<u64>> {
        self.clock += 1;
        if let Some(stamp) = self.resident.get_mut(&page) {
            self.by_stamp.remove(stamp);
            *stamp = self.clock;
            self.by_stamp.insert(self.clock, page);
            return Ok(());
        }
        let mut evicted = None;
        if self.resident.len() >= self.cfg.resident_pages {
            if let Some((&oldest, &victim)) = self.by_stamp.iter().next() {
                self.by_stamp.remove(&oldest);
                self.resident.remove(&victim);
                evicted = Some(victim);
            }
        }
        self.resident.insert(page, self.clock);
        self.by_stamp.insert(self.clock, page);
        Err(evicted)
    }

    fn invalidate(&mut self) {
        self.resident.clear();
        self.by_stamp.clear();
        self.clock = 0;
    }
}

impl MemorySystem {
    /// Build a cold (empty caches) memory system for `cfg`.
    pub fn new(cfg: MachineConfig) -> Self {
        Self {
            cfg,
            l1: cfg.l1.map(SetAssocCache::new),
            l2: SetAssocCache::new(cfg.l2),
            tlb: Tlb::new(cfg.tlb),
            vm: cfg.vm.map(VmState::new),
            counters: EventCounters::default(),
        }
    }

    /// The machine this system simulates.
    #[inline]
    pub fn machine(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Simulate one access of `len` bytes at `addr`.
    ///
    /// The access is split at L1-line boundaries (or L2-line boundaries when
    /// the machine has no L1); each line goes through TLB → L1 → L2 and the
    /// clock advances by the paper's per-miss latencies.
    #[inline]
    pub fn touch(&mut self, addr: u64, len: usize, kind: Access) {
        debug_assert!(len > 0, "zero-length access");
        match kind {
            Access::Read => self.counters.reads += 1,
            Access::Write => self.counters.writes += 1,
        }
        let line_size = self.cfg.l1_line() as u64;
        let first = addr & !(line_size - 1);
        let last = (addr + len as u64 - 1) & !(line_size - 1);
        let mut line_addr = first;
        loop {
            self.touch_line(line_addr);
            if line_addr == last {
                break;
            }
            line_addr += line_size;
        }
    }

    #[inline]
    fn touch_line(&mut self, addr: u64) {
        self.counters.line_accesses += 1;
        let lat = self.cfg.lat;
        if !self.tlb.access(addr) {
            self.counters.tlb_misses += 1;
            self.counters.stall_tlb_ns += lat.tlb_ns;
            // §4 extension: on a TLB miss, the page may not even be
            // memory-resident — that is a page fault to disk. Evicting a
            // resident page unmaps it (TLB shootdown), preserving the
            // invariant that TLB-mapped pages are resident.
            if let Some(vm) = self.vm.as_mut() {
                let page = self.tlb.page_of(addr);
                if let Err(evicted) = vm.access(page) {
                    self.counters.page_faults += 1;
                    self.counters.stall_fault_ns += vm.cfg.fault_ns;
                    if let Some(victim) = evicted {
                        self.tlb.invalidate_page(victim);
                    }
                }
            }
        }
        match self.l1.as_mut() {
            Some(l1) => {
                if !l1.access_addr(addr) {
                    self.counters.l1_misses += 1;
                    self.counters.stall_l2_ns += lat.l2_ns;
                    if !self.l2.access_addr(addr) {
                        self.counters.l2_misses += 1;
                        self.counters.stall_mem_ns += lat.mem_ns;
                    }
                }
            }
            None => {
                // Machines without a modelled L1 (SunLX): the only cache is
                // L2; a miss there goes straight to memory.
                if !self.l2.access_addr(addr) {
                    self.counters.l2_misses += 1;
                    self.counters.stall_mem_ns += lat.mem_ns;
                }
            }
        }
    }

    /// Account pure CPU work (nanoseconds). This is where the paper's `w`
    /// constants enter the clock.
    #[inline]
    pub fn cpu_ns(&mut self, ns: f64) {
        self.counters.cpu_ns += ns;
    }

    /// Account pure CPU work in cycles of this machine's clock.
    #[inline]
    pub fn cpu_cycles(&mut self, cycles: f64) {
        self.counters.cpu_ns += cycles * self.cfg.ns_per_cycle();
    }

    /// Snapshot of the counters so far.
    #[inline]
    pub fn counters(&self) -> EventCounters {
        self.counters
    }

    /// Reset counters to zero without touching cache/TLB state (use between
    /// phases you want to measure separately).
    pub fn reset_counters(&mut self) {
        self.counters = EventCounters::default();
    }

    /// Empty caches and TLB — the paper's "we made sure that the buffer was
    /// in memory, but not in any of the memory caches" starting condition.
    pub fn invalidate_caches(&mut self) {
        if let Some(l1) = self.l1.as_mut() {
            l1.invalidate();
        }
        self.l2.invalidate();
        self.tlb.invalidate();
        if let Some(vm) = self.vm.as_mut() {
            vm.invalidate();
        }
    }

    /// Convenience: run `f` and return the counter delta it produced.
    pub fn measure<R>(&mut self, f: impl FnOnce(&mut Self) -> R) -> (R, EventCounters) {
        let before = self.counters();
        let r = f(self);
        (r, self.counters() - before)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles;

    #[test]
    fn sequential_scan_misses_once_per_line() {
        let mut sys = MemorySystem::new(profiles::origin2000());
        let n = 1 << 16; // 64 KiB, exceeds L1 (32 KiB)
        for a in (0..n).step_by(8) {
            sys.touch(a, 8, Access::Read);
        }
        let c = sys.counters();
        assert_eq!(c.l1_misses, n / 32);
        assert_eq!(c.l2_misses, n / 128);
        // 64 KiB spans 4 pages of 16 KiB.
        assert_eq!(c.tlb_misses, n / (16 * 1024));
        assert_eq!(c.reads, n / 8);
    }

    #[test]
    fn straddling_access_touches_two_lines() {
        let mut sys = MemorySystem::new(profiles::origin2000());
        sys.touch(30, 8, Access::Read); // crosses the 32-byte boundary
        assert_eq!(sys.counters().line_accesses, 2);
        assert_eq!(sys.counters().l1_misses, 2);
    }

    #[test]
    fn second_pass_over_l1_resident_data_is_free() {
        let mut sys = MemorySystem::new(profiles::origin2000());
        let n = 16 * 1024; // half of L1
        for a in (0..n).step_by(8) {
            sys.touch(a, 8, Access::Read);
        }
        let first = sys.counters();
        for a in (0..n).step_by(8) {
            sys.touch(a, 8, Access::Read);
        }
        let second = sys.counters() - first;
        assert_eq!(second.l1_misses, 0);
        assert_eq!(second.l2_misses, 0);
        assert_eq!(second.tlb_misses, 0);
    }

    #[test]
    fn elapsed_time_decomposition_matches_paper_equation() {
        let mut sys = MemorySystem::new(profiles::origin2000());
        let n = 1 << 20;
        for a in (0..n).step_by(128) {
            sys.touch(a, 1, Access::Read);
        }
        sys.cpu_ns(1000.0);
        let c = sys.counters();
        let lat = sys.machine().lat;
        let expect = 1000.0
            + c.l1_misses as f64 * lat.l2_ns
            + c.l2_misses as f64 * lat.mem_ns
            + c.tlb_misses as f64 * lat.tlb_ns;
        assert!((c.elapsed_ns() - expect).abs() < 1e-6);
    }

    #[test]
    fn no_l1_machine_counts_l2_misses_directly() {
        let mut sys = MemorySystem::new(profiles::sun_lx());
        for a in (0..4096u64).step_by(16) {
            sys.touch(a, 1, Access::Read);
        }
        let c = sys.counters();
        assert_eq!(c.l1_misses, 0);
        assert_eq!(c.l2_misses, 4096 / 16);
    }

    #[test]
    fn invalidate_forces_cold_misses_again() {
        let mut sys = MemorySystem::new(profiles::origin2000());
        sys.touch(0, 8, Access::Read);
        sys.invalidate_caches();
        sys.reset_counters();
        sys.touch(0, 8, Access::Read);
        assert_eq!(sys.counters().l1_misses, 1);
        assert_eq!(sys.counters().tlb_misses, 1);
    }

    #[test]
    fn vm_level_counts_page_faults_with_lru() {
        let mut cfg = profiles::origin2000();
        cfg.vm = Some(crate::config::VmConfig::new(4, 8_000_000.0)); // 4 pages
        let mut sys = MemorySystem::new(cfg);
        let page = 16 * 1024u64;
        // Touch 8 distinct pages round-robin: every page access faults
        // (8-page working set through a 4-page LRU resident set).
        let mut faults_expected = 0;
        for round in 0..3 {
            for pg in 0..8u64 {
                sys.touch(pg * page, 1, Access::Read);
                faults_expected += 1;
            }
            let _ = round;
        }
        assert_eq!(sys.counters().page_faults, faults_expected);
        assert!(sys.counters().stall_fault_ns > 0.0);
        // A 4-page working set stops faulting after warm-up.
        sys.reset_counters();
        for _ in 0..3 {
            for pg in 100..104u64 {
                sys.touch(pg * page, 1, Access::Read);
            }
        }
        assert_eq!(sys.counters().page_faults, 4, "only the cold faults remain");
    }

    #[test]
    fn vm_sequential_scan_faults_once_per_page() {
        let mut cfg = profiles::origin2000();
        cfg.vm = Some(crate::config::VmConfig::new(16, 8_000_000.0));
        let mut sys = MemorySystem::new(cfg);
        let len = 1 << 20; // 64 pages of 16 KB
        for a in (0..len).step_by(128) {
            sys.touch(a, 8, Access::Read);
        }
        assert_eq!(sys.counters().page_faults, 64);
        // Page faults dominate elapsed time at this scale.
        assert!(sys.counters().stall_fault_ns > sys.counters().stall_mem_ns);
    }

    #[test]
    fn no_vm_level_means_no_faults() {
        let mut sys = MemorySystem::new(profiles::origin2000());
        for a in (0..1 << 22u64).step_by(16384) {
            sys.touch(a, 1, Access::Read);
        }
        assert_eq!(sys.counters().page_faults, 0);
        assert_eq!(sys.counters().stall_fault_ns, 0.0);
    }

    #[test]
    fn measure_returns_delta_only() {
        let mut sys = MemorySystem::new(profiles::origin2000());
        sys.touch(0, 8, Access::Read);
        let (_, d) = sys.measure(|s| {
            s.touch(1 << 20, 8, Access::Write);
        });
        assert_eq!(d.writes, 1);
        assert_eq!(d.reads, 0);
        assert_eq!(d.l1_misses, 1);
    }
}
