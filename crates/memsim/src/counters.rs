//! Event counters — the software analogue of the R10000 hardware counters
//! the paper reads via \[Sil97\].

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Counts of memory events plus the simulated-time decomposition.
///
/// `elapsed_ns()` reproduces the paper's cost equation
/// `T = T_cpu + M_L1·l_L2 + M_L2·l_Mem + M_TLB·l_TLB`: the stall fields are
/// accumulated by [`crate::MemorySystem`] as `misses × latency`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EventCounters {
    /// Read accesses issued (one per `touch`, regardless of lines spanned).
    pub reads: u64,
    /// Write accesses issued.
    pub writes: u64,
    /// Cache lines inspected (an access spanning two lines counts twice).
    pub line_accesses: u64,
    /// L1 data-cache misses.
    pub l1_misses: u64,
    /// L2 cache misses.
    pub l2_misses: u64,
    /// TLB misses.
    pub tlb_misses: u64,
    /// Page faults (only when a [`crate::VmConfig`] level is configured).
    pub page_faults: u64,
    /// Pure CPU work in nanoseconds (the `w` constants of §3.4).
    pub cpu_ns: f64,
    /// Stall time from L1 misses (`M_L1 · l_L2`).
    pub stall_l2_ns: f64,
    /// Stall time from L2 misses (`M_L2 · l_Mem`).
    pub stall_mem_ns: f64,
    /// Stall time from TLB misses (`M_TLB · l_TLB`).
    pub stall_tlb_ns: f64,
    /// Stall time from page faults (VM level only).
    pub stall_fault_ns: f64,
}

impl EventCounters {
    /// Total simulated elapsed time in nanoseconds.
    #[inline]
    pub fn elapsed_ns(&self) -> f64 {
        self.cpu_ns + self.stall_l2_ns + self.stall_mem_ns + self.stall_tlb_ns + self.stall_fault_ns
    }

    /// Total simulated elapsed time in milliseconds (the unit of the paper's
    /// figures).
    #[inline]
    pub fn elapsed_ms(&self) -> f64 {
        self.elapsed_ns() / 1e6
    }

    /// Fraction of elapsed time spent stalled on the memory system — the
    /// quantity behind the paper's "95% of its cycles waiting for memory"
    /// claim in §2.
    pub fn stall_fraction(&self) -> f64 {
        let e = self.elapsed_ns();
        if e == 0.0 {
            0.0
        } else {
            (e - self.cpu_ns) / e
        }
    }

    /// True if no events have been recorded.
    pub fn is_empty(&self) -> bool {
        *self == Self::default()
    }
}

impl Add for EventCounters {
    type Output = Self;
    fn add(self, o: Self) -> Self {
        Self {
            reads: self.reads + o.reads,
            writes: self.writes + o.writes,
            line_accesses: self.line_accesses + o.line_accesses,
            l1_misses: self.l1_misses + o.l1_misses,
            l2_misses: self.l2_misses + o.l2_misses,
            tlb_misses: self.tlb_misses + o.tlb_misses,
            page_faults: self.page_faults + o.page_faults,
            cpu_ns: self.cpu_ns + o.cpu_ns,
            stall_l2_ns: self.stall_l2_ns + o.stall_l2_ns,
            stall_mem_ns: self.stall_mem_ns + o.stall_mem_ns,
            stall_tlb_ns: self.stall_tlb_ns + o.stall_tlb_ns,
            stall_fault_ns: self.stall_fault_ns + o.stall_fault_ns,
        }
    }
}

impl AddAssign for EventCounters {
    fn add_assign(&mut self, o: Self) {
        *self = *self + o;
    }
}

impl Sub for EventCounters {
    type Output = Self;
    /// Delta between two snapshots (`after - before`). Saturating on the
    /// counter fields so a misordered pair cannot underflow.
    fn sub(self, o: Self) -> Self {
        Self {
            reads: self.reads.saturating_sub(o.reads),
            writes: self.writes.saturating_sub(o.writes),
            line_accesses: self.line_accesses.saturating_sub(o.line_accesses),
            l1_misses: self.l1_misses.saturating_sub(o.l1_misses),
            l2_misses: self.l2_misses.saturating_sub(o.l2_misses),
            tlb_misses: self.tlb_misses.saturating_sub(o.tlb_misses),
            page_faults: self.page_faults.saturating_sub(o.page_faults),
            cpu_ns: self.cpu_ns - o.cpu_ns,
            stall_l2_ns: self.stall_l2_ns - o.stall_l2_ns,
            stall_mem_ns: self.stall_mem_ns - o.stall_mem_ns,
            stall_tlb_ns: self.stall_tlb_ns - o.stall_tlb_ns,
            stall_fault_ns: self.stall_fault_ns - o.stall_fault_ns,
        }
    }
}

impl fmt::Display for EventCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.3} ms (cpu {:.3} ms, stalls L2 {:.3} / mem {:.3} / TLB {:.3} ms) \
             | L1 miss {} | L2 miss {} | TLB miss {}",
            self.elapsed_ms(),
            self.cpu_ns / 1e6,
            self.stall_l2_ns / 1e6,
            self.stall_mem_ns / 1e6,
            self.stall_tlb_ns / 1e6,
            self.l1_misses,
            self.l2_misses,
            self.tlb_misses,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EventCounters {
        EventCounters {
            reads: 10,
            writes: 5,
            line_accesses: 15,
            l1_misses: 4,
            l2_misses: 2,
            tlb_misses: 1,
            cpu_ns: 100.0,
            stall_l2_ns: 96.0,
            stall_mem_ns: 824.0,
            stall_tlb_ns: 228.0,
            ..Default::default()
        }
    }

    #[test]
    fn elapsed_is_cpu_plus_stalls() {
        let c = sample();
        assert!((c.elapsed_ns() - 1248.0).abs() < 1e-9);
        assert!((c.elapsed_ms() - 1248.0e-6).abs() < 1e-12);
    }

    #[test]
    fn stall_fraction() {
        let c = sample();
        assert!((c.stall_fraction() - (1148.0 / 1248.0)).abs() < 1e-9);
        assert_eq!(EventCounters::default().stall_fraction(), 0.0);
    }

    #[test]
    fn add_and_sub_roundtrip() {
        let a = sample();
        let b = sample();
        let s = a + b;
        assert_eq!(s.l1_misses, 8);
        let d = s - a;
        assert_eq!(d.l1_misses, b.l1_misses);
        assert!((d.cpu_ns - b.cpu_ns).abs() < 1e-9);
    }

    #[test]
    fn sub_saturates_counters() {
        let d = EventCounters::default() - sample();
        assert_eq!(d.l1_misses, 0);
        assert_eq!(d.reads, 0);
    }
}
