#![warn(missing_docs)]

//! # memsim — a trace-driven memory-hierarchy simulator
//!
//! Boncz, Manegold & Kersten (VLDB 1999) measured their algorithms with the
//! hardware event counters of a 250 MHz MIPS R10000 (SGI Origin2000),
//! obtaining exact counts of L1 misses, L2 misses and TLB misses. This crate
//! is the substitute for that hardware: a software model of a two-level
//! set-associative cache hierarchy plus a fully associative TLB, driven by
//! the *actual* memory addresses an algorithm touches.
//!
//! The substitution preserves the paper's methodology because the paper never
//! uses the counters for anything but event counting: elapsed time is always
//! decomposed as
//!
//! ```text
//! T = T_cpu + M_L1 · l_L2 + M_L2 · l_Mem + M_TLB · l_TLB
//! ```
//!
//! (§2 and §3.4), with latencies calibrated on the Origin2000 as
//! l_TLB = 228 ns, l_L2 = 24 ns, l_Mem = 412 ns. We count the same events with
//! the same cache geometry and apply the same decomposition.
//!
//! ## Architecture
//!
//! * [`config`] — cache/TLB geometry, latencies, per-operation work costs.
//! * [`profiles`] — the four machines of the paper's Figure 3 plus a modern
//!   profile.
//! * [`cache`] — an N-way set-associative cache with true LRU replacement.
//! * [`tlb`] — a fully associative LRU TLB.
//! * [`system`] — [`MemorySystem`]: composes TLB + L1 + L2, accumulates
//!   [`EventCounters`] and simulated nanoseconds.
//! * [`tracker`] — the [`MemTracker`] abstraction that lets a *single*
//!   algorithm implementation run either natively (zero overhead,
//!   [`NullTracker`]) or under simulation ([`SimTracker`]).
//! * [`stride`] — the paper's §2 "reality check": a scan of 200,000 one-byte
//!   reads at a configurable stride.
//!
//! ## Quick example
//!
//! ```
//! use memsim::{profiles, MemorySystem, Access};
//!
//! let mut sys = MemorySystem::new(profiles::origin2000());
//! // Sequentially touch 1 MiB: every 32-byte L1 line misses once.
//! for addr in (0..1 << 20).step_by(4) {
//!     sys.touch(addr, 4, Access::Read);
//! }
//! let c = sys.counters();
//! assert_eq!(c.l1_misses, (1 << 20) / 32);
//! assert_eq!(c.l2_misses, (1 << 20) / 128);
//! ```

pub mod cache;
pub mod config;
pub mod counters;
pub mod profiles;
pub mod stride;
pub mod system;
pub mod tlb;
pub mod tracker;

pub use cache::SetAssocCache;
pub use config::{CacheConfig, Latencies, MachineConfig, TlbConfig, VmConfig, WorkCosts};
pub use counters::EventCounters;
pub use system::{Access, MemorySystem};
pub use tlb::Tlb;
pub use tracker::{
    track_read, track_read_slice, track_write, track_write_slice, MemTracker, NullTracker,
    SimTracker, Work,
};
