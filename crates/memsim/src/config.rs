//! Machine descriptions: cache and TLB geometry, miss latencies, and the
//! per-operation CPU work costs the paper calibrates in §3.4.

/// Geometry of one cache level.
///
/// All sizes are in bytes and must be powers of two; `assoc` is the number of
/// ways per set (1 = direct mapped). The Origin2000's L1 is
/// `CacheConfig::new(32 * 1024, 32, 2)` — 1024 lines of 32 bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity: usize,
    /// Line size in bytes.
    pub line: usize,
    /// Associativity (ways per set).
    pub assoc: usize,
}

impl CacheConfig {
    /// Create a cache geometry.
    ///
    /// The line size and the derived *set count* must be powers of two
    /// (the set index is a bit mask); capacity and associativity may be
    /// any consistent values — real L1s are often 48 KB / 12-way.
    ///
    /// # Panics
    /// Panics if the line size is not a power of two, if the capacity is
    /// not an exact multiple of `line * assoc`, or if the set count is not
    /// a power of two.
    pub fn new(capacity: usize, line: usize, assoc: usize) -> Self {
        assert!(line.is_power_of_two(), "cache line size must be a power of two");
        assert!(assoc > 0, "associativity must be positive");
        assert!(
            capacity.is_multiple_of(line * assoc) && capacity > 0,
            "capacity must be a positive multiple of line * assoc"
        );
        let cfg = Self { capacity, line, assoc };
        assert!(cfg.lines() >= assoc, "cache must have at least one set");
        assert!(cfg.sets().is_power_of_two(), "set count must be a power of two");
        cfg
    }

    /// Number of cache lines (`|Li|` in the paper's notation).
    #[inline]
    pub fn lines(&self) -> usize {
        self.capacity / self.line
    }

    /// Number of sets.
    #[inline]
    pub fn sets(&self) -> usize {
        self.lines() / self.assoc
    }
}

/// Geometry of the translation lookaside buffer.
///
/// The Origin2000 has 64 entries over 16 KiB pages; `‖TLB‖` — the memory
/// range the TLB can cover — is `entries * page`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// Number of TLB entries (fully associative).
    pub entries: usize,
    /// Page size in bytes (power of two).
    pub page: usize,
}

impl TlbConfig {
    /// Create a TLB geometry, validating power-of-two page size.
    pub fn new(entries: usize, page: usize) -> Self {
        assert!(entries > 0, "TLB must have entries");
        assert!(page.is_power_of_two(), "page size must be a power of two");
        Self { entries, page }
    }

    /// Memory range covered by the TLB in bytes (`‖TLB‖`).
    #[inline]
    pub fn span(&self) -> usize {
        self.entries * self.page
    }
}

/// Miss penalties in nanoseconds, exactly as the paper's model uses them:
/// an access that misses L1 pays `l2_ns` (the L2 access), one that also
/// misses L2 additionally pays `mem_ns`, and a TLB miss pays `tlb_ns` on top.
/// L1 *hits* are folded into CPU work, again following the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Latencies {
    /// Cost of an L2 access (paid per L1 miss). Paper calibration: 24 ns.
    pub l2_ns: f64,
    /// Cost of a main-memory access (paid per L2 miss). Paper: 412 ns.
    pub mem_ns: f64,
    /// Cost of a TLB miss (OS trap + walk on the R10000). Paper: 228 ns.
    pub tlb_ns: f64,
}

/// Per-operation CPU work, the `w` constants of §3.4 (nanoseconds per event).
///
/// These are *pure CPU* costs — they include L1-hit data access but no cache
/// miss penalties, which the simulator accounts separately.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkCosts {
    /// `w_c`: radix-cluster work per tuple per pass (hash, histogram,
    /// scatter). Paper calibration: 50 ns.
    pub cluster_tuple_ns: f64,
    /// `w_r`: radix-join join-predicate check (one comparison in the
    /// per-cluster nested loop). Paper: 24 ns.
    pub radix_compare_ns: f64,
    /// `w'_r`: radix-join result-tuple creation. Paper: 240 ns.
    pub radix_result_ns: f64,
    /// `w_h`: hash-join work per tuple (build + probe + result amortized).
    /// Paper: 680 ns.
    pub hash_tuple_ns: f64,
    /// `w'_h`: hash-table creation/destruction per cluster. Paper: 3600 ns.
    pub hash_cluster_ns: f64,
    /// CPU work of one iteration of the §2 scan experiment. Paper: 4 cycles
    /// on the Origin2000 (16 ns at 250 MHz).
    pub scan_iter_ns: f64,
    /// Sort-merge: per-tuple work of one radix-sort pass (not calibrated by
    /// the paper; we reuse `w_c` since the inner loop is the same scatter).
    pub sort_tuple_ns: f64,
    /// Sort-merge: per-tuple work of the merge phase (comparison-driven; we
    /// reuse `w_r`).
    pub merge_tuple_ns: f64,
}

/// Virtual-memory level: physical memory as a page cache over disk-resident
/// data (the paper's §4: "treat management of disk-resident data as memory
/// with a large granularity"). `None` (the default everywhere) models
/// memory-resident workloads, as in the paper's experiments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VmConfig {
    /// Physical pages available to the process (LRU-replaced).
    pub resident_pages: usize,
    /// Cost of a (hard) page fault in nanoseconds. A 1999 disk seek+read is
    /// ~10 ms; sequential faults benefit from read-ahead in reality, which
    /// this single constant deliberately ignores (documented simplification
    /// — it *understates* the sequential-access advantage the paper claims
    /// for the radix algorithms).
    pub fault_ns: f64,
}

impl VmConfig {
    /// Construct, validating positivity.
    pub fn new(resident_pages: usize, fault_ns: f64) -> Self {
        assert!(resident_pages > 0, "need at least one resident page");
        assert!(fault_ns > 0.0, "fault cost must be positive");
        Self { resident_pages, fault_ns }
    }
}

/// A complete simulated machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineConfig {
    /// Human-readable name, e.g. `"origin2k"`.
    pub name: &'static str,
    /// CPU clock in MHz (used only to convert cycles ↔ ns in reports).
    pub cpu_mhz: f64,
    /// L1 data cache. `None` models early machines (e.g. the 1992 SunLX in
    /// Fig. 3, for which the paper lists only an L2 line size).
    pub l1: Option<CacheConfig>,
    /// L2 cache.
    pub l2: CacheConfig,
    /// TLB.
    pub tlb: TlbConfig,
    /// Optional virtual-memory level (§4 extension); `None` = all data
    /// memory-resident.
    pub vm: Option<VmConfig>,
    /// Miss penalties.
    pub lat: Latencies,
    /// Calibrated per-operation CPU work.
    pub work: WorkCosts,
}

impl MachineConfig {
    /// Nanoseconds per CPU cycle.
    #[inline]
    pub fn ns_per_cycle(&self) -> f64 {
        1000.0 / self.cpu_mhz
    }

    /// L1 line size; falls back to the L2 line size for machines without an
    /// L1 (the cost model's `min(s/LS_L1, 1)` term then coincides with L2).
    #[inline]
    pub fn l1_line(&self) -> usize {
        self.l1.map_or(self.l2.line, |c| c.line)
    }

    /// Memory span covered by the TLB (`‖TLB‖`).
    #[inline]
    pub fn tlb_span(&self) -> usize {
        self.tlb.span()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_config_derived_quantities() {
        let c = CacheConfig::new(32 * 1024, 32, 2);
        assert_eq!(c.lines(), 1024);
        assert_eq!(c.sets(), 512);
        let l2 = CacheConfig::new(4 * 1024 * 1024, 128, 2);
        assert_eq!(l2.lines(), 32768);
    }

    #[test]
    #[should_panic(expected = "multiple of line")]
    fn cache_config_rejects_inconsistent_capacity() {
        CacheConfig::new(3000, 32, 2);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn cache_config_rejects_non_pow2_line() {
        CacheConfig::new(4096, 48, 2);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn cache_config_rejects_non_pow2_sets() {
        CacheConfig::new(3 * 32 * 2, 32, 2); // 3 sets
    }

    #[test]
    fn cache_config_accepts_modern_48k_12way() {
        let c = CacheConfig::new(48 * 1024, 64, 12);
        assert_eq!(c.sets(), 64);
    }

    #[test]
    fn tlb_span() {
        let t = TlbConfig::new(64, 16 * 1024);
        assert_eq!(t.span(), 1 << 20);
    }
}
