//! The §2 stride-scan model behind Figure 3:
//!
//! ```text
//! T(s) = T_CPU + T_L2(s) + T_Mem(s)
//! T_L2(s)  = M_L1(s)·l_L2,  M_L1(s) = min(s / LS_L1, 1)
//! T_Mem(s) = M_L2(s)·l_Mem, M_L2(s) = min(s / LS_L2, 1)
//! ```
//!
//! per iteration. We add the (for the paper's strides negligible) TLB term
//! `min(s/‖Pg‖, 1)·l_TLB` so that the model tracks the simulator exactly at
//! page-sized strides too.

use crate::machine::{ModelCost, ModelMachine};

/// Predicted misses per iteration at stride `s`.
pub fn misses_per_iter(m: &ModelMachine, stride: usize) -> (f64, f64, f64) {
    let s = stride as f64;
    let l1 = (s / m.l1_line).min(1.0);
    let l2 = (s / m.l2_line).min(1.0);
    let tlb = (s / m.page).min(1.0);
    (l1, l2, tlb)
}

/// Predicted cost of `iters` scan iterations at stride `s`.
pub fn scan_cost(m: &ModelMachine, iters: usize, stride: usize) -> ModelCost {
    let n = iters as f64;
    let (l1, l2, tlb) = misses_per_iter(m, stride);
    ModelCost::assemble(n * m.work.scan_iter_ns, n * l1, n * l2, n * tlb, &m.lat)
}

/// Predicted misses per iteration at a *fractional* byte stride — the §2
/// ramp below one line. A packed column streams `bits/8` bytes per value,
/// so the per-value miss rate is `(bits/8) / LS` long before it saturates.
pub fn packed_misses_per_iter(m: &ModelMachine, bytes_per_value: f64) -> (f64, f64, f64) {
    let s = bytes_per_value.max(0.0);
    let l1 = (s / m.l1_line).min(1.0);
    let l2 = (s / m.l2_line).min(1.0);
    let tlb = (s / m.page).min(1.0);
    (l1, l2, tlb)
}

/// Predicted cost of scanning `iters` values stored at `bits_per_value`
/// bits each (a `core::compress` packed column). CPU work stays one scan
/// iteration per value — compression shrinks only the memory stream, which
/// is exactly the paper's argument for why it pays: at 32 bits/value this
/// equals [`scan_cost`] at stride 4, and every saved bit moves the memory
/// terms down the §2 ramp.
pub fn packed_scan_cost(m: &ModelMachine, iters: usize, bits_per_value: f64) -> ModelCost {
    let n = iters as f64;
    let (l1, l2, tlb) = packed_misses_per_iter(m, bits_per_value / 8.0);
    ModelCost::assemble(n * m.work.scan_iter_ns, n * l1, n * l2, n * tlb, &m.lat)
}

/// Values per compressed frame — mirrors `monet_core::compress::FRAME_LEN`.
/// `costmodel` does not depend on `monet-core`, so the constant is
/// duplicated here; the engine's access-planner tests assert the two stay
/// equal.
pub const FRAME_LEN: usize = 1024;

/// Expected number of distinct blocks touched by `k` candidates spread over
/// `blocks` equal blocks (uniform occupancy): `B·(1 − (1 − 1/B)^k)`. Ramps
/// linearly (≈ k) while candidates are sparse and saturates at `B` once
/// every block holds one — the "frames touched ≈ distinct frames among
/// candidates" estimate the pushdown planner prices restricted packed
/// evaluation with.
pub fn expected_touched_blocks(blocks: usize, k: usize) -> f64 {
    if blocks == 0 || k == 0 {
        return 0.0;
    }
    let b = blocks as f64;
    b * (1.0 - (1.0 - 1.0 / b).powf(k as f64))
}

/// Candidate-restricted scan pricing: `k` surviving candidates gather-tested
/// against a `rows`-value column stored at byte `stride`
/// (`core::scan::multi_select_cands`). Candidates ascend, so the touches are
/// one forward sweep at effective stride `stride·rows/k`; the §2 ramp then
/// prices the locality — a dense list rides the cache lines like a scan, a
/// sparse one pays a full miss per touch. CPU follows `k`, not `rows`.
pub fn cand_scan_cost(m: &ModelMachine, rows: usize, stride: usize, k: usize) -> ModelCost {
    if k == 0 {
        return ModelCost::assemble(0.0, 0.0, 0.0, 0.0, &m.lat);
    }
    let n = k as f64;
    let eff = stride as f64 * rows.max(1) as f64 / n;
    let l1 = (eff / m.l1_line).min(1.0);
    let l2 = (eff / m.l2_line).min(1.0);
    let tlb = (eff / m.page).min(1.0);
    ModelCost::assemble(n * m.work.scan_iter_ns, n * l1, n * l2, n * tlb, &m.lat)
}

/// Candidate-restricted packed-scan pricing
/// (`core::compress::multi_select_compressed_cands`): the kernel jumps to
/// the frames containing candidates and streams a touched frame's payload
/// once, so memory is charged for `expected_touched_blocks` frames of
/// [`FRAME_LEN`] values at the packed bit width while CPU follows `k`.
pub fn cand_packed_scan_cost(
    m: &ModelMachine,
    rows: usize,
    bits_per_value: f64,
    k: usize,
) -> ModelCost {
    if k == 0 {
        return ModelCost::assemble(0.0, 0.0, 0.0, 0.0, &m.lat);
    }
    let blocks = rows.div_ceil(FRAME_LEN).max(1);
    let streamed = (expected_touched_blocks(blocks, k) * FRAME_LEN as f64).min(rows as f64);
    let (l1, l2, tlb) = packed_misses_per_iter(m, bits_per_value / 8.0);
    ModelCost::assemble(
        k as f64 * m.work.scan_iter_ns,
        streamed * l1,
        streamed * l2,
        streamed * tlb,
        &m.lat,
    )
}

/// [`cand_packed_scan_cost`] with the touched-frame count known exactly —
/// validation against a concrete candidate list, where the caller counted
/// the frames the restricted kernel will stream (e.g.
/// `monet_core::compress::touched_blocks`). A clustered list touches far
/// fewer frames than the uniform-occupancy expectation prices.
pub fn cand_packed_scan_cost_touched(
    m: &ModelMachine,
    rows: usize,
    bits_per_value: f64,
    k: usize,
    touched: usize,
) -> ModelCost {
    if k == 0 {
        return ModelCost::assemble(0.0, 0.0, 0.0, 0.0, &m.lat);
    }
    let streamed = ((touched * FRAME_LEN) as f64).min(rows as f64);
    let (l1, l2, tlb) = packed_misses_per_iter(m, bits_per_value / 8.0);
    ModelCost::assemble(
        k as f64 * m.work.scan_iter_ns,
        streamed * l1,
        streamed * l2,
        streamed * tlb,
        &m.lat,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::profiles;

    fn origin() -> ModelMachine {
        ModelMachine::new(&profiles::origin2000())
    }

    #[test]
    fn miss_rates_ramp_and_saturate() {
        let m = origin();
        let (l1, l2, _) = misses_per_iter(&m, 8);
        assert!((l1 - 0.25).abs() < 1e-12);
        assert!((l2 - 0.0625).abs() < 1e-12);
        let (l1, l2, _) = misses_per_iter(&m, 32);
        assert_eq!(l1, 1.0);
        assert!((l2 - 0.25).abs() < 1e-12);
        let (l1, l2, _) = misses_per_iter(&m, 200);
        assert_eq!(l1, 1.0);
        assert_eq!(l2, 1.0);
    }

    #[test]
    fn model_matches_simulator_within_tolerance() {
        // The model is exact in the steady state; the simulator adds only
        // cold-start effects (first touch of each page/line).
        let cfg = profiles::origin2000();
        let m = origin();
        let iters = 100_000;
        for stride in [1usize, 8, 16, 32, 64, 128, 256] {
            let sim = memsim::stride::scan_sim(cfg, iters, stride);
            let model = scan_cost(&m, iters, stride);
            let rel = (model.total_ms() - sim.elapsed_ms).abs() / sim.elapsed_ms;
            assert!(
                rel < 0.05,
                "stride {stride}: model {} ms vs sim {} ms (rel {rel})",
                model.total_ms(),
                sim.elapsed_ms
            );
        }
    }

    #[test]
    fn stride1_vs_stride8_cycle_claim() {
        // §3.1: stride 8 ⇒ ~10 cycles/iter; stride 1 ⇒ ~4 cycles (of which
        // memory is ~6 cycles at stride 8 on the model's terms).
        let m = origin();
        let per_iter_cycles = |s: usize| scan_cost(&m, 1, s).total_ns() / 4.0; // 4 ns/cycle
        let c1 = per_iter_cycles(1);
        let c8 = per_iter_cycles(8);
        assert!((3.5..=5.5).contains(&c1), "stride-1 {c1} cycles");
        assert!((8.0..=12.0).contains(&c8), "stride-8 {c8} cycles");
    }

    #[test]
    fn packed_cost_extends_the_stride_model_below_one_byte() {
        let m = origin();
        // 32 bits/value is exactly the uncompressed 4-byte stride.
        let packed = packed_scan_cost(&m, 100_000, 32.0);
        let plain = scan_cost(&m, 100_000, 4);
        assert!((packed.total_ns() - plain.total_ns()).abs() < 1e-6);
        // Memory terms shrink monotonically with the bit width; CPU stays.
        let mut prev = plain;
        for bits in [16.0, 8.0, 3.0, 0.5] {
            let c = packed_scan_cost(&m, 100_000, bits);
            assert!(c.total_ns() < prev.total_ns(), "{bits} bits");
            assert!((c.cpu_ns - prev.cpu_ns).abs() < 1e-9, "CPU term unchanged at {bits} bits");
            prev = c;
        }
        // 12 bits/value streams 8/3x fewer bytes: the stall terms scale.
        let c12 = packed_scan_cost(&m, 100_000, 12.0);
        assert!((c12.l2_misses - plain.l2_misses * 12.0 / 32.0).abs() < 1e-6);
    }

    #[test]
    fn touched_blocks_ramp_linearly_then_saturate() {
        assert_eq!(expected_touched_blocks(0, 10), 0.0);
        assert_eq!(expected_touched_blocks(100, 0), 0.0);
        // Sparse: ~one block per candidate.
        let sparse = expected_touched_blocks(1000, 10);
        assert!((9.9..=10.0).contains(&sparse), "{sparse}");
        // Dense: saturates at the block count.
        let dense = expected_touched_blocks(10, 10_000);
        assert!((9.99..=10.0).contains(&dense), "{dense}");
    }

    #[test]
    fn cand_costs_interpolate_between_free_and_full() {
        let m = origin();
        let rows = 100_000;
        // All-pass candidates degenerate to (at least) the full scan's
        // memory bill; CPU is identical.
        let full = scan_cost(&m, rows, 4);
        let all = cand_scan_cost(&m, rows, 4, rows);
        assert!((all.cpu_ns - full.cpu_ns).abs() < 1e-6);
        assert!(all.total_ns() >= full.total_ns() - 1e-6);
        // Cost grows monotonically with |cands| and vanishes at zero.
        assert_eq!(cand_scan_cost(&m, rows, 4, 0).total_ns(), 0.0);
        let mut prev = 0.0;
        for k in [10, 100, 1000, 10_000, rows] {
            let c = cand_scan_cost(&m, rows, 4, k).total_ns();
            assert!(c > prev, "k={k}");
            prev = c;
        }
        // Packed: a selective list prices far below the full packed scan —
        // 50 candidates touch ~40 of the ~98 frames (memory) but only 50
        // values of CPU.
        let packed_full = packed_scan_cost(&m, rows, 12.0);
        let packed_few = cand_packed_scan_cost(&m, rows, 12.0, 50);
        assert!(packed_few.total_ns() * 2.0 < packed_full.total_ns());
        assert_eq!(cand_packed_scan_cost(&m, rows, 12.0, 0).total_ns(), 0.0);
    }

    #[test]
    fn flat_beyond_l2_line() {
        let m = origin();
        let a = scan_cost(&m, 1000, 128).total_ns();
        let b = scan_cost(&m, 1000, 256).total_ns();
        // Only the TLB term grows (256/16384 vs 128/16384 of 228 ns).
        assert!((b - a) < 1000.0 * 2.0 * 228.0 * (128.0 / 16384.0) + 1e-6);
    }
}
