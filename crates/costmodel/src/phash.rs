//! The partitioned hash-join cost model `T_h(B, C)` — §3.4.3, Figure 11.
//!
//! ```text
//! T_h(B,C) = C·w_h + H·w'_h
//!          + M_L1,h·l_L2 + M_L2,h·l_Mem + M_TLB,h·l_TLB        (H = 2^B)
//!
//! M_Li,h(B,C)  = 3·|Re|_Li + / C · ‖Cl‖/‖Li‖             if ‖Cl‖ ≤ ‖Li‖
//!                            \ C · 10 · (1 − ‖Li‖/‖Cl‖)  if ‖Cl‖ > ‖Li‖
//! M_TLB,h(B,C) = 3·|Re|_Pg + / C · ‖Cl‖/‖TLB‖            if ‖Cl‖ ≤ ‖TLB‖
//!                            \ C · 10 · (1 − ‖TLB‖/‖Cl‖) if ‖Cl‖ > ‖TLB‖
//! ```
//!
//! with `‖Cl‖ = C·12/H` (inner cluster + hash table, §3.4.4's 12 bytes per
//! tuple). The factor 10 is the paper's own counting for the trash regime:
//! "with a bucket-chain length of 4, up to 8 memory accesses per tuple are
//! necessary while building the hash-table and doing the hash lookup, and
//! another two to access the actual tuple" (configurable via
//! [`crate::ModelParams::hash_accesses_per_tuple`]).
//!
//! **Reconstruction note:** the extracted text prints the TLB trash factor
//! as `(1 − ‖Li‖/‖TLB‖)`, whose units cannot be right (it is constant in
//! `B`); we restore `(1 − ‖TLB‖/‖Cl‖)` by symmetry with the cache term.
//! The `H·w'_h` term *is* the paper's "fixed overhead by allocation of the
//! hash-table structure" that makes very fine clusterings lose (the upturn
//! at the right edge of Fig. 11, cluster size ≲ 200 tuples).

use crate::machine::{ModelCost, ModelMachine, PHASH_TUPLE_BYTES};

/// Inner-cluster-plus-table size in bytes at `B` bits (`‖Cl‖`).
#[inline]
pub fn cluster_bytes(bits: u32, c: f64) -> f64 {
    c * PHASH_TUPLE_BYTES / (1u64 << bits) as f64
}

fn region_misses(accesses: f64, c: f64, cl_bytes: f64, region_bytes: f64) -> f64 {
    if cl_bytes <= region_bytes {
        c * cl_bytes / region_bytes
    } else {
        c * accesses * (1.0 - region_bytes / cl_bytes)
    }
}

/// Predicted cost of the partitioned hash-join *join phase* (clustering not
/// included — exactly what Figure 11 plots).
pub fn phash_cost(m: &ModelMachine, bits: u32, c: f64) -> ModelCost {
    let k = m.params.join_seq_streams;
    let acc = m.params.hash_accesses_per_tuple;
    let h = (1u64 << bits) as f64;
    let cl = cluster_bytes(bits, c);

    let cpu = c * m.work.hash_tuple_ns + h * m.work.hash_cluster_ns;

    let l1 = k * m.rel_l1_lines(c) + region_misses(acc, c, cl, m.l1_bytes);
    let l2 = k * m.rel_l2_lines(c) + region_misses(acc, c, cl, m.l2_bytes);
    let tlb = k * m.rel_pages(c) + region_misses(acc, c, cl, m.tlb_span);
    ModelCost::assemble(cpu, l1, l2, tlb, &m.lat)
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::profiles;

    fn origin() -> ModelMachine {
        ModelMachine::new(&profiles::origin2000())
    }

    #[test]
    fn performance_flattens_after_tlb_fit_and_bottoms_at_l1(/* Fig. 11 */) {
        let m = origin();
        let c = 8e6;
        // Strategy bit counts on the Origin2000 at 8M (see strategy tests).
        let t_l2 = phash_cost(&m, 5, c).total_ms();
        let t_tlb = phash_cost(&m, 7, c).total_ms();
        let t_l1 = phash_cost(&m, 12, c).total_ms();
        // "a significant improvement of the pure join performance between
        // phash L2 and phash TLB":
        assert!(t_tlb < 0.7 * t_l2, "L2 {t_l2} → TLB {t_tlb}");
        // "thereafter performance decreases only slightly until the inner
        // cluster fits the L1 cache":
        assert!(t_l1 < t_tlb);
        assert!(t_l1 > 0.3 * t_tlb, "the L1 step is modest: {t_tlb} → {t_l1}");
    }

    #[test]
    fn tiny_clusters_pay_allocation_overhead() {
        // Right edge of Fig. 11: beyond ~200-tuple clusters the H·w'_h term
        // turns the curve back up.
        let m = origin();
        let c = 1e6;
        let at_tuples = |t: f64| {
            let bits = (c / t).log2().ceil() as u32;
            phash_cost(&m, bits, c).total_ms()
        };
        let opt = at_tuples(200.0);
        let tiny = at_tuples(4.0);
        assert!(tiny > 1.5 * opt, "200-tuple {opt} ms vs 4-tuple {tiny} ms");
    }

    #[test]
    fn unpartitioned_case_is_the_simple_hash_baseline() {
        // B = 0 ⇒ one cluster of C·12 bytes: the model should show the
        // random-access catastrophe of Fig. 13's "simple hash" for large C.
        let m = origin();
        let small = phash_cost(&m, 0, 1_000.0); // 12 KB: fits everything
        let big = phash_cost(&m, 0, 8e6); // 96 MB: fits nothing
        let per_tuple_small = small.total_ns() / 1_000.0;
        let per_tuple_big = big.total_ns() / 8e6;
        assert!(per_tuple_big > 3.0 * per_tuple_small);
    }

    #[test]
    fn miss_model_continuous_at_cache_boundary() {
        let m = origin();
        let c = 1e6;
        let just_fits = region_misses(10.0, c, m.l1_bytes, m.l1_bytes);
        let just_over = region_misses(10.0, c, m.l1_bytes * 1.0001, m.l1_bytes);
        // Left branch gives C at the boundary; right branch starts at 0 and
        // ramps with factor 10 — the *measured* curves in Fig. 11 show the
        // same hinge. Check the right branch stays below the left value
        // until the factor catches up.
        assert!((just_fits - c).abs() < 1e-6);
        assert!(just_over < just_fits);
    }

    #[test]
    fn paper_scale_sanity_phash_at_8m() {
        // Fig. 11 bottom panel, 8M curve: minimum in the low-thousands of ms.
        let m = origin();
        let best = (0..=22).map(|b| phash_cost(&m, b, 8e6).total_ms()).fold(f64::MAX, f64::min);
        assert!((1_000.0..30_000.0).contains(&best), "best phash@8M = {best} ms");
    }

    #[test]
    fn optimal_cluster_size_is_near_200_tuples() {
        // §3.4.4: "partitioned hash-join performs best with cluster size of
        // approximately 200 tuples."
        let m = origin();
        let c = 4e6;
        let (mut best_bits, mut best) = (0, f64::MAX);
        for bits in 0..=22 {
            let t = phash_cost(&m, bits, c).total_ms();
            if t < best {
                best = t;
                best_bits = bits;
            }
        }
        let tuples = c / (1u64 << best_bits) as f64;
        assert!(
            (50.0..=1000.0).contains(&tuples),
            "optimum at {tuples} tuples/cluster (bits {best_bits})"
        );
    }
}
