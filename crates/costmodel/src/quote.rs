//! Whole-query cost quotes — composing the per-operator models into one
//! number a *scheduler* can rank queries by.
//!
//! Every other module in this crate prices a single physical decision (a
//! join plan, an access path, a degree of parallelism). A multi-query
//! service needs one more composition level: "what will this whole plan
//! cost, sequentially, and how does that cost shrink with threads?" —
//! because admission order (shortest-expected-cost-first) and per-query
//! thread allocation are both decisions *against the model*, exactly like
//! radix bits.
//!
//! The quote deliberately reuses the calibrated building blocks:
//!
//! * selections and gathers are stride scans ([`crate::scan::scan_cost`]);
//! * joins are priced by the Figure 12 search ([`crate::plan::best_plan`]),
//!   at the larger operand cardinality (the same convention the executor's
//!   report uses);
//! * grouped aggregation is one streaming pass over the keys plus one per
//!   aggregated column.
//!
//! Estimates, not measurements: cardinalities after a filter are unknown at
//! admission time, so callers feed the shapes with whatever selectivity
//! guess they have. Ranking only needs *relative* accuracy.

use memsim::MachineConfig;

use crate::parallel::{ParPlan, ParallelModel};
use crate::plan::{best_plan, plan_cost};
use crate::scan::scan_cost;
use crate::{ModelMachine, ModelParams};

/// The shape of one operator of a logical plan, as much as an admission
/// controller can know before execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OpShape {
    /// A scan-select over `rows` tuples at byte `stride`.
    Select {
        /// Tuples scanned.
        rows: usize,
        /// Bytes per tuple in the scanned column.
        stride: usize,
    },
    /// An equi-join of `outer` against `inner` tuples.
    Join {
        /// Outer (probe-side) cardinality.
        outer: usize,
        /// Inner (build-side) cardinality.
        inner: usize,
    },
    /// A (grouped) aggregation over `rows` tuples reading `columns` value
    /// columns plus the key column.
    Aggregate {
        /// Input tuples.
        rows: usize,
        /// Aggregated value columns.
        columns: usize,
        /// True for grouped accumulation (per-tuple direct-indexed slot
        /// update, priced at the hash-tuple work rate); false for scalar
        /// aggregates (plain scan-iteration work per tuple and column).
        grouped: bool,
    },
    /// A positional gather materializing `rows` tuples from one column.
    Gather {
        /// Tuples fetched.
        rows: usize,
    },
    /// A scan-select evaluated directly on a compressed column storing
    /// `bits` bits per value ([`crate::scan::packed_scan_cost`]): full
    /// per-tuple CPU work, memory stream shrunk by the encoding.
    PackedSelect {
        /// Tuples scanned.
        rows: usize,
        /// Stored bits per value of the compressed representation.
        bits: f64,
    },
    /// A scan-select whose column stream is already covered by a shared
    /// (cooperative) pass in flight or pending: the query pays only the
    /// CPU-side marginal predicate evaluation
    /// ([`crate::shared::marginal_pred_cost`]), not a fresh scan.
    SharedSelect {
        /// Tuples the covering pass evaluates this predicate over.
        rows: usize,
    },
    /// A scan-select attaching to a chunked elevator pass that has already
    /// streamed `missed` of its `rows` tuples: marginal CPU for the full
    /// predicate, memory only for the wrap-around re-stream
    /// ([`crate::shared::attach_cost`]).
    AttachSelect {
        /// Tuples the covering pass evaluates this predicate over.
        rows: usize,
        /// Bytes per tuple in the scanned column.
        stride: usize,
        /// Tuples the pass streamed before this query could attach — the
        /// wrap-around distance the elevator must re-stream for it.
        missed: usize,
    },
    /// A candidate-restricted scan-select: `cands` survivors of earlier
    /// conjunction leaves gather-tested against a `rows`-tuple column
    /// ([`crate::scan::cand_scan_cost`]).
    CandSelect {
        /// Tuples in the column (locality denominator).
        rows: usize,
        /// Bytes per tuple in the scanned column.
        stride: usize,
        /// Surviving candidates actually evaluated.
        cands: usize,
    },
    /// A candidate-restricted select over a compressed column: only frames
    /// holding survivors are decoded ([`crate::scan::cand_packed_scan_cost`]).
    CandPackedSelect {
        /// Tuples in the column.
        rows: usize,
        /// Stored bits per value of the compressed representation.
        bits: f64,
        /// Surviving candidates actually evaluated.
        cands: usize,
    },
    /// The coordinator-side merge of `rows` shard-partial result tuples
    /// (k-way ordered interleave plus per-group combination): per-tuple
    /// merge work over an 8-byte stream.
    Merge {
        /// Shard-partial tuples merged.
        rows: usize,
    },
}

/// The kind of an [`OpShape`], with the cardinality payload erased — the
/// key a residual monitor aggregates model-vs-actual ratios under (one
/// calibration curve per kind, whatever the row counts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ShapeKind {
    /// [`OpShape::Select`].
    Select,
    /// [`OpShape::PackedSelect`].
    PackedSelect,
    /// [`OpShape::SharedSelect`].
    SharedSelect,
    /// [`OpShape::AttachSelect`].
    AttachSelect,
    /// [`OpShape::CandSelect`].
    CandSelect,
    /// [`OpShape::CandPackedSelect`].
    CandPackedSelect,
    /// [`OpShape::Join`].
    Join,
    /// [`OpShape::Aggregate`].
    Aggregate,
    /// [`OpShape::Gather`].
    Gather,
    /// [`OpShape::Merge`].
    Merge,
}

impl ShapeKind {
    /// Stable lowercase name (used in reports and JSONL).
    pub fn name(self) -> &'static str {
        match self {
            ShapeKind::Select => "select",
            ShapeKind::PackedSelect => "packed-select",
            ShapeKind::SharedSelect => "shared-select",
            ShapeKind::AttachSelect => "attach-select",
            ShapeKind::CandSelect => "cand-select",
            ShapeKind::CandPackedSelect => "cand-packed-select",
            ShapeKind::Join => "join",
            ShapeKind::Aggregate => "aggregate",
            ShapeKind::Gather => "gather",
            ShapeKind::Merge => "merge",
        }
    }
}

impl OpShape {
    /// This shape's [`ShapeKind`].
    pub fn kind(self) -> ShapeKind {
        match self {
            OpShape::Select { .. } => ShapeKind::Select,
            OpShape::PackedSelect { .. } => ShapeKind::PackedSelect,
            OpShape::SharedSelect { .. } => ShapeKind::SharedSelect,
            OpShape::AttachSelect { .. } => ShapeKind::AttachSelect,
            OpShape::CandSelect { .. } => ShapeKind::CandSelect,
            OpShape::CandPackedSelect { .. } => ShapeKind::CandPackedSelect,
            OpShape::Join { .. } => ShapeKind::Join,
            OpShape::Aggregate { .. } => ShapeKind::Aggregate,
            OpShape::Gather { .. } => ShapeKind::Gather,
            OpShape::Merge { .. } => ShapeKind::Merge,
        }
    }

    /// The number of uniform work items this operator fans out over.
    fn items(self) -> usize {
        match self {
            OpShape::Select { rows, .. } => rows,
            OpShape::PackedSelect { rows, .. } => rows,
            OpShape::Join { outer, inner } => outer + inner,
            OpShape::Aggregate { rows, .. } => rows,
            OpShape::Gather { rows } => rows,
            // The ordered interleave is inherently sequential — it exists
            // to reproduce the unsharded accumulation order.
            OpShape::Merge { .. } => 0,
            // A covered select does no divisible scanning of its own — the
            // covering pass owns the stream (and the wrap, for attaches).
            OpShape::SharedSelect { .. } | OpShape::AttachSelect { .. } => 0,
            // Restricted leaves run sequentially: candidate lists are small
            // by construction, so fork overhead would dominate.
            OpShape::CandSelect { .. } | OpShape::CandPackedSelect { .. } => 0,
        }
    }
}

/// A whole-query cost quote: the model's sequential time and the work-item
/// count the parallel model divides it over.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryQuote {
    /// Predicted sequential execution time in nanoseconds.
    pub seq_ns: f64,
    /// Total uniform work items across operators (drives the per-thread
    /// share in [`ParallelModel`]).
    pub items: usize,
    /// Operators priced into the quote.
    pub ops: usize,
}

impl QueryQuote {
    /// The sequential quote in milliseconds.
    pub fn seq_ms(&self) -> f64 {
        self.seq_ns / 1e6
    }

    /// The model-optimal thread count for this query on `cfg`, considering
    /// at most `max_threads` threads ([`ParallelModel::best_threads`] over
    /// the whole-query quote). Never slower than sequential; a zero-work
    /// quote pins to one thread.
    pub fn best_threads(&self, cfg: &MachineConfig, max_threads: usize) -> ParPlan {
        ParallelModel::for_machine(cfg, max_threads).best_threads(self.seq_ns, self.items.max(1))
    }
}

/// Price one operator shape sequentially, given prebuilt scan and join
/// models (so [`quote_ops`] builds them once per plan).
fn price_op(
    scan_model: &ModelMachine,
    join_model: &ModelMachine,
    cfg: &MachineConfig,
    op: OpShape,
) -> f64 {
    match op {
        OpShape::Select { rows, stride } => {
            scan_cost(scan_model, rows.max(1), stride.max(1)).total_ns()
        }
        OpShape::PackedSelect { rows, bits } => {
            crate::scan::packed_scan_cost(scan_model, rows.max(1), bits).total_ns()
        }
        OpShape::Join { outer, inner } => {
            // Same convention as the executor: the plan follows the
            // inner (build) side, the price follows the larger operand.
            let (plan, _) = best_plan(join_model, cfg, inner.max(1));
            plan_cost(join_model, &plan, outer.max(inner).max(1) as f64).total_ns()
        }
        OpShape::Aggregate { rows, columns, grouped } => {
            // One single-pass accumulation kernel: the memory side streams
            // the key column (when grouping) plus every aggregated column;
            // the CPU side is what the kernel charges per tuple — one
            // direct-indexed slot update (hash-tuple work) when grouped,
            // one scan iteration per tuple and stream when scalar.
            let n = rows.max(1) as f64;
            let streams = (columns + usize::from(grouped)).max(1) as f64;
            let (l1, l2, tlb) = crate::scan::misses_per_iter(scan_model, 8);
            let cpu = if grouped {
                n * scan_model.work.hash_tuple_ns
            } else {
                n * streams * scan_model.work.scan_iter_ns
            };
            crate::machine::ModelCost::assemble(
                cpu,
                n * streams * l1,
                n * streams * l2,
                n * streams * tlb,
                &scan_model.lat,
            )
            .total_ns()
        }
        OpShape::Gather { rows } => scan_cost(scan_model, rows.max(1), 8).total_ns(),
        OpShape::SharedSelect { rows } => {
            crate::shared::marginal_pred_cost(scan_model, rows.max(1)).total_ns()
        }
        OpShape::AttachSelect { rows, stride, missed } => {
            crate::shared::attach_cost(scan_model, rows.max(1), stride.max(1), missed).total_ns()
        }
        OpShape::CandSelect { rows, stride, cands } => {
            crate::scan::cand_scan_cost(scan_model, rows.max(1), stride.max(1), cands).total_ns()
        }
        OpShape::CandPackedSelect { rows, bits, cands } => {
            crate::scan::cand_packed_scan_cost(scan_model, rows.max(1), bits, cands).total_ns()
        }
        OpShape::Merge { rows } => {
            // One 8-byte stream over the shard partials, charged at the
            // calibrated merge-tuple work rate (the same constant the
            // sort-merge model uses for its interleave phase).
            let n = rows.max(1) as f64;
            let (l1, l2, tlb) = crate::scan::misses_per_iter(scan_model, 8);
            crate::machine::ModelCost::assemble(
                n * scan_model.work.merge_tuple_ns,
                n * l1,
                n * l2,
                n * tlb,
                &scan_model.lat,
            )
            .total_ns()
        }
    }
}

/// The model's sequential price of a single operator shape in nanoseconds
/// — the per-operator residual API: a drift monitor compares this number
/// against the simulated counters execution actually charged the operator.
pub fn op_cost_ns(cfg: &MachineConfig, op: OpShape) -> f64 {
    let scan_model = ModelMachine::new(cfg);
    let join_model = ModelMachine::with_params(cfg, ModelParams::implementation_matched());
    price_op(&scan_model, &join_model, cfg, op)
}

/// Price a sequence of operator shapes on machine `cfg` into one
/// [`QueryQuote`]. An empty slice quotes zero cost.
pub fn quote_ops(cfg: &MachineConfig, ops: &[OpShape]) -> QueryQuote {
    let scan_model = ModelMachine::new(cfg);
    let join_model = ModelMachine::with_params(cfg, ModelParams::implementation_matched());
    let mut seq_ns = 0.0;
    let mut items = 0usize;
    for &op in ops {
        seq_ns += price_op(&scan_model, &join_model, cfg, op);
        items += op.items();
    }
    QueryQuote { seq_ns, items, ops: ops.len() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::profiles;

    #[test]
    fn empty_plan_quotes_zero() {
        let q = quote_ops(&profiles::origin2000(), &[]);
        assert_eq!(q.seq_ns, 0.0);
        assert_eq!(q.ops, 0);
        assert_eq!(q.best_threads(&profiles::origin2000(), 8).threads, 1);
    }

    #[test]
    fn quotes_are_monotone_in_cardinality() {
        let cfg = profiles::origin2000();
        let small = quote_ops(
            &cfg,
            &[
                OpShape::Select { rows: 10_000, stride: 4 },
                OpShape::Aggregate { rows: 5_000, columns: 1, grouped: true },
            ],
        );
        let big = quote_ops(
            &cfg,
            &[
                OpShape::Select { rows: 1_000_000, stride: 4 },
                OpShape::Aggregate { rows: 500_000, columns: 1, grouped: true },
            ],
        );
        assert!(big.seq_ns > small.seq_ns * 10.0, "{} vs {}", big.seq_ns, small.seq_ns);
        assert_eq!(small.ops, 2);
        assert_eq!(small.items, 15_000);
    }

    #[test]
    fn join_shape_prices_the_larger_operand() {
        let cfg = profiles::origin2000();
        // Asymmetric join: quoting must not collapse to the tiny inner side.
        let a = quote_ops(&cfg, &[OpShape::Join { outer: 1_000_000, inner: 100 }]);
        let b = quote_ops(&cfg, &[OpShape::Join { outer: 100, inner: 100 }]);
        assert!(a.seq_ns > 100.0 * b.seq_ns, "{} vs {}", a.seq_ns, b.seq_ns);
    }

    #[test]
    fn covered_selects_quote_below_fresh_scans() {
        let cfg = profiles::origin2000();
        let fresh = quote_ops(&cfg, &[OpShape::Select { rows: 1_000_000, stride: 4 }]);
        let covered = quote_ops(&cfg, &[OpShape::SharedSelect { rows: 1_000_000 }]);
        assert!(
            covered.seq_ns < fresh.seq_ns,
            "marginal predicate {} !< fresh scan {}",
            covered.seq_ns,
            fresh.seq_ns
        );
        assert_eq!(covered.items, 0, "the covering pass owns the divisible work");
    }

    #[test]
    fn attach_selects_quote_between_shared_and_fresh() {
        let cfg = profiles::origin2000();
        let rows = 1_000_000;
        let fresh = quote_ops(&cfg, &[OpShape::Select { rows, stride: 4 }]);
        let shared = quote_ops(&cfg, &[OpShape::SharedSelect { rows }]);
        let early = quote_ops(&cfg, &[OpShape::AttachSelect { rows, stride: 4, missed: 0 }]);
        let late = quote_ops(&cfg, &[OpShape::AttachSelect { rows, stride: 4, missed: rows / 2 }]);
        assert_eq!(early.seq_ns, shared.seq_ns, "attach at pass start is pure marginal");
        assert!(late.seq_ns > early.seq_ns, "the wrap re-stream costs memory");
        assert!(late.seq_ns < fresh.seq_ns, "but still beats a fresh scan");
        assert_eq!(late.items, 0, "the covering pass owns the divisible work");
    }

    #[test]
    fn packed_selects_quote_below_fresh_scans_but_keep_their_items() {
        let cfg = profiles::origin2000();
        let fresh = quote_ops(&cfg, &[OpShape::Select { rows: 1_000_000, stride: 4 }]);
        let packed = quote_ops(&cfg, &[OpShape::PackedSelect { rows: 1_000_000, bits: 3.0 }]);
        assert!(packed.seq_ns < fresh.seq_ns, "{} !< {}", packed.seq_ns, fresh.seq_ns);
        assert_eq!(packed.items, 1_000_000, "still a divisible full-column pass");
        // 32 bits/value is the uncompressed stream.
        let full = quote_ops(&cfg, &[OpShape::PackedSelect { rows: 1_000_000, bits: 32.0 }]);
        assert!((full.seq_ns - fresh.seq_ns).abs() < 1e-6);
    }

    #[test]
    fn per_op_prices_sum_to_the_quote_and_kinds_are_stable() {
        let cfg = profiles::origin2000();
        let ops = [
            OpShape::Select { rows: 100_000, stride: 4 },
            OpShape::Join { outer: 50_000, inner: 1_000 },
            OpShape::Gather { rows: 25_000 },
            OpShape::Aggregate { rows: 25_000, columns: 2, grouped: true },
            OpShape::SharedSelect { rows: 10_000 },
        ];
        let q = quote_ops(&cfg, &ops);
        let summed: f64 = ops.iter().map(|&o| op_cost_ns(&cfg, o)).sum();
        assert!((q.seq_ns - summed).abs() < 1e-6, "{} vs {summed}", q.seq_ns);
        assert_eq!(ops[0].kind(), ShapeKind::Select);
        assert_eq!(ops[1].kind(), ShapeKind::Join);
        assert_eq!(ops[1].kind().name(), "join");
        assert_eq!(OpShape::PackedSelect { rows: 1, bits: 3.0 }.kind(), ShapeKind::PackedSelect);
        assert_eq!(
            OpShape::AttachSelect { rows: 1, stride: 4, missed: 0 }.kind().name(),
            "attach-select"
        );
    }

    #[test]
    fn restricted_selects_quote_below_their_full_passes() {
        let cfg = profiles::origin2000();
        let rows = 1_000_000;
        let fresh = quote_ops(&cfg, &[OpShape::Select { rows, stride: 4 }]);
        let cand = quote_ops(&cfg, &[OpShape::CandSelect { rows, stride: 4, cands: rows / 1000 }]);
        assert!(cand.seq_ns * 10.0 < fresh.seq_ns, "{} !<< {}", cand.seq_ns, fresh.seq_ns);
        assert_eq!(cand.items, 0, "restricted leaves run sequentially");
        let packed = quote_ops(&cfg, &[OpShape::PackedSelect { rows, bits: 8.0 }]);
        let cand_packed =
            quote_ops(&cfg, &[OpShape::CandPackedSelect { rows, bits: 8.0, cands: rows / 1000 }]);
        assert!(cand_packed.seq_ns * 5.0 < packed.seq_ns);
        assert_eq!(cand_packed.items, 0);
        assert_eq!(
            OpShape::CandSelect { rows: 1, stride: 4, cands: 1 }.kind().name(),
            "cand-select"
        );
        assert_eq!(
            OpShape::CandPackedSelect { rows: 1, bits: 3.0, cands: 1 }.kind().name(),
            "cand-packed-select"
        );
    }

    #[test]
    fn big_queries_earn_more_threads_than_tiny_ones() {
        let cfg = profiles::origin2000();
        let tiny = quote_ops(&cfg, &[OpShape::Select { rows: 100, stride: 4 }]);
        let huge = quote_ops(&cfg, &[OpShape::Select { rows: 16_000_000, stride: 4 }]);
        assert_eq!(tiny.best_threads(&cfg, 8).threads, 1, "fork overhead dominates 100 rows");
        let plan = huge.best_threads(&cfg, 8);
        assert!(plan.threads > 1, "16M-row scan should fan out, got {plan:?}");
        assert!(plan.par_ns <= plan.seq_ns);
    }
}
