//! Machine description and cost bookkeeping for the analytical model.

use memsim::{Latencies, MachineConfig, WorkCosts};

/// Bytes of one BUN (`\[OID, int\]`), fixed by the experimental setup
/// (§3.4.1: "BATs of 8 bytes wide tuples").
pub const BUN_BYTES: f64 = 8.0;

/// Bytes per tuple of inner cluster *plus* bucket-chained hash table used by
/// the `phash` strategies (§3.4.4's `C·12/‖L2‖` etc.).
pub const PHASH_TUPLE_BYTES: f64 = 12.0;

/// Tunable parameters where our implementation legitimately differs from the
/// paper's Monet implementation; defaults reproduce the published formulas.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelParams {
    /// Sequential streams per cluster pass. The paper charges `2·|Re|`
    /// (read input + write output, Monet fuses histogram building into the
    /// previous pass). Our implementation re-reads the input for the
    /// histogram, so validation against the simulator uses `3.0`.
    pub cluster_seq_streams: f64,
    /// Sequential streams of a join phase: read both operands + write the
    /// result (`3·|Re|` in the paper).
    pub join_seq_streams: f64,
    /// Model the paper's "second more moderate increase in TLB misses …
    /// when the number of clusters exceeds the number of L2 cache lines"
    /// (the formula the paper omits for space).
    pub tlb_l2_interaction: bool,
    /// Extra per-tuple build-side accesses of the hash join beyond the
    /// outer-stream accesses modelled by `join_seq_streams`; the paper's
    /// trash-regime factor ("up to 8 memory accesses per tuple … and
    /// another two to access the actual tuple") is 10.
    pub hash_accesses_per_tuple: f64,
}

impl Default for ModelParams {
    fn default() -> Self {
        Self {
            cluster_seq_streams: 2.0,
            join_seq_streams: 3.0,
            tlb_l2_interaction: true,
            hash_accesses_per_tuple: 10.0,
        }
    }
}

impl ModelParams {
    /// Parameters matched to *this repository's* implementation (histogram
    /// pass re-reads the input), used when validating model vs simulator.
    pub fn implementation_matched() -> Self {
        Self { cluster_seq_streams: 3.0, ..Self::default() }
    }
}

/// A machine, pre-digested for the model: everything as `f64`.
#[derive(Debug, Clone, Copy)]
pub struct ModelMachine {
    /// L1 line size in bytes (`LS_L1`).
    pub l1_line: f64,
    /// Number of L1 lines (`|L1|`).
    pub l1_lines: f64,
    /// L1 capacity in bytes (`‖L1‖`).
    pub l1_bytes: f64,
    /// L2 line size in bytes (`LS_L2`).
    pub l2_line: f64,
    /// Number of L2 lines (`|L2|`).
    pub l2_lines: f64,
    /// L2 capacity in bytes (`‖L2‖`).
    pub l2_bytes: f64,
    /// Page size in bytes (`‖Pg‖`).
    pub page: f64,
    /// Number of TLB entries (`|TLB|`).
    pub tlb_entries: f64,
    /// Memory range the TLB covers (`‖TLB‖ = |TLB|·‖Pg‖`).
    pub tlb_span: f64,
    /// Miss latencies.
    pub lat: Latencies,
    /// Calibrated per-operation work.
    pub work: WorkCosts,
    /// Tunables (see [`ModelParams`]).
    pub params: ModelParams,
}

impl ModelMachine {
    /// Digest a simulator machine description with default parameters.
    pub fn new(cfg: &MachineConfig) -> Self {
        Self::with_params(cfg, ModelParams::default())
    }

    /// Digest with explicit parameters.
    pub fn with_params(cfg: &MachineConfig, params: ModelParams) -> Self {
        let l1 = cfg.l1.unwrap_or(cfg.l2);
        Self {
            l1_line: l1.line as f64,
            l1_lines: l1.lines() as f64,
            l1_bytes: l1.capacity as f64,
            l2_line: cfg.l2.line as f64,
            l2_lines: cfg.l2.lines() as f64,
            l2_bytes: cfg.l2.capacity as f64,
            page: cfg.tlb.page as f64,
            tlb_entries: cfg.tlb.entries as f64,
            tlb_span: cfg.tlb_span() as f64,
            lat: cfg.lat,
            work: cfg.work,
            params,
        }
    }

    /// `|Re|_L1`: L1 lines occupied by a C-tuple BUN relation.
    pub fn rel_l1_lines(&self, c: f64) -> f64 {
        c * BUN_BYTES / self.l1_line
    }

    /// `|Re|_L2`: L2 lines occupied by a C-tuple BUN relation.
    pub fn rel_l2_lines(&self, c: f64) -> f64 {
        c * BUN_BYTES / self.l2_line
    }

    /// `|Re|_Pg`: pages occupied by a C-tuple BUN relation.
    pub fn rel_pages(&self, c: f64) -> f64 {
        c * BUN_BYTES / self.page
    }
}

/// A predicted cost, decomposed the way the paper's figures are.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ModelCost {
    /// Pure CPU work in ns.
    pub cpu_ns: f64,
    /// Predicted L1 misses.
    pub l1_misses: f64,
    /// Predicted L2 misses.
    pub l2_misses: f64,
    /// Predicted TLB misses.
    pub tlb_misses: f64,
    /// Total predicted stall time in ns (misses × latencies).
    pub stall_ns: f64,
}

impl ModelCost {
    /// Assemble from components, computing the stall total.
    pub fn assemble(cpu_ns: f64, l1: f64, l2: f64, tlb: f64, lat: &Latencies) -> Self {
        Self {
            cpu_ns,
            l1_misses: l1,
            l2_misses: l2,
            tlb_misses: tlb,
            stall_ns: l1 * lat.l2_ns + l2 * lat.mem_ns + tlb * lat.tlb_ns,
        }
    }

    /// Total predicted time in ns.
    pub fn total_ns(&self) -> f64 {
        self.cpu_ns + self.stall_ns
    }

    /// Total predicted time in ms (the paper's unit).
    pub fn total_ms(&self) -> f64 {
        self.total_ns() / 1e6
    }
}

impl std::ops::Add for ModelCost {
    type Output = ModelCost;
    fn add(self, o: ModelCost) -> ModelCost {
        ModelCost {
            cpu_ns: self.cpu_ns + o.cpu_ns,
            l1_misses: self.l1_misses + o.l1_misses,
            l2_misses: self.l2_misses + o.l2_misses,
            tlb_misses: self.tlb_misses + o.tlb_misses,
            stall_ns: self.stall_ns + o.stall_ns,
        }
    }
}

impl std::iter::Sum for ModelCost {
    fn sum<I: Iterator<Item = ModelCost>>(iter: I) -> Self {
        iter.fold(ModelCost::default(), |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::profiles;

    #[test]
    fn digests_origin2000() {
        let m = ModelMachine::new(&profiles::origin2000());
        assert_eq!(m.l1_lines, 1024.0);
        assert_eq!(m.l2_lines, 32768.0);
        assert_eq!(m.l1_line, 32.0);
        assert_eq!(m.l2_line, 128.0);
        assert_eq!(m.tlb_span, 1048576.0);
        // 8M tuples = 64 MB: 2M L1 lines, 512K L2 lines, 4K pages.
        let c = 8e6;
        assert_eq!(m.rel_l1_lines(c), 2e6);
        assert_eq!(m.rel_l2_lines(c), 5e5);
        assert!((m.rel_pages(c) - 64e6 / 16384.0).abs() < 1e-9);
    }

    #[test]
    fn cost_assembly_matches_decomposition() {
        let m = ModelMachine::new(&profiles::origin2000());
        let c = ModelCost::assemble(1000.0, 10.0, 5.0, 2.0, &m.lat);
        let expect = 10.0 * 24.0 + 5.0 * 412.0 + 2.0 * 228.0;
        assert!((c.stall_ns - expect).abs() < 1e-9);
        assert!((c.total_ns() - (1000.0 + expect)).abs() < 1e-9);
    }

    #[test]
    fn costs_add_componentwise() {
        let lat = profiles::origin2000().lat;
        let a = ModelCost::assemble(1.0, 2.0, 3.0, 4.0, &lat);
        let b = ModelCost::assemble(10.0, 20.0, 30.0, 40.0, &lat);
        let s = a + b;
        assert_eq!(s.l1_misses, 22.0);
        assert!((s.total_ns() - (a.total_ns() + b.total_ns())).abs() < 1e-9);
        let summed: ModelCost = [a, b].into_iter().sum();
        assert_eq!(summed, s);
    }

    #[test]
    fn machine_without_l1_uses_l2_geometry() {
        let m = ModelMachine::new(&profiles::sun_lx());
        assert_eq!(m.l1_line, m.l2_line);
        assert_eq!(m.l1_lines, m.l2_lines);
    }
}
