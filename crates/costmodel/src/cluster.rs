//! The radix-cluster cost model `T_c(P, B, C)` — §3.4.2, Figure 9.
//!
//! Per pass with `H_p = 2^{B_p}` clusters:
//!
//! ```text
//! M_Li,c(B_p, C)  = k·|Re|_Li + / C · H_p/|Li|              if H_p ≤ |Li|
//!                               \ C · (1 + log2(H_p/|Li|))  if H_p > |Li|
//! M_TLB,c(B_p, C) = k·|Re|_Pg + / |Re|_Pg · H_p/|TLB|       if H_p ≤ |TLB|
//!                               \ C · (1 − |TLB|/H_p)       if H_p > |TLB|
//! T_c(P, B, C)    = Σ_p [ C·w_c + M_L1,c·l_L2 + M_L2,c·l_Mem + M_TLB,c·l_TLB ]
//! ```
//!
//! where `k` is the sequential-stream count (2 in the paper, 3 for this
//! repository's histogram-re-reading implementation; see
//! [`crate::ModelParams::cluster_seq_streams`]).
//!
//! **Reconstruction notes** (PDF garbling): the branch conditions are
//! restored so both cache branches meet at `C` when `H_p = |Li|` and both
//! TLB branches meet at `|Re|_Pg` when `H_p = |TLB|` — continuous and
//! monotone, matching the measured curves' shape in Fig. 9. The log term
//! models cascaded conflict evictions under cache trashing. The term the
//! paper omits for space — "a second more moderate increase in TLB misses …
//! when the number of clusters exceeds the number of L2 cache lines" — is
//! implemented in [`tlb_l2_interaction`] with the same `1 − lines/H_p`
//! shape, gated by [`crate::ModelParams::tlb_l2_interaction`].

use crate::machine::{ModelCost, ModelMachine};

/// Cache-miss count for one pass at one cache level, parameterized by the
/// level's line count. See module docs.
fn cache_misses(seq_streams: f64, rel_lines: f64, c: f64, hp: f64, lines: f64) -> f64 {
    let base = seq_streams * rel_lines;
    let extra = if hp <= lines { c * hp / lines } else { c * (1.0 + (hp / lines).log2()) };
    base + extra
}

/// TLB-miss count for one pass. See module docs.
fn tlb_misses(seq_streams: f64, rel_pages: f64, c: f64, hp: f64, tlb_entries: f64) -> f64 {
    let base = seq_streams * rel_pages;
    let extra =
        if hp <= tlb_entries { rel_pages * hp / tlb_entries } else { c * (1.0 - tlb_entries / hp) };
    base + extra
}

/// The paper's omitted-for-space refinement: when `H_p` exceeds the number
/// of L2 lines, L2 evictions start taking page translations with them,
/// adding a "second, more moderate" TLB ramp.
pub fn tlb_l2_interaction(m: &ModelMachine, c: f64, hp: f64) -> f64 {
    if hp > m.l2_lines {
        c * (1.0 - m.l2_lines / hp)
    } else {
        0.0
    }
}

/// Predicted cost of ONE clustering pass on `B_p` bits over `C` tuples.
pub fn cluster_pass_cost(m: &ModelMachine, pass_bits: u32, c: f64) -> ModelCost {
    let hp = (1u64 << pass_bits) as f64;
    let k = m.params.cluster_seq_streams;
    let l1 = cache_misses(k, m.rel_l1_lines(c), c, hp, m.l1_lines);
    let l2 = cache_misses(k, m.rel_l2_lines(c), c, hp, m.l2_lines);
    let mut tlb = tlb_misses(k, m.rel_pages(c), c, hp, m.tlb_entries);
    if m.params.tlb_l2_interaction {
        tlb += tlb_l2_interaction(m, c, hp);
    }
    ModelCost::assemble(c * m.work.cluster_tuple_ns, l1, l2, tlb, &m.lat)
}

/// Predicted total cost `T_c` of a multi-pass radix-cluster with the given
/// per-pass bit counts (use `monet_core::strategy::plan_passes` for the
/// paper's even split).
pub fn cluster_cost(m: &ModelMachine, pass_bits: &[u32], c: f64) -> ModelCost {
    pass_bits.iter().map(|&bp| cluster_pass_cost(m, bp, c)).sum()
}

/// Convenience: `T_c(P, B, C)` with `B` bits split evenly over `P` passes
/// (exactly the parameterization of Figure 9's four curves).
pub fn cluster_cost_even(m: &ModelMachine, passes: u32, bits: u32, c: f64) -> ModelCost {
    assert!(passes > 0, "at least one pass");
    assert!(bits >= passes, "cannot split {bits} bits over {passes} passes");
    let base = bits / passes;
    let extra = bits % passes;
    let pass_bits: Vec<u32> =
        (0..passes).map(|p| if p < extra { base + 1 } else { base }).collect();
    cluster_cost(m, &pass_bits, c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::profiles;

    fn origin() -> ModelMachine {
        ModelMachine::new(&profiles::origin2000())
    }

    #[test]
    fn branches_are_continuous_at_boundaries() {
        let m = origin();
        let c = 1e6;
        // Cache branch boundary: hp = lines.
        let below = cache_misses(2.0, m.rel_l1_lines(c), c, m.l1_lines - 1e-9, m.l1_lines);
        let above = cache_misses(2.0, m.rel_l1_lines(c), c, m.l1_lines + 1e-9, m.l1_lines);
        assert!((below - above).abs() < 1.0);
        // TLB branch boundary: hp = entries ⇒ |Re|_Pg extra on the left,
        // C·(1-1) = wait — left gives |Re|_Pg, right gives 0 at the exact
        // boundary; the curves cross rather than coincide, but both are tiny
        // relative to C. Check the jump is < |Re|_Pg.
        let bl = tlb_misses(2.0, m.rel_pages(c), c, 64.0, 64.0);
        let br = tlb_misses(2.0, m.rel_pages(c), c, 64.0 + 1e-9, 64.0);
        assert!((bl - br).abs() <= m.rel_pages(c) + 1.0);
    }

    #[test]
    fn tlb_explosion_beyond_64_clusters() {
        // Fig. 9's driving effect: at C = 8M, going from 6 to 10 bits in one
        // pass must blow up TLB misses by orders of magnitude.
        let m = origin();
        let c = 8e6;
        let at = |bits: u32| cluster_pass_cost(&m, bits, c).tlb_misses;
        assert!(at(10) > 50.0 * at(6), "6 bits: {}, 10 bits: {}", at(6), at(10));
        // And it saturates near C.
        assert!(at(20) < 2.5 * c);
    }

    #[test]
    fn multi_pass_beats_single_pass_beyond_tlb_limit() {
        // The Figure 9 crossover: beyond 6 bits, 2 passes beat 1; beyond 12,
        // 3 beat 2; beyond 18, 4 beat 3 (at 8M tuples).
        let m = origin();
        let c = 8e6;
        let t = |p: u32, b: u32| cluster_cost_even(&m, p, b, c).total_ms();
        assert!(t(1, 5) < t(2, 5), "below the limit one pass wins");
        assert!(t(2, 8) < t(1, 8), "beyond 6 bits two passes win");
        assert!(t(3, 14) < t(2, 14), "beyond 12 bits three passes win");
        assert!(t(4, 20) < t(3, 20), "beyond 18 bits four passes win");
    }

    #[test]
    fn best_case_time_increases_with_bits() {
        // Fig. 9: "the best-case execution time increases with the number of
        // bits used" — more bits ⇒ more passes ⇒ more sequential sweeps.
        let m = origin();
        let c = 8e6;
        let best = |b: u32| {
            (1..=4)
                .map(|p| cluster_cost_even(&m, p, b.max(p), c).total_ms())
                .fold(f64::MAX, f64::min)
        };
        assert!(best(6) < best(12));
        assert!(best(12) < best(18));
        assert!(best(18) < best(24));
    }

    #[test]
    fn cost_scales_linearly_with_cardinality_in_seq_regime() {
        let m = origin();
        let a = cluster_pass_cost(&m, 4, 1e6).total_ns();
        let b = cluster_pass_cost(&m, 4, 8e6).total_ns();
        let ratio = b / a;
        assert!((7.0..=9.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn seq_stream_param_shifts_baseline_only() {
        let cfg = profiles::origin2000();
        let paper = ModelMachine::new(&cfg);
        let ours = ModelMachine::with_params(&cfg, crate::ModelParams::implementation_matched());
        let c = 1e6;
        let p = cluster_pass_cost(&paper, 4, c);
        let o = cluster_pass_cost(&ours, 4, c);
        assert!(o.l1_misses > p.l1_misses);
        assert!((o.l1_misses - p.l1_misses - paper.rel_l1_lines(c)).abs() < 1.0);
        assert_eq!(o.cpu_ns, p.cpu_ns);
    }

    #[test]
    fn tlb_l2_interaction_kicks_in_above_l2_lines() {
        let m = origin();
        let c = 8e6;
        assert_eq!(tlb_l2_interaction(&m, c, 32768.0), 0.0);
        assert!(tlb_l2_interaction(&m, c, 2.0 * 32768.0) > 0.0);
        let mut no = m;
        no.params.tlb_l2_interaction = false;
        let with_bump = cluster_pass_cost(&m, 17, c).tlb_misses;
        let without = cluster_pass_cost(&no, 17, c).tlb_misses;
        assert!(with_bump > without);
    }

    #[test]
    #[should_panic(expected = "cannot split")]
    fn even_split_rejects_more_passes_than_bits() {
        cluster_cost_even(&origin(), 4, 3, 1e6);
    }
}
