//! Selection access-path pricing — the §3.2 trade-off as a *model*, the way
//! §3.4 models the join algorithms.
//!
//! The paper weighs a scan-select (optimal stride locality) against index
//! structures whose probes are random: "If the selectivity is low, most
//! data needs to be visited and this is best done with a scan-select". This
//! module prices all four access paths from the calibrated machine
//! parameters so the executor can *choose* per predicate, the same way
//! [`crate::plan::plan_join`] chooses a join algorithm:
//!
//! * **scan** — the §2 stride-scan model, exactly [`crate::scan::scan_cost`]
//!   at the column's stride;
//! * **B+-tree (eq/range)** — one descent (`height + 1` node touches, each
//!   one line/page) plus a sequential run over the `k` matching leaf
//!   entries (two 4-byte streams: keys and OIDs);
//! * **hash probe** — one bucket head plus a chain walk of random accesses
//!   whose miss fraction is the index footprint's cache residency (the
//!   paper's "up to 8 memory accesses per tuple" trash regime, priced
//!   continuously);
//! * **T-tree probe** — a pointer-chase descent (`log₂ blocks` scattered
//!   node headers) plus an in-node binary search.
//!
//! Every index path also pays for restoring *scan order*: index probes emit
//! OIDs in key/chain order, and the executor sorts them so index-path
//! selections stay bit-identical to scan-path selections. That
//! `k·log₂ k` term is what pushes the crossover towards scans as
//! selectivity grows; the `repro access` figure validates the predicted
//! crossover against the simulator.

use crate::machine::{ModelCost, ModelMachine};
use crate::scan::scan_cost;

/// Bytes per indexed tuple of the bucket-chained hash index: heads + chain
/// (≈4 B) plus the 8-byte `(key, oid)` BUN — the paper's §3.4.4 "12 bytes
/// per tuple" rule, reused from the phash strategies.
pub const HASH_INDEX_TUPLE_BYTES: f64 = crate::machine::PHASH_TUPLE_BYTES;

/// Average chain length the hash index is sized for
/// (`monet_core::join::hashtable::DEFAULT_TUPLES_PER_BUCKET`).
pub const HASH_CHAIN_LENGTH: f64 = 4.0;

/// A selection access path the executor can take for one predicate leaf.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessPath {
    /// Full scan-select over the column.
    Scan,
    /// Scan-select directly over the compressed (packed) column.
    PackedScan,
    /// B+-tree descent + leaf range scan.
    BtreeRange,
    /// B+-tree descent + duplicate run.
    BtreeEq,
    /// Hash-index chain walk.
    HashEq,
    /// T-tree descent + duplicate run.
    TTreeEq,
}

impl AccessPath {
    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            AccessPath::Scan => "scan",
            AccessPath::PackedScan => "packed-scan",
            AccessPath::BtreeRange => "btree-range",
            AccessPath::BtreeEq => "btree-eq",
            AccessPath::HashEq => "hash-eq",
            AccessPath::TTreeEq => "ttree-eq",
        }
    }

    /// True for index-backed paths (both scan flavours stream the column
    /// in OID order; everything else probes a secondary structure).
    pub fn is_index(self) -> bool {
        matches!(
            self,
            AccessPath::BtreeRange | AccessPath::BtreeEq | AccessPath::HashEq | AccessPath::TTreeEq
        )
    }
}

/// Geometry of one available index, as the pricing functions need it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexShape {
    /// B+-tree with this many levels above the leaves.
    Btree {
        /// Tree height ([`monet_core::index::CsBTree::height`]).
        height: usize,
    },
    /// Bucket-chained hash index.
    Hash,
    /// T-tree with this many keys per node.
    TTree {
        /// Keys per node.
        node_capacity: usize,
    },
}

/// One selection, as the access chooser sees it.
#[derive(Debug, Clone, Copy)]
pub struct SelectQuery {
    /// Table cardinality (rows a scan visits).
    pub rows: usize,
    /// Byte stride of the scanned column (1/2/4/8).
    pub stride: usize,
    /// (Estimated) qualifying rows.
    pub matches: usize,
    /// True for a point predicate (`lo == hi`, or a dictionary equality) —
    /// the only shape hash and T-tree indexes can answer.
    pub eq: bool,
    /// Stored bits per value of the column's compressed representation,
    /// when one exists *and* can answer this predicate directly — enables
    /// the [`AccessPath::PackedScan`] quote.
    pub packed_bits: Option<f64>,
    /// Number of surviving candidates threaded into this leaf from earlier
    /// conjunction leaves (`None` = full-column evaluation). When set, scan
    /// paths are priced per candidate ([`crate::scan::cand_scan_cost`] /
    /// [`crate::scan::cand_packed_scan_cost`]) and index probes keep their
    /// full traversal but emit and sort only the expected survivors.
    pub cands: Option<usize>,
}

/// A priced access path.
#[derive(Debug, Clone, Copy)]
pub struct Quote {
    /// The path.
    pub path: AccessPath,
    /// Its predicted cost.
    pub cost: ModelCost,
}

/// Merge-sort rounds needed to restore scan (OID) order over `n` index
/// matches: `⌈log₂ n⌉`. Shared with the executor so model and kernel charge
/// the identical work count.
pub fn sort_rounds(n: usize) -> usize {
    if n < 2 {
        0
    } else {
        (usize::BITS - (n - 1).leading_zeros()) as usize
    }
}

/// CPU work common to every index path: emit `k` matches (one scan
/// iteration each) and sort them back into OID order.
fn emit_ns(m: &ModelMachine, matches: usize) -> f64 {
    let k = matches as f64;
    k * m.work.scan_iter_ns + (matches * sort_rounds(matches)) as f64 * m.work.sort_tuple_ns
}

/// Price the scan-select path: the §2 stride-scan over all rows.
pub fn scan_select_cost(m: &ModelMachine, rows: usize, stride: usize) -> ModelCost {
    scan_cost(m, rows, stride)
}

/// Price a B+-tree probe returning `matches` entries: a cold descent of
/// `height + 1` node touches (one L1/L2/TLB event each — nodes are
/// line-sized) plus two sequential 4-byte streams over the matching run
/// (leaf keys and payload OIDs).
pub fn btree_cost(m: &ModelMachine, height: usize, matches: usize) -> ModelCost {
    let levels = (height + 1) as f64;
    let k = matches as f64;
    ModelCost::assemble(
        emit_ns(m, matches),
        levels + 2.0 * k * 4.0 / m.l1_line,
        levels + 2.0 * k * 4.0 / m.l2_line,
        levels + 2.0 * k * 4.0 / m.page,
        &m.lat,
    )
}

/// Price a hash probe returning `matches` entries over an `entries`-tuple
/// index: one bucket-head read plus two random accesses (BUN + chain link)
/// per chain step, each missing with the probability that the index
/// footprint exceeds the respective cache level.
pub fn hash_eq_cost(m: &ModelMachine, entries: usize, matches: usize) -> ModelCost {
    let bytes = entries as f64 * HASH_INDEX_TUPLE_BYTES;
    // All duplicates of the key share one chain, so the walk is at least as
    // long as the match count, and never shorter than the sizing target.
    let chain = (matches as f64).max(HASH_CHAIN_LENGTH);
    let accesses = 1.0 + 2.0 * chain;
    ModelCost::assemble(
        m.work.hash_tuple_ns + emit_ns(m, matches),
        accesses * (bytes / m.l1_bytes).min(1.0),
        accesses * (bytes / m.l2_bytes).min(1.0),
        accesses * (bytes / m.tlb_span).min(1.0),
        &m.lat,
    )
}

/// Price a T-tree probe returning `matches` entries over an `entries`-tuple
/// tree: `log₂ blocks` pointer-chased node headers (each its own heap
/// allocation — one event per cache level, the structural cache hostility
/// §3.2 criticizes), an in-node binary search, and the duplicate run.
pub fn ttree_eq_cost(
    m: &ModelMachine,
    entries: usize,
    node_capacity: usize,
    matches: usize,
) -> ModelCost {
    let blocks = entries.div_ceil(node_capacity.max(1)).max(1);
    let depth = (usize::BITS - blocks.leading_zeros()) as f64; // ⌈log₂⌉ + 1-ish
    let in_node = (node_capacity.max(2) as f64).log2();
    let k = matches as f64;
    ModelCost::assemble(
        emit_ns(m, matches),
        depth + in_node + 2.0 * k * 4.0 / m.l1_line,
        depth + 1.0 + 2.0 * k * 4.0 / m.l2_line,
        depth + 1.0 + 2.0 * k * 4.0 / m.page,
        &m.lat,
    )
}

/// Expected survivors of intersecting `matches` qualifying rows with a
/// `k`-entry candidate list over `rows` rows (independence assumption),
/// never exceeding either input.
pub fn restricted_matches(rows: usize, matches: usize, k: usize) -> usize {
    let est = (matches as f64 * k as f64 / rows.max(1) as f64).ceil() as usize;
    est.min(matches).min(k)
}

/// Adjust a full index quote for candidate restriction: the structure
/// traversal (memory) is unchanged, but the CPU term becomes one membership
/// test per probe-emitted entry plus emit+sort-back over only the expected
/// survivors — the `k·log₂ k` sort saving that makes restricted probes
/// cheap. Exposed for the engine's conjunction planner, which reprices
/// already-chosen index leaves at arbitrary candidate counts.
pub fn restrict_index_cost(
    m: &ModelMachine,
    mut full: ModelCost,
    probed: usize,
    kept: usize,
) -> ModelCost {
    full.cpu_ns = probed as f64 * m.work.scan_iter_ns + emit_ns(m, kept);
    full
}

/// Price every access path available for `q`: always [`AccessPath::Scan`],
/// then [`AccessPath::PackedScan`] when the column has a usable compressed
/// representation, plus one entry per usable index in `indexes` (range
/// predicates can only use B+-trees; eq predicates use all three). A
/// [`SelectQuery::cands`] list switches every path to its restricted
/// pricing.
pub fn quotes(m: &ModelMachine, q: &SelectQuery, indexes: &[IndexShape]) -> Vec<Quote> {
    let kept = q.cands.map(|k| restricted_matches(q.rows, q.matches, k));
    let scan = match q.cands {
        Some(k) => crate::scan::cand_scan_cost(m, q.rows, q.stride, k),
        None => scan_select_cost(m, q.rows, q.stride),
    };
    let mut out = vec![Quote { path: AccessPath::Scan, cost: scan }];
    if let Some(bits) = q.packed_bits {
        let cost = match q.cands {
            Some(k) => crate::scan::cand_packed_scan_cost(m, q.rows, bits, k),
            None => crate::scan::packed_scan_cost(m, q.rows, bits),
        };
        out.push(Quote { path: AccessPath::PackedScan, cost });
    }
    let restrict = |cost: ModelCost| match kept {
        Some(kept) => restrict_index_cost(m, cost, q.matches, kept),
        None => cost,
    };
    for shape in indexes {
        match shape {
            IndexShape::Btree { height } => {
                let path = if q.eq { AccessPath::BtreeEq } else { AccessPath::BtreeRange };
                out.push(Quote { path, cost: restrict(btree_cost(m, *height, q.matches)) });
            }
            IndexShape::Hash if q.eq => {
                out.push(Quote {
                    path: AccessPath::HashEq,
                    cost: restrict(hash_eq_cost(m, q.rows, q.matches)),
                });
            }
            IndexShape::TTree { node_capacity } if q.eq => {
                out.push(Quote {
                    path: AccessPath::TTreeEq,
                    cost: restrict(ttree_eq_cost(m, q.rows, *node_capacity, q.matches)),
                });
            }
            _ => {} // hash / T-tree cannot answer range predicates
        }
    }
    out
}

/// The cheapest quote (ties go to the earlier entry, i.e. the scan).
pub fn cheapest(quotes: &[Quote]) -> Quote {
    *quotes
        .iter()
        .reduce(|best, q| if q.cost.total_ns() < best.cost.total_ns() { q } else { best })
        .expect("quotes always contains the scan path")
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::profiles;

    fn origin() -> ModelMachine {
        ModelMachine::new(&profiles::origin2000())
    }

    const SHAPES: [IndexShape; 3] = [
        IndexShape::Btree { height: 7 },
        IndexShape::Hash,
        IndexShape::TTree { node_capacity: 64 },
    ];

    #[test]
    fn point_lookups_prefer_indexes_on_large_relations() {
        // 1M rows, 1 match: any index path beats the full scan by orders of
        // magnitude, and the hash probe is the cheapest eq path.
        let m = origin();
        let q = SelectQuery {
            rows: 1_000_000,
            stride: 4,
            matches: 1,
            eq: true,
            packed_bits: None,
            cands: None,
        };
        let qs = quotes(&m, &q, &SHAPES);
        assert_eq!(qs.len(), 4);
        let best = cheapest(&qs);
        assert!(best.path.is_index(), "picked {:?}", best.path);
        let scan = qs[0].cost.total_ns();
        assert!(best.cost.total_ns() * 100.0 < scan, "index {best:?} vs scan {scan}");
    }

    #[test]
    fn high_selectivity_ranges_prefer_the_scan() {
        // 80% of 1M rows qualify: the sort-back term alone sinks the index.
        let m = origin();
        let q = SelectQuery {
            rows: 1_000_000,
            stride: 4,
            matches: 800_000,
            eq: false,
            packed_bits: None,
            cands: None,
        };
        let best = cheapest(&quotes(&m, &q, &SHAPES));
        assert_eq!(best.path, AccessPath::Scan);
    }

    #[test]
    fn range_predicates_only_use_the_btree() {
        let m = origin();
        let q = SelectQuery {
            rows: 100_000,
            stride: 4,
            matches: 10,
            eq: false,
            packed_bits: None,
            cands: None,
        };
        let qs = quotes(&m, &q, &SHAPES);
        assert_eq!(qs.len(), 2);
        assert_eq!(qs[1].path, AccessPath::BtreeRange);
        // No indexes at all: the scan is the only (and cheapest) quote.
        let only = quotes(&m, &q, &[]);
        assert_eq!(only.len(), 1);
        assert_eq!(cheapest(&only).path, AccessPath::Scan);
    }

    #[test]
    fn index_costs_are_monotone_in_matches() {
        let m = origin();
        let mut prev = 0.0;
        for k in [0usize, 1, 10, 1_000, 100_000] {
            let c = btree_cost(&m, 7, k).total_ns();
            assert!(c >= prev, "k={k}: {c} < {prev}");
            prev = c;
        }
        assert!(hash_eq_cost(&m, 1 << 20, 8).total_ns() > hash_eq_cost(&m, 1 << 20, 1).total_ns());
        assert!(
            ttree_eq_cost(&m, 1 << 20, 64, 8).total_ns()
                > ttree_eq_cost(&m, 1 << 10, 64, 8).total_ns() * 0.99
        );
    }

    #[test]
    fn tiny_relations_make_the_hash_probe_nearly_free_of_stalls() {
        // 1000 tuples: the whole index is cache-resident, so the residency
        // fractions collapse and the probe is CPU-bound.
        let m = origin();
        let small = hash_eq_cost(&m, 1_000, 1);
        assert!(small.l2_misses < 1.0, "{small:?}");
        let big = hash_eq_cost(&m, 1 << 22, 1);
        assert!(big.l2_misses > 5.0, "{big:?}");
    }

    #[test]
    fn sort_rounds_is_ceil_log2() {
        for (n, r) in [(0usize, 0usize), (1, 0), (2, 1), (3, 2), (4, 2), (5, 3), (1024, 10)] {
            assert_eq!(sort_rounds(n), r, "n={n}");
        }
    }

    #[test]
    fn packed_scan_beats_the_index_probe_where_the_plain_scan_loses() {
        // Mid selectivity on 1M rows: the btree undercuts the 4-byte scan,
        // but a 3-bit packed column streams ~10x fewer bytes and takes the
        // quote back — the tentpole's access-path flip.
        let m = origin();
        let rows = 1 << 20;
        let q = SelectQuery {
            rows,
            stride: 4,
            matches: rows * 3 / 100,
            eq: false,
            packed_bits: None,
            cands: None,
        };
        let shapes = [IndexShape::Btree { height: 7 }];
        let plain = cheapest(&quotes(&m, &q, &shapes));
        assert_eq!(
            plain.path,
            AccessPath::BtreeRange,
            "chosen stride-4 regime must favor the btree"
        );
        let packed_q = SelectQuery { packed_bits: Some(3.0), ..q };
        let qs = quotes(&m, &packed_q, &shapes);
        assert_eq!(qs.len(), 3);
        assert_eq!(qs[1].path, AccessPath::PackedScan);
        let best = cheapest(&qs);
        assert_eq!(best.path, AccessPath::PackedScan);
        assert!(!best.path.is_index());
        // At full 32 bits the packed quote ties the scan and changes nothing.
        let q32 = SelectQuery { packed_bits: Some(32.0), ..q };
        assert_eq!(cheapest(&quotes(&m, &q32, &shapes)).path, AccessPath::BtreeRange);
    }

    #[test]
    fn restricted_quotes_reward_a_selective_candidate_list() {
        let m = origin();
        let rows = 1 << 20;
        let full = SelectQuery {
            rows,
            stride: 4,
            matches: rows / 10,
            eq: true,
            packed_bits: Some(8.0),
            cands: None,
        };
        let pushed = SelectQuery { cands: Some(rows / 1000), ..full };
        let fq = quotes(&m, &full, &SHAPES);
        let pq = quotes(&m, &pushed, &SHAPES);
        assert_eq!(fq.len(), pq.len());
        // Every path gets cheaper (or at worst equal) under restriction.
        for (f, p) in fq.iter().zip(&pq) {
            assert_eq!(f.path, p.path);
            assert!(
                p.cost.total_ns() <= f.cost.total_ns() + 1e-6,
                "{}: {} > {}",
                p.path.name(),
                p.cost.total_ns(),
                f.cost.total_ns()
            );
        }
        // The scan paths collapse by roughly the candidate fraction; the
        // index paths keep their traversal so they shrink less.
        assert!(pq[0].cost.total_ns() * 10.0 < fq[0].cost.total_ns());
        assert!(pq[1].cost.total_ns() * 5.0 < fq[1].cost.total_ns());
        // An all-pass candidate list changes nothing for index emit counts.
        let allpass = SelectQuery { cands: Some(rows), ..full };
        let aq = quotes(&m, &allpass, &SHAPES);
        let bt = |qs: &[Quote]| {
            qs.iter().find(|q| q.path == AccessPath::BtreeEq).unwrap().cost.total_ns()
        };
        // Restricted adds the membership filter on top of the full emit.
        assert!(bt(&aq) >= bt(&fq));
        // Expected-survivor estimator basics.
        assert_eq!(restricted_matches(1000, 100, 0), 0);
        assert_eq!(restricted_matches(1000, 100, 1000), 100);
        assert_eq!(restricted_matches(1000, 100, 10), 1);
    }

    #[test]
    fn crossover_exists_and_is_interior() {
        // Sweeping selectivity at fixed C must flip the btree/scan ordering
        // exactly once, strictly inside (0, 1) — the Figure-3-style regime
        // structure the `repro access` figure measures.
        let m = origin();
        let rows = 1 << 20;
        let mut last_index_wins = true;
        let mut flips = 0;
        for pct in 1..=100 {
            let matches = rows * pct / 100;
            let q =
                SelectQuery { rows, stride: 4, matches, eq: false, packed_bits: None, cands: None };
            let best = cheapest(&quotes(&m, &q, &[IndexShape::Btree { height: 7 }]));
            let index_wins = best.path.is_index();
            if index_wins != last_index_wins {
                flips += 1;
                assert!(!index_wins, "ordering may only flip towards the scan");
            }
            last_index_wins = index_wins;
        }
        assert_eq!(flips, 1, "exactly one crossover");
        assert!(!last_index_wins, "scan must win at 100% selectivity");
    }
}
