//! Parallel-speedup model — our multi-core extension of the paper's §3.4
//! methodology.
//!
//! The paper models a single-threaded machine; its successors (and the
//! "memory is the bottleneck" follow-ups in PAPERS.md) observe that radix
//! partitioning parallelizes embarrassingly: chunks of a pass and pairs of
//! clusters are independent. We model that the same way the paper models
//! everything else — by mimicking what the implementation actually does and
//! charging calibrated constants:
//!
//! ```text
//! T_par(n) = T_seq · max_share(n) + w_fork · n        (n > 1)
//! T_par(1) = T_seq                                    (exactly)
//! ```
//!
//! where `max_share(n) = ceil(I/n) / I` is the largest fraction of the `I`
//! work items any one thread receives under the executor's uniform chunking
//! (speedup = work / max(per-thread work)), and `w_fork` is the per-thread
//! fork/join overhead of a scoped OS thread, calibrated in CPU cycles so it
//! scales with the machine's clock like the paper's `w` constants do.
//!
//! [`ParallelModel::best_threads`] searches `n ∈ 1..=max_threads` for the
//! cheapest predicted time; by construction it never returns a thread count
//! the model prices slower than running sequentially.

use memsim::MachineConfig;
use monet_core::strategy::{Algorithm, JoinPlan};

use crate::plan::plan_join;

/// Per-thread fork/join overhead in CPU cycles (spawn + schedule + join of
/// one scoped thread, measured order-of-magnitude on Linux: tens of µs on a
/// late-90s clock, ~10 µs on a modern one).
pub const FORK_CYCLES: f64 = 25_000.0;

/// An upper bound on threads the auto-planner will ever consider; real
/// machines the executor targets have no more usable cores for these
/// memory-bound kernels.
pub const MAX_MODEL_THREADS: usize = 64;

/// One operator's degree-of-parallelism decision: the chosen thread count
/// and the model's sequential/parallel time quotes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParPlan {
    /// Chosen number of threads (1 = run the sequential kernel).
    pub threads: usize,
    /// Predicted sequential time in ns (the input quote).
    pub seq_ns: f64,
    /// Predicted time at `threads` in ns; equals `seq_ns` when `threads == 1`.
    pub par_ns: f64,
}

impl ParPlan {
    /// Predicted speedup over sequential (1.0 when `threads == 1`).
    pub fn speedup(&self) -> f64 {
        if self.par_ns > 0.0 {
            self.seq_ns / self.par_ns
        } else {
            1.0
        }
    }
}

/// The calibrated parallel model for one machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParallelModel {
    /// Fork/join overhead per spawned thread in ns.
    pub fork_ns: f64,
    /// Largest thread count the planner may choose (the machine's usable
    /// core count).
    pub max_threads: usize,
}

impl ParallelModel {
    /// Calibrate for `cfg`: [`FORK_CYCLES`] at the machine's clock, thread
    /// counts capped at `max_threads` (clamped to `1..=`[`MAX_MODEL_THREADS`]).
    pub fn for_machine(cfg: &MachineConfig, max_threads: usize) -> Self {
        Self {
            fork_ns: FORK_CYCLES * cfg.ns_per_cycle(),
            max_threads: max_threads.clamp(1, MAX_MODEL_THREADS),
        }
    }

    /// Predicted time of running `items` uniform work items, sequentially
    /// worth `seq_ns`, on `threads` threads. `threads = 1` returns `seq_ns`
    /// *exactly* (no fork term): the executor runs the sequential kernel.
    pub fn time_ns(&self, seq_ns: f64, items: usize, threads: usize) -> f64 {
        // More threads than items would only spawn idle workers; the
        // kernels clamp the same way.
        let t = threads.max(1).min(items.max(1));
        if t == 1 {
            return seq_ns;
        }
        let max_share = items.div_ceil(t) as f64 / items as f64;
        seq_ns * max_share + self.fork_ns * t as f64
    }

    /// Predicted speedup (`seq / par`) at `threads`.
    pub fn speedup(&self, seq_ns: f64, items: usize, threads: usize) -> f64 {
        let t = self.time_ns(seq_ns, items, threads);
        if t > 0.0 {
            seq_ns / t
        } else {
            1.0
        }
    }

    /// The model-optimal thread count for this job: the `n` minimizing
    /// [`Self::time_ns`]. Because `n = 1` is always considered (and quotes
    /// `seq_ns` exactly), the result is never priced slower than sequential;
    /// ties go to fewer threads.
    pub fn best_threads(&self, seq_ns: f64, items: usize) -> ParPlan {
        let mut best = ParPlan { threads: 1, seq_ns, par_ns: seq_ns };
        for n in 2..=self.max_threads {
            let t = self.time_ns(seq_ns, items, n);
            if t < best.par_ns {
                best = ParPlan { threads: n, seq_ns, par_ns: t };
            }
        }
        best
    }
}

/// Whether a join algorithm has a parallel kernel the executor can lower
/// onto ([`monet_core::join::parallel`]). The unpartitioned baselines run
/// sequentially: a single shared hash table or merge has no disjoint
/// partitions to fan out over.
pub fn algorithm_parallelizes(a: Algorithm) -> bool {
    matches!(a, Algorithm::PartitionedHash | Algorithm::Radix)
}

/// Executor-facing extension of [`plan_join`]: the model-optimal
/// `(algorithm, B, P)` **and** degree of parallelism for joining two
/// relations of `cardinality` tuples each on machine `cfg`, with at most
/// `max_threads` threads available.
///
/// The parallel quote prices the *chosen* plan: its items are the tuples of
/// both operands (every pass and the cluster-pair join fan out over them),
/// and its sequential time is the plan's own model cost. Plans whose
/// algorithm has no parallel kernel come back pinned to one thread.
pub fn plan_join_parallel(
    cfg: &MachineConfig,
    cardinality: usize,
    max_threads: usize,
) -> (JoinPlan, ParPlan) {
    let (plan, cost) = plan_join(cfg, cardinality);
    let seq_ns = cost.total_ns();
    let par = if algorithm_parallelizes(plan.algorithm) {
        ParallelModel::for_machine(cfg, max_threads).best_threads(seq_ns, 2 * cardinality.max(1))
    } else {
        ParPlan { threads: 1, seq_ns, par_ns: seq_ns }
    };
    (plan, par)
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::profiles;

    fn model() -> ParallelModel {
        ParallelModel::for_machine(&profiles::origin2000(), 16)
    }

    #[test]
    fn one_thread_reproduces_the_sequential_cost_exactly() {
        let m = model();
        for seq in [0.0, 1.0, 12345.678, 9.9e12] {
            assert_eq!(m.time_ns(seq, 1_000_000, 1), seq, "no fork term at n = 1");
            assert_eq!(m.speedup(seq, 1_000_000, 1), 1.0);
        }
        // Degenerate shapes clamp to the sequential quote too.
        assert_eq!(m.time_ns(5000.0, 0, 8), 5000.0, "empty input runs sequentially");
        assert_eq!(m.time_ns(5000.0, 1, 8), 5000.0, "threads clamp to the item count");
    }

    #[test]
    fn speedup_is_monotone_until_the_overhead_term_dominates() {
        let m = model();
        // A big job: 1 s of sequential work over 8M items. The per-thread
        // share shrinks much faster than fork overhead accrues, so speedup
        // rises monotonically across every thread count the model considers.
        let mut prev = 0.0;
        for n in 1..=m.max_threads {
            let s = m.speedup(1e9, 8_000_000, n);
            assert!(s >= prev, "speedup fell from {prev} to {s} at n = {n}");
            prev = s;
        }
        assert!(prev > 4.0, "16 threads on a 1 s job must predict real speedup, got {prev}");

        // A tiny job: 50 µs of work. Fork overhead (~100 µs/thread on the
        // Origin2000 clock) dominates immediately; every n > 1 is slower.
        for n in 2..=m.max_threads {
            assert!(
                m.time_ns(50_000.0, 1000, n) > 50_000.0,
                "overhead must dominate a 50 µs job at n = {n}"
            );
        }
    }

    #[test]
    fn auto_never_picks_threads_priced_slower_than_sequential() {
        let m = model();
        for seq in [0.0, 1e3, 1e5, 1e7, 1e9] {
            for items in [0usize, 1, 7, 1000, 1 << 20] {
                let p = m.best_threads(seq, items);
                assert!(p.par_ns <= p.seq_ns, "seq {seq} items {items}: {p:?}");
                assert!(p.threads >= 1 && p.threads <= m.max_threads);
                if p.threads == 1 {
                    assert_eq!(p.par_ns, p.seq_ns, "n = 1 must quote sequential exactly");
                }
            }
        }
        // Tiny jobs stay sequential; the 1 s job does not.
        assert_eq!(m.best_threads(50_000.0, 1000).threads, 1);
        assert!(m.best_threads(1e9, 8_000_000).threads > 1);
    }

    #[test]
    fn fork_overhead_is_calibrated_to_the_machine_clock() {
        let cfg = profiles::origin2000(); // 250 MHz => 4 ns/cycle
        let m = ParallelModel::for_machine(&cfg, 8);
        assert!((m.fork_ns - FORK_CYCLES * 4.0).abs() < 1e-9);
        // Clamping of the thread cap.
        assert_eq!(ParallelModel::for_machine(&cfg, 0).max_threads, 1);
        assert_eq!(ParallelModel::for_machine(&cfg, 10_000).max_threads, MAX_MODEL_THREADS);
    }

    #[test]
    fn plan_join_parallel_extends_plan_join() {
        let cfg = profiles::origin2000();
        // Same plan as plan_join; threads chosen by the model.
        for c in [1usize, 1_000, 1_000_000] {
            let (plan, par) = plan_join_parallel(&cfg, c, 8);
            let (expect, cost) = plan_join(&cfg, c);
            assert_eq!(plan, expect, "C={c}");
            assert!((par.seq_ns - cost.total_ns()).abs() < 1e-9, "C={c}");
            assert!(par.par_ns <= par.seq_ns, "C={c}");
            if !algorithm_parallelizes(plan.algorithm) {
                assert_eq!(par.threads, 1, "C={c}: sequential algorithms pin to one thread");
            }
        }
        // A large join is both partitioned and worth parallelizing.
        let (plan, par) = plan_join_parallel(&cfg, 8_000_000, 8);
        assert!(algorithm_parallelizes(plan.algorithm));
        assert!(par.threads > 1, "8M-tuple join should fan out, got {par:?}");
        // max_threads = 1 degenerates to the sequential planner.
        let (_, seq1) = plan_join_parallel(&cfg, 8_000_000, 1);
        assert_eq!(seq1.threads, 1);
        assert_eq!(seq1.par_ns, seq1.seq_ns);
    }
}
