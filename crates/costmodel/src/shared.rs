//! Pricing cooperative (K-way merged) scans against K solo scan-selects.
//!
//! The §2 stride-scan model decomposes a scan into a CPU term and the
//! cache/TLB miss terms. A merged pass ([`monet_core::scan::multi_select`])
//! changes only the CPU term: the column streams through the hierarchy
//! **once** whatever K is, while predicate evaluation repeats per leaf.
//!
//! ```text
//! solo(K)   = K · ( CPU(rows) + Mem(rows, stride) )
//! merged(K) =     K · CPU(rows) + Mem(rows, stride)
//! ```
//!
//! so the merged cost grows far slower than K wherever the scan is
//! memory-bound — which is the paper's whole point. The *marginal* cost of
//! admitting one more predicate into an already-running pass is the CPU
//! term alone ([`marginal_pred_cost`]); a scheduler quote for a query whose
//! scan is already covered by an in-flight or pending shared pass should
//! charge that marginal term, not a fresh scan
//! ([`crate::quote::OpShape::SharedSelect`]).

use crate::machine::{ModelCost, ModelMachine};
use crate::scan::{misses_per_iter, scan_cost};

/// Predicted cost of one K-way merged scan pass over `rows` tuples at byte
/// `stride`: the memory terms of a single scan, the CPU term K times.
/// `k == 0` prices zero work.
pub fn merged_scan_cost(m: &ModelMachine, rows: usize, stride: usize, k: usize) -> ModelCost {
    if k == 0 {
        return ModelCost::assemble(0.0, 0.0, 0.0, 0.0, &m.lat);
    }
    let n = rows as f64;
    let (l1, l2, tlb) = misses_per_iter(m, stride);
    ModelCost::assemble(n * k as f64 * m.work.scan_iter_ns, n * l1, n * l2, n * tlb, &m.lat)
}

/// Predicted cost of K independent solo scan-selects over the same column.
pub fn solo_scans_cost(m: &ModelMachine, rows: usize, stride: usize, k: usize) -> ModelCost {
    let one = scan_cost(m, rows, stride);
    ModelCost::assemble(
        one.cpu_ns * k as f64,
        one.l1_misses * k as f64,
        one.l2_misses * k as f64,
        one.tlb_misses * k as f64,
        &m.lat,
    )
}

/// The marginal cost of evaluating one more predicate inside a pass that
/// is already streaming the column: pure CPU, no new memory traffic.
pub fn marginal_pred_cost(m: &ModelMachine, rows: usize) -> ModelCost {
    ModelCost::assemble(rows as f64 * m.work.scan_iter_ns, 0.0, 0.0, 0.0, &m.lat)
}

/// The cost of *attaching* to a chunked elevator pass that has already
/// streamed part of the column. The rider evaluates its predicate over all
/// `rows` tuples (pure CPU, as every rider does), but the elevator must
/// wrap around and re-stream only the `missed_rows` it passed before the
/// rider boarded — that wrap traffic is the only new memory charge.
///
/// ```text
/// attach(rows, missed) = CPU(rows) + Mem(missed, stride)
/// ```
///
/// Boundary behavior anchors the model: attaching right at pass start
/// (`missed_rows == 0`) degenerates to [`marginal_pred_cost`], and
/// attaching at the very end (`missed_rows == rows`) prices a full fresh
/// scan — nothing of the current cycle is reusable.
pub fn attach_cost(m: &ModelMachine, rows: usize, stride: usize, missed_rows: usize) -> ModelCost {
    let missed = missed_rows.min(rows) as f64;
    let (l1, l2, tlb) = misses_per_iter(m, stride);
    ModelCost::assemble(
        rows as f64 * m.work.scan_iter_ns,
        missed * l1,
        missed * l2,
        missed * tlb,
        &m.lat,
    )
}

/// Model-predicted speedup of merging K same-column scans into one pass
/// (`solo / merged`; 1.0 when `k <= 1`).
pub fn sharing_speedup(m: &ModelMachine, rows: usize, stride: usize, k: usize) -> f64 {
    if k <= 1 {
        return 1.0;
    }
    solo_scans_cost(m, rows, stride, k).total_ns() / merged_scan_cost(m, rows, stride, k).total_ns()
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::profiles;

    fn origin() -> ModelMachine {
        ModelMachine::new(&profiles::origin2000())
    }

    #[test]
    fn merged_cost_grows_far_slower_than_k() {
        let m = origin();
        for stride in [4usize, 8] {
            let one = merged_scan_cost(&m, 1_000_000, stride, 1).total_ns();
            let eight = merged_scan_cost(&m, 1_000_000, stride, 8).total_ns();
            assert!(eight > one, "more predicates cost more");
            assert!(
                eight < 0.75 * 8.0 * one,
                "stride {stride}: merged(8) = {eight} should be well under 8x merged(1) = {one}"
            );
        }
    }

    #[test]
    fn merged_beats_solo_for_k_of_two_or_more_and_matches_at_one() {
        let m = origin();
        let rows = 500_000;
        assert_eq!(
            merged_scan_cost(&m, rows, 8, 1).total_ns(),
            solo_scans_cost(&m, rows, 8, 1).total_ns(),
            "a 1-way merge is just a scan"
        );
        assert_eq!(
            merged_scan_cost(&m, rows, 8, 1).total_ns(),
            scan_cost(&m, rows, 8).total_ns(),
            "and prices exactly like the §2 scan model"
        );
        for k in 2..=16 {
            let merged = merged_scan_cost(&m, rows, 8, k).total_ns();
            let solo = solo_scans_cost(&m, rows, 8, k).total_ns();
            assert!(merged < solo, "k={k}: {merged} !< {solo}");
            assert!(sharing_speedup(&m, rows, 8, k) > 1.0);
        }
        // Wider strides are more memory-bound, so sharing helps more.
        assert!(sharing_speedup(&m, rows, 8, 8) > sharing_speedup(&m, rows, 1, 8));
    }

    #[test]
    fn marginal_predicate_is_cpu_only() {
        let m = origin();
        let rows = 100_000;
        let marginal = marginal_pred_cost(&m, rows);
        assert_eq!(marginal.l1_misses, 0.0);
        assert_eq!(marginal.l2_misses, 0.0);
        assert!(marginal.total_ns() < scan_cost(&m, rows, 4).total_ns());
        // Consistency: merged(k+1) - merged(k) == marginal.
        let k3 = merged_scan_cost(&m, rows, 4, 3).total_ns();
        let k4 = merged_scan_cost(&m, rows, 4, 4).total_ns();
        assert!((k4 - k3 - marginal.total_ns()).abs() < 1e-6);
    }

    #[test]
    fn attach_cost_interpolates_between_marginal_and_a_fresh_scan() {
        let m = origin();
        let (rows, stride) = (1_000_000, 4);
        // Board at pass start: pure marginal predicate.
        assert_eq!(
            attach_cost(&m, rows, stride, 0).total_ns(),
            marginal_pred_cost(&m, rows).total_ns()
        );
        // Board at the very end: a full scan equivalent.
        assert!(
            (attach_cost(&m, rows, stride, rows).total_ns()
                - scan_cost(&m, rows, stride).total_ns())
            .abs()
                < 1e-6
        );
        // Monotone in the wrap distance, and always at most a fresh scan.
        let mut prev = 0.0;
        for missed in [0usize, rows / 4, rows / 2, rows] {
            let c = attach_cost(&m, rows, stride, missed).total_ns();
            assert!(c >= prev, "missed={missed}");
            assert!(c <= scan_cost(&m, rows, stride).total_ns() + 1e-6);
            prev = c;
        }
        // Clamped: can't miss more than the column holds.
        assert_eq!(
            attach_cost(&m, rows, stride, rows * 2).total_ns(),
            attach_cost(&m, rows, stride, rows).total_ns()
        );
    }

    #[test]
    fn zero_way_merge_is_free() {
        let m = origin();
        assert_eq!(merged_scan_cost(&m, 1_000_000, 8, 0).total_ns(), 0.0);
    }
}
