//! Combined cluster+join costs, strategy evaluation, and model-driven plan
//! search — §3.4.4 and Figures 12–13.
//!
//! "Radix-cluster gets cheaper for less radix B bits, whereas both
//! radix-join and partitioned hash-join get more expensive. Putting together
//! the experimental data … we determine the optimum number of B for relation
//! cardinality and join-algorithm." [`best_plan`] performs exactly that
//! optimization over the *model* instead of experimental data, which is what
//! a query optimizer would ship.

use monet_core::strategy::{plan_passes, Algorithm, JoinPlan, Strategy};

use crate::cluster::cluster_cost;
use crate::machine::{ModelCost, ModelMachine};
use crate::phash::phash_cost;
use crate::rjoin::rjoin_cost;

/// Cost of radix-clustering **both** operands on `pass_bits`.
pub fn both_cluster_cost(m: &ModelMachine, pass_bits: &[u32], c: f64) -> ModelCost {
    cluster_cost(m, pass_bits, c) + cluster_cost(m, pass_bits, c)
}

/// Total cost (cluster both + join) of a partitioned hash-join at `bits`.
pub fn phash_total(m: &ModelMachine, bits: u32, pass_bits: &[u32], c: f64) -> ModelCost {
    both_cluster_cost(m, pass_bits, c) + phash_cost(m, bits, c)
}

/// Total cost (cluster both + join) of a radix-join at `bits`.
pub fn radix_total(m: &ModelMachine, bits: u32, pass_bits: &[u32], c: f64) -> ModelCost {
    both_cluster_cost(m, pass_bits, c) + rjoin_cost(m, bits, c)
}

/// Simple (non-partitioned) hash join: no clustering, one table over C.
pub fn simple_hash_total(m: &ModelMachine, c: f64) -> ModelCost {
    phash_cost(m, 0, c)
}

/// Sort-merge join model (our extension — the paper plots it but gives no
/// formula): LSB radix-sort is four 8-bit scatter passes per relation with
/// the same access pattern as a cluster pass, followed by a sequential
/// 3-stream merge.
pub fn sort_merge_total(m: &ModelMachine, c: f64) -> ModelCost {
    let sort_one = cluster_cost(m, &[8, 8, 8, 8], c);
    let merge_cpu = 2.0 * c * m.work.merge_tuple_ns;
    let merge = ModelCost::assemble(
        merge_cpu,
        m.params.join_seq_streams * m.rel_l1_lines(c),
        m.params.join_seq_streams * m.rel_l2_lines(c),
        m.params.join_seq_streams * m.rel_pages(c),
        &m.lat,
    );
    sort_one + sort_one + merge
}

/// Evaluate a resolved [`JoinPlan`]'s total model cost.
pub fn plan_cost(m: &ModelMachine, plan: &JoinPlan, c: f64) -> ModelCost {
    match plan.algorithm {
        Algorithm::PartitionedHash => phash_total(m, plan.bits, &plan.pass_bits, c),
        Algorithm::Radix => radix_total(m, plan.bits, &plan.pass_bits, c),
        Algorithm::SimpleHash => simple_hash_total(m, c),
        Algorithm::SortMerge => sort_merge_total(m, c),
    }
}

/// Evaluate one of the paper's named strategies at cardinality `c` on the
/// machine `cfg` (needed to resolve the strategy's bit formula).
pub fn strategy_cost(
    m: &ModelMachine,
    cfg: &memsim::MachineConfig,
    strategy: Strategy,
    c: usize,
) -> (JoinPlan, ModelCost) {
    let plan = strategy.plan(c, cfg);
    let cost = plan_cost(m, &plan, c as f64);
    (plan, cost)
}

/// The model-optimal plan: exhaustive search over algorithm and `B`
/// (with TLB-limited even pass splits), i.e. the "best" line of Figure 12.
pub fn best_plan(m: &ModelMachine, cfg: &memsim::MachineConfig, c: usize) -> (JoinPlan, ModelCost) {
    let cf = c as f64;
    let max_bits = (cf.log2().ceil() as u32).min(26);
    let mut best: Option<(JoinPlan, ModelCost)> = None;
    let mut consider = |plan: JoinPlan, cost: ModelCost| {
        if best.as_ref().is_none_or(|(_, b)| cost.total_ns() < b.total_ns()) {
            best = Some((plan, cost));
        }
    };

    consider(
        JoinPlan { algorithm: Algorithm::SimpleHash, bits: 0, pass_bits: vec![] },
        simple_hash_total(m, cf),
    );
    consider(
        JoinPlan { algorithm: Algorithm::SortMerge, bits: 0, pass_bits: vec![] },
        sort_merge_total(m, cf),
    );
    for bits in 1..=max_bits {
        let passes = plan_passes(bits, cfg.tlb.entries);
        consider(
            JoinPlan { algorithm: Algorithm::PartitionedHash, bits, pass_bits: passes.clone() },
            phash_total(m, bits, &passes, cf),
        );
        consider(
            JoinPlan { algorithm: Algorithm::Radix, bits, pass_bits: passes.clone() },
            radix_total(m, bits, &passes, cf),
        );
    }
    best.expect("at least the baselines were considered")
}

/// Executor-facing planner entry point: the model-optimal plan for joining
/// two relations of `cardinality` tuples each on machine `cfg`.
///
/// This is the seam `engine::exec` calls so that physical join choice lives
/// in the cost model rather than at call sites. It builds the
/// implementation-matched [`ModelMachine`] (our clustering re-reads its input
/// for the histogram pass) and runs the exhaustive [`best_plan`] search.
pub fn plan_join(cfg: &memsim::MachineConfig, cardinality: usize) -> (JoinPlan, ModelCost) {
    let m = ModelMachine::with_params(cfg, crate::machine::ModelParams::implementation_matched());
    best_plan(&m, cfg, cardinality.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::profiles;

    fn setup() -> (ModelMachine, memsim::MachineConfig) {
        let cfg = profiles::origin2000();
        (ModelMachine::new(&cfg), cfg)
    }

    #[test]
    fn cache_conscious_beats_random_access_at_scale() {
        // Figure 13's headline: for every large cardinality, the radix
        // strategies beat simple hash and sort-merge.
        let (m, cfg) = setup();
        for c in [250_000usize, 1_000_000, 8_000_000] {
            let simple = simple_hash_total(&m, c as f64).total_ms();
            let smerge = sort_merge_total(&m, c as f64).total_ms();
            let (_, pmin) = strategy_cost(&m, &cfg, Strategy::PhashMin, c);
            assert!(
                pmin.total_ms() < simple && pmin.total_ms() < smerge,
                "C={c}: phash min {} vs simple {simple} / sort-merge {smerge}",
                pmin.total_ms()
            );
        }
    }

    #[test]
    fn tiny_relations_need_no_partitioning() {
        // Left edge of Fig. 13: when everything fits in cache, simple hash
        // is at least as good as partitioning (clustering is pure overhead).
        let (m, cfg) = setup();
        let c = 2_000; // 24 KB inner + table: fits L1
        let simple = simple_hash_total(&m, c as f64).total_ms();
        let (_, pl1) = strategy_cost(&m, &cfg, Strategy::PhashL1, c);
        assert!(simple <= pl1.total_ms() * 1.05);
        let (best, _) = best_plan(&m, &cfg, c);
        assert_eq!(best.algorithm, Algorithm::SimpleHash);
    }

    #[test]
    fn strategy_ordering_matches_figure12() {
        // At 8M tuples: phash TLB < phash L2 (the paper stresses the TLB
        // improvement over [SKN94]); phash min is the per-algorithm best.
        let (m, cfg) = setup();
        let c = 8_000_000;
        let t = |s: Strategy| strategy_cost(&m, &cfg, s, c).1.total_ms();
        assert!(t(Strategy::PhashTlb) < t(Strategy::PhashL2));
        assert!(t(Strategy::PhashMin) <= t(Strategy::PhashTlb));
        // The paper's measured data puts phash min marginally below phash
        // L1; the model prices the extra clustering pass slightly higher.
        // Same ballpark is what we assert.
        assert!(t(Strategy::PhashMin) <= t(Strategy::PhashL1) * 1.6);
        assert!(t(Strategy::RadixMin) <= t(Strategy::Radix8) * 1.05);
    }

    #[test]
    fn best_plan_picks_partitioned_variants_at_scale() {
        let (m, cfg) = setup();
        for c in [1_000_000usize, 8_000_000] {
            let (plan, cost) = best_plan(&m, &cfg, c);
            assert!(
                matches!(plan.algorithm, Algorithm::PartitionedHash | Algorithm::Radix),
                "C={c} picked {:?}",
                plan.algorithm
            );
            assert!(plan.bits > 0);
            // The chosen plan can't be worse than any named strategy.
            for s in Strategy::ALL {
                let (_, sc) = strategy_cost(&m, &cfg, s, c);
                assert!(
                    cost.total_ns() <= sc.total_ns() * 1.0001,
                    "best worse than {} at C={c}",
                    s.name()
                );
            }
        }
    }

    #[test]
    fn best_plan_respects_tlb_pass_limit() {
        let (m, cfg) = setup();
        let (plan, _) = best_plan(&m, &cfg, 8_000_000);
        for &bp in &plan.pass_bits {
            assert!(bp <= 6, "pass of {bp} bits exceeds the 64-entry TLB limit");
        }
        assert_eq!(plan.pass_bits.iter().sum::<u32>(), plan.bits);
    }

    #[test]
    fn plan_join_matches_best_plan_and_tolerates_degenerate_input() {
        let (m, cfg) = setup();
        for c in [1usize, 1_000, 1_000_000] {
            let (plan, cost) = plan_join(&cfg, c);
            let model = ModelMachine::with_params(
                &cfg,
                crate::machine::ModelParams::implementation_matched(),
            );
            let (expect, expect_cost) = best_plan(&model, &cfg, c.max(1));
            assert_eq!(plan, expect, "C={c}");
            assert!((cost.total_ns() - expect_cost.total_ns()).abs() < 1e-9);
        }
        // plan_join uses implementation-matched params, so it may differ from
        // the default-params best_plan — but never from its own model.
        let (_, default_cost) = best_plan(&m, &cfg, 1_000_000);
        assert!(default_cost.total_ns() > 0.0);
    }

    #[test]
    fn totals_decompose() {
        let (m, _) = setup();
        let c = 1e6;
        let passes = [5u32, 5];
        let total = phash_total(&m, 10, &passes, c);
        let parts = both_cluster_cost(&m, &passes, c) + phash_cost(&m, 10, c);
        assert!((total.total_ns() - parts.total_ns()).abs() < 1e-6);
    }
}
