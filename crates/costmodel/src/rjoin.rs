//! The radix-join cost model `T_r(B, C)` — §3.4.3, Figure 10.
//!
//! ```text
//! T_r(B,C) = C·(C/H)·w_r + C·w'_r
//!          + M_L1,r·l_L2 + M_L2,r·l_Mem + M_TLB,r·l_TLB      (H = 2^B)
//!
//! M_Li,r(B,C)  = 3·|Re|_Li + C · / |Cl|_Li / |Li|   if |Cl|_Li ≤ |Li|
//!                                \ |Cl|_Li          if |Cl|_Li > |Li|
//! M_TLB,r(B,C) = 3·|Re|_Pg + C · ‖Cl‖/‖TLB‖
//! ```
//!
//! The first term is the nested-loop predicate evaluation: every outer tuple
//! scans its whole (mean `C/H`-tuple) inner cluster. The `C·|Cl|_Li` branch
//! is cache trashing — clusters larger than the cache make every inner line
//! a miss for every outer tuple, which is Fig. 10's "clustersize < L1size"
//! diagonal. For simplicity (following the paper) both operands and the
//! result are assumed to have cardinality `C`.

use crate::machine::{ModelCost, ModelMachine, BUN_BYTES};

/// Mean tuples per cluster at `B` bits.
#[inline]
pub fn cluster_tuples(bits: u32, c: f64) -> f64 {
    c / (1u64 << bits) as f64
}

fn cache_misses(join_streams: f64, rel_lines: f64, c: f64, cl_lines: f64, lines: f64) -> f64 {
    let base = join_streams * rel_lines;
    let extra = if cl_lines <= lines { c * cl_lines / lines } else { c * cl_lines };
    base + extra
}

/// Predicted cost of the radix-join *join phase* (clustering not included —
/// exactly what Figure 10 plots).
pub fn rjoin_cost(m: &ModelMachine, bits: u32, c: f64) -> ModelCost {
    let k = m.params.join_seq_streams;
    let cl_tuples = cluster_tuples(bits, c);
    let cl_bytes = cl_tuples * BUN_BYTES;

    let cpu = c * cl_tuples * m.work.radix_compare_ns + c * m.work.radix_result_ns;

    let l1 = cache_misses(k, m.rel_l1_lines(c), c, cl_bytes / m.l1_line, m.l1_lines);
    let l2 = cache_misses(k, m.rel_l2_lines(c), c, cl_bytes / m.l2_line, m.l2_lines);
    let tlb = k * m.rel_pages(c) + c * (cl_bytes / m.tlb_span);
    ModelCost::assemble(cpu, l1, l2, tlb, &m.lat)
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::profiles;

    fn origin() -> ModelMachine {
        ModelMachine::new(&profiles::origin2000())
    }

    #[test]
    fn more_bits_always_cheaper_join_phase() {
        // Fig. 10: "the performance of radix-join improves with increasing
        // number of radix-bits" all the way to 1-tuple clusters.
        let m = origin();
        let c = 1e6;
        let mut prev = f64::MAX;
        for bits in 4..=20 {
            let t = rjoin_cost(&m, bits, c).total_ms();
            assert!(t < prev, "bits {bits}: {t} !< {prev}");
            prev = t;
        }
    }

    #[test]
    fn nested_loop_work_dominates_at_low_bits() {
        // At B with C/H = 1000 tuples/cluster, predicate work is ~1000·w_r
        // per tuple — quadratic blowup the model must show.
        let m = origin();
        let c = 1e6;
        let coarse = rjoin_cost(&m, 10, c); // 1024 clusters of ~977 tuples
        let fine = rjoin_cost(&m, 17, c); // ~8 tuples
        assert!(coarse.cpu_ns > 50.0 * fine.cpu_ns);
    }

    #[test]
    fn l1_misses_explode_when_clusters_exceed_l1() {
        // Fig. 10 top panel: the miss count has a knee at
        // clustersize = L1 size (32 KB = 4096 tuples ⇒ B = log2(C) - 12).
        let m = origin();
        let c = 8e6;
        let small = rjoin_cost(&m, 13, c).l1_misses; // ~977-tuple clusters (fit)
        let large = rjoin_cost(&m, 9, c).l1_misses; // ~15625-tuple clusters (trash)
        assert!(large > 100.0 * small, "large {large} vs small {small}");
    }

    #[test]
    fn result_creation_term_is_linear_in_c() {
        let m = origin();
        let at_8 = |c: f64| {
            // 8-tuple clusters at any C: B = log2(C/8).
            let bits = (c / 8.0).log2().round() as u32;
            rjoin_cost(&m, bits, c)
        };
        let a = at_8((1 << 17) as f64).cpu_ns;
        let b = at_8((1 << 20) as f64).cpu_ns;
        let ratio = b / a;
        assert!((7.5..=8.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn paper_scale_sanity_radix8_at_8m() {
        // radix 8 at C = 8M (B = 20): the join phase alone should land in
        // the single-digit-seconds regime the bottom of Fig. 10 shows
        // (≈ 2-6 × 10^3 ms for 8M).
        let m = origin();
        let t = rjoin_cost(&m, 20, 8e6).total_ms();
        assert!((500.0..20_000.0).contains(&t), "radix8@8M = {t} ms");
    }
}
