#![warn(missing_docs)]

//! # costmodel — the paper's analytical main-memory cost model (§3.4)
//!
//! Boncz, Manegold & Kersten's methodological contribution (over \[LN96\],
//! \[WK90\]) is to model query cost not with per-procedure "magical" factors
//! but by *mimicking the memory access pattern of the algorithm* and counting
//! cache-miss events and CPU cycles:
//!
//! ```text
//! T = T_cpu + M_L1·l_L2 + M_L2·l_Mem + M_TLB·l_TLB
//! ```
//!
//! This crate implements those models:
//!
//! * [`scan`]   — the §2 stride-scan model `T(s)` behind Figure 3;
//! * [`cluster`] — `T_c(P, B, C)` for the multi-pass radix-cluster (Fig. 9);
//! * [`rjoin`]  — `T_r(B, C)` for the radix-join phase (Fig. 10);
//! * [`phash`]  — `T_h(B, C)` for the partitioned hash-join phase (Fig. 11);
//! * [`plan`]   — combined cluster+join costs, the §3.4.4 strategy
//!   diagonals, and exhaustive `(algorithm, B, P)` optimization (the "best"
//!   line of Figure 12);
//! * [`parallel`] — the multi-core extension: a fork-overhead-aware speedup
//!   model that picks per-operator thread counts, and
//!   [`parallel::plan_join_parallel`], the `(JoinPlan, threads)` planner
//!   entry point the executor uses;
//! * [`access`] — the §3.2 selection access paths priced against each
//!   other: scan-select vs. CsBTree eq/range vs. hash probe vs. T-tree
//!   probe, so index use becomes a per-predicate cost-model decision;
//! * [`quote`] — whole-query quotes composing the per-operator models, the
//!   currency of the multi-query scheduler (admission order and per-query
//!   thread budgets in `crates/service`);
//! * [`shared`] — cooperative-scan pricing: a K-way merged scan pass pays
//!   the memory terms once and the CPU term K times, so its cost grows far
//!   slower than K solo scans — the model behind the service's shared-scan
//!   batching, including the CPU-only *marginal* price of a query whose
//!   scan is already covered by a pass in flight.
//!
//! The inequality directions in the published formulas are garbled by PDF
//! extraction; the reconstruction used here (documented per function and in
//! DESIGN.md §4) makes every miss model continuous at its boundary and
//! monotone, and is validated against the trace-driven simulator by the
//! `repro -- validate` harness.
//!
//! Everything is pure `f64` math over a [`ModelMachine`] — no simulation, no
//! data. Costs come back as [`ModelCost`] so CPU and stall components stay
//! inspectable, exactly like the paper's stacked figures.

pub mod access;
pub mod cluster;
pub mod machine;
pub mod parallel;
pub mod phash;
pub mod plan;
pub mod quote;
pub mod rjoin;
pub mod scan;
pub mod shared;

pub use access::{AccessPath, IndexShape, SelectQuery};
pub use machine::{ModelCost, ModelMachine, ModelParams};
pub use parallel::{ParPlan, ParallelModel};
pub use quote::{quote_ops, OpShape, QueryQuote};
