//! The admission queue and thread-budget scheduler — a pure state machine.
//!
//! All policy lives here, lock-free and thread-free, so it can be unit
//! tested deterministically; [`crate::QueryService`] wraps one `Scheduler`
//! in a mutex and parks waiting sessions on a condvar.
//!
//! ## Policy
//!
//! * **Budget.** Every running query holds a *lease* of `1..=budget`
//!   worker threads; the sum of outstanding leases never exceeds the
//!   budget. A query is admitted to run as soon as at least one thread is
//!   free — its lease is the model's optimal thread count clamped to what
//!   remains. The high-water mark of leased threads is recorded pool-side
//!   so tests can assert the budget held.
//! * **Order.** Under load, waiting queries start
//!   shortest-expected-cost-first (the classic mean-latency-optimal rule),
//!   using the whole-query quote from [`costmodel::quote`]. Each time a
//!   cheaper, younger query starts ahead of a waiting one, the bypassed
//!   query's counter grows; at the starvation bound it becomes *urgent*
//!   and is scheduled FIFO ahead of any cost consideration.
//! * **Admission.** A submission that cannot start immediately queues; a
//!   submission arriving at a full queue is rejected outright — shedding
//!   load at admission time instead of letting latency grow without bound.
//! * **Gating.** [`Scheduler::pause`] holds every new submission in the
//!   queue even while threads are free, and [`Scheduler::resume`]
//!   dispatches the accumulated wave. Used to drain the pool (maintenance)
//!   and to form deterministic admission waves — e.g. so a shared-scan
//!   experiment can guarantee every member of a wave is queued before the
//!   first one claims the cooperative pass.

/// One waiting query.
#[derive(Debug, Clone)]
struct Ticket {
    /// Ticket id (also the submission sequence number: ids are issued in
    /// arrival order).
    id: u64,
    /// Whole-query sequential cost quote in nanoseconds.
    cost_ns: f64,
    /// Model-optimal thread count for this query.
    desired: usize,
    /// How many times a younger query started ahead of this one.
    bypassed: usize,
}

/// A thread lease granted to one query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// The ticket the lease belongs to.
    pub ticket: u64,
    /// Leased worker threads (`1..=budget`).
    pub threads: usize,
}

/// What happened to a submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Admission {
    /// Capacity was free: the query starts immediately with this lease.
    Run(Grant),
    /// The budget is fully leased: the query waits in the admission queue
    /// under this ticket until [`Scheduler::release`] grants it.
    Queued(u64),
    /// The queue is full: the query is shed at admission time.
    Rejected,
}

/// The pure scheduling state machine. See the [module docs](self).
#[derive(Debug)]
pub struct Scheduler {
    budget: usize,
    queue_limit: usize,
    starvation_bound: usize,
    in_use: usize,
    high_water: usize,
    paused: bool,
    waiting: Vec<Ticket>,
    next_id: u64,
}

impl Scheduler {
    /// A scheduler over `budget` worker threads (clamped to >= 1).
    pub fn new(budget: usize, queue_limit: usize, starvation_bound: usize) -> Self {
        Self {
            budget: budget.max(1),
            queue_limit,
            starvation_bound,
            in_use: 0,
            high_water: 0,
            paused: false,
            waiting: Vec::new(),
            next_id: 0,
        }
    }

    /// Submit a query with its whole-query cost quote and model-desired
    /// thread count.
    pub fn submit(&mut self, cost_ns: f64, desired_threads: usize) -> Admission {
        let id = self.next_id;
        self.next_id += 1;
        // Invariant (while unpaused): the queue is non-empty only while the
        // budget is fully leased (dispatch drains it whenever a thread
        // frees), so a free thread means nobody is waiting and the
        // newcomer may start. A paused scheduler queues everyone.
        if !self.paused && self.in_use < self.budget && self.waiting.is_empty() {
            let threads = self.lease(desired_threads);
            return Admission::Run(Grant { ticket: id, threads });
        }
        if self.waiting.len() >= self.queue_limit {
            return Admission::Rejected;
        }
        self.waiting.push(Ticket { id, cost_ns, desired: desired_threads, bypassed: 0 });
        Admission::Queued(id)
    }

    /// Return a finished query's thread lease and dispatch as many waiting
    /// queries as now fit (none while paused). The caller delivers the
    /// returned grants to the corresponding waiters.
    pub fn release(&mut self, threads: usize) -> Vec<Grant> {
        self.in_use = self.in_use.saturating_sub(threads);
        self.dispatch()
    }

    /// Re-queue a query that already held a lease and gave it back — a
    /// preempted elevator runner yielding between chunks, or a query that
    /// released its lease while waiting on an in-flight pass. Unlike
    /// [`Scheduler::submit`] this never rejects (the query is already
    /// admitted — shedding it now would lose work) and ignores the pause
    /// gate's queue-limit bookkeeping. The caller should follow up with
    /// `release(0)` to dispatch if threads are free.
    pub fn requeue(&mut self, cost_ns: f64, desired_threads: usize) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.waiting.push(Ticket { id, cost_ns, desired: desired_threads, bypassed: 0 });
        id
    }

    /// The cheapest cost quote among waiting queries (`None` when nobody
    /// waits) — the elevator runner's preemption test between chunks.
    pub fn cheapest_waiting_cost(&self) -> Option<f64> {
        self.waiting.iter().map(|t| t.cost_ns).min_by(f64::total_cmp)
    }

    /// Hold all future submissions in the queue, even while threads are
    /// free. Running queries are unaffected.
    pub fn pause(&mut self) {
        self.paused = true;
    }

    /// Reopen admission and dispatch the accumulated wave as far as the
    /// budget allows. The caller delivers the grants.
    pub fn resume(&mut self) -> Vec<Grant> {
        self.paused = false;
        self.dispatch()
    }

    /// Whether admission is currently gated.
    pub fn paused(&self) -> bool {
        self.paused
    }

    fn dispatch(&mut self) -> Vec<Grant> {
        let mut grants = Vec::new();
        if self.paused {
            return grants;
        }
        while self.in_use < self.budget && !self.waiting.is_empty() {
            let pos = self.pick();
            let ticket = self.waiting.remove(pos);
            for w in &mut self.waiting {
                if w.id < ticket.id {
                    w.bypassed += 1;
                }
            }
            let threads = self.lease(ticket.desired);
            grants.push(Grant { ticket: ticket.id, threads });
        }
        grants
    }

    /// Lease `desired` threads, clamped to `1..=` the remaining budget.
    /// Callers guarantee `in_use < budget`.
    fn lease(&mut self, desired: usize) -> usize {
        let threads = desired.clamp(1, self.budget - self.in_use);
        self.in_use += threads;
        self.high_water = self.high_water.max(self.in_use);
        threads
    }

    /// The index of the next ticket to start: the oldest urgent ticket
    /// (bypassed >= starvation bound) if any, else the cheapest (ties to
    /// the older submission).
    fn pick(&self) -> usize {
        let urgent = self
            .waiting
            .iter()
            .enumerate()
            .filter(|(_, t)| t.bypassed >= self.starvation_bound)
            .min_by_key(|(_, t)| t.id);
        if let Some((pos, _)) = urgent {
            return pos;
        }
        self.waiting
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.cost_ns.total_cmp(&b.cost_ns).then(a.id.cmp(&b.id)))
            .map(|(pos, _)| pos)
            .expect("pick() is only called on a non-empty queue")
    }

    /// Threads currently leased.
    pub fn in_use(&self) -> usize {
        self.in_use
    }

    /// The most threads ever leased at once — the pool-side witness that
    /// the budget held.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Queries currently waiting.
    pub fn waiting(&self) -> usize {
        self.waiting.len()
    }

    /// The configured budget.
    pub fn budget(&self) -> usize {
        self.budget
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_threads(a: &Admission) -> usize {
        match a {
            Admission::Run(g) => g.threads,
            other => panic!("expected immediate run, got {other:?}"),
        }
    }

    fn queued_id(a: &Admission) -> u64 {
        match a {
            Admission::Queued(id) => *id,
            other => panic!("expected queued, got {other:?}"),
        }
    }

    #[test]
    fn immediate_admission_clamps_leases_to_the_remaining_budget() {
        let mut s = Scheduler::new(4, 8, 4);
        // First query wants 8 threads: gets the whole budget of 4.
        assert_eq!(run_threads(&s.submit(1e9, 8)), 4);
        assert_eq!(s.in_use(), 4);
        assert_eq!(s.high_water(), 4);
        // Budget full: next submission queues.
        let q = s.submit(1e3, 2);
        assert!(matches!(q, Admission::Queued(_)), "{q:?}");
        // Release 4, the waiter gets its 2.
        let grants = s.release(4);
        assert_eq!(grants, vec![Grant { ticket: queued_id(&q), threads: 2 }]);
        assert_eq!(s.in_use(), 2);
        // A newcomer can only lease the 2 remaining threads.
        assert_eq!(run_threads(&s.submit(1e9, 8)), 2);
        assert_eq!(s.high_water(), 4, "never above budget");
    }

    #[test]
    fn shortest_cost_first_under_load() {
        let mut s = Scheduler::new(1, 8, 100);
        let _running = s.submit(1.0, 1);
        let slow = queued_id(&s.submit(9e9, 1));
        let fast = queued_id(&s.submit(1e3, 1));
        let medium = queued_id(&s.submit(1e6, 1));
        // Each release admits exactly one (budget 1): cheapest first.
        assert_eq!(s.release(1)[0].ticket, fast);
        assert_eq!(s.release(1)[0].ticket, medium);
        assert_eq!(s.release(1)[0].ticket, slow);
    }

    #[test]
    fn starvation_bound_turns_sjf_into_fifo() {
        let mut s = Scheduler::new(1, 100, 2);
        let _running = s.submit(1.0, 1);
        let expensive = queued_id(&s.submit(9e9, 1));
        // A stream of cheap queries keeps arriving; without the bound the
        // expensive one would wait forever.
        let c1 = queued_id(&s.submit(1e3, 1));
        assert_eq!(s.release(1)[0].ticket, c1, "bypass 1");
        let c2 = queued_id(&s.submit(1e3, 1));
        assert_eq!(s.release(1)[0].ticket, c2, "bypass 2 - at the bound now");
        let c3 = queued_id(&s.submit(1e3, 1));
        let got = s.release(1)[0].ticket;
        assert_eq!(got, expensive, "urgent ticket must beat cheaper newcomer {c3}");
        assert_eq!(s.release(1)[0].ticket, c3);
    }

    #[test]
    fn pause_gates_admission_and_resume_dispatches_the_wave() {
        let mut s = Scheduler::new(2, 8, 4);
        s.pause();
        assert!(s.paused());
        let a = queued_id(&s.submit(1e3, 1));
        let b = queued_id(&s.submit(2e3, 1));
        assert_eq!(s.in_use(), 0, "free threads stay free while paused");
        assert!(s.release(0).is_empty(), "releases dispatch nothing while paused");
        let grants = s.resume();
        assert_eq!(grants.len(), 2, "resume dispatches the whole wave");
        assert_eq!(grants[0].ticket, a, "cheapest first");
        assert_eq!(grants[1].ticket, b);
        assert!(!s.paused());
        s.release(1);
        s.release(1);
        assert!(matches!(s.submit(1.0, 1), Admission::Run(_)), "unpaused admission is immediate");
    }

    #[test]
    fn full_queue_rejects() {
        let mut s = Scheduler::new(1, 2, 4);
        let _running = s.submit(1.0, 1);
        assert!(matches!(s.submit(1.0, 1), Admission::Queued(_)));
        assert!(matches!(s.submit(1.0, 1), Admission::Queued(_)));
        assert_eq!(s.submit(1.0, 1), Admission::Rejected);
        assert_eq!(s.waiting(), 2, "rejected submissions leave no ticket behind");
        // Draining the queue reopens admission.
        s.release(1);
        assert!(matches!(s.submit(1.0, 1), Admission::Queued(_)));
    }

    #[test]
    fn one_release_dispatches_several_small_leases() {
        let mut s = Scheduler::new(4, 8, 4);
        let _big = s.submit(1e9, 4);
        let a = queued_id(&s.submit(1e3, 1));
        let b = queued_id(&s.submit(2e3, 1));
        let c = queued_id(&s.submit(3e3, 4));
        // The big query finishes: all three waiters fit (1 + 1 + 2-clamped).
        let grants = s.release(4);
        assert_eq!(grants.len(), 3);
        assert_eq!(grants[0], Grant { ticket: a, threads: 1 });
        assert_eq!(grants[1], Grant { ticket: b, threads: 1 });
        assert_eq!(grants[2], Grant { ticket: c, threads: 2 }, "last lease clamps to remainder");
        assert_eq!(s.in_use(), 4);
        assert_eq!(s.high_water(), 4);
    }

    #[test]
    fn requeue_never_rejects_and_dispatches_when_threads_free() {
        let mut s = Scheduler::new(1, 1, 4);
        let _running = s.submit(1.0, 1);
        assert!(matches!(s.submit(1.0, 1), Admission::Queued(_)));
        assert_eq!(s.submit(1.0, 1), Admission::Rejected, "queue full for newcomers");
        // A preempted runner must always get back in line, full queue or not.
        let back = s.requeue(0.0, 1);
        assert_eq!(s.waiting(), 2);
        // With cost 0 it wins the next dispatch.
        assert_eq!(s.release(1)[0].ticket, back);
        // A requeue into a free budget is granted by the follow-up dispatch.
        let mut s = Scheduler::new(1, 8, 4);
        let id = s.requeue(5.0, 1);
        assert_eq!(s.release(0), vec![Grant { ticket: id, threads: 1 }]);
    }

    #[test]
    fn cheapest_waiting_cost_tracks_the_queue() {
        let mut s = Scheduler::new(1, 8, 4);
        assert_eq!(s.cheapest_waiting_cost(), None);
        let _running = s.submit(1.0, 1);
        s.submit(9e9, 1);
        s.submit(1e3, 1);
        assert_eq!(s.cheapest_waiting_cost(), Some(1e3));
        s.release(1); // dispatches the cheap one
        assert_eq!(s.cheapest_waiting_cost(), Some(9e9));
    }

    #[test]
    fn high_water_never_exceeds_budget_under_churn() {
        let mut s = Scheduler::new(3, 1000, 2);
        let mut live: Vec<usize> = Vec::new();
        let mut pending = 0usize;
        for i in 0..200u64 {
            match s.submit((i % 17) as f64 * 1e6, (i % 5) as usize + 1) {
                Admission::Run(g) => live.push(g.threads),
                Admission::Queued(_) => pending += 1,
                Admission::Rejected => unreachable!("queue limit is large"),
            }
            if i % 3 == 0 {
                if let Some(t) = live.pop() {
                    for g in s.release(t) {
                        live.push(g.threads);
                        pending -= 1;
                    }
                }
            }
            assert!(s.in_use() <= 3, "i={i}");
        }
        while let Some(t) = live.pop() {
            for g in s.release(t) {
                live.push(g.threads);
                pending -= 1;
            }
        }
        assert_eq!(pending, 0, "every queued query eventually ran");
        assert_eq!(s.in_use(), 0);
        assert!(s.high_water() <= 3);
        assert!(s.high_water() >= 1);
    }
}
