#![warn(missing_docs)]

//! # service — the multi-session concurrent query layer
//!
//! The paper optimizes one operator pipeline at a time; its thesis — model
//! the memory bottleneck, then make every physical decision against the
//! model — extends naturally to *many queries contending for the same
//! cores and caches*. Left alone, each [`engine::exec::Threads::Auto`]
//! query sizes itself as if it owned the machine, so two concurrent
//! queries oversubscribe every core. This crate closes that gap: the same
//! cost model that picks join algorithms and radix bits now also decides
//! **admission order** and **per-query thread leases** against a global
//! budget.
//!
//! ```text
//! clients ──► Session::run(plan)
//!                 │  result cache? (fingerprint hit → answer, no lease)
//!                 │  identical plan in flight? → collapse: wait for the
//!                 │    leader's Arc'd result (single-flight, no lease)
//!                 │  quote = costmodel::quote (covered scans at marginal,
//!                 │    mid-pass elevator attaches at marginal + wrap)
//!                 ▼
//!          ┌─ admission ─────────────────────────────┐
//!          │ queue full?          → rejected         │
//!          │ thread free?         → lease now        │
//!          │ else queue: shortest-cost-first,        │
//!          │   starvation-bounded; scan leaves       │
//!          │   posted to the shared-scan board       │
//!          └────────────────┬────────────────────────┘
//!                           ▼
//!          claim cooperative passes (own leaves + every queued
//!          same-column request); short columns stream one-shot, long
//!          ones run as chunked *elevators* — absorbing late arrivals at
//!          chunk boundaries (riders wrap around for the prefix they
//!          missed) and yielding the lease between chunks to cheaper
//!          waiting queries; candidate lists publish to their tickets
//!                           ▼
//!          execute_with_scans(plan, ticket, thread_cap = lease)
//!                           ▼
//!          QueryHandle { output, ExecReport, SchedInfo }   (+ cache insert)
//! ```
//!
//! * [`config`] — [`ServiceConfig`] and the `MONET_SERVICE_*` env knobs
//!   (including `MONET_SERVICE_CHUNK`, the elevator chunk size);
//! * [`sched`] — the pure admission/budget state machine (deterministic
//!   unit tests live there);
//! * [`service`] — [`QueryService`], [`Session`], [`QueryHandle`], the
//!   single-flight table, the elevator runner, and the plan-to-quote walk;
//! * `shared` (internal) — the cooperative-scan board (pending wants →
//!   claimed passes → published lists, plus per-column elevator cursors)
//!   and the bounded LRU result cache keyed by normalized plan
//!   fingerprint;
//! * [`metrics`] — global and per-session counters (admission, collapse,
//!   shared-scan batches, delivery-time saved scans, elevator attaches and
//!   preemptions, cache hits/misses/evictions) with latency percentiles
//!   from mergeable per-session [`obs::LogHistogram`]s.
//!
//! **Observability** ([`obs`]): with [`ServiceConfig::trace`] on
//! (`MONET_TRACE=on|stderr|<path>`), every submitted query records a
//! [`obs::QueryTrace`] — logically-timestamped lifecycle events (admitted,
//! queued, lease granted, chunk done, elevator attach, preempted,
//! collapsed, cache hit, shed, per-operator completion, delivered) —
//! retrievable via [`QueryService::traces`] and exportable as JSONL.
//! Tracing runs kernels under the [`memsim`] simulator (sequentially;
//! results stay bit-identical), and the simulated counters feed the
//! cost-model drift observatory ([`QueryService::drift`]): per-shape EWMA
//! ratios of simulated-actual vs model-quoted time, flagged when they
//! leave [`ServiceConfig::drift_band`]. With tracing off (the default) the
//! submit path carries no observability state at all.
//!
//! **Determinism:** scheduling changes *when* and *how wide* a query runs,
//! never *what* it computes — the executor is bit-identical at every
//! thread count, a cooperative pass produces exactly the candidate lists
//! solo scans would at every chunk size (an elevator rider's per-chunk
//! partials concatenate, in row order, to the one-shot kernel's output),
//! and cached or collapsed results share deterministic executions — so any
//! mix of concurrent queries returns exactly the rows a sequential
//! one-thread run would (asserted by `tests/service_stress.rs` at the
//! workspace root).
//!
//! **Accounting invariant:** the global `scans_saved` counter equals the
//! sum over sessions of `scans_saved + runner_covered` — every saved scan
//! is attributed either to the beneficiary that picked the list up or to
//! the runner that covered it, exactly once, on success and error paths
//! alike.

pub mod config;
pub mod dist;
pub mod metrics;
pub mod sched;
pub mod service;
mod shared;

pub use config::ServiceConfig;
pub use dist::{CopyId, CopyStats, PlacePolicy, PlacedRun, ShardCluster};
pub use metrics::{LatencySummary, SampleWindow, ServiceMetrics, SessionMetrics};
pub use obs::TraceMode;
pub use sched::{Admission, Grant, Scheduler};
pub use service::{quote_plan, quote_plan_covered, QueryHandle, QueryService, SchedInfo, Session};

use std::fmt;

/// Errors surfaced to a submitting session.
#[derive(Debug)]
pub enum ServiceError {
    /// The admission queue was full; the query was shed without running.
    Overloaded {
        /// The queue limit in force when the query was shed.
        queue_limit: usize,
    },
    /// The plan failed inside the executor.
    Engine(engine::EngineError),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Overloaded { queue_limit } => {
                write!(f, "service overloaded: admission queue full ({queue_limit} waiting)")
            }
            ServiceError::Engine(e) => write!(f, "execution failed: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<engine::EngineError> for ServiceError {
    fn from(e: engine::EngineError) -> Self {
        ServiceError::Engine(e)
    }
}
