//! The cooperative-scan board and the hot-result cache — the service-side
//! state behind shared scans.
//!
//! ## Scan board
//!
//! Every submission describes its scan leaves as
//! [`engine::shared::ScanRequest`]s. Queued queries *post* their requests;
//! when a query becomes runnable it *claims* a batch: its own scan leaves
//! plus every pending same-column request, merged into one cooperative
//! pass ([`monet_core::scan::multi_select`]) that streams the column once.
//! The runner executes the pass with **its own** column reference (equal
//! [`engine::shared::ColumnId`]s mean equal bytes — tables are immutable
//! and every requesting query is still blocked inside `run`, so the data
//! outlives the pass), publishes each predicate's candidate list to the
//! tickets that wanted it, and only then runs its own plan. Claimed keys
//! are marked *in flight* so a concurrently granted query waits for the
//! publication instead of re-streaming the column; if a pass aborts, its
//! claims return to pending and waiters fall back to scanning themselves —
//! sharing changes *who* streams a column, never *what* a query computes.
//!
//! ## Result cache
//!
//! A bounded LRU over completed [`Executed`]s keyed by a canonical plan
//! fingerprint (table buffer identities + every operator's constants, so
//! equal keys mean the same computation over the same bytes). Tables are
//! immutable, so entries never need invalidation; the budget is
//! `ServiceConfig::cache_bytes` (`MONET_SERVICE_CACHE`), and `0` disables
//! caching entirely. Execution is deterministic, so serving a cached
//! result is bit-identical to re-running the plan.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::Arc;

use engine::exec::{Executed, QueryOutput};
use engine::plan::{LogicalPlan, PlanNode};
use engine::shared::{column_id, ScanRequest, ShareKey};
use monet_core::storage::{DecomposedTable, Oid};

/// A shared candidate list (one predicate's matches, ascending OIDs).
pub(crate) type Cands = Arc<Vec<Oid>>;

/// One query's interest in a [`ShareKey`]: deliver the list to this ticket
/// at this global leaf index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Want {
    ticket: u64,
    leaf: usize,
}

/// One distinct predicate of a claimed pass, and everyone it serves.
#[derive(Debug)]
pub(crate) struct BatchPred {
    /// The merge key (column identity + canonical predicate).
    pub key: ShareKey,
    /// The runner's own leaf indices wanting this list.
    pub own_leaves: Vec<usize>,
    /// Other tickets' wants, delivered at publish time.
    others: Vec<Want>,
}

/// One cooperative pass a runnable query claimed: a single column stream
/// evaluating every distinct predicate below.
#[derive(Debug)]
pub(crate) struct Batch {
    /// Index into the runner's request slice whose `bat` the pass streams.
    pub anchor: usize,
    /// Distinct predicates of the pass.
    pub preds: Vec<BatchPred>,
    /// Tuples the pass streams.
    pub rows: usize,
}

impl Batch {
    /// Leaves this pass covers across all queries (own + delivered).
    pub fn covered_leaves(&self) -> usize {
        self.preds.iter().map(|p| p.own_leaves.len() + p.others.len()).sum()
    }
}

/// What a runnable query must do about shared scans.
#[derive(Debug, Default)]
pub(crate) struct Runnable {
    /// Lists already published for this ticket: `(leaf, cands)`.
    pub ready: Vec<(usize, Cands)>,
    /// Passes this query must execute (and publish) before running.
    pub batches: Vec<Batch>,
    /// Keys claimed by another runner that cover this query's leaves:
    /// wait for their publication (delivery lands in `ready` under this
    /// ticket), falling back to self-evaluation if the pass aborts.
    pub waits: Vec<ShareKey>,
}

/// The board: pending wants, in-flight claims, published deliveries.
#[derive(Debug, Default)]
pub(crate) struct ScanBoard {
    pending: HashMap<ShareKey, Vec<Want>>,
    in_flight: HashMap<ShareKey, Vec<Want>>,
    ready: HashMap<u64, Vec<(usize, Cands)>>,
}

impl ScanBoard {
    /// Post a queued query's scan leaves as pending wants.
    pub fn post(&mut self, ticket: u64, requests: &[ScanRequest<'_>]) {
        for r in requests {
            self.pending.entry(r.key()).or_default().push(Want { ticket, leaf: r.leaf });
        }
    }

    /// True when a pass covering `key` is pending or in flight — the
    /// admission quote charges such leaves their CPU-side marginal cost
    /// only.
    pub fn covers(&self, key: &ShareKey) -> bool {
        self.pending.contains_key(key) || self.in_flight.contains_key(key)
    }

    /// True while a claimed pass owes `key` a publication.
    pub fn in_flight(&self, key: &ShareKey) -> bool {
        self.in_flight.contains_key(key)
    }

    /// Transition a query to runnable: withdraw its pending wants, collect
    /// lists already published for it, claim cooperative passes over its
    /// scan columns (absorbing every pending same-column want), and note
    /// the keys it must wait on because another runner claimed them first.
    ///
    /// A claim nobody else wants is *not* batched — the executor's access
    /// planner keeps choosing scan vs. index freely for uncontended
    /// leaves; passes exist to share streams between queries, not to
    /// force one query's leaves through a full column scan.
    pub fn runnable(&mut self, ticket: u64, requests: &[ScanRequest<'_>]) -> Runnable {
        let mut out = Runnable::default();
        // Withdraw this query's own pending wants (it is about to either
        // receive, claim, or self-evaluate every leaf).
        self.pending.retain(|_, wants| {
            wants.retain(|w| w.ticket != ticket);
            !wants.is_empty()
        });
        out.ready = self.ready.remove(&ticket).unwrap_or_default();
        let have: Vec<usize> = out.ready.iter().map(|(leaf, _)| *leaf).collect();

        // Group this query's unserved leaves by column.
        let mut by_col: HashMap<_, Vec<usize>> = HashMap::new();
        for (i, r) in requests.iter().enumerate() {
            if have.contains(&r.leaf) {
                continue;
            }
            let key = r.key();
            if let Some(wants) = self.in_flight.get_mut(&key) {
                // Someone is streaming this list right now: register for
                // delivery and wait. The claim may already carry this
                // query's want (absorbed from pending) — don't register it
                // twice, or the publish would double-deliver and inflate
                // the saved-scan accounting.
                let want = Want { ticket, leaf: r.leaf };
                if !wants.contains(&want) {
                    wants.push(want);
                }
                out.waits.push(key);
                continue;
            }
            by_col.entry(r.col).or_default().push(i);
        }

        for (col, req_idxs) in by_col {
            // Distinct predicates: the runner's own leaves first (stable
            // order), then every pending same-column want.
            let mut preds: Vec<BatchPred> = Vec::new();
            for &i in &req_idxs {
                let key = requests[i].key();
                match preds.iter_mut().find(|p| p.key == key) {
                    Some(p) => p.own_leaves.push(requests[i].leaf),
                    None => preds.push(BatchPred {
                        key,
                        own_leaves: vec![requests[i].leaf],
                        others: Vec::new(),
                    }),
                }
            }
            let same_col: Vec<ShareKey> =
                self.pending.keys().filter(|k| k.col == col).copied().collect();
            for key in same_col {
                let wants = self.pending.remove(&key).expect("key just listed");
                match preds.iter_mut().find(|p| p.key == key) {
                    Some(p) => p.others.extend(wants),
                    None => preds.push(BatchPred { key, own_leaves: Vec::new(), others: wants }),
                }
            }
            if preds.iter().all(|p| p.others.is_empty()) {
                // Nobody else wants these lists, so a pass would share
                // nothing — leave the leaves to the access planner (a
                // point predicate may be index territory; forcing a full
                // column stream here would undo the access-path win).
                continue;
            }
            // Claim: every key of the pass goes in flight so later runners
            // wait for the publication instead of re-streaming.
            for p in &preds {
                self.in_flight.insert(p.key, p.others.clone());
            }
            out.batches.push(Batch {
                anchor: req_idxs[0],
                preds,
                rows: requests[req_idxs[0]].rows,
            });
        }
        out
    }

    /// Publish a pass's lists: deliver to every registered want (including
    /// waiters that joined after the claim) and clear the in-flight marks.
    /// Returns the number of deliveries to *other* tickets.
    pub fn publish(&mut self, batch: &Batch, lists: &[Cands]) -> usize {
        let mut delivered = 0usize;
        for (p, cands) in batch.preds.iter().zip(lists) {
            let wants = self.in_flight.remove(&p.key).unwrap_or_default();
            delivered += wants.len();
            for w in wants {
                self.ready.entry(w.ticket).or_default().push((w.leaf, cands.clone()));
            }
        }
        delivered
    }

    /// Abort a claimed pass: claims return to pending so a future wave can
    /// cover them; current waiters fall back to evaluating themselves.
    pub fn abort(&mut self, batch: &Batch) {
        for p in &batch.preds {
            if let Some(wants) = self.in_flight.remove(&p.key) {
                if !wants.is_empty() {
                    self.pending.entry(p.key).or_default().extend(wants);
                }
            }
        }
    }

    /// Deliveries published for `ticket` since it last looked.
    pub fn take_ready(&mut self, ticket: u64) -> Vec<(usize, Cands)> {
        self.ready.remove(&ticket).unwrap_or_default()
    }

    /// Drop every residue of a finished ticket (stale wants from aborted
    /// passes, undelivered lists) so the board never accumulates state for
    /// queries that already returned.
    pub fn forget(&mut self, ticket: u64) {
        self.ready.remove(&ticket);
        self.pending.retain(|_, wants| {
            wants.retain(|w| w.ticket != ticket);
            !wants.is_empty()
        });
        for wants in self.in_flight.values_mut() {
            wants.retain(|w| w.ticket != ticket);
        }
    }
}

/// A canonical fingerprint of a plan: equal strings mean the same
/// computation over the same bytes (table identities include the address
/// and length of each referenced column buffer; constants print
/// round-trippably). Valid while the referenced tables are alive — which
/// is as long as any session can submit plans over them.
pub(crate) fn fingerprint(plan: &LogicalPlan<'_>) -> String {
    let mut s = String::new();
    fp_node(&plan.root, &mut s);
    s
}

fn fp_table(t: &DecomposedTable, s: &mut String) {
    let _ = write!(s, "{}@{}#{}", t.name(), t.seqbase(), t.len());
    // Every column's buffer identity: a table rebuilt at a recycled
    // allocation would have to reproduce the address of *each* column to
    // collide, not just the first.
    for col in t.columns() {
        let _ = write!(s, "{:?}", column_id(&col.bat));
    }
}

fn fp_node(node: &PlanNode<'_>, s: &mut String) {
    match node {
        PlanNode::Scan { table } => {
            s.push_str("scan(");
            fp_table(table, s);
            s.push(')');
        }
        PlanNode::Filter { input, pred } => {
            fp_node(input, s);
            // Pred's Display prints f64 bounds with Rust's shortest
            // round-trip formatting, so distinct constants print
            // distinctly.
            let _ = write!(s, "|filter[{pred}]");
        }
        PlanNode::Join { input, right, left_col, right_col } => {
            fp_node(input, s);
            let _ = write!(s, "|join[{left_col}={right_col}](");
            fp_node(right, s);
            s.push(')');
        }
        PlanNode::GroupAgg { input, key, aggs } => {
            fp_node(input, s);
            let _ = write!(s, "|group[{}]aggs[", key.as_deref().unwrap_or(""));
            for a in aggs {
                let _ = write!(s, "{a},");
            }
            s.push(']');
        }
    }
}

/// Rough resident size of a cached result, in bytes (output rows + report
/// strings + fixed overheads) — the currency of the cache budget.
pub(crate) fn approx_bytes(e: &Executed) -> usize {
    let output = match &e.output {
        QueryOutput::Groups(rows) => {
            rows.iter().map(|r| 48 + r.key.len() + 24 * r.values.len()).sum()
        }
        QueryOutput::Aggregates(v) => 24 * v.len(),
        QueryOutput::Oids(v) => std::mem::size_of::<Oid>() * v.len(),
        QueryOutput::JoinIndex(v) => 2 * std::mem::size_of::<Oid>() * v.len(),
    };
    let report: usize =
        e.report.ops.iter().map(|o| 160 + o.op.len() + o.detail.len() + 96 * o.access.len()).sum();
    128 + output + report
}

struct CacheEntry {
    executed: Executed,
    cost_ms: f64,
    bytes: usize,
    last_used: u64,
}

/// The bounded LRU result cache. `cap == 0` disables it.
pub(crate) struct ResultCache {
    cap: usize,
    bytes: usize,
    tick: u64,
    entries: HashMap<String, CacheEntry>,
    /// Entries evicted to respect the budget (metric).
    pub evictions: u64,
}

impl ResultCache {
    pub fn new(cap: usize) -> Self {
        Self { cap, bytes: 0, tick: 0, entries: HashMap::new(), evictions: 0 }
    }

    /// Resident bytes (key + entry estimates).
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Resident entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Look a fingerprint up, refreshing its recency. Returns the cached
    /// execution and the cost quote recorded at insert time.
    pub fn get(&mut self, key: &str) -> Option<(Executed, f64)> {
        self.tick += 1;
        let tick = self.tick;
        let e = self.entries.get_mut(key)?;
        e.last_used = tick;
        Some((e.executed.clone(), e.cost_ms))
    }

    /// Insert a completed execution, evicting least-recently-used entries
    /// until the budget holds. Results too large to ever fit are skipped.
    pub fn insert(&mut self, key: String, executed: &Executed, cost_ms: f64) {
        if self.cap == 0 {
            return;
        }
        let bytes = approx_bytes(executed) + key.len();
        if bytes > self.cap {
            return;
        }
        self.tick += 1;
        if let Some(old) = self.entries.remove(&key) {
            self.bytes -= old.bytes;
        }
        self.bytes += bytes;
        self.entries.insert(
            key,
            CacheEntry { executed: executed.clone(), cost_ms, bytes, last_used: self.tick },
        );
        while self.bytes > self.cap {
            let lru = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
                .expect("over budget implies non-empty");
            let e = self.entries.remove(&lru).expect("key just found");
            self.bytes -= e.bytes;
            self.evictions += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use engine::exec::{execute, ExecOptions};
    use engine::plan::{Agg, LogicalPlan, Pred, Query};
    use engine::shared::scan_requests;
    use memsim::NullTracker;
    use monet_core::storage::{ColType, TableBuilder, Value};

    fn table() -> DecomposedTable {
        let mut b =
            TableBuilder::new("t", 0).column("qty", ColType::I32).column("price", ColType::F64);
        for i in 0..200i32 {
            b.push_row(&[Value::I32(i % 20), Value::F64(i as f64)]).unwrap();
        }
        b.finish()
    }

    #[test]
    fn board_batches_pending_same_column_wants_and_delivers() {
        let t = table();
        let p1 = Query::scan(&t).filter(Pred::range_i32("qty", 1, 5)).build().unwrap();
        let p2 = Query::scan(&t).filter(Pred::range_i32("qty", 3, 9)).build().unwrap();
        let r1 = scan_requests(&p1);
        let r2 = scan_requests(&p2);

        let mut board = ScanBoard::default();
        board.post(7, &r2); // ticket 7 queues first
        assert!(board.covers(&r2[0].key()));

        // Ticket 3 becomes runnable: it claims a 2-predicate pass.
        let work = board.runnable(3, &r1);
        assert!(work.ready.is_empty() && work.waits.is_empty());
        assert_eq!(work.batches.len(), 1);
        let batch = &work.batches[0];
        assert_eq!(batch.preds.len(), 2);
        assert_eq!(batch.covered_leaves(), 2);
        assert!(board.in_flight(&r2[0].key()), "claims are visible to later runners");

        // A third runnable query wanting the in-flight key waits.
        let p3 = Query::scan(&t).filter(Pred::range_i32("qty", 3, 9)).build().unwrap();
        let r3 = scan_requests(&p3);
        let work3 = board.runnable(9, &r3);
        assert!(work3.batches.is_empty());
        assert_eq!(work3.waits, vec![r3[0].key()]);

        // Ticket 7 itself granted mid-flight: its want was already
        // absorbed into the claim, so becoming runnable must register it
        // for delivery exactly once, not twice.
        let work7 = board.runnable(7, &r2);
        assert!(work7.batches.is_empty());
        assert_eq!(work7.waits, vec![r2[0].key()]);

        // Publish: both ticket 7 and the waiter 9 get their lists.
        let lists: Vec<Cands> = batch
            .preds
            .iter()
            .map(|p| {
                Arc::new(
                    monet_core::scan::multi_select(
                        &mut NullTracker,
                        r1[0].bat,
                        &[p.key.pred.kernel_pred()],
                    )
                    .unwrap()
                    .remove(0),
                )
            })
            .collect();
        let delivered = board.publish(batch, &lists);
        assert_eq!(delivered, 2, "one delivery each to tickets 7 and 9, no duplicates");
        assert!(!board.in_flight(&r2[0].key()));
        let got7 = board.take_ready(7);
        assert_eq!(got7.len(), 1, "ticket 7's absorbed + re-registered want delivers once");
        assert_eq!(got7[0].0, r2[0].leaf);
        assert_eq!(board.take_ready(9).len(), 1);

        // The delivered list is exactly the solo evaluation.
        let solo = execute(&mut NullTracker, &p2, &ExecOptions::default()).unwrap();
        let engine::exec::QueryOutput::Oids(expect) = solo.output else { panic!("oids") };
        assert_eq!(*got7[0].1, expect);
    }

    #[test]
    fn lone_uncontended_leaves_are_not_batched_and_aborts_repost() {
        let t = table();
        let p = Query::scan(&t).filter(Pred::range_i32("qty", 1, 5)).build().unwrap();
        let r = scan_requests(&p);
        let mut board = ScanBoard::default();
        let work = board.runnable(1, &r);
        assert!(work.batches.is_empty(), "nothing to share");
        assert!(!board.in_flight(&r[0].key()));

        // Two same-column leaves of ONE query share nothing either: the
        // access planner must stay free to pick index probes for them.
        let multi = Query::scan(&t)
            .filter(Pred::range_i32("qty", 2, 2).or(Pred::range_i32("qty", 9, 9)))
            .build()
            .unwrap();
        let rm = scan_requests(&multi);
        assert_eq!(rm.len(), 2);
        let work = board.runnable(5, &rm);
        assert!(work.batches.is_empty(), "own-only multi-leaf claims are not forced to stream");
        assert!(!board.in_flight(&rm[0].key()));

        // Now with a pending want: claim, then abort — the want returns to
        // pending so a future wave can cover it.
        board.post(2, &r);
        let work = board.runnable(1, &r);
        assert_eq!(work.batches.len(), 1);
        board.abort(&work.batches[0]);
        assert!(!board.in_flight(&r[0].key()));
        assert!(board.covers(&r[0].key()), "aborted wants are pending again");
        board.forget(2);
        assert!(!board.covers(&r[0].key()), "forget clears a finished ticket's wants");
    }

    #[test]
    fn fingerprints_distinguish_plans_and_tables() {
        let t = table();
        let t2 = table();
        fn q<'a>(t: &'a DecomposedTable, hi: i32) -> LogicalPlan<'a> {
            Query::scan(t)
                .filter(Pred::range_i32("qty", 1, hi))
                .agg(Agg::sum("price"))
                .build()
                .unwrap()
        }
        let (a, b) = (q(&t, 5), q(&t, 5));
        assert_eq!(fingerprint(&a), fingerprint(&b), "same plan, same table");
        assert_ne!(fingerprint(&a), fingerprint(&q(&t, 6)), "different constant");
        assert_ne!(fingerprint(&a), fingerprint(&q(&t2, 5)), "same data, different buffers");
    }

    #[test]
    fn cache_caps_bytes_and_evicts_lru() {
        let t = table();
        let run = |lo: i32| {
            let p = Query::scan(&t).filter(Pred::range_i32("qty", lo, lo + 3)).build().unwrap();
            (fingerprint(&p), execute(&mut NullTracker, &p, &ExecOptions::default()).unwrap())
        };
        let (k1, e1) = run(0);
        let one = approx_bytes(&e1) + k1.len();
        // Budget fits two entries, not three.
        let mut cache = ResultCache::new(one * 2 + one / 2);
        cache.insert(k1.clone(), &e1, 1.0);
        let (k2, e2) = run(4);
        cache.insert(k2.clone(), &e2, 1.0);
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&k1).is_some(), "touch k1 so k2 is the LRU");
        let (k3, e3) = run(8);
        cache.insert(k3.clone(), &e3, 1.0);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions, 1);
        assert!(cache.get(&k2).is_none(), "k2 was least recently used");
        assert!(cache.get(&k1).is_some() && cache.get(&k3).is_some());
        assert!(cache.bytes() <= one * 2 + one / 2);

        // A zero budget disables insertion entirely.
        let mut off = ResultCache::new(0);
        off.insert(k1.clone(), &e1, 1.0);
        assert_eq!(off.len(), 0);
        assert!(off.get(&k1).is_none());
    }
}
