//! The cooperative-scan board and the hot-result cache — the service-side
//! state behind shared scans.
//!
//! ## Scan board
//!
//! Every submission describes its scan leaves as
//! [`engine::shared::ScanRequest`]s. Queued queries *post* their requests;
//! when a query becomes runnable it *claims* a batch: its own scan leaves
//! plus every pending same-column request, merged into one cooperative
//! pass that streams the column once. The runner executes the pass with
//! **its own** column reference (equal [`engine::shared::ColumnId`]s mean
//! equal bytes — tables are immutable and every requesting query is still
//! blocked inside `run`, so the data outlives the pass), publishes each
//! predicate's candidate list to the tickets that wanted it, and only then
//! runs its own plan. Claimed keys are marked *in flight* so a
//! concurrently granted query waits for the publication instead of
//! re-streaming the column; if a pass aborts, its claims return to pending
//! and waiters fall back to scanning themselves — sharing changes *who*
//! streams a column, never *what* a query computes.
//!
//! ## Chunked elevator passes
//!
//! With a non-zero chunk size (`MONET_SERVICE_CHUNK`) a claimed pass runs
//! as an *elevator*: the runner streams the column in fixed-size chunks
//! ([`monet_core::scan::multi_select_range`] /
//! [`monet_core::compress::multi_select_compressed_range`]) and, at every
//! chunk boundary, absorbs newly posted same-column wants as fresh
//! *riders* ([`ScanBoard::take_pending_for_col`]). A rider attaching
//! mid-pass keeps riding past the end of the column — the cursor wraps to
//! row zero and re-streams only the prefix the rider missed. Each rider's
//! per-chunk partial lists, reassembled in ascending row order, are
//! bit-identical to the one-shot kernel, so attach order can never change
//! what a query computes. The per-column cursor is published on the board
//! ([`ScanBoard::coverage`]) so admission quotes can price a mid-pass
//! attach as marginal CPU plus only the wrap-around re-stream
//! ([`costmodel::quote::OpShape::AttachSelect`]). A zero chunk size
//! degenerates to the pre-elevator all-or-nothing pass: one chunk, no
//! boundaries, no attaches.
//!
//! ## Result cache
//!
//! A bounded LRU over completed [`Executed`]s keyed by a canonical plan
//! fingerprint (table buffer identities + every operator's constants, so
//! equal keys mean the same computation over the same bytes). Tables are
//! immutable, so entries never need invalidation; the budget is
//! `ServiceConfig::cache_bytes` (`MONET_SERVICE_CACHE`), and `0` disables
//! caching entirely. Execution is deterministic, so serving a cached
//! result is bit-identical to re-running the plan.

use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;
use std::sync::Arc;

use engine::exec::{Executed, QueryOutput};
use engine::plan::{LogicalPlan, PlanNode};
use engine::shared::{column_id, ColumnId, ScanRequest, ShareKey};
use monet_core::storage::{DecomposedTable, Oid};

/// A shared candidate list (one predicate's matches, ascending OIDs).
pub(crate) type Cands = Arc<Vec<Oid>>;

/// One query's interest in a [`ShareKey`]: deliver the list to this ticket
/// at this global leaf index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Want {
    pub ticket: u64,
    pub leaf: usize,
}

/// One distinct predicate of a claimed pass, and everyone it serves.
#[derive(Debug)]
pub(crate) struct BatchPred {
    /// The merge key (column identity + canonical predicate).
    pub key: ShareKey,
    /// The runner's own leaf indices wanting this list.
    pub own_leaves: Vec<usize>,
    /// Other tickets' wants, delivered at publish time.
    others: Vec<Want>,
}

/// One cooperative pass a runnable query claimed: a single column stream
/// evaluating every distinct predicate below.
#[derive(Debug)]
pub(crate) struct Batch {
    /// Index into the runner's request slice whose `bat` the pass streams.
    pub anchor: usize,
    /// Distinct predicates of the pass.
    pub preds: Vec<BatchPred>,
    /// Tuples the pass streams.
    pub rows: usize,
}

impl Batch {
    /// Leaves this pass covers across all queries (own + delivered) *as
    /// claimed* — an elevator may pick up more mid-pass, which is why the
    /// runner accounts saved scans at delivery time, not from this.
    #[cfg(test)]
    pub fn covered_leaves(&self) -> usize {
        self.preds.iter().map(|p| p.own_leaves.len() + p.others.len()).sum()
    }
}

/// What a runnable query must do about shared scans.
#[derive(Debug, Default)]
pub(crate) struct Runnable {
    /// Lists already published for this ticket: `(leaf, cands)`.
    pub ready: Vec<(usize, Cands)>,
    /// Passes this query must execute (and publish) before running.
    pub batches: Vec<Batch>,
    /// Keys claimed by another runner that cover this query's leaves:
    /// wait for their publication (delivery lands in `ready` under this
    /// ticket), falling back to self-evaluation if the pass aborts.
    pub waits: Vec<ShareKey>,
}

/// The board: pending wants, in-flight claims, published deliveries, and
/// the per-column elevator cursors of passes currently streaming.
#[derive(Debug, Default)]
pub(crate) struct ScanBoard {
    pending: HashMap<ShareKey, Vec<Want>>,
    in_flight: HashMap<ShareKey, Vec<Want>>,
    ready: HashMap<u64, Vec<(usize, Cands)>>,
    /// Rows already streamed in the current elevator cycle, per column —
    /// the wrap distance a rider attaching *now* would pay.
    progress: HashMap<ColumnId, usize>,
}

impl ScanBoard {
    /// Post a queued query's scan leaves as pending wants.
    pub fn post(&mut self, ticket: u64, requests: &[ScanRequest<'_>]) {
        for r in requests {
            self.pending.entry(r.key()).or_default().push(Want { ticket, leaf: r.leaf });
        }
    }

    /// How a pass would cover `key`: `None` when nothing pending or in
    /// flight matches (the query streams for itself), `Some(missed)` when
    /// a pass covers it — `missed` is the wrap-around distance in rows
    /// (zero for a pending pass that has not started, or an attach right
    /// at pass start), the memory-side price of attaching
    /// ([`costmodel::shared::attach_cost`]).
    pub fn coverage(&self, key: &ShareKey) -> Option<usize> {
        if self.in_flight.contains_key(key) {
            return Some(self.progress.get(&key.col).copied().unwrap_or(0));
        }
        self.pending.contains_key(key).then_some(0)
    }

    /// True while a claimed pass owes `key` a publication.
    pub fn in_flight(&self, key: &ShareKey) -> bool {
        self.in_flight.contains_key(key)
    }

    /// Publish an elevator's position: `streamed` rows of the current
    /// cycle are behind the cursor on `col` (what a rider attaching now
    /// would have to wrap over).
    pub fn set_progress(&mut self, col: ColumnId, streamed: usize) {
        self.progress.insert(col, streamed);
    }

    /// Remove a finished elevator's cursor.
    pub fn clear_progress(&mut self, col: &ColumnId) {
        self.progress.remove(col);
    }

    /// Transition a query to runnable: withdraw its pending wants, collect
    /// lists already published for it, claim cooperative passes over its
    /// scan columns (absorbing every pending same-column want), and note
    /// the keys it must wait on because another runner claimed them first.
    ///
    /// A claim nobody else wants is *not* batched — the executor's access
    /// planner keeps choosing scan vs. index freely for uncontended
    /// leaves; passes exist to share streams between queries, not to
    /// force one query's leaves through a full column scan. The exception
    /// is chunked mode over a long, unindexed column (`chunk_rows > 0` and
    /// `rows > chunk_rows`): there an own-only claim *does* open an
    /// elevator, because late arrivals can attach to it mid-pass — the
    /// churn scenario the elevator exists for.
    ///
    /// Batches come out ordered by the anchor leaf's position in
    /// `requests`, and columns are grouped in first-appearance order, so
    /// reports and metrics are identical run to run.
    pub fn runnable(
        &mut self,
        ticket: u64,
        requests: &[ScanRequest<'_>],
        chunk_rows: usize,
    ) -> Runnable {
        let mut out = Runnable::default();
        // Withdraw this query's own pending wants (it is about to either
        // receive, claim, or self-evaluate every leaf).
        self.pending.retain(|_, wants| {
            wants.retain(|w| w.ticket != ticket);
            !wants.is_empty()
        });
        out.ready = self.ready.remove(&ticket).unwrap_or_default();
        let have: HashSet<usize> = out.ready.iter().map(|(leaf, _)| *leaf).collect();

        // Group this query's unserved leaves by column, columns in
        // first-appearance order (a HashMap iteration here would make
        // batch order — and with it reports and metrics — vary run to
        // run).
        let mut cols: Vec<ColumnId> = Vec::new();
        let mut by_col: HashMap<ColumnId, Vec<usize>> = HashMap::new();
        for (i, r) in requests.iter().enumerate() {
            if have.contains(&r.leaf) {
                continue;
            }
            let key = r.key();
            if let Some(wants) = self.in_flight.get_mut(&key) {
                // Someone is streaming this list right now: register for
                // delivery and wait. The claim may already carry this
                // query's want (absorbed from pending) — don't register it
                // twice, or the publish would double-deliver and inflate
                // the saved-scan accounting.
                let want = Want { ticket, leaf: r.leaf };
                if !wants.contains(&want) {
                    wants.push(want);
                }
                out.waits.push(key);
                continue;
            }
            by_col
                .entry(r.col)
                .or_insert_with(|| {
                    cols.push(r.col);
                    Vec::new()
                })
                .push(i);
        }

        for col in cols {
            let req_idxs = by_col.remove(&col).expect("grouped above");
            // Distinct predicates: the runner's own leaves first (stable
            // order), then every pending same-column want.
            let mut preds: Vec<BatchPred> = Vec::new();
            for &i in &req_idxs {
                let key = requests[i].key();
                match preds.iter_mut().find(|p| p.key == key) {
                    Some(p) => p.own_leaves.push(requests[i].leaf),
                    None => preds.push(BatchPred {
                        key,
                        own_leaves: vec![requests[i].leaf],
                        others: Vec::new(),
                    }),
                }
            }
            let mut same_col: Vec<(ShareKey, Vec<Want>)> = Vec::new();
            self.pending.retain(|key, wants| {
                if key.col == col {
                    same_col.push((*key, std::mem::take(wants)));
                    false
                } else {
                    true
                }
            });
            // Deterministic absorption order: by the oldest want.
            same_col.sort_by_key(|(_, wants)| wants.first().map(|w| (w.ticket, w.leaf)));
            for (key, wants) in same_col {
                match preds.iter_mut().find(|p| p.key == key) {
                    Some(p) => p.others.extend(wants),
                    None => preds.push(BatchPred { key, own_leaves: Vec::new(), others: wants }),
                }
            }
            let anchor_req = &requests[req_idxs[0]];
            let elevator_eligible =
                chunk_rows > 0 && anchor_req.rows > chunk_rows && !anchor_req.indexed;
            if preds.iter().all(|p| p.others.is_empty()) && !elevator_eligible {
                // Nobody else wants these lists, so a pass would share
                // nothing — leave the leaves to the access planner (a
                // point predicate may be index territory; forcing a full
                // column stream here would undo the access-path win).
                continue;
            }
            // Claim: every key of the pass goes in flight so later runners
            // wait for the publication instead of re-streaming.
            for p in &preds {
                self.in_flight.insert(p.key, p.others.clone());
            }
            out.batches.push(Batch { anchor: req_idxs[0], preds, rows: anchor_req.rows });
        }
        out
    }

    /// Drain every pending want on `col` — the elevator runner calls this
    /// at chunk boundaries to attach late arrivals as new riders. Returned
    /// in deterministic (oldest-want-first) order; the caller must either
    /// register each key back in flight ([`ScanBoard::claim_key`]) or
    /// leave it unserved (in which case the wants are lost — don't).
    pub fn take_pending_for_col(&mut self, col: &ColumnId) -> Vec<(ShareKey, Vec<Want>)> {
        let mut taken: Vec<(ShareKey, Vec<Want>)> = Vec::new();
        self.pending.retain(|key, wants| {
            if key.col == *col {
                taken.push((*key, std::mem::take(wants)));
                false
            } else {
                true
            }
        });
        taken.sort_by_key(|(_, wants)| wants.first().map(|w| (w.ticket, w.leaf)));
        taken
    }

    /// Put `key` (back) in flight with `wants` registered for delivery —
    /// attaching a rider mid-pass. Extends an existing registration
    /// without duplicating wants.
    pub fn claim_key(&mut self, key: ShareKey, wants: Vec<Want>) {
        let entry = self.in_flight.entry(key).or_default();
        for w in wants {
            if !entry.contains(&w) {
                entry.push(w);
            }
        }
    }

    /// Deliver one completed rider's list: every registered want receives
    /// it and the in-flight mark clears. Returns the number of deliveries
    /// to *other* tickets.
    pub fn deliver(&mut self, key: &ShareKey, cands: &Cands) -> usize {
        let wants = self.in_flight.remove(key).unwrap_or_default();
        let delivered = wants.len();
        for w in wants {
            self.ready.entry(w.ticket).or_default().push((w.leaf, cands.clone()));
        }
        delivered
    }

    /// Publish a pass's lists: deliver to every registered want (including
    /// waiters that joined after the claim) and clear the in-flight marks.
    /// Returns the number of deliveries to *other* tickets.
    pub fn publish(&mut self, batch: &Batch, lists: &[Cands]) -> usize {
        batch.preds.iter().zip(lists).map(|(p, cands)| self.deliver(&p.key, cands)).sum()
    }

    /// Abort claimed keys: they return to pending so a future wave can
    /// cover them; current waiters fall back to evaluating themselves. By
    /// key rather than by batch because elevator riders attach after the
    /// batch was formed.
    pub fn abort_keys(&mut self, keys: &[ShareKey]) {
        for key in keys {
            if let Some(wants) = self.in_flight.remove(key) {
                if !wants.is_empty() {
                    self.pending.entry(*key).or_default().extend(wants);
                }
            }
        }
    }

    /// Deliveries published for `ticket` since it last looked.
    pub fn take_ready(&mut self, ticket: u64) -> Vec<(usize, Cands)> {
        self.ready.remove(&ticket).unwrap_or_default()
    }

    /// Drop every residue of a finished ticket (stale wants from aborted
    /// passes, undelivered lists) so the board never accumulates state for
    /// queries that already returned. Returns the number of *delivered but
    /// never consumed* lists dropped — the caller rolls those out of the
    /// saved-scan counters so global and per-session accounting stay in
    /// balance even on error paths.
    pub fn forget(&mut self, ticket: u64) -> usize {
        let dropped = self.ready.remove(&ticket).map(|lists| lists.len()).unwrap_or(0);
        self.pending.retain(|_, wants| {
            wants.retain(|w| w.ticket != ticket);
            !wants.is_empty()
        });
        for wants in self.in_flight.values_mut() {
            wants.retain(|w| w.ticket != ticket);
        }
        dropped
    }
}

/// A canonical fingerprint of a plan: equal strings mean the same
/// computation over the same bytes (table identities include the address
/// and length of each referenced column buffer; constants print
/// round-trippably). Valid while the referenced tables are alive — which
/// is as long as any session can submit plans over them.
pub(crate) fn fingerprint(plan: &LogicalPlan<'_>) -> String {
    let mut s = String::new();
    fp_node(&plan.root, &mut s);
    s
}

fn fp_table(t: &DecomposedTable, s: &mut String) {
    let _ = write!(s, "{}@{}#{}", t.name(), t.seqbase(), t.len());
    // Every column's buffer identity: a table rebuilt at a recycled
    // allocation would have to reproduce the address of *each* column to
    // collide, not just the first.
    for col in t.columns() {
        let _ = write!(s, "{:?}", column_id(&col.bat));
    }
}

fn fp_node(node: &PlanNode<'_>, s: &mut String) {
    match node {
        PlanNode::Scan { table } => {
            s.push_str("scan(");
            fp_table(table, s);
            s.push(')');
        }
        PlanNode::Filter { input, pred } => {
            fp_node(input, s);
            // Pred's Display prints f64 bounds with Rust's shortest
            // round-trip formatting, so distinct constants print
            // distinctly.
            let _ = write!(s, "|filter[{pred}]");
        }
        PlanNode::Join { input, right, left_col, right_col } => {
            fp_node(input, s);
            let _ = write!(s, "|join[{left_col}={right_col}](");
            fp_node(right, s);
            s.push(')');
        }
        PlanNode::GroupAgg { input, key, aggs } => {
            fp_node(input, s);
            let _ = write!(s, "|group[{}]aggs[", key.as_deref().unwrap_or(""));
            for a in aggs {
                let _ = write!(s, "{a},");
            }
            s.push(']');
        }
    }
}

/// Rough resident size of a cached result, in bytes (output rows + report
/// strings + fixed overheads) — the currency of the cache budget.
pub(crate) fn approx_bytes(e: &Executed) -> usize {
    let output = match &e.output {
        QueryOutput::Groups(rows) => {
            rows.iter().map(|r| 48 + r.key.len() + 24 * r.values.len()).sum()
        }
        QueryOutput::Aggregates(v) => 24 * v.len(),
        QueryOutput::Oids(v) => std::mem::size_of::<Oid>() * v.len(),
        QueryOutput::JoinIndex(v) => 2 * std::mem::size_of::<Oid>() * v.len(),
    };
    let report: usize =
        e.report.ops.iter().map(|o| 160 + o.op.len() + o.detail.len() + 96 * o.access.len()).sum();
    128 + output + report
}

struct CacheEntry {
    /// Shared, not owned: a hit hands out another reference instead of
    /// deep-cloning result rows and report strings — the difference
    /// between O(1) and O(result) on Zipf-hot hit paths.
    executed: Arc<Executed>,
    cost_ms: f64,
    bytes: usize,
    last_used: u64,
}

/// The bounded LRU result cache. `cap == 0` disables it.
pub(crate) struct ResultCache {
    cap: usize,
    bytes: usize,
    tick: u64,
    entries: HashMap<String, CacheEntry>,
    /// Entries evicted to respect the budget (metric).
    pub evictions: u64,
}

impl ResultCache {
    pub fn new(cap: usize) -> Self {
        Self { cap, bytes: 0, tick: 0, entries: HashMap::new(), evictions: 0 }
    }

    /// Resident bytes (key + entry estimates).
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Resident entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Look a fingerprint up, refreshing its recency. Returns a shared
    /// reference to the cached execution (no deep copy) and the cost quote
    /// recorded at insert time.
    pub fn get(&mut self, key: &str) -> Option<(Arc<Executed>, f64)> {
        self.tick += 1;
        let tick = self.tick;
        let e = self.entries.get_mut(key)?;
        e.last_used = tick;
        Some((Arc::clone(&e.executed), e.cost_ms))
    }

    /// Insert a completed execution, evicting least-recently-used entries
    /// until the budget holds. Results too large to ever fit are skipped.
    pub fn insert(&mut self, key: String, executed: &Arc<Executed>, cost_ms: f64) {
        if self.cap == 0 {
            return;
        }
        let bytes = approx_bytes(executed) + key.len();
        if bytes > self.cap {
            return;
        }
        self.tick += 1;
        if let Some(old) = self.entries.remove(&key) {
            self.bytes -= old.bytes;
        }
        self.bytes += bytes;
        self.entries.insert(
            key,
            CacheEntry { executed: Arc::clone(executed), cost_ms, bytes, last_used: self.tick },
        );
        while self.bytes > self.cap {
            let lru = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
                .expect("over budget implies non-empty");
            let e = self.entries.remove(&lru).expect("key just found");
            self.bytes -= e.bytes;
            self.evictions += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use engine::exec::{execute, ExecOptions};
    use engine::plan::{Agg, LogicalPlan, Pred, Query};
    use engine::shared::scan_requests;
    use memsim::NullTracker;
    use monet_core::storage::{ColType, TableBuilder, Value};

    fn table() -> DecomposedTable {
        let mut b =
            TableBuilder::new("t", 0).column("qty", ColType::I32).column("price", ColType::F64);
        for i in 0..200i32 {
            b.push_row(&[Value::I32(i % 20), Value::F64(i as f64)]).unwrap();
        }
        b.finish()
    }

    #[test]
    fn board_batches_pending_same_column_wants_and_delivers() {
        let t = table();
        let p1 = Query::scan(&t).filter(Pred::range_i32("qty", 1, 5)).build().unwrap();
        let p2 = Query::scan(&t).filter(Pred::range_i32("qty", 3, 9)).build().unwrap();
        let r1 = scan_requests(&p1);
        let r2 = scan_requests(&p2);

        let mut board = ScanBoard::default();
        board.post(7, &r2); // ticket 7 queues first
        assert_eq!(board.coverage(&r2[0].key()), Some(0), "pending covers at zero wrap cost");

        // Ticket 3 becomes runnable: it claims a 2-predicate pass.
        let work = board.runnable(3, &r1, 0);
        assert!(work.ready.is_empty() && work.waits.is_empty());
        assert_eq!(work.batches.len(), 1);
        let batch = &work.batches[0];
        assert_eq!(batch.preds.len(), 2);
        assert_eq!(batch.covered_leaves(), 2);
        assert!(board.in_flight(&r2[0].key()), "claims are visible to later runners");

        // A third runnable query wanting the in-flight key waits.
        let p3 = Query::scan(&t).filter(Pred::range_i32("qty", 3, 9)).build().unwrap();
        let r3 = scan_requests(&p3);
        let work3 = board.runnable(9, &r3, 0);
        assert!(work3.batches.is_empty());
        assert_eq!(work3.waits, vec![r3[0].key()]);

        // Ticket 7 itself granted mid-flight: its want was already
        // absorbed into the claim, so becoming runnable must register it
        // for delivery exactly once, not twice.
        let work7 = board.runnable(7, &r2, 0);
        assert!(work7.batches.is_empty());
        assert_eq!(work7.waits, vec![r2[0].key()]);

        // Publish: both ticket 7 and the waiter 9 get their lists.
        let lists: Vec<Cands> = batch
            .preds
            .iter()
            .map(|p| {
                Arc::new(
                    monet_core::scan::multi_select(
                        &mut NullTracker,
                        r1[0].bat,
                        &[p.key.pred.kernel_pred()],
                    )
                    .unwrap()
                    .remove(0),
                )
            })
            .collect();
        let delivered = board.publish(batch, &lists);
        assert_eq!(delivered, 2, "one delivery each to tickets 7 and 9, no duplicates");
        assert!(!board.in_flight(&r2[0].key()));
        let got7 = board.take_ready(7);
        assert_eq!(got7.len(), 1, "ticket 7's absorbed + re-registered want delivers once");
        assert_eq!(got7[0].0, r2[0].leaf);
        assert_eq!(board.take_ready(9).len(), 1);

        // The delivered list is exactly the solo evaluation.
        let solo = execute(&mut NullTracker, &p2, &ExecOptions::default()).unwrap();
        let engine::exec::QueryOutput::Oids(expect) = solo.output else { panic!("oids") };
        assert_eq!(*got7[0].1, expect);
    }

    #[test]
    fn lone_uncontended_leaves_are_not_batched_and_aborts_repost() {
        let t = table();
        let p = Query::scan(&t).filter(Pred::range_i32("qty", 1, 5)).build().unwrap();
        let r = scan_requests(&p);
        let mut board = ScanBoard::default();
        let work = board.runnable(1, &r, 0);
        assert!(work.batches.is_empty(), "nothing to share");
        assert!(!board.in_flight(&r[0].key()));
        // Chunked mode doesn't change this for short columns: 200 rows fit
        // in one chunk, so there is nothing for a late arrival to attach
        // to mid-pass.
        let work = board.runnable(1, &r, 64 << 10);
        assert!(work.batches.is_empty(), "short columns stay with the access planner");

        // Two same-column leaves of ONE query share nothing either: the
        // access planner must stay free to pick index probes for them.
        let multi = Query::scan(&t)
            .filter(Pred::range_i32("qty", 2, 2).or(Pred::range_i32("qty", 9, 9)))
            .build()
            .unwrap();
        let rm = scan_requests(&multi);
        assert_eq!(rm.len(), 2);
        let work = board.runnable(5, &rm, 0);
        assert!(work.batches.is_empty(), "own-only multi-leaf claims are not forced to stream");
        assert!(!board.in_flight(&rm[0].key()));

        // Now with a pending want: claim, then abort — the want returns to
        // pending so a future wave can cover it.
        board.post(2, &r);
        let work = board.runnable(1, &r, 0);
        assert_eq!(work.batches.len(), 1);
        let keys: Vec<ShareKey> = work.batches[0].preds.iter().map(|p| p.key).collect();
        board.abort_keys(&keys);
        assert!(!board.in_flight(&r[0].key()));
        assert_eq!(board.coverage(&r[0].key()), Some(0), "aborted wants are pending again");
        board.forget(2);
        assert!(board.coverage(&r[0].key()).is_none(), "forget clears a finished ticket's wants");
    }

    #[test]
    fn chunked_mode_opens_elevators_for_uncontended_long_columns() {
        let mut b =
            TableBuilder::new("big", 0).column("qty", ColType::I32).column("price", ColType::F64);
        for i in 0..2000i32 {
            b.push_row(&[Value::I32(i % 20), Value::F64(i as f64)]).unwrap();
        }
        let t = b.finish();
        let p = Query::scan(&t).filter(Pred::range_i32("qty", 1, 5)).build().unwrap();
        let r = scan_requests(&p);
        let mut board = ScanBoard::default();
        // rows (2000) > chunk (512): an own-only claim opens an elevator
        // so late arrivals have something to attach to.
        let work = board.runnable(1, &r, 512);
        assert_eq!(work.batches.len(), 1);
        assert!(board.in_flight(&r[0].key()));

        // A rider posts mid-pass; the runner drains it at a boundary.
        let p2 = Query::scan(&t).filter(Pred::range_i32("qty", 7, 9)).build().unwrap();
        let r2 = scan_requests(&p2);
        board.post(8, &r2);
        board.set_progress(r[0].col, 1024);
        assert_eq!(
            board.coverage(&r2[0].key()),
            Some(0),
            "pending (not yet attached) quotes zero wrap"
        );
        let taken = board.take_pending_for_col(&r[0].col);
        assert_eq!(taken.len(), 1);
        assert_eq!(taken[0].0, r2[0].key());
        board.claim_key(taken[0].0, taken[0].1.clone());
        assert_eq!(
            board.coverage(&r2[0].key()),
            Some(1024),
            "an in-flight attach prices the wrap distance"
        );

        // Delivery per rider: the late rider's list lands on its ticket.
        let cands: Cands = Arc::new(vec![1, 2, 3]);
        assert_eq!(board.deliver(&r2[0].key(), &cands), 1);
        assert_eq!(board.take_ready(8).len(), 1);
        board.clear_progress(&r[0].col);
        assert!(board.coverage(&r2[0].key()).is_none());

        // Indexed columns never elevator uncontended: the access planner
        // may answer them without streaming at all.
        let mut ti = {
            let mut b = TableBuilder::new("idx", 0).column("qty", ColType::I32);
            for i in 0..2000i32 {
                b.push_row(&[Value::I32(i % 20)]).unwrap();
            }
            b.finish()
        };
        ti.create_index("qty", monet_core::IndexKind::CsBTree).unwrap();
        let pi = Query::scan(&ti).filter(Pred::range_i32("qty", 1, 5)).build().unwrap();
        let ri = scan_requests(&pi);
        let work = board.runnable(2, &ri, 512);
        assert!(work.batches.is_empty(), "indexed leaves stay with the access planner");
    }

    #[test]
    fn fingerprints_distinguish_plans_and_tables() {
        let t = table();
        let t2 = table();
        fn q<'a>(t: &'a DecomposedTable, hi: i32) -> LogicalPlan<'a> {
            Query::scan(t)
                .filter(Pred::range_i32("qty", 1, hi))
                .agg(Agg::sum("price"))
                .build()
                .unwrap()
        }
        let (a, b) = (q(&t, 5), q(&t, 5));
        assert_eq!(fingerprint(&a), fingerprint(&b), "same plan, same table");
        assert_ne!(fingerprint(&a), fingerprint(&q(&t, 6)), "different constant");
        assert_ne!(fingerprint(&a), fingerprint(&q(&t2, 5)), "same data, different buffers");
    }

    #[test]
    fn cache_caps_bytes_and_evicts_lru() {
        let t = table();
        let run = |lo: i32| {
            let p = Query::scan(&t).filter(Pred::range_i32("qty", lo, lo + 3)).build().unwrap();
            (
                fingerprint(&p),
                Arc::new(execute(&mut NullTracker, &p, &ExecOptions::default()).unwrap()),
            )
        };
        let (k1, e1) = run(0);
        let one = approx_bytes(&e1) + k1.len();
        // Budget fits two entries, not three.
        let mut cache = ResultCache::new(one * 2 + one / 2);
        cache.insert(k1.clone(), &e1, 1.0);
        let (k2, e2) = run(4);
        cache.insert(k2.clone(), &e2, 1.0);
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&k1).is_some(), "touch k1 so k2 is the LRU");
        let (k3, e3) = run(8);
        cache.insert(k3.clone(), &e3, 1.0);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions, 1);
        assert!(cache.get(&k2).is_none(), "k2 was least recently used");
        assert!(cache.get(&k1).is_some() && cache.get(&k3).is_some());
        assert!(cache.bytes() <= one * 2 + one / 2);

        // A zero budget disables insertion entirely.
        let mut off = ResultCache::new(0);
        off.insert(k1.clone(), &e1, 1.0);
        assert_eq!(off.len(), 0);
        assert!(off.get(&k1).is_none());
    }
}
