//! Service metrics: admission counters, latency percentiles, per-session
//! accounting.

/// Summary statistics over a set of millisecond samples.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean (0 when empty).
    pub mean_ms: f64,
    /// Median (nearest-rank).
    pub p50_ms: f64,
    /// 95th percentile (nearest-rank).
    pub p95_ms: f64,
    /// 99th percentile (nearest-rank).
    pub p99_ms: f64,
    /// Largest sample.
    pub max_ms: f64,
}

impl From<obs::HistSummary> for LatencySummary {
    fn from(h: obs::HistSummary) -> Self {
        Self {
            count: h.count,
            mean_ms: h.mean,
            p50_ms: h.p50,
            p95_ms: h.p95,
            p99_ms: h.p99,
            max_ms: h.max,
        }
    }
}

impl LatencySummary {
    /// Summarize `samples` (order irrelevant; empty yields all zeros).
    pub fn of(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        let rank = |p: f64| -> f64 {
            // Nearest-rank percentile: the smallest sample with at least
            // p% of the distribution at or below it.
            let idx = ((p / 100.0 * sorted.len() as f64).ceil() as usize).max(1) - 1;
            sorted[idx.min(sorted.len() - 1)]
        };
        Self {
            count: sorted.len(),
            mean_ms: sorted.iter().sum::<f64>() / sorted.len() as f64,
            p50_ms: rank(50.0),
            p95_ms: rank(95.0),
            p99_ms: rank(99.0),
            max_ms: *sorted.last().expect("non-empty"),
        }
    }
}

/// A bounded ring of the most recent latency samples, so a long-running
/// service neither grows without bound nor sorts its whole history on
/// every metrics snapshot.
#[derive(Debug, Clone)]
pub struct SampleWindow {
    buf: Vec<f64>,
    next: usize,
    cap: usize,
}

impl SampleWindow {
    /// A window retaining the most recent `cap` samples (`cap >= 1`).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        Self { buf: Vec::with_capacity(cap.min(1024)), next: 0, cap }
    }

    /// Record one sample, evicting the oldest once the window is full.
    pub fn push(&mut self, sample: f64) {
        if self.buf.len() < self.cap {
            self.buf.push(sample);
        } else {
            self.buf[self.next] = sample;
        }
        self.next = (self.next + 1) % self.cap;
    }

    /// The retained samples, in no particular order.
    pub fn samples(&self) -> &[f64] {
        &self.buf
    }

    /// Summarize the retained samples.
    pub fn summary(&self) -> LatencySummary {
        LatencySummary::of(&self.buf)
    }
}

/// A snapshot of the service-wide state, taken by
/// [`crate::QueryService::metrics`].
#[derive(Debug, Clone, Default)]
pub struct ServiceMetrics {
    /// The configured global thread budget.
    pub budget: usize,
    /// Threads currently leased to running queries.
    pub threads_in_use: usize,
    /// The most threads ever leased at once — must never exceed `budget`.
    pub high_water_threads: usize,
    /// Queries submitted (admitted + queued + rejected + cache hits +
    /// collapsed duplicates).
    pub submitted: u64,
    /// Queries that started immediately on submission.
    pub admitted_immediately: u64,
    /// Queries that had to wait in the admission queue.
    pub queued: u64,
    /// Queries shed because the queue was full.
    pub rejected: u64,
    /// Duplicate submissions collapsed into a concurrent identical query's
    /// execution (single-flight): they neither executed nor entered
    /// admission, they waited for the leader's result.
    pub collapsed: u64,
    /// Queries that finished executing (cache hits count: the service
    /// answered them).
    pub completed: u64,
    /// Cooperative scan passes executed — each streamed one column once on
    /// behalf of every merged predicate leaf.
    pub shared_scan_batches: u64,
    /// Solo column scans avoided by merging: for a pass that ultimately
    /// delivered `m` predicate leaves (claimed up front or attached
    /// mid-pass), `m - 1` scans were saved. Counted at delivery time, so
    /// elevator attaches are included and aborted passes are not.
    pub scans_saved: u64,
    /// Predicate leaves that attached to an elevator pass already in
    /// flight (at a chunk boundary, wrapping around for the part they
    /// missed) rather than waiting for the next wave.
    pub elevator_attaches: u64,
    /// Times an elevator pass yielded its lease between chunks to a
    /// cheaper waiting query and re-queued itself.
    pub preemptions: u64,
    /// Tuples streamed through scan-select kernels service-wide — shared
    /// passes once per pass, per-query scan leaves once per leaf. The
    /// figure of merit cooperative scans push down.
    pub scan_rows_streamed: u64,
    /// Bytes those kernels actually streamed from *compressed*
    /// representations (packed/RLE/dictionary leaves, solo and
    /// cooperative): `rows × bits-per-value / 8` per compressed pass.
    pub compressed_bytes_streamed: u64,
    /// Bytes compression kept off the memory bus: the uncompressed stream
    /// (`rows × stride`) minus the compressed bytes, summed over every
    /// compressed pass. The figure of merit packed scans push down.
    pub bytes_saved: u64,
    /// Queries answered straight from the result cache.
    pub cache_hits: u64,
    /// Cache lookups that missed (and then executed).
    pub cache_misses: u64,
    /// Cache entries evicted to respect the byte budget.
    pub cache_evictions: u64,
    /// Resident bytes in the result cache.
    pub cache_bytes: usize,
    /// Resident entries in the result cache.
    pub cache_entries: usize,
    /// End-to-end latency (submission to result) over *every* completed
    /// query: per-session log-bucketed histograms ([`obs::LogHistogram`])
    /// merged into one distribution, so `count` tracks `completed` exactly
    /// while memory stays bounded. Percentiles carry the histogram's
    /// relative error (under 5%); `count`, `mean_ms`, and `max_ms` are
    /// exact.
    pub latency: LatencySummary,
    /// Time spent waiting in the admission queue (0 for immediate starts),
    /// same histogram treatment.
    pub queue_wait: LatencySummary,
    /// Wall time of individual elevator chunk passes (empty when chunking
    /// is off or no cooperative pass ran) — the grain the scheduler can
    /// preempt at, so its tail bounds how long a cheap query waits behind
    /// a streaming one.
    pub chunk_latency: LatencySummary,
}

/// Per-session accounting, one row per [`crate::Session`].
#[derive(Debug, Clone, Default)]
pub struct SessionMetrics {
    /// The session id.
    pub session: usize,
    /// Queries this session submitted.
    pub submitted: u64,
    /// Queries that completed.
    pub completed: u64,
    /// Queries rejected at admission.
    pub rejected: u64,
    /// Queries answered straight from the result cache.
    pub cache_hits: u64,
    /// Scan leaves of this session's queries that were answered by another
    /// query's cooperative pass (no scan ran on this session's behalf).
    pub scans_saved: u64,
    /// Scan leaves of *other* sessions' queries this session's cooperative
    /// passes covered while running them. Global `scans_saved` equals the
    /// sum over sessions of `scans_saved + runner_covered`.
    pub runner_covered: u64,
    /// Bytes this session's own packed-scan leaves streamed from
    /// compressed representations.
    pub compressed_bytes_streamed: u64,
    /// Bytes this session's own packed-scan leaves kept off the memory bus
    /// versus the uncompressed columns.
    pub bytes_saved: u64,
    /// Sum of end-to-end latencies in milliseconds.
    pub total_ms: f64,
    /// Largest single end-to-end latency.
    pub max_ms: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_zero() {
        assert_eq!(LatencySummary::of(&[]), LatencySummary::default());
    }

    #[test]
    fn sample_window_keeps_only_the_most_recent() {
        let mut w = SampleWindow::new(4);
        for v in 1..=3 {
            w.push(v as f64);
        }
        assert_eq!(w.samples(), &[1.0, 2.0, 3.0], "fills in order while under capacity");
        for v in 4..=6 {
            w.push(v as f64);
        }
        let mut kept = w.samples().to_vec();
        kept.sort_by(f64::total_cmp);
        assert_eq!(kept, vec![3.0, 4.0, 5.0, 6.0], "oldest samples evicted first");
        assert_eq!(w.summary().count, 4);
        assert_eq!(w.summary().max_ms, 6.0);
        // cap clamps to >= 1 and a cap-1 window holds the latest sample.
        let mut one = SampleWindow::new(0);
        one.push(1.0);
        one.push(2.0);
        assert_eq!(one.samples(), &[2.0]);
    }

    #[test]
    fn sample_window_memory_is_bounded_at_a_million_samples() {
        // Regression guard for the unbounded-history failure mode the
        // window (and the histograms that superseded it for service
        // metrics) exist to prevent: a long-running service must not
        // accumulate per-sample state.
        let mut w = SampleWindow::new(4096);
        for i in 0..1_000_000u64 {
            w.push(i as f64);
        }
        assert_eq!(w.samples().len(), 4096, "retention caps at the window size");
        assert!(w.buf.capacity() <= 4096, "no hidden growth past the cap");
        let s = w.summary();
        assert_eq!(s.count, 4096);
        assert_eq!(s.max_ms, 999_999.0, "the newest samples are the ones retained");
    }

    #[test]
    fn latency_summary_converts_from_histogram_summaries() {
        let mut h = obs::LogHistogram::new();
        for v in [1.0, 2.0, 4.0] {
            h.record(v);
        }
        let s: LatencySummary = h.summary().into();
        assert_eq!(s.count, 3);
        assert_eq!(s.max_ms, 4.0);
        assert!((s.mean_ms - 7.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = LatencySummary::of(&samples);
        assert_eq!(s.count, 100);
        assert_eq!(s.p50_ms, 50.0);
        assert_eq!(s.p95_ms, 95.0);
        assert_eq!(s.p99_ms, 99.0);
        assert_eq!(s.max_ms, 100.0);
        assert!((s.mean_ms - 50.5).abs() < 1e-12);
        // A single sample is every percentile.
        let one = LatencySummary::of(&[7.0]);
        assert_eq!((one.p50_ms, one.p95_ms, one.p99_ms, one.max_ms), (7.0, 7.0, 7.0, 7.0));
    }
}
